"""Ablation: the from-scratch vectorised BFS vs scipy vs networkx.

Justifies the substrate choice: the frontier-vectorised numpy BFS is the
hot kernel behind every best-response evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import all_pairs_distances, random_connected_realization, UNREACHABLE


def _graph(n: int, seed: int = 0):
    budgets = np.full(n, 2, dtype=np.int64)
    return random_connected_realization(budgets, seed=seed)


@pytest.mark.paper_artifact("ablation / BFS engines")
@pytest.mark.parametrize("n", [100, 300])
def test_own_bfs(benchmark, n):
    g = _graph(n)
    csr = g.undirected_csr()
    d = benchmark(all_pairs_distances, csr)
    assert d.shape == (n, n)
    assert (d >= 0).all()  # connected: no UNREACHABLE left


@pytest.mark.paper_artifact("ablation / BFS engines")
@pytest.mark.parametrize("n", [100, 300])
def test_scipy_bfs(benchmark, n):
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path

    g = _graph(n)
    csr = g.undirected_csr()
    mat = csr_matrix(
        (np.ones(csr.indices.size), csr.indices, csr.indptr), shape=(n, n)
    )
    d = benchmark(shortest_path, mat, "D", unweighted=True)
    ours = all_pairs_distances(csr)
    assert np.array_equal(ours.astype(float), d)


@pytest.mark.paper_artifact("ablation / BFS engines")
@pytest.mark.parametrize("n", [100])
def test_networkx_bfs(benchmark, n):
    import networkx as nx

    g = _graph(n)
    G = nx.Graph()
    G.add_nodes_from(range(n))
    G.add_edges_from(g.underlying_edges())

    def run():
        return dict(nx.all_pairs_shortest_path_length(G))

    lengths = benchmark(run)
    ours = all_pairs_distances(g.undirected_csr())
    assert all(
        ours[u, v] == d for u, row in lengths.items() for v, d in row.items()
    )
