"""Exhaustive-census benchmarks: the cost of exact game solving.

Quantifies how quickly full enumeration becomes infeasible — the
practical face of the paper's hardness results — and benchmarks the
exact PoA computation on the largest tractable unit games.
"""

from __future__ import annotations

import pytest

from repro.core import BoundedBudgetGame, exact_prices, profile_space_size


@pytest.mark.paper_artifact("exact census / tiny games")
@pytest.mark.parametrize("n", [3, 4, 5])
def test_exact_prices_unit_game(benchmark, n):
    game = BoundedBudgetGame([1] * n)
    report = benchmark.pedantic(exact_prices, args=(game, "sum"), rounds=1, iterations=1)
    assert report.num_profiles == profile_space_size(game) == (n - 1) ** n
    assert report.num_equilibria >= 1
    assert report.poa is not None and report.poa < 5  # Thm 4.1 at tiny n


@pytest.mark.paper_artifact("exact census / profile-space growth")
def test_profile_space_growth(benchmark):
    def run():
        return [profile_space_size(BoundedBudgetGame([1] * n)) for n in range(2, 12)]

    sizes = benchmark(run)
    # (n-1)^n: super-exponential growth — the enumeration wall.
    assert sizes[0] == 1
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] == 10**11


@pytest.mark.paper_artifact("Section 8 / exhaustive FIP")
@pytest.mark.parametrize("version", ["sum", "max"])
def test_finite_improvement_property(benchmark, version):
    from repro.core import check_finite_improvement

    game = BoundedBudgetGame([1, 1, 1, 1])
    report = benchmark.pedantic(
        check_finite_improvement, args=(game, version), kwargs={"kind": "better"},
        rounds=1, iterations=1,
    )
    assert report.has_fip
    assert report.num_states == 81
