"""Engine-backed Section 6 machinery vs the retained loop path.

Claims, each asserted (not just timed) on an ``n = 128`` weighted hub
instance (circulant core plus pendant fringe — dense enough that the
loop path's per-player all-pairs BFS dominates, with poor leaves to
fold, meeting the ``n >= 64`` bar of the acceptance criteria):

* the **weighted swap check** re-run after each fold (the Section 6
  folding-with-verification workload) is >= 5x faster through a
  :class:`WeightedDistanceCache`: each fold is one pendant arc delta
  forwarded to the whole engine pool instead of a fresh all-pairs BFS
  per player per re-verification — with bit-identical verdict lists;
* the full **fold-all cascade** is >= 5x faster in place (incremental
  poor-leaf tracking + weight transfers) than the copy-and-rescan loop
  path, producing an identical folded realization;
* with warm engines the fold repairs are *pendant column fixes* —
  zero rebuilds, zero dirty-row recomputes.

Timings land in ``BENCH_weighted.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.weighted import (
    WeightedRealization,
    fold_all_poor_leaves,
    fold_poor_leaf,
    is_weighted_weak_equilibrium,
    poor_leaves,
    weighted_swap_sweep,
)
from repro.core import WeightedDistanceCache
from repro.graphs import OwnedDigraph

#: Wall-clock asserts are advisory on shared CI runners (see
#: bench_exact_census.py); correctness asserts always run.
_STRICT_TIMING = not os.environ.get("CI")

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_weighted.json"

#: Instance size (comfortably above the n >= 64 acceptance floor).
_N = 128
_CORE = 48

#: Folds interleaved with full swap re-verification.
_FOLD_CHECKS = 8


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_weighted.json."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _hub_instance(n: int = _N, core: int = _CORE, span: int = 3) -> WeightedRealization:
    """Circulant core plus pendant fringe with seeded weights in [1, 9].

    Core vertex ``i`` owns arcs to the next ``span`` core vertices;
    every fringe vertex hangs off a hub by a hub-owned arc, so the
    fringe is all poor leaves while the core keeps the per-player BFS
    of the loop path expensive.
    """
    g = OwnedDigraph(n)
    for i in range(core):
        for d in range(1, span + 1):
            g.add_arc(i, (i + d) % core)
    for leaf in range(core, n):
        g.add_arc((leaf - core) % core, leaf)
    weights = np.random.default_rng(0).integers(1, 10, size=n).astype(np.int64)
    return WeightedRealization(graph=g, weights=weights)


def _fold_and_sweep(use_cache: bool) -> "tuple[list[list[bool]], WeightedRealization, float, float]":
    """Cold sweep, then ``_FOLD_CHECKS`` x (fold one leaf, re-sweep).

    Returns the verdict lists, the final realization, and the cold /
    steady-state wall-clock splits.
    """
    wr = _hub_instance()
    cache = WeightedDistanceCache(wr.graph) if use_cache else None
    kwargs = {"cache": cache} if use_cache else {}
    t0 = time.perf_counter()
    sweeps = [weighted_swap_sweep(wr, **kwargs)]
    cold_s = time.perf_counter() - t0
    steady_s = 0.0
    for _ in range(_FOLD_CHECKS):
        leaf = poor_leaves(wr)[0]
        wr = fold_poor_leaf(wr, leaf, **kwargs)
        t0 = time.perf_counter()
        sweeps.append(weighted_swap_sweep(wr, **kwargs))
        steady_s += time.perf_counter() - t0
    return sweeps, wr, cold_s, steady_s


@pytest.mark.paper_artifact("Section 6 / engine-backed swap check speedup")
def test_swap_check_after_folds_beats_loop_path(benchmark):
    """Re-verifying swap stability after each fold must be >= 5x faster
    on the engine path, with bit-identical verdicts and realizations."""
    ref_sweeps, ref_wr, ref_cold, ref_steady = _fold_and_sweep(use_cache=False)
    eng_sweeps, eng_wr, eng_cold, eng_steady = _fold_and_sweep(use_cache=True)
    benchmark.pedantic(_fold_and_sweep, args=(True,), rounds=1, iterations=1)

    assert ref_sweeps == eng_sweeps
    assert ref_wr.graph == eng_wr.graph
    assert ref_wr.weights.tolist() == eng_wr.weights.tolist()

    speedup = ref_steady / eng_steady
    _record(
        "swap_check_after_folds_n128",
        {
            "n": _N,
            "resweeps": _FOLD_CHECKS,
            "loop_cold_s": round(ref_cold, 4),
            "engine_cold_s": round(eng_cold, 4),
            "loop_resweep_s": round(ref_steady, 4),
            "engine_resweep_s": round(eng_steady, 4),
            "speedup": round(speedup, 1),
            "speedup_incl_cold": round(
                (ref_cold + ref_steady) / (eng_cold + eng_steady), 1
            ),
        },
    )
    assert not _STRICT_TIMING or speedup >= 5.0, (
        f"engine swap re-checks ({eng_steady * 1e3:.1f} ms) should be >= 5x "
        f"faster than the loop path ({ref_steady * 1e3:.1f} ms); got {speedup:.1f}x"
    )


@pytest.mark.paper_artifact("Section 6 / engine-backed fold-all speedup")
def test_fold_all_beats_loop_path(benchmark):
    """The full fold cascade (every fringe leaf folds into its hub)
    must be >= 5x faster in place than the copy-and-rescan loop."""
    wr = _hub_instance()

    t0 = time.perf_counter()
    ref = fold_all_poor_leaves(wr)
    loop_s = time.perf_counter() - t0

    cache = WeightedDistanceCache(wr.graph)
    t0 = time.perf_counter()
    eng = fold_all_poor_leaves(wr, cache=cache)
    engine_s = time.perf_counter() - t0
    benchmark.pedantic(
        lambda: fold_all_poor_leaves(wr, cache=WeightedDistanceCache(wr.graph)),
        rounds=1,
        iterations=1,
    )

    assert ref.graph == eng.graph
    assert ref.weights.tolist() == eng.weights.tolist()
    assert poor_leaves(eng) == []
    assert int(eng.weights[wr.graph.n - 1]) == 0  # fringe weight absorbed

    speedup = loop_s / engine_s
    _record(
        "fold_all_n128",
        {
            "n": _N,
            "folds": _N - _CORE,
            "loop_s": round(loop_s, 4),
            "engine_s": round(engine_s, 4),
            "speedup": round(speedup, 1),
        },
    )
    assert not _STRICT_TIMING or speedup >= 5.0, (
        f"engine fold-all ({engine_s * 1e3:.1f} ms) should be >= 5x faster "
        f"than the loop path ({loop_s * 1e3:.1f} ms); got {speedup:.1f}x"
    )


@pytest.mark.paper_artifact("Section 6 / pendant fast path engages")
def test_fold_repairs_are_pendant_deltas():
    """With warm engines, a fold cascade repairs via pendant column
    fixes — no rebuilds, no dirty-row recomputes."""
    wr = _hub_instance(32, 12)
    cache = WeightedDistanceCache(wr.graph)
    assert is_weighted_weak_equilibrium(wr, cache=cache) == is_weighted_weak_equilibrium(wr)
    # Warm every arc-owning player's engine (the equilibrium check above
    # may early-exit), then measure only the post-fold repairs.
    assert weighted_swap_sweep(wr, cache=cache) == weighted_swap_sweep(wr)
    cache.reset_stats()
    folded = fold_all_poor_leaves(wr, cache=cache)
    assert weighted_swap_sweep(folded, cache=cache) == weighted_swap_sweep(folded)
    stats = cache.stats()
    _record("fold_repair_stats_n32", {k: int(v) for k, v in stats.items()})
    assert stats["rebuilds"] == 0
    assert stats["pendant_fixes"] > 0
    assert stats["rows_recomputed"] == 0
