"""Incremental distance engine vs. full recomputation.

Three claims, each asserted (not just timed):

* a single-swap delta update repairs the all-pairs matrix much faster
  than rebuilding it, and produces the identical matrix;
* the engine's batched multi-source BFS beats the seed's one-source-at-
  a-time all-pairs kernel;
* best-response dynamics routed through the shared
  :class:`~repro.core.distance_cache.DistanceCache` (delta updates)
  beats the full-recompute path on a >=200-vertex instance, with a
  bit-identical trajectory.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

#: Wall-clock comparisons are meaningful on a quiet machine; on shared
#: CI runners a noisy neighbour can invert a ~1.4x margin with no code
#: defect, so the timing asserts are advisory there (the correctness
#: asserts always run).
_STRICT_TIMING = not os.environ.get("CI")

from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.graphs import (
    DistanceEngine,
    all_pairs_distances,
    random_connected_realization,
    uniform_budgets,
)

def _swap_one_arc(graph, player, old_target, new_target):
    g = graph.copy()
    g.remove_arc(player, old_target)
    g.add_arc(player, new_target)
    return g


@pytest.mark.paper_artifact("engine / delta vs rebuild")
def test_single_swap_delta_beats_rebuild(benchmark):
    """One player swaps one arc on a 400-vertex realization: the delta
    repair must beat a from-scratch rebuild while matching it exactly."""
    n = 400
    g0 = random_connected_realization(uniform_budgets(n, 2), seed=5)
    u = 7
    old_target = int(g0.out_neighbors(u)[0])
    new_target = next(
        v for v in range(n) if v != u and not g0.has_arc(u, v) and v != old_target
    )
    g1 = _swap_one_arc(g0, u, old_target, new_target)
    csr0, csr1 = g0.undirected_csr(), g1.undirected_csr()

    engine = DistanceEngine(csr0)
    status = engine.update(csr1)
    assert status == "delta"
    assert np.array_equal(engine.distances(), all_pairs_distances(csr1))
    engine.update(csr0)

    def ping_pong():
        engine.update(csr1)
        engine.update(csr0)

    benchmark.pedantic(ping_pong, rounds=20, iterations=1, warmup_rounds=2)

    reps = 5
    t0 = time.perf_counter()
    for _ in range(reps):
        engine.update(csr1)
        engine.update(csr0)
    delta_pair = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        engine.rebuild(csr1)
        engine.rebuild(csr0)
    rebuild_pair = (time.perf_counter() - t0) / reps
    assert not _STRICT_TIMING or delta_pair < rebuild_pair, (
        f"delta update ({delta_pair * 1e3:.2f} ms/swap-pair) should beat the "
        f"full rebuild ({rebuild_pair * 1e3:.2f} ms/swap-pair)"
    )


@pytest.mark.paper_artifact("engine / batched BFS vs looped BFS")
def test_batched_rebuild_beats_looped_all_pairs(benchmark):
    """The engine's flat-frontier batched BFS must beat the seed's
    per-source python loop on the same substrate."""
    n = 400
    g = random_connected_realization(uniform_budgets(n, 2), seed=9)
    csr = g.undirected_csr()
    engine = DistanceEngine(csr)

    benchmark.pedantic(engine.rebuild, rounds=10, iterations=1, warmup_rounds=1)

    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        engine.rebuild()
    batched = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        ref = all_pairs_distances(csr)
    looped = (time.perf_counter() - t0) / reps
    ref[ref == -1] = engine.inf
    assert np.array_equal(engine.matrix, ref)
    assert not _STRICT_TIMING or batched < looped, (
        f"batched all-pairs BFS ({batched * 1e3:.1f} ms) should beat the "
        f"looped kernel ({looped * 1e3:.1f} ms)"
    )


@pytest.mark.paper_artifact("engine / dynamics convergence speedup")
def test_dynamics_with_delta_updates_beats_full_recompute():
    """Best-response dynamics on a 256-player instance: the shared
    engine (delta updates between moves) must beat recomputing the
    per-player all-pairs substrate from scratch at every visit, while
    producing the identical trajectory. The measured margin on this
    instance is ~1.4x, so a best-of-two interleaved pair is decisive."""
    n = 200
    game = BoundedBudgetGame(uniform_budgets(n, 4))
    g0 = game.random_realization(seed=13)

    def run(use_engine):
        t0 = time.perf_counter()
        result = best_response_dynamics(
            game, g0, "max", method="swap", seed=13, max_rounds=40,
            use_engine=use_engine,
        )
        return result, time.perf_counter() - t0

    fast, t_fast_1 = run(True)
    slow, t_slow_1 = run(False)
    _, t_fast_2 = run(True)
    _, t_slow_2 = run(False)
    engine_time = min(t_fast_1, t_fast_2)
    recompute_time = min(t_slow_1, t_slow_2)
    assert fast.converged and slow.converged
    assert fast.graph == slow.graph
    assert fast.social_costs == slow.social_costs
    assert [(m.player, m.new_strategy) for m in fast.moves] == [
        (m.player, m.new_strategy) for m in slow.moves
    ]
    stats = fast.engine_stats
    assert stats is not None and stats["deltas"] > 0, stats
    assert not _STRICT_TIMING or engine_time < recompute_time, (
        f"delta-update dynamics ({engine_time:.2f} s) should beat full "
        f"recompute ({recompute_time:.2f} s); stats={stats}"
    )
