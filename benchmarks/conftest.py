"""Benchmark-suite configuration.

Every benchmark regenerates one artefact of the paper (a Table 1 cell,
a figure, or an ablation) and *asserts the paper's claim* about it, so
``pytest benchmarks/ --benchmark-only`` is simultaneously a performance
run and a reproduction run.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): which table/figure a benchmark regenerates"
    )
