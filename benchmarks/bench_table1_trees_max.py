"""Table 1 / Trees / MAX = Θ(n): the spider construction (Theorem 3.2).

Regenerates the lower-bound cell: builds the spider at several leg
lengths, certifies MAX-equilibrium, and checks the linear diameter law.
"""

from __future__ import annotations

import pytest

from repro.analysis import fit_scaling
from repro.constructions import spider_equilibrium
from repro.core import certify_equilibrium
from repro.graphs import diameter


@pytest.mark.paper_artifact("Table 1 / Trees / MAX")
@pytest.mark.parametrize("k", [4, 8, 16])
def test_spider_build_and_certify(benchmark, k):
    def run():
        inst = spider_equilibrium(k)
        cert = certify_equilibrium(inst.graph, "max", method="exact")
        return inst, cert

    inst, cert = benchmark(run)
    assert cert.is_equilibrium
    assert diameter(inst.graph) == 2 * k  # Θ(n) with n = 3k + 1


@pytest.mark.paper_artifact("Table 1 / Trees / MAX")
def test_spider_linear_scaling_law(benchmark):
    def run():
        ns, ds = [], []
        for k in (2, 4, 8, 16, 32):
            inst = spider_equilibrium(k)
            ns.append(inst.n)
            ds.append(diameter(inst.graph))
        return fit_scaling(ns, ds, "linear")

    fit = benchmark(run)
    # d = 2k = 2(n - 1)/3: slope 2/3, perfect fit.
    assert abs(fit.slope - 2 / 3) < 1e-9
    assert fit.r_squared > 0.999
