"""Equilibrium query service: batched sweeps vs sequential point queries.

Three claims, each asserted (not just timed):

* **Coalesced distance queries beat sequential point queries.** At
  n = 256, answering a burst of pair queries through
  ``DistanceCache.batch_query`` (one multi-source sweep over the
  distinct endpoints) must outrun the same burst issued one
  ``query()`` at a time against an equally cold cache. Answers are
  bit-identical by assertion.
* **The served path is the library path.** A live ``QueryServer``
  answering a concurrent burst returns bit-identical distances and
  social cost, and its dispatcher stats prove the burst rode one
  batch (``max_batch >= 2``) with at least one batched sweep.
* **Pool-dir cold starts attach, never rebuild.** Publishing the
  distance matrix to a ``PoolStore`` and then registering the
  instance with ``pool_dir=`` must produce a full-mode engine with
  zero rebuilds, still bit-identical.

Timings land in ``BENCH_serve.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import DistanceCache, social_cost
from repro.core.pool_store import PoolStore, census_graph_digest
from repro.graphs import DistanceEngine, OwnedDigraph
from repro.serve import InstanceRegistry, QueryServer

#: Wall-clock comparisons are meaningful on a quiet machine; on shared
#: CI runners a noisy neighbour can invert margins with no code defect,
#: so the timing asserts are advisory there (correctness always runs).
_STRICT_TIMING = not os.environ.get("CI")

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

_N = 256


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_serve.json."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _sparse_graph(n: int, extra_edges: int, seed: int) -> OwnedDigraph:
    """Random recursive tree plus a few chords — the sparse census shape."""
    rng = np.random.default_rng(seed)
    g = OwnedDigraph(n)
    for v in range(1, n):
        g.add_arc(int(rng.integers(v)), v)
    added = 0
    while added < extra_edges:
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a == b or g.has_arc(a, b) or g.has_arc(b, a):
            continue
        g.add_arc(a, b)
        added += 1
    return g


def _burst_pairs(n: int, sources: int, count: int, seed: int) -> "list[tuple[int, int]]":
    """A burst with few distinct sources — the coalescing sweet spot."""
    rng = np.random.default_rng(seed)
    srcs = rng.choice(n, size=sources, replace=False)
    return [
        (int(srcs[i % sources]), int(rng.integers(n))) for i in range(count)
    ]


# ----------------------------------------------------------------------
# Batched multi-source sweep vs sequential point queries
# ----------------------------------------------------------------------
def test_batched_beats_sequential_point_queries():
    g = _sparse_graph(_N, extra_edges=2 * _N, seed=5)
    pairs = _burst_pairs(_N, sources=8, count=64, seed=9)

    # Untimed warmup pays one-time lazy imports outside timed sections.
    np.unique(np.arange(2))
    small = _sparse_graph(16, extra_edges=8, seed=1)
    DistanceCache(small, rows="lazy").batch_query([(0, 1), (2, 3)])
    DistanceCache(small, rows="lazy").query(0, 1)

    t0 = time.perf_counter()
    seq_cache = DistanceCache(g, rows="lazy")
    sequential = np.asarray([seq_cache.query(u, v) for u, v in pairs])
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = DistanceCache(g, rows="lazy").batch_query(pairs)
    batch_s = time.perf_counter() - t0

    assert np.array_equal(batched, sequential)  # bit-identity, always
    speedup = seq_s / max(batch_s, 1e-9)
    _record(
        "batched_vs_sequential_n256",
        {
            "n": _N,
            "queries": len(pairs),
            "distinct_sources": 8,
            "sequential_s": seq_s,
            "batched_s": batch_s,
            "sequential_qps": len(pairs) / max(seq_s, 1e-9),
            "batched_qps": len(pairs) / max(batch_s, 1e-9),
            "speedup": speedup,
        },
    )
    if _STRICT_TIMING:
        assert speedup >= 1.5, (
            f"batched sweep speedup {speedup:.2f}x < 1.5x "
            f"(sequential {seq_s * 1e3:.1f}ms vs batched {batch_s * 1e3:.1f}ms)"
        )


# ----------------------------------------------------------------------
# Live server: concurrent burst, one batch, bit-identical answers
# ----------------------------------------------------------------------
def test_served_burst_batches_and_matches_library():
    g = _sparse_graph(_N, extra_edges=2 * _N, seed=5)
    pairs = _burst_pairs(_N, sources=8, count=32, seed=17)

    async def run():
        registry = InstanceRegistry.from_graphs({"bench": g})
        server = QueryServer(registry, window=0.05, max_batch=128)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            reqs = [
                {"id": i, "op": "distance", "u": u, "v": v}
                for i, (u, v) in enumerate(pairs)
            ] + [{"id": "sc", "op": "social_cost"}]
            t0 = time.perf_counter()
            writer.write(b"".join(json.dumps(r).encode() + b"\n" for r in reqs))
            await writer.drain()
            got = {}
            for _ in reqs:
                resp = json.loads(await asyncio.wait_for(reader.readline(), 120))
                got[resp["id"]] = resp
            elapsed = time.perf_counter() - t0
            stats_resp = None
            writer.write(json.dumps({"id": "s", "op": "stats"}).encode() + b"\n")
            await writer.drain()
            stats_resp = json.loads(await asyncio.wait_for(reader.readline(), 120))
            return got, stats_resp["result"]["dispatcher"], elapsed
        finally:
            writer.close()
            await server.stop()

    got, stats, elapsed = asyncio.run(run())
    cache = DistanceCache(g, rows="lazy")
    for i, (u, v) in enumerate(pairs):
        assert got[i]["result"]["distance"] == cache.query(u, v)
    assert got["sc"]["result"]["social_cost"] == social_cost(g)
    # The burst must actually have coalesced: these assert on any machine.
    assert stats["max_batch"] >= 2
    assert stats["sweeps"] >= 1
    assert stats["batched_requests"] >= 2
    waits = [got[i]["meta"]["queue_wait_ms"] for i in range(len(pairs))]
    _record(
        "served_burst_n256",
        {
            "n": _N,
            "requests": len(pairs) + 1,
            "elapsed_s": elapsed,
            "served_qps": (len(pairs) + 1) / max(elapsed, 1e-9),
            "max_batch": stats["max_batch"],
            "sweeps": stats["sweeps"],
            "mean_queue_wait_ms": float(np.mean(waits)),
            "max_queue_wait_ms": float(np.max(waits)),
        },
    )


# ----------------------------------------------------------------------
# Pool-dir cold start: attach the published matrix, zero rebuilds
# ----------------------------------------------------------------------
def test_pool_dir_cold_start_attaches_without_rebuild(tmp_path):
    g = _sparse_graph(_N, extra_edges=2 * _N, seed=5)

    t0 = time.perf_counter()
    engine = DistanceEngine(g.undirected_csr())
    build_s = time.perf_counter() - t0
    store = PoolStore(str(tmp_path))
    store.publish(
        census_graph_digest(g),
        {"D": engine.matrix, "inf": np.asarray([engine.inf], dtype=np.int64)},
    )

    t0 = time.perf_counter()
    registry = InstanceRegistry.from_graphs({"bench": g}, pool_dir=str(tmp_path))
    attach_s = time.perf_counter() - t0
    inst = registry.get("bench")
    info = inst.info()
    assert inst.source == "disk"
    assert info["engine_mode"] == "full"
    assert info["rebuilds"] == 0  # attached, never rebuilt — always asserted

    rng = np.random.default_rng(23)
    ref = np.asarray(engine.matrix)
    for _ in range(64):
        u, v = int(rng.integers(_N)), int(rng.integers(_N))
        assert inst.cache.query(u, v) == int(ref[u, v])

    _record(
        "pool_cold_start_n256",
        {
            "n": _N,
            "full_build_s": build_s,
            "attach_s": attach_s,
            "attach_speedup": build_s / max(attach_s, 1e-9),
            "rebuilds": info["rebuilds"],
        },
    )
    if _STRICT_TIMING:
        assert attach_s < build_s, (
            f"pool attach ({attach_s * 1e3:.1f}ms) should beat a full "
            f"rebuild ({build_s * 1e3:.1f}ms)"
        )
