"""Incremental exact census vs rebuild-per-profile brute force.

Three claims, each asserted (not just timed):

* the Gray-order incremental kernel with symmetry pruning beats the
  brute-force census on the unit n=5 instance by >= 5x, with a
  bit-identical :class:`ExactPriceReport`;
* sharded execution (``workers > 1``) returns the same report;
* unit n=6 — 15625 profiles, far beyond what rebuild-per-profile
  affords in a smoke lane — completes in seconds under the cap, with
  its exact equilibrium counts pinned as regression anchors.

Timings land in ``BENCH_census.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core import BoundedBudgetGame, census_scan, exact_prices

#: Wall-clock comparisons are meaningful on a quiet machine; on shared
#: CI runners a noisy neighbour can invert margins with no code defect,
#: so the timing asserts are advisory there (correctness always runs).
_STRICT_TIMING = not os.environ.get("CI")

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_census.json"


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_census.json."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.paper_artifact("exact census / incremental kernel speedup")
@pytest.mark.parametrize("version", ["sum", "max"])
def test_incremental_census_beats_bruteforce_unit_n5(benchmark, version):
    """Unit n=5 (1024 profiles): the shipped census configuration
    (Gray walk + engine delta repair + symmetry orbit pruning) must be
    >= 5x faster than the rebuild-per-profile baseline and bit-identical."""
    game = BoundedBudgetGame([1] * 5)

    def incremental():
        return exact_prices(game, version, symmetry=True)

    fast_report = benchmark.pedantic(incremental, rounds=3, iterations=1, warmup_rounds=1)

    t0 = time.perf_counter()
    fast_report = incremental()
    incremental_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    plain_report = exact_prices(game, version)
    plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    brute_report = exact_prices(game, version, incremental=False)
    brute_s = time.perf_counter() - t0

    assert fast_report == brute_report
    assert plain_report == brute_report
    assert exact_prices(game, version, workers=2, symmetry=True) == brute_report

    speedup = brute_s / incremental_s
    _record(
        f"unit_n5_{version}",
        {
            "profiles": brute_report.num_profiles,
            "equilibria": brute_report.num_equilibria,
            "bruteforce_s": round(brute_s, 4),
            "incremental_s": round(plain_s, 4),
            "incremental_symmetry_s": round(incremental_s, 4),
            "speedup_vs_bruteforce": round(speedup, 1),
        },
    )
    assert not _STRICT_TIMING or speedup >= 5.0, (
        f"incremental census ({incremental_s * 1e3:.1f} ms) should be >= 5x "
        f"faster than brute force ({brute_s * 1e3:.1f} ms); got {speedup:.1f}x"
    )


@pytest.mark.paper_artifact("exact census / unit n=6 unlocked")
def test_unit_n6_census_under_cap(benchmark):
    """Unit n=6: 15625 profiles, infeasible for the smoke lane on the
    brute path (~2 ms/profile), seconds on the incremental kernel. The
    exact counts are pinned: they are deterministic whole-space facts."""
    game = BoundedBudgetGame([1] * 6)

    def run():
        return {
            v: census_scan(game, v, symmetry=True, max_profiles=20_000).report
            for v in ("sum", "max")
        }

    t0 = time.perf_counter()
    reports = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    assert reports["sum"].num_profiles == reports["max"].num_profiles == 5**6
    assert reports["sum"].num_equilibria == 120
    assert reports["sum"].poa == Fraction(1)
    assert reports["max"].num_equilibria == 480
    assert reports["max"].poa == Fraction(3, 2)
    _record(
        "unit_n6",
        {
            "profiles": 5**6,
            "equilibria": {"sum": 120, "max": 480},
            "incremental_symmetry_s": round(elapsed, 4),
            "bruteforce_s": None,  # not run: ~2 ms/profile puts it at ~30 s
        },
    )


@pytest.mark.paper_artifact("exact census / shard merge determinism")
def test_sharded_census_is_worker_count_invariant(benchmark):
    """The merged report must not depend on how the rank space splits."""
    game = BoundedBudgetGame([2, 1, 1, 0])

    def run(workers):
        return exact_prices(game, "max", workers=workers)

    reference = benchmark.pedantic(run, args=(1,), rounds=3, iterations=1)
    for workers in (2, 3, 5):
        assert run(workers) == reference
