"""Incremental exact census vs rebuild-per-profile brute force.

Five claims, each asserted (not just timed):

* the Gray-order incremental kernel with symmetry pruning beats the
  brute-force census on the unit n=5 instance by >= 5x, with a
  bit-identical :class:`ExactPriceReport`;
* sharded execution (``workers > 1``) returns the same report;
* unit n=6 — 15625 profiles, far beyond what rebuild-per-profile
  affords in a smoke lane — completes in seconds under the cap, with
  its exact equilibrium counts pinned as regression anchors;
* unit n=7 — 279936 profiles, group order 5040 — completes in
  single-digit seconds on the canonical-rep-only walk (probe keys +
  vectorised block advance), with its exact counts pinned (they were
  cross-validated once against the unpruned sharded walk, which takes
  ~10 minutes);
* a tree-like fold/dynamics workload repairs the unit engine with
  **zero full rebuilds and zero whole-row recomputes** — every
  deletion resolves in the pendant or affected-region tier.

Timings land in ``BENCH_census.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from fractions import Fraction
from pathlib import Path

import numpy as np
import pytest

from repro.core import BoundedBudgetGame, census_scan, exact_prices
from repro.graphs import DistanceEngine, OwnedDigraph

#: Wall-clock comparisons are meaningful on a quiet machine; on shared
#: CI runners a noisy neighbour can invert margins with no code defect,
#: so the timing asserts are advisory there (correctness always runs).
_STRICT_TIMING = not os.environ.get("CI")

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_census.json"


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_census.json."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.paper_artifact("exact census / incremental kernel speedup")
@pytest.mark.parametrize("version", ["sum", "max"])
def test_incremental_census_beats_bruteforce_unit_n5(benchmark, version):
    """Unit n=5 (1024 profiles): the shipped census configuration
    (Gray walk + engine delta repair + symmetry orbit pruning) must be
    >= 5x faster than the rebuild-per-profile baseline and bit-identical."""
    game = BoundedBudgetGame([1] * 5)

    def incremental():
        return exact_prices(game, version, symmetry=True)

    fast_report = benchmark.pedantic(incremental, rounds=3, iterations=1, warmup_rounds=1)

    t0 = time.perf_counter()
    fast_report = incremental()
    incremental_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    plain_report = exact_prices(game, version)
    plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    brute_report = exact_prices(game, version, incremental=False)
    brute_s = time.perf_counter() - t0

    assert fast_report == brute_report
    assert plain_report == brute_report
    assert exact_prices(game, version, workers=2, symmetry=True) == brute_report

    speedup = brute_s / incremental_s
    _record(
        f"unit_n5_{version}",
        {
            "profiles": brute_report.num_profiles,
            "equilibria": brute_report.num_equilibria,
            "bruteforce_s": round(brute_s, 4),
            "incremental_s": round(plain_s, 4),
            "incremental_symmetry_s": round(incremental_s, 4),
            "speedup_vs_bruteforce": round(speedup, 1),
        },
    )
    assert not _STRICT_TIMING or speedup >= 5.0, (
        f"incremental census ({incremental_s * 1e3:.1f} ms) should be >= 5x "
        f"faster than brute force ({brute_s * 1e3:.1f} ms); got {speedup:.1f}x"
    )


@pytest.mark.paper_artifact("exact census / unit n=6 unlocked")
def test_unit_n6_census_under_cap(benchmark):
    """Unit n=6: 15625 profiles, infeasible for the smoke lane on the
    brute path (~2 ms/profile), seconds on the incremental kernel. The
    exact counts are pinned: they are deterministic whole-space facts."""
    game = BoundedBudgetGame([1] * 6)

    def run():
        return {
            v: census_scan(game, v, symmetry=True, max_profiles=20_000).report
            for v in ("sum", "max")
        }

    t0 = time.perf_counter()
    reports = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    assert reports["sum"].num_profiles == reports["max"].num_profiles == 5**6
    assert reports["sum"].num_equilibria == 120
    assert reports["sum"].poa == Fraction(1)
    assert reports["max"].num_equilibria == 480
    assert reports["max"].poa == Fraction(3, 2)
    # Knob bridge beyond the brute-force budget: the unpruned walk
    # (every profile evaluated) must agree with the pruned kernel bit
    # for bit. ~15 s/version, which is why it lives in this lane and
    # not in tier-1.
    for v in ("sum", "max"):
        unpruned = census_scan(game, v, symmetry=False, max_profiles=20_000).report
        assert unpruned == reports[v]
    _record(
        "unit_n6",
        {
            "profiles": 5**6,
            "equilibria": {"sum": 120, "max": 480},
            "incremental_symmetry_s": round(elapsed, 4),
            "bruteforce_s": None,  # not run: ~2 ms/profile puts it at ~30 s
        },
    )


@pytest.mark.paper_artifact("exact census / unit n=7 unlocked")
def test_unit_n7_census_single_digit_seconds(benchmark):
    """Unit n=7: 279936 profiles under the S7 budget symmetry group
    (order 5040) — infeasible per-profile (the unpruned sharded walk
    measures ~10 minutes), single-digit seconds on the canonical-rep-
    only walk. Counts pinned; they match the unpruned walk exactly."""
    game = BoundedBudgetGame([1] * 7)

    def run():
        return {
            v: census_scan(game, v, symmetry=True, max_profiles=300_000).report
            for v in ("sum", "max")
        }

    t0 = time.perf_counter()
    reports = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    assert reports["sum"].num_profiles == reports["max"].num_profiles == 6**7
    assert reports["sum"].num_equilibria == 210
    assert reports["sum"].poa == Fraction(1)
    assert reports["max"].num_equilibria == 10212
    assert reports["max"].poa == Fraction(3, 2)
    assert reports["sum"].pos == reports["max"].pos == Fraction(1)
    _record(
        "unit_n7",
        {
            "profiles": 6**7,
            "group_order": 5040,
            "equilibria": {"sum": 210, "max": 10212},
            "incremental_symmetry_s": round(elapsed, 4),
            "bruteforce_s": None,  # cross-validated once: ~625 s unpruned
        },
    )
    assert not _STRICT_TIMING or elapsed < 10.0, (
        f"unit n=7 sum+max census took {elapsed:.1f} s; the canonical-rep "
        f"walk should land it in single-digit seconds"
    )


@pytest.mark.paper_artifact("distance engine / tree-like fold repairs")
def test_treelike_fold_dynamics_zero_rebuilds(benchmark):
    """Tree-like fold/dynamics workload: every warm deletion repair in
    the unit engine must resolve below row granularity — 0 full
    rebuilds, 0 whole-row recomputes; only pendant column fixes and
    affected-region relaxations — and stay bit-identical to a fresh
    build. This is the ROADMAP 'deletions dirty whole rows on sparse
    instances' item, closed."""
    n = 128
    rng = np.random.default_rng(42)

    def build_tree():
        g = OwnedDigraph(n)
        for v in range(1, n):
            g.add_arc(int(rng.integers(v)), v)
        return g

    def run():
        graph = build_tree()
        engine = DistanceEngine(graph.undirected_csr(), dirty_fraction="adaptive")
        for key in engine.stats:
            engine.stats[key] = 0
        csr = graph.undirected_csr()
        edges = [
            (u, int(v)) for u in range(n) for v in csr.neighbors(u) if u < int(v)
        ]
        order = rng.permutation(len(edges))
        for idx in order[:64]:
            x, y = edges[int(idx)]
            status = engine.remove_edge(x, y)
            assert status == "delta"
        return engine

    t0 = time.perf_counter()
    engine = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    stats = engine.stats
    assert stats["rebuilds"] == 0, stats
    assert stats["rows_recomputed"] == 0, stats
    assert stats["pendant_fixes"] > 0, stats
    assert stats["region_repairs"] > 0, stats
    fresh = DistanceEngine(engine.csr)
    assert np.array_equal(np.asarray(engine.matrix), np.asarray(fresh.matrix))
    _record(
        "treelike_fold",
        {
            "n": n,
            "deletions": 64,
            "elapsed_s": round(elapsed, 4),
            "rebuilds": stats["rebuilds"],
            "rows_recomputed": stats["rows_recomputed"],
            "pendant_fixes": stats["pendant_fixes"],
            "region_repairs": stats["region_repairs"],
            "region_vertices": stats["region_vertices"],
        },
    )


@pytest.mark.paper_artifact("exact census / shard merge determinism")
def test_sharded_census_is_worker_count_invariant(benchmark):
    """The merged report must not depend on how the rank space splits."""
    game = BoundedBudgetGame([2, 1, 1, 0])

    def run(workers):
        return exact_prices(game, "max", workers=workers)

    reference = benchmark.pedantic(run, args=(1,), rounds=3, iterations=1)
    for workers in (2, 3, 5):
        assert run(workers) == reference
