"""Incremental exact census vs rebuild-per-profile brute force.

Seven claims, each asserted (not just timed):

* the Gray-order incremental kernel with symmetry pruning beats the
  brute-force census on the unit n=5 instance by >= 5x, with a
  bit-identical :class:`ExactPriceReport`;
* sharded execution (``workers > 1``) returns the same report;
* unit n=6 — 15625 profiles, far beyond what rebuild-per-profile
  affords in a smoke lane — completes in seconds under the cap, with
  its exact equilibrium counts pinned as regression anchors;
* unit n=7 — 279936 profiles, group order 5040 — completes in
  single-digit seconds on the canonical-rep-only walk (probe keys +
  vectorised block advance), with its exact counts pinned (they were
  cross-validated once against the unpruned sharded walk, which takes
  ~10 minutes);
* unit n=8 — 5764801 profiles, group order 40320 — completes in well
  under two minutes on the stabilizer-chain canonical walk (128-bit
  orbit keys), and a Gray-rank window of the pruned run's collected
  equilibria matches an unpruned shard walked over the same window
  exactly (the cross-validation is a subrange because the full
  unpruned space measures ~70 minutes);
* the Monte Carlo sampled census covers the known exact equilibrium
  counts at n=6 and n=7 within its stated confidence intervals, in a
  small fraction of the exhaustive walk's time;
* a tree-like fold/dynamics workload repairs the unit engine with
  **zero full rebuilds and zero whole-row recomputes** — every
  deletion resolves in the pendant or affected-region tier.

Timings land in ``BENCH_census.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from fractions import Fraction
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    BoundedBudgetGame,
    census_scan,
    exact_prices,
    sampled_census_scan,
)
from repro.core.enumeration import _census_shard, _gray_rank, _profile_tables
from repro.graphs import DistanceEngine, OwnedDigraph

#: Wall-clock comparisons are meaningful on a quiet machine; on shared
#: CI runners a noisy neighbour can invert margins with no code defect,
#: so the timing asserts are advisory there (correctness always runs).
_STRICT_TIMING = not os.environ.get("CI")

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_census.json"


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_census.json."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.paper_artifact("exact census / incremental kernel speedup")
@pytest.mark.parametrize("version", ["sum", "max"])
def test_incremental_census_beats_bruteforce_unit_n5(benchmark, version):
    """Unit n=5 (1024 profiles): the shipped census configuration
    (Gray walk + engine delta repair + symmetry orbit pruning) must be
    >= 5x faster than the rebuild-per-profile baseline and bit-identical."""
    game = BoundedBudgetGame([1] * 5)

    def incremental():
        return exact_prices(game, version, symmetry=True)

    fast_report = benchmark.pedantic(incremental, rounds=3, iterations=1, warmup_rounds=1)

    t0 = time.perf_counter()
    fast_report = incremental()
    incremental_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    plain_report = exact_prices(game, version)
    plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    brute_report = exact_prices(game, version, incremental=False)
    brute_s = time.perf_counter() - t0

    assert fast_report == brute_report
    assert plain_report == brute_report
    assert exact_prices(game, version, workers=2, symmetry=True) == brute_report

    speedup = brute_s / incremental_s
    _record(
        f"unit_n5_{version}",
        {
            "profiles": brute_report.num_profiles,
            "equilibria": brute_report.num_equilibria,
            "bruteforce_s": round(brute_s, 4),
            "incremental_s": round(plain_s, 4),
            "incremental_symmetry_s": round(incremental_s, 4),
            "speedup_vs_bruteforce": round(speedup, 1),
        },
    )
    assert not _STRICT_TIMING or speedup >= 5.0, (
        f"incremental census ({incremental_s * 1e3:.1f} ms) should be >= 5x "
        f"faster than brute force ({brute_s * 1e3:.1f} ms); got {speedup:.1f}x"
    )


@pytest.mark.paper_artifact("exact census / unit n=6 unlocked")
def test_unit_n6_census_under_cap(benchmark):
    """Unit n=6: 15625 profiles, infeasible for the smoke lane on the
    brute path (~2 ms/profile), seconds on the incremental kernel. The
    exact counts are pinned: they are deterministic whole-space facts."""
    game = BoundedBudgetGame([1] * 6)

    def run():
        return {
            v: census_scan(game, v, symmetry=True, max_profiles=20_000).report
            for v in ("sum", "max")
        }

    t0 = time.perf_counter()
    reports = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    assert reports["sum"].num_profiles == reports["max"].num_profiles == 5**6
    assert reports["sum"].num_equilibria == 120
    assert reports["sum"].poa == Fraction(1)
    assert reports["max"].num_equilibria == 480
    assert reports["max"].poa == Fraction(3, 2)
    # Knob bridge beyond the brute-force budget: the unpruned walk
    # (every profile evaluated) must agree with the pruned kernel bit
    # for bit. ~15 s/version, which is why it lives in this lane and
    # not in tier-1.
    for v in ("sum", "max"):
        unpruned = census_scan(game, v, symmetry=False, max_profiles=20_000).report
        assert unpruned == reports[v]
    _record(
        "unit_n6",
        {
            "profiles": 5**6,
            "equilibria": {"sum": 120, "max": 480},
            "incremental_symmetry_s": round(elapsed, 4),
            "bruteforce_s": None,  # not run: ~2 ms/profile puts it at ~30 s
        },
    )


@pytest.mark.paper_artifact("exact census / unit n=7 unlocked")
def test_unit_n7_census_single_digit_seconds(benchmark):
    """Unit n=7: 279936 profiles under the S7 budget symmetry group
    (order 5040) — infeasible per-profile (the unpruned sharded walk
    measures ~10 minutes), single-digit seconds on the canonical-rep-
    only walk. Counts pinned; they match the unpruned walk exactly."""
    game = BoundedBudgetGame([1] * 7)

    def run():
        return {
            v: census_scan(game, v, symmetry=True, max_profiles=300_000).report
            for v in ("sum", "max")
        }

    t0 = time.perf_counter()
    reports = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    assert reports["sum"].num_profiles == reports["max"].num_profiles == 6**7
    assert reports["sum"].num_equilibria == 210
    assert reports["sum"].poa == Fraction(1)
    assert reports["max"].num_equilibria == 10212
    assert reports["max"].poa == Fraction(3, 2)
    assert reports["sum"].pos == reports["max"].pos == Fraction(1)
    _record(
        "unit_n7",
        {
            "profiles": 6**7,
            "group_order": 5040,
            "equilibria": {"sum": 210, "max": 10212},
            "incremental_symmetry_s": round(elapsed, 4),
            "bruteforce_s": None,  # cross-validated once: ~625 s unpruned
        },
    )
    assert not _STRICT_TIMING or elapsed < 10.0, (
        f"unit n=7 sum+max census took {elapsed:.1f} s; the canonical-rep "
        f"walk should land it in single-digit seconds"
    )


#: The n=8 census (~20 s for sum+max on one core) runs by default on a
#: developer machine but is opt-in under CI: the ``census-n8`` lane
#: (workflow_dispatch / nightly) sets ``RUN_N8=1``; the push/PR smoke
#: lanes skip it to stay fast.
_RUN_N8 = os.environ.get("RUN_N8") == "1" or not os.environ.get("CI")


@pytest.mark.skipif(
    not _RUN_N8, reason="n=8 census is opt-in under CI (set RUN_N8=1)"
)
@pytest.mark.paper_artifact("exact census / unit n=8 unlocked")
def test_unit_n8_census_cross_validated(benchmark):
    """Unit n=8: 5764801 profiles under the S8 budget symmetry group
    (order 40320). The stabilizer-chain canonical walk with two-word
    128-bit orbit keys lands sum+max well under the 'minutes' bar; the
    counts are pinned and cross-validated in-test: every collected
    equilibrium of the pruned run that unranks into a 20000-rank Gray
    window must be found — and nothing else — by an unpruned shard
    walked over exactly that window (the full unpruned space measures
    ~70 minutes, hence the subrange)."""
    game = BoundedBudgetGame([1] * 8)
    budgets = tuple(int(b) for b in game.budgets)

    def run():
        return {
            v: census_scan(
                game,
                v,
                symmetry=True,
                max_profiles=6_000_000,
                collect_equilibria=(v == "max"),
            )
            for v in ("sum", "max")
        }

    t0 = time.perf_counter()
    results = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    reports = {v: r.report for v, r in results.items()}
    assert reports["sum"].num_profiles == reports["max"].num_profiles == 7**8
    assert reports["sum"].num_equilibria == 336
    assert reports["sum"].poa == Fraction(1)
    assert reports["max"].num_equilibria == 65632
    assert reports["max"].opt_diameter == 2
    assert reports["max"].worst_equilibrium_diameter == 3
    assert reports["max"].poa == Fraction(3, 2)

    # Cross-validation: unrank every collected max-equilibrium into its
    # Gray rank, centre a window on the median so it is guaranteed
    # non-empty, and replay that window with symmetry pruning OFF.
    combos, _, rests = _profile_tables(game)
    index = [{c: i for i, c in enumerate(cu)} for cu in combos]
    eq_ranks = sorted(
        _gray_rank([index[u][p[u]] for u in range(8)], rests)
        for p in results["max"].equilibria
    )
    assert len(eq_ranks) == 65632
    window = 20_000
    mid = eq_ranks[len(eq_ranks) // 2]
    lo = max(0, min(mid - window // 2, 7**8 - window))
    hi = lo + window
    in_window = sum(1 for r in eq_ranks if lo <= r < hi)
    assert in_window > 0
    t0 = time.perf_counter()
    part = _census_shard(
        (budgets, "max", lo, hi, False, False, 6_000_000, None, None)
    )
    unpruned_s = time.perf_counter() - t0
    assert part["count"] == window
    assert part["eq_count"] == in_window
    assert part["opt"] >= reports["max"].opt_diameter

    _record(
        "unit_n8",
        {
            "profiles": 7**8,
            "group_order": 40320,
            "equilibria": {"sum": 336, "max": 65632},
            "incremental_symmetry_s": round(elapsed, 4),
            "bruteforce_s": None,  # unpruned full space measures ~70 min
            "crossval_window": [lo, hi],
            "crossval_window_eq": int(part["eq_count"]),
            "crossval_unpruned_s": round(unpruned_s, 4),
        },
    )
    assert not _STRICT_TIMING or elapsed < 120.0, (
        f"unit n=8 sum+max census took {elapsed:.1f} s; the stabilizer-"
        f"chain walk should land it well under two minutes"
    )


@pytest.mark.paper_artifact("sampled census / CI coverage at arbitrated sizes")
def test_sampled_census_covers_exact_counts(benchmark):
    """Monte Carlo sampled census at the sizes where the exhaustive
    census can arbitrate: the Wilson interval on the equilibrium count
    must cover the known exact values (n=6: 120 sum / 480 max; n=7:
    210 sum / 10212 max) while evaluating only a few hundred of the
    15625 / 279936 profiles. Estimates are seed-deterministic, so the
    coverage asserts are stable regressions, not flaky statistics."""
    cases = [
        # (n, version, samples, exact equilibria)
        (6, "sum", 400, 120),
        (6, "max", 400, 480),
        (7, "sum", 500, 210),
        (7, "max", 500, 10212),
    ]

    def run():
        out = {}
        for n, version, samples, _ in cases:
            game = BoundedBudgetGame([1] * n)
            out[(n, version)] = sampled_census_scan(
                game, version, samples=samples, seed=11, method="stratified"
            )
        return out

    t0 = time.perf_counter()
    reports = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    payload = {"elapsed_s": round(elapsed, 4), "seed": 11, "cases": {}}
    for n, version, samples, exact in cases:
        rep = reports[(n, version)]
        lo, hi = rep.eq_count_ci
        assert rep.samples_evaluated == samples
        assert lo <= exact <= hi, (
            f"unit n={n} {version}: sampled CI [{lo:.0f}, {hi:.0f}] "
            f"misses the exact count {exact}"
        )
        payload["cases"][f"unit_n{n}_{version}"] = {
            "samples": samples,
            "total_profiles": rep.total_profiles,
            "exact_equilibria": exact,
            "eq_count_estimate": round(rep.eq_count_estimate, 1),
            "eq_count_ci": [round(lo, 1), round(hi, 1)],
            "poa_estimate": (
                str(rep.poa_estimate) if rep.poa_estimate is not None else None
            ),
        }
    _record("sampled_census", payload)
    # 1800 evaluated profiles across four instances: the sampled scan
    # must stay far below the exhaustive walks it stands in for.
    assert not _STRICT_TIMING or elapsed < 30.0, (
        f"sampled census sweep took {elapsed:.1f} s for 1800 samples"
    )


@pytest.mark.paper_artifact("distance engine / tree-like fold repairs")
def test_treelike_fold_dynamics_zero_rebuilds(benchmark):
    """Tree-like fold/dynamics workload: every warm deletion repair in
    the unit engine must resolve below row granularity — 0 full
    rebuilds, 0 whole-row recomputes; only pendant column fixes and
    affected-region relaxations — and stay bit-identical to a fresh
    build. This is the ROADMAP 'deletions dirty whole rows on sparse
    instances' item, closed."""
    n = 128
    rng = np.random.default_rng(42)

    def build_tree():
        g = OwnedDigraph(n)
        for v in range(1, n):
            g.add_arc(int(rng.integers(v)), v)
        return g

    def run():
        graph = build_tree()
        engine = DistanceEngine(graph.undirected_csr(), dirty_fraction="adaptive")
        for key in engine.stats:
            engine.stats[key] = 0
        csr = graph.undirected_csr()
        edges = [
            (u, int(v)) for u in range(n) for v in csr.neighbors(u) if u < int(v)
        ]
        order = rng.permutation(len(edges))
        for idx in order[:64]:
            x, y = edges[int(idx)]
            status = engine.remove_edge(x, y)
            assert status == "delta"
        return engine

    t0 = time.perf_counter()
    engine = run()
    elapsed = time.perf_counter() - t0
    benchmark.pedantic(run, rounds=1, iterations=1)

    stats = engine.stats
    assert stats["rebuilds"] == 0, stats
    assert stats["rows_recomputed"] == 0, stats
    assert stats["pendant_fixes"] > 0, stats
    assert stats["region_repairs"] > 0, stats
    fresh = DistanceEngine(engine.csr)
    assert np.array_equal(np.asarray(engine.matrix), np.asarray(fresh.matrix))
    _record(
        "treelike_fold",
        {
            "n": n,
            "deletions": 64,
            "elapsed_s": round(elapsed, 4),
            "rebuilds": stats["rebuilds"],
            "rows_recomputed": stats["rows_recomputed"],
            "pendant_fixes": stats["pendant_fixes"],
            "region_repairs": stats["region_repairs"],
            "region_vertices": stats["region_vertices"],
        },
    )


@pytest.mark.paper_artifact("exact census / shard merge determinism")
def test_sharded_census_is_worker_count_invariant(benchmark):
    """The merged report must not depend on how the rank space splits."""
    game = BoundedBudgetGame([2, 1, 1, 0])

    def run(workers):
        return exact_prices(game, "max", workers=workers)

    reference = benchmark.pedantic(run, args=(1,), rounds=3, iterations=1)
    for workers in (2, 3, 5):
        assert run(workers) == reference
