"""Theorem 2.3: existence construction across all three cases.

Benchmarks the constructive-equilibrium pipeline (build + exact
certification) per case, confirming the O(1) price of stability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constructions import classify_case, construct_equilibrium
from repro.core import certify_equilibrium
from repro.graphs import cinf, diameter


CASES = {
    1: [1, 1, 2, 2, 3, 3, 4, 4],             # sigma >= n-1, b_max >= z
    2: [0] * 10 + [3, 4, 4, 4],               # sigma >= n-1, b_max < z
    3: [0, 0, 0, 0, 0, 0, 2, 2],              # sigma < n-1
}


@pytest.mark.paper_artifact("Theorem 2.3 / PoS = O(1)")
@pytest.mark.parametrize("case", [1, 2, 3])
def test_construct_and_certify_case(benchmark, case):
    budgets = CASES[case]

    def run():
        ec = construct_equilibrium(budgets)
        certs = [
            certify_equilibrium(ec.graph, v, method="exact") for v in ("sum", "max")
        ]
        return ec, certs

    ec, certs = benchmark(run)
    assert ec.case == case == classify_case(budgets)
    assert all(c.is_equilibrium for c in certs)
    n = len(budgets)
    if sum(budgets) >= n - 1:
        assert diameter(ec.graph) <= 4  # PoS = O(1)
    else:
        assert diameter(ec.graph) == cinf(n)  # PoS = 1 (everything diam Cinf)


@pytest.mark.paper_artifact("Theorem 2.3 / construction throughput")
def test_construction_throughput_larger_n(benchmark):
    rng = np.random.default_rng(5)
    budget_vectors = [rng.integers(0, 50, size=50) for _ in range(10)]

    def run():
        return [construct_equilibrium(b).graph for b in budget_vectors]

    graphs = benchmark(run)
    assert all(diameter(g) <= 4 or diameter(g) == cinf(g.n) for g in graphs)
