"""Table 1 / All-positive / MAX = Ω(√log n) (Lemma 5.2 + Theorem 5.3).

Regenerates the Braess-style lower bound: oriented overlap graphs with
every budget positive, diameter k ≈ √log n, certified equilibria.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constructions import overlap_graph_equilibrium
from repro.core import certify_equilibrium
from repro.graphs import diameter


@pytest.mark.paper_artifact("Table 1 / All-positive / MAX")
def test_overlap_small_exact(benchmark):
    def run():
        inst = overlap_graph_equilibrium(4, 2)
        cert = certify_equilibrium(inst.graph, "max", method="exact", max_candidates=None)
        return inst, cert

    inst, cert = benchmark(run)
    assert cert.is_equilibrium
    assert diameter(inst.graph) == 2
    assert (inst.budgets > 0).all()
    # t = 2^k: diameter = sqrt(log2 n) exactly.
    assert np.isclose(np.sqrt(np.log2(inst.n)), 2)


@pytest.mark.paper_artifact("Table 1 / All-positive / MAX")
@pytest.mark.parametrize("t,k", [(5, 2), (6, 3)])
def test_overlap_swap_certification(benchmark, t, k):
    def run():
        inst = overlap_graph_equilibrium(t, k)
        cert = certify_equilibrium(inst.graph, "max", method="swap")
        return inst, cert

    inst, cert = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cert.is_equilibrium
    assert diameter(inst.graph) == k
