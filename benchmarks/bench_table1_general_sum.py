"""Table 1 / General / SUM = 2^O(√log n) (Theorem 6.9).

Regenerates the upper-bound cell: random-budget instances stabilised in
the SUM version stay within the sub-polynomial envelope.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BoundedBudgetGame
from repro.experiments import stabilize
from repro.graphs import diameter, random_budgets_with_sum


@pytest.mark.paper_artifact("Table 1 / General / SUM")
@pytest.mark.parametrize("n", [20, 40])
def test_general_sum_envelope(benchmark, n):
    def run():
        worst = 0
        for seed in range(3):
            budgets = random_budgets_with_sum(n, int(1.3 * n), seed=seed)
            game = BoundedBudgetGame(budgets)
            start = game.random_realization(seed=seed, connected=True)
            out = stabilize(game, start, "sum", seed=seed)
            assert out.converged
            worst = max(worst, diameter(out.graph))
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    # Generous concrete envelope for laptop sizes (the asymptotic claim
    # only fixes the exponent's order).
    assert worst <= 4 * 2 ** np.sqrt(np.log2(n))
