"""Fault-tolerant census: kill-and-resume overhead vs uninterrupted.

Three claims, each asserted (not just timed):

* the checkpointed work-stealing runtime reproduces the plain census
  **bit-identically** on unit n=6 (15625 profiles) — uninterrupted,
  under injected worker kills recovered in-run, and across a
  quarantine + resume cycle;
* a weighted census (unit n=5, pairwise-distinct weights, 1024
  profiles) killed and resumed at injected fault points is
  bit-identical to its uninterrupted run;
* the journaling overhead of an uninterrupted checkpointed run and the
  total cost of a kill-and-resume cycle are bounded multiples of the
  plain scan (advisory on CI, where noisy neighbours own the clock).

Timings land in ``BENCH_resume.json`` at the repo root so the
fault-tolerance overhead is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import BoundedBudgetGame, census_scan, weighted_census_scan
from repro.core.enumeration import profile_space_size
from repro.parallel import Fault, FaultPlan, contiguous_shards

#: Wall-clock comparisons are meaningful on a quiet machine; on shared
#: CI runners a noisy neighbour can invert margins with no code defect,
#: so the timing asserts are advisory there (correctness always runs).
_STRICT_TIMING = not os.environ.get("CI")

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_resume.json"

_RUNTIME_OPTS = {"backoff_base": 0.01, "timeout": 600.0}


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_resume.json."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _kill_plan(shards, *, attempts=(0,)):
    """One mid-range kill per shard, for each of the given attempts."""
    return FaultPlan(
        faults=tuple(
            Fault(kind="kill", shard_id=i, rank=(lo + hi) // 2, attempt=a)
            for i, (lo, hi) in enumerate(shards)
            for a in attempts
        )
    )


@pytest.mark.paper_artifact("fault tolerance / unit n=6 kill-and-resume")
def test_unit_n6_kill_and_resume_bit_identical(benchmark, tmp_path):
    """Unit n=6, 15625 profiles: the checkpointed runtime must match
    the plain census bit for bit — uninterrupted, with every shard's
    worker killed once mid-range, and across quarantine + resume."""
    game = BoundedBudgetGame([1] * 6)
    total = profile_space_size(game)
    shards = contiguous_shards(total, 4)

    t0 = time.perf_counter()
    ref = census_scan(game, "max", symmetry=True)
    plain_s = time.perf_counter() - t0

    def checkpointed(subdir, **kwargs):
        return census_scan(
            game,
            "max",
            symmetry=True,
            workers=2,
            checkpoint_dir=tmp_path / subdir,
            shard_count=4,
            runtime_opts=dict(_RUNTIME_OPTS, **kwargs.pop("runtime_opts", {})),
            **kwargs,
        )

    t0 = time.perf_counter()
    clean = checkpointed("clean")
    clean_s = time.perf_counter() - t0
    assert clean.report == ref.report and clean.incomplete is None

    benchmark.pedantic(
        lambda: checkpointed("bench"), rounds=1, iterations=1
    )

    # Every shard's worker killed once mid-range: recovered in-run from
    # the journals, still bit-identical.
    t0 = time.perf_counter()
    faulted = checkpointed("faulted", fault_plan=_kill_plan(shards))
    faulted_s = time.perf_counter() - t0
    assert faulted.report == ref.report and faulted.incomplete is None

    # Kill one shard past its retry budget: the run degrades to an
    # explicit incompleteness manifest; resuming heals it exactly.
    poison = _kill_plan(shards[:1], attempts=range(4))
    t0 = time.perf_counter()
    partial = checkpointed(
        "poisoned", fault_plan=poison, runtime_opts={"max_retries": 1}
    )
    interrupted_s = time.perf_counter() - t0
    assert partial.incomplete is not None
    assert partial.incomplete.covered < total

    t0 = time.perf_counter()
    healed = checkpointed("poisoned", resume=True)
    resume_s = time.perf_counter() - t0
    assert healed.report == ref.report and healed.incomplete is None

    overhead = clean_s / plain_s
    _record(
        "unit_n6_max",
        {
            "profiles": total,
            "equilibria": ref.report.num_equilibria,
            "plain_s": round(plain_s, 4),
            "checkpointed_s": round(clean_s, 4),
            "killed_recovered_s": round(faulted_s, 4),
            "interrupted_s": round(interrupted_s, 4),
            "resume_s": round(resume_s, 4),
            "kill_resume_total_s": round(interrupted_s + resume_s, 4),
            "checkpoint_overhead_x": round(overhead, 2),
            "bit_identical": True,
        },
    )
    # The runtime forks workers and journals checkpoints; 25x over a
    # 0.2 s in-process scan is a generous ceiling that still catches a
    # runaway regression (e.g. re-walking resumed prefixes).
    assert not _STRICT_TIMING or overhead < 25.0, (
        f"checkpointed census took {clean_s:.2f}s vs plain {plain_s:.2f}s "
        f"({overhead:.1f}x); journaling overhead has regressed"
    )


@pytest.mark.paper_artifact("fault tolerance / weighted census kill-and-resume")
def test_weighted_kill_and_resume_bit_identical(benchmark, tmp_path):
    """Weighted unit n=5 (pairwise-distinct weights, 1024 profiles):
    killed at injected fault points and resumed, bit-identical."""
    game = BoundedBudgetGame([1] * 5)
    weights = (1, 2, 3, 4, 5)
    total = profile_space_size(game)
    shards = contiguous_shards(total, 4)

    t0 = time.perf_counter()
    ref, _ = weighted_census_scan(game, weights)
    plain_s = time.perf_counter() - t0

    def checkpointed(subdir, **kwargs):
        wc, _ = weighted_census_scan(
            game,
            weights,
            workers=2,
            checkpoint_dir=tmp_path / subdir,
            shard_count=4,
            runtime_opts=dict(_RUNTIME_OPTS, **kwargs.pop("runtime_opts", {})),
            **kwargs,
        )
        return wc

    benchmark.pedantic(
        lambda: checkpointed("bench"), rounds=1, iterations=1
    )

    t0 = time.perf_counter()
    faulted = checkpointed(
        "faulted",
        fault_plan=FaultPlan.random(
            seed=23, shards=shards, kinds=("kill", "drop_checkpoint")
        ),
        runtime_opts={"checkpoint_interval": 64},
    )
    faulted_s = time.perf_counter() - t0
    assert faulted == ref

    poison = _kill_plan(shards[2:3], attempts=range(4))
    t0 = time.perf_counter()
    weighted_census_scan(
        game,
        weights,
        workers=2,
        checkpoint_dir=tmp_path / "poisoned",
        shard_count=4,
        fault_plan=poison,
        runtime_opts=dict(_RUNTIME_OPTS, max_retries=1),
    )
    interrupted_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    healed = checkpointed("poisoned", resume=True)
    resume_s = time.perf_counter() - t0
    assert healed == ref

    _record(
        "weighted_unit_n5_ramp",
        {
            "profiles": total,
            "weak_equilibria": ref.num_weak_equilibria,
            "plain_s": round(plain_s, 4),
            "killed_recovered_s": round(faulted_s, 4),
            "interrupted_s": round(interrupted_s, 4),
            "resume_s": round(resume_s, 4),
            "kill_resume_total_s": round(interrupted_s + resume_s, 4),
            "bit_identical": True,
        },
    )
