"""Section 8 open problem: convergence speed of best-response dynamics.

Measures rounds-to-convergence across schedules and versions on
unit-budget games (where exact dynamics is cheap), plus the social-cost
trajectory.
"""

from __future__ import annotations

import pytest

from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.graphs import diameter, unit_budgets


@pytest.mark.paper_artifact("Section 8 / convergence")
@pytest.mark.parametrize("version", ["sum", "max"])
@pytest.mark.parametrize("schedule", ["round_robin", "random"])
def test_dynamics_convergence(benchmark, version, schedule):
    game = BoundedBudgetGame(unit_budgets(30))

    def run():
        res = best_response_dynamics(
            game,
            game.random_realization(seed=17),
            version,
            schedule=schedule,
            max_rounds=200,
            seed=17,
        )
        assert res.converged
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    # Social cost is (weakly) improving by the end of the run.
    assert res.social_costs[-1] <= res.social_costs[0]
    assert diameter(res.graph) < 8


@pytest.mark.paper_artifact("Section 8 / convergence at scale")
def test_dynamics_scale(benchmark):
    game = BoundedBudgetGame(unit_budgets(100))

    def run():
        res = best_response_dynamics(
            game, game.random_realization(seed=23), "sum", max_rounds=200, seed=23
        )
        assert res.converged
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert diameter(res.graph) < 5
