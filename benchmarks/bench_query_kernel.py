"""Bidirectional query kernel: cold point verdicts vs full-matrix builds.

Three claims, each asserted (not just timed):

* **Cold swap-check verdicts skip the all-pairs build.** At n = 512 a
  single-deviation verdict answered through a ``rows="lazy"`` cache
  (bounded bidirectional queries plus a handful of on-demand rows) must
  be at least 10x faster than the full-matrix path that first builds
  every row of ``U(G - u)``. Verdicts are bit-identical.
* **Point queries are bit-identical to the matrix** — including the
  ``Cinf`` sentinel on disconnected pairs — for both the unit-BFS fast
  path and the Dial-bucket weighted path.
* **The meet-in-the-middle rule settles a small fraction of sparse
  graphs**: on random sparse instances at n = 512 the mean fraction of
  vertices labelled per query stays below one half, the regime where a
  bidirectional stop beats one-sided sweeps.

Timings land in ``BENCH_query.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import DistanceCache, deviation_improves
from repro.core.best_response import BestResponseEnvironment
from repro.graphs import (
    DistanceEngine,
    OwnedDigraph,
    QueryStats,
    WeightedDistanceEngine,
    point_to_point,
    weighted_csr_from_csr,
)

#: Wall-clock comparisons are meaningful on a quiet machine; on shared
#: CI runners a noisy neighbour can invert margins with no code defect,
#: so the timing asserts are advisory there (correctness always runs).
_STRICT_TIMING = not os.environ.get("CI")

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_query.json"


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_query.json."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _sparse_graph(n: int, extra_edges: int, seed: int) -> OwnedDigraph:
    """Random recursive tree plus a few chords — the sparse census shape."""
    rng = np.random.default_rng(seed)
    g = OwnedDigraph(n)
    for v in range(1, n):
        g.add_arc(int(rng.integers(v)), v)
    added = 0
    while added < extra_edges:
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a == b or g.has_arc(a, b) or g.has_arc(b, a):
            continue
        g.add_arc(a, b)
        added += 1
    return g


# ----------------------------------------------------------------------
# Cold single-deviation verdict: lazy query tier vs full-matrix build
# ----------------------------------------------------------------------
def test_cold_swap_check_beats_full_matrix_build():
    n = 512
    g = _sparse_graph(n, extra_edges=2 * n, seed=7)
    u = 0
    cur = tuple(sorted(int(v) for v in g.out_neighbors(u)))
    assert cur
    others = [v for v in range(n) if v != u and v not in cur]
    deviation = tuple(sorted([others[0]] + list(cur)[1:]))

    # Untimed warmup on a tiny instance: both paths pay their one-time
    # lazy imports (np.unique pulls in numpy.ma on first call) outside
    # the timed sections.
    np.unique(np.arange(2))
    g_small = _sparse_graph(16, extra_edges=8, seed=1)
    env_w = DistanceCache(g_small).environment(0, "sum")
    cur_w = tuple(sorted(int(v) for v in g_small.out_neighbors(0)))
    env_w.evaluate(cur_w)
    deviation_improves(
        g_small, 0, cur_w, "sum", cache=DistanceCache(g_small, rows="lazy"),
        use_lemma=False,
    )
    deviation_improves(g_small, 0, cur_w, "sum", use_lemma=False)

    # Full-matrix path: a cold cache in rows="full" mode pays the whole
    # all-pairs build of U(G - u) before it can price one deviation.
    t0 = time.perf_counter()
    env_full = DistanceCache(g).environment(u, "sum")
    verdict_full = env_full.evaluate(deviation) < env_full.evaluate(cur)
    full_s = time.perf_counter() - t0

    # Query tier: the same verdict on a cold rows="lazy" cache.
    t0 = time.perf_counter()
    verdict_lazy = deviation_improves(
        g, u, deviation, "sum", cache=DistanceCache(g, rows="lazy"), use_lemma=False
    )
    lazy_s = time.perf_counter() - t0

    # And with no prebuilt state at all (throwaway lazy engine inside).
    t0 = time.perf_counter()
    verdict_cold = deviation_improves(g, u, deviation, "sum", use_lemma=False)
    cold_s = time.perf_counter() - t0

    assert verdict_lazy == verdict_full == verdict_cold
    speedup = full_s / max(lazy_s, 1e-9)
    _record(
        "cold_swap_check_n512",
        {
            "n": n,
            "full_matrix_s": full_s,
            "lazy_cache_s": lazy_s,
            "no_cache_s": cold_s,
            "speedup": speedup,
        },
    )
    if _STRICT_TIMING:
        assert speedup >= 10.0, (
            f"cold swap-check speedup {speedup:.1f}x < 10x "
            f"(full {full_s * 1e3:.1f}ms vs lazy {lazy_s * 1e3:.1f}ms)"
        )


# ----------------------------------------------------------------------
# Bit-identity: kernel answers == matrix entries (unit and weighted)
# ----------------------------------------------------------------------
def test_query_bit_identical_to_matrices():
    rng = np.random.default_rng(11)
    checked = 0
    for trial in range(8):
        n = int(rng.integers(8, 48))
        g = _sparse_graph(n, extra_edges=int(rng.integers(0, n)), seed=trial)
        if rng.random() < 0.4:  # disconnect: Cinf pairs must match too
            csr = g.undirected_csr()
            for v in range(n):
                nbrs = csr.neighbors(v)
                if len(nbrs) == 1:
                    a, b = v, int(nbrs[0])
                    if g.has_arc(a, b):
                        g.remove_arc(a, b)
                    else:
                        g.remove_arc(b, a)
                    break
        csr = g.undirected_csr()
        unit_ref = np.asarray(DistanceEngine(csr).matrix)
        wcsr = weighted_csr_from_csr(csr)
        pairs = rng.integers(0, n, size=(24, 2))
        for a, b in pairs:
            a, b = int(a), int(b)
            assert point_to_point(csr, a, b) == int(unit_ref[a, b])
            assert point_to_point(wcsr, a, b) == int(unit_ref[a, b])
            checked += 1
    # A genuinely weighted instance drives the Dial-bucket path.
    n = 40
    g = _sparse_graph(n, extra_edges=30, seed=3)
    from repro.graphs.weighted_engine import build_weighted_csr

    rng2 = np.random.default_rng(21)
    heads, tails, weights = [], [], []
    for a, b in g.underlying_edges():
        w = int(rng2.integers(1, 8))
        heads += [a, b]
        tails += [b, a]
        weights += [w, w]
    wcsr = build_weighted_csr(
        n,
        np.asarray(heads, dtype=np.int64),
        np.asarray(tails, dtype=np.int64),
        np.asarray(weights, dtype=np.int64),
    )
    ref = np.asarray(WeightedDistanceEngine(wcsr).matrix)
    for a in range(n):
        for b in range(n):
            assert point_to_point(wcsr, a, b) == int(ref[a, b])
            checked += 1
    _record("bit_identity", {"pairs_checked": checked})


# ----------------------------------------------------------------------
# Settled fraction: the meet rule explores a small part of sparse graphs
# ----------------------------------------------------------------------
def test_sparse_queries_settle_a_fraction_of_the_graph():
    n = 512
    rng = np.random.default_rng(13)
    fractions = []
    for seed in range(5):
        g = _sparse_graph(n, extra_edges=2 * n, seed=seed)
        csr = g.undirected_csr()
        for _ in range(20):
            a, b = int(rng.integers(n)), int(rng.integers(n))
            stats = QueryStats()
            point_to_point(csr, a, b, stats=stats)
            fractions.append(stats.fraction_settled(n))
    mean_fraction = float(np.mean(fractions))
    _record(
        "settled_fraction_sparse_n512",
        {
            "n": n,
            "queries": len(fractions),
            "mean_fraction": mean_fraction,
            "max_fraction": float(np.max(fractions)),
        },
    )
    # The stopping rule must beat a one-sided sweep's n labels on
    # average; this holds on any machine (it counts work, not time).
    assert mean_fraction < 0.5, f"mean settled fraction {mean_fraction:.2f} >= 0.5"
