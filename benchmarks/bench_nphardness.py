"""Theorem 2.1: best response is NP-hard — the exponential wall.

Ablation: exact best response cost grows as C(n-1, b) while the greedy
and swap heuristics stay polynomial; plus the reduction equivalence as
a correctness gate.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    BoundedBudgetGame,
    exact_best_response,
    greedy_best_response,
    swap_best_response,
)
from repro.graphs import build_csr, distance_matrix, random_connected_realization
from repro.optimization import exact_k_center, k_center_via_best_response


def _instance(n: int, budget: int, seed: int = 0):
    budgets = np.ones(n, dtype=np.int64)
    budgets[0] = budget
    return random_connected_realization(budgets, seed=seed)


@pytest.mark.paper_artifact("Theorem 2.1 / exponential exact search")
@pytest.mark.parametrize("budget", [1, 2, 3, 4])
def test_exact_best_response_scaling(benchmark, budget):
    g = _instance(18, budget)
    result = benchmark(exact_best_response, g, 0, "sum")
    assert result.evaluated == math.comb(17, budget)


@pytest.mark.paper_artifact("Theorem 2.1 / polynomial heuristics")
@pytest.mark.parametrize("method", ["greedy", "swap"])
def test_heuristic_best_response_speed(benchmark, method):
    g = _instance(18, 4)
    fn = greedy_best_response if method == "greedy" else swap_best_response
    result = benchmark(fn, g, 0, "sum")
    # Heuristics evaluate polynomially many candidates.
    assert result.evaluated <= 4 * 18 + 1


@pytest.mark.paper_artifact("Theorem 2.1 / reduction equivalence")
def test_reduction_round_trip(benchmark):
    import networkx as nx

    G = nx.random_regular_graph(3, 14, seed=1)
    edges = list(G.edges())
    csr = build_csr(14, np.array([u for u, _ in edges]), np.array([v for _, v in edges]))
    D = distance_matrix(csr, apply_cinf=False)

    def run():
        return exact_k_center(D, 3), k_center_via_best_response(csr, 3)

    direct, via_game = benchmark(run)
    assert direct.objective == via_game.objective
