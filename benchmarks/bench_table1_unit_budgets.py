"""Table 1 / All-unit budgets = Θ(1) (Theorems 4.1 + 4.2).

Regenerates both unit-budget cells: exact dynamics to an equilibrium,
then the Section 4 structural audit.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_unit_structure
from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.graphs import unit_budgets


@pytest.mark.paper_artifact("Table 1 / All-unit budgets")
@pytest.mark.parametrize("version,n", [("sum", 24), ("sum", 48), ("max", 24), ("max", 48)])
def test_unit_dynamics_constant_diameter(benchmark, version, n):
    game = BoundedBudgetGame(unit_budgets(n))

    def run():
        res = best_response_dynamics(
            game, game.random_realization(seed=n), version, max_rounds=200, seed=n
        )
        assert res.converged
        return check_unit_structure(res.graph)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.satisfies(version)
    if version == "sum":
        assert report.diameter_value < 5 and report.cycle_length <= 5
    else:
        assert report.diameter_value < 8 and report.cycle_length <= 7
    assert report.max_distance_to_cycle <= (1 if version == "sum" else 2)
