"""Figures 1-3: regeneration benchmarks.

* Figure 1 — the Case 2 construction at the paper's exact parameters
  (n = 22, z = 16, t = 19), certified in both versions.
* Figure 2 — the spider, built and certified.
* Figure 3 — the longest-path decomposition with the doubling check.
"""

from __future__ import annotations

import pytest

from repro.analysis import longest_path_decomposition, verify_sum_equilibrium_inequality
from repro.constructions import binary_tree_equilibrium, construct_equilibrium, spider_equilibrium
from repro.core import certify_equilibrium
from repro.experiments import FIGURE1_BUDGETS
from repro.graphs import diameter


@pytest.mark.paper_artifact("Figure 1")
@pytest.mark.parametrize("version", ["sum", "max"])
def test_figure1_construction(benchmark, version):
    def run():
        ec = construct_equilibrium(list(FIGURE1_BUDGETS))
        cert = certify_equilibrium(ec.graph, version, method="exact")
        return ec, cert

    ec, cert = benchmark(run)
    assert ec.case == 2
    assert cert.is_equilibrium
    assert diameter(ec.graph) <= 4


@pytest.mark.paper_artifact("Figure 2")
def test_figure2_spider(benchmark):
    def run():
        inst = spider_equilibrium(7)  # n = 22, like Figure 1's size
        cert = certify_equilibrium(inst.graph, "max", method="exact")
        return inst, cert

    inst, cert = benchmark(run)
    assert cert.is_equilibrium
    assert diameter(inst.graph) == 14


@pytest.mark.paper_artifact("Figure 3")
def test_figure3_decomposition(benchmark):
    inst = binary_tree_equilibrium(6)  # n = 127

    def run():
        decomp = longest_path_decomposition(inst.graph)
        check = verify_sum_equilibrium_inequality(inst.graph, decomp)
        return decomp, check

    decomp, check = benchmark(run)
    assert check.holds
    assert int(decomp.sizes.sum()) == inst.n
    assert decomp.diameter_value == 12
