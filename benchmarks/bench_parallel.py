"""Ablation: serial vs multiprocessing sweep execution.

Verifies the scatter/gather harness gives identical results at any
worker count and measures the speedup on an embarrassingly parallel
dynamics sweep.
"""

from __future__ import annotations

import pytest

from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.graphs import diameter, unit_budgets
from repro.parallel import SweepSpec, SweepTask, run_sweep


def _dynamics_worker(task: SweepTask) -> dict:
    n = int(task.params["n"])
    game = BoundedBudgetGame(unit_budgets(n))
    res = best_response_dynamics(
        game, game.random_realization(seed=task.seed), "sum", max_rounds=100, seed=task.seed
    )
    return {"diameter": diameter(res.graph), "converged": res.converged}


_SPEC = SweepSpec(axes={"n": [12, 16, 20]}, replications=4, base_seed=77)


@pytest.mark.paper_artifact("ablation / sweep parallelism")
@pytest.mark.parametrize("processes", [1, 2])
def test_sweep_worker_scaling(benchmark, processes):
    records = benchmark.pedantic(
        run_sweep, args=(_dynamics_worker, _SPEC), kwargs={"processes": processes},
        rounds=1, iterations=1,
    )
    assert len(records) == 12
    assert all(r["converged"] for r in records)


def test_serial_parallel_identical_results():
    serial = run_sweep(_dynamics_worker, _SPEC, processes=1)
    parallel = run_sweep(_dynamics_worker, _SPEC, processes=2)
    assert serial == parallel
