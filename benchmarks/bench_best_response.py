"""Ablation: exact vs greedy vs swap best response — cost gap and speed.

Measures the quality/speed trade-off that Theorem 2.1 forces: exact is
exponential in the budget, heuristics are polynomial but may miss the
optimum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BestResponseEnvironment,
    exact_best_response,
    greedy_best_response,
    swap_best_response,
)
from repro.graphs import random_budgets_with_sum, random_connected_realization


def _instance(n: int = 40, seed: int = 3):
    budgets = random_budgets_with_sum(n, int(1.4 * n), seed=seed, min_budget=1)
    budgets[0] = 3
    return random_connected_realization(budgets, seed=seed)


@pytest.mark.paper_artifact("ablation / best-response methods")
@pytest.mark.parametrize("method", ["exact", "greedy", "swap"])
def test_best_response_methods(benchmark, method):
    g = _instance()
    fn = {"exact": exact_best_response, "greedy": greedy_best_response, "swap": swap_best_response}[method]
    result = benchmark(fn, g, 0, "sum")
    assert result.cost <= result.current_cost


@pytest.mark.paper_artifact("ablation / environment construction")
def test_environment_build_cost(benchmark):
    # The per-player precomputation (all-pairs BFS of G - u) dominates;
    # measure it in isolation.
    g = _instance(n=120, seed=9)
    env = benchmark(BestResponseEnvironment, g, 0, "sum")
    assert env.D.shape == (120, 120)


@pytest.mark.paper_artifact("ablation / batch evaluation throughput")
def test_batch_evaluation_throughput(benchmark):
    g = _instance(n=60, seed=4)
    env = BestResponseEnvironment(g, 0, "sum")
    pool = env.candidate_pool()
    rng = np.random.default_rng(0)
    batch = np.stack([rng.choice(pool, size=3, replace=False) for _ in range(2000)])
    costs = benchmark(env.evaluate_batch, batch)
    assert costs.shape == (2000,)
