"""Theorem 7.2: minimum budget k forces k-connectivity (SUM).

Benchmarks the full audit pipeline: dynamics to equilibrium, exact
vertex connectivity via the from-scratch Dinic max-flow, dichotomy
check.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_connectivity_theorem
from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.graphs import uniform_budgets, vertex_connectivity


@pytest.mark.paper_artifact("Theorem 7.2")
@pytest.mark.parametrize("k", [2, 3])
def test_connectivity_dichotomy(benchmark, k):
    game = BoundedBudgetGame(uniform_budgets(10, k))

    def run():
        reports = []
        for seed in range(2):
            res = best_response_dynamics(
                game,
                game.random_realization(seed=seed, connected=True),
                "sum",
                max_rounds=150,
                seed=seed,
            )
            assert res.converged
            reports.append(check_connectivity_theorem(res.graph, k))
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.holds for r in reports)


@pytest.mark.paper_artifact("Theorem 7.2 / connectivity kernel")
@pytest.mark.parametrize("n", [30, 60])
def test_vertex_connectivity_kernel(benchmark, n):
    # Pure substrate benchmark: Dinic-based kappa on a circulant graph.
    from repro.graphs import OwnedDigraph

    g = OwnedDigraph(n)
    for i in range(n):
        g.add_arc(i, (i + 1) % n)
        g.add_arc(i, (i + 2) % n)
    kappa = benchmark(vertex_connectivity, g)
    assert kappa == 4  # circulant C_n(1, 2) is 4-connected
