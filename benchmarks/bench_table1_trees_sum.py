"""Table 1 / Trees / SUM = Θ(log n) (Theorems 3.3 + 3.4).

Lower bound: the perfect binary tree certifies as a SUM equilibrium with
diameter 2·depth. Upper bound: dynamics on random Tree-BG instances stay
within the concrete Theorem 3.3 bound.
"""

from __future__ import annotations

import pytest

from repro.analysis import theorem_3_3_bound, verify_sum_equilibrium_inequality
from repro.constructions import binary_tree_equilibrium
from repro.core import BoundedBudgetGame, best_response_dynamics, certify_equilibrium
from repro.graphs import diameter, is_tree, random_tree_realization


@pytest.mark.paper_artifact("Table 1 / Trees / SUM")
@pytest.mark.parametrize("depth", [3, 4, 5])
def test_binary_tree_certification(benchmark, depth):
    def run():
        inst = binary_tree_equilibrium(depth)
        cert = certify_equilibrium(inst.graph, "sum", method="exact")
        return inst, cert

    inst, cert = benchmark(run)
    assert cert.is_equilibrium
    assert diameter(inst.graph) == 2 * depth
    assert diameter(inst.graph) <= theorem_3_3_bound(inst.n)


@pytest.mark.paper_artifact("Table 1 / Trees / SUM")
@pytest.mark.parametrize("n", [15, 31])
def test_tree_bg_dynamics_log_bound(benchmark, n):
    def run():
        worst = 0
        for seed in range(3):
            g, budgets = random_tree_realization(n, seed=seed)
            game = BoundedBudgetGame(budgets)
            res = best_response_dynamics(game, g, "sum", max_rounds=300, seed=seed)
            assert res.converged
            worst = max(worst, diameter(res.graph))
            assert is_tree(res.graph)
            assert verify_sum_equilibrium_inequality(res.graph).holds
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    assert worst <= theorem_3_3_bound(n)
