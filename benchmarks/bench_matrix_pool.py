"""Shared-memory matrix pool: attach-vs-rebuild and warm-vs-cold shards.

Three claims, each asserted (not just timed):

* **Attach beats rebuild.** Adopting a published ``U(G)`` matrix
  (shared-memory attach + copy-on-write snapshot engine) replaces the
  initial all-pairs BFS. Even at the census scale (n = 6) the attach
  path wins the shard-startup race; at sweep scale (n = 300) it is
  orders of magnitude faster. Matrices are bit-identical either way.
* **Warm-started census shards are bit-identical to cold shards** on
  the unit n = 6 battery for every worker count, with every shard
  actually attaching its parent-published snapshot.
* **Pooled sweeps attach.** A sweep whose prototype graphs were
  published by the parent spends zero initial rebuilds in its workers,
  returning the same records as the unpooled run.
* **Disk attach beats rebuild where it matters.** A *fresh process*
  cold-starting from the persistent mmap tier (full CRC verification
  included) beats rebuilding the matrix from scratch at sweep scale
  (n = 300) — the two-level pool's reason to exist. The n = 6 row is
  recorded for the trajectory but not asserted: a microsecond-scale
  rebuild ties the file-I/O floor, and the tier's n = 6 win comes from
  promotion (one disk attach warms a shm segment the whole shard fleet
  then attaches for free).

Timings land in ``BENCH_pool.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    BoundedBudgetGame,
    MatrixPool,
    PoolStore,
    census_scan,
    store_digest,
)
from repro.core.enumeration import LAST_CENSUS_POOL_STATS
from repro.graphs import DistanceEngine, OwnedDigraph
from repro.parallel import (
    SweepSpec,
    clear_distance_caches,
    install_pool_handles,
    run_sweep,
    shared_distance_cache,
)

#: Wall-clock comparisons are meaningful on a quiet machine; on shared
#: CI runners a noisy neighbour can invert margins with no code defect,
#: so the timing asserts are advisory there (correctness always runs).
_STRICT_TIMING = not os.environ.get("CI")

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pool.json"


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_pool.json."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _random_graph(n: int, p: float, seed: int = 2) -> OwnedDigraph:
    rng = np.random.default_rng(seed)
    g = OwnedDigraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_arc(u, v)
    return g


def _time_attach_vs_rebuild(n: int, p: float, reps: int) -> dict:
    """Per-call cost of a cold engine build vs a pooled attach."""
    g = _random_graph(n, p)
    csr = g.undirected_csr()
    t0 = time.perf_counter()
    for _ in range(reps):
        engine = DistanceEngine(csr)
    rebuild_s = (time.perf_counter() - t0) / reps
    with MatrixPool() as pool:
        handle = pool.publish(
            ("bench", n),
            {"D": engine.matrix, "inf": np.asarray([engine.inf], dtype=np.int64)},
        )
        t0 = time.perf_counter()
        for _ in range(reps):
            views = handle.attach()
            adopted = DistanceEngine.from_snapshot(
                csr, views["D"], inf=int(views["inf"][0])
            )
        attach_s = (time.perf_counter() - t0) / reps
        assert np.array_equal(adopted.distances(), engine.distances())
        assert adopted.stats["rebuilds"] == 0
    return {
        "n": n,
        "rebuild_ms": round(rebuild_s * 1e3, 4),
        "attach_ms": round(attach_s * 1e3, 4),
        "speedup": round(rebuild_s / attach_s, 1),
    }


@pytest.mark.paper_artifact("matrix pool / attach vs rebuild")
def test_attach_beats_rebuild(benchmark):
    """Zero-copy attach must beat the from-scratch all-pairs BFS at the
    census shard scale (n=6) and crush it at sweep scale (n=300)."""
    shard_scale = _time_attach_vs_rebuild(6, 0.4, reps=300)
    sweep_scale = _time_attach_vs_rebuild(300, 0.05, reps=5)

    g = _random_graph(120, 0.08)
    engine = DistanceEngine(g.undirected_csr())
    with MatrixPool() as pool:
        handle = pool.publish(
            ("bench-fixture",),
            {"D": engine.matrix, "inf": np.asarray([engine.inf], dtype=np.int64)},
        )

        def attach_once():
            views = handle.attach()
            return DistanceEngine.from_snapshot(
                g.undirected_csr(), views["D"], inf=int(views["inf"][0])
            )

        benchmark.pedantic(attach_once, rounds=3, iterations=10, warmup_rounds=1)

    _record("attach_vs_rebuild_n6", shard_scale)
    _record("attach_vs_rebuild_n300", sweep_scale)
    assert not _STRICT_TIMING or shard_scale["speedup"] >= 2.0, shard_scale
    assert not _STRICT_TIMING or sweep_scale["speedup"] >= 50.0, sweep_scale


@pytest.mark.paper_artifact("matrix pool / warm-started census shards")
def test_warm_vs_cold_unit_n6_census(benchmark):
    """Unit n=6 census, 4 shards: warm-started shards attach their
    parent-published start-rank snapshots and report bit-identically to
    the cold path; both wall-clocks are recorded."""
    game = BoundedBudgetGame([1] * 6)

    def run(pool):
        return {
            v: census_scan(
                game, v, symmetry=True, workers=4, pool=pool, max_profiles=20_000
            )
            for v in ("sum", "max")
        }

    t0 = time.perf_counter()
    warm = run(True)
    warm_s = time.perf_counter() - t0
    warm_attached = LAST_CENSUS_POOL_STATS["warm_attached"]
    shards = LAST_CENSUS_POOL_STATS["shards"]
    t0 = time.perf_counter()
    cold = run(False)
    cold_s = time.perf_counter() - t0
    benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)

    for v in ("sum", "max"):
        assert warm[v].report == cold[v].report
    assert shards == 4
    assert warm_attached == 4  # every shard attached instead of rebuilding
    # The per-shard startup this replaces, measured head to head.
    startup = _time_attach_vs_rebuild(6, 0.4, reps=300)
    _record(
        "unit_n6_census_workers4",
        {
            "profiles": 5**6,
            "shards": shards,
            "warm_attached": warm_attached,
            "warm_s": round(warm_s, 4),
            "cold_s": round(cold_s, 4),
            "shard_startup_rebuild_ms": startup["rebuild_ms"],
            "shard_startup_attach_ms": startup["attach_ms"],
            "shard_startup_speedup": startup["speedup"],
        },
    )
    assert not _STRICT_TIMING or startup["speedup"] >= 2.0, startup


def _time_disk_attach_vs_rebuild(root: str, n: int, p: float, reps: int) -> dict:
    """Per-call cost of a cold build vs a verified mmap-store attach."""
    g = _random_graph(n, p)
    csr = g.undirected_csr()
    t0 = time.perf_counter()
    for _ in range(reps):
        engine = DistanceEngine(csr)
    rebuild_s = (time.perf_counter() - t0) / reps
    store = PoolStore(root)
    digest = store_digest("bench-disk", n)
    store.publish(
        digest,
        {"D": engine.matrix, "inf": np.asarray([engine.inf], dtype=np.int64)},
    )
    # A fresh PoolStore per attach mimics the fresh-process cold start:
    # nothing cached, every attach re-verifies the file end to end.
    t0 = time.perf_counter()
    for _ in range(reps):
        views = PoolStore(root).attach(digest)
        adopted = DistanceEngine.from_snapshot(
            csr, views["D"], inf=int(views["inf"][0])
        )
    attach_s = (time.perf_counter() - t0) / reps
    assert np.array_equal(adopted.distances(), engine.distances())
    assert adopted.stats["rebuilds"] == 0
    return {
        "n": n,
        "rebuild_ms": round(rebuild_s * 1e3, 4),
        "disk_attach_ms": round(attach_s * 1e3, 4),
        "speedup": round(rebuild_s / attach_s, 1),
    }


@pytest.mark.paper_artifact("matrix pool / disk-tier cold start vs rebuild")
def test_disk_attach_beats_rebuild(benchmark):
    """Cold-starting from the persistent mmap tier (verified attach +
    copy-on-write snapshot adoption in a fresh store object) must beat
    the from-scratch all-pairs build at sweep scale (n=300); the n=6
    row rides along unasserted (file-I/O floor vs a microsecond build
    — the tier's shard-scale win is promotion, measured above)."""
    with tempfile.TemporaryDirectory() as root:
        shard_scale = _time_disk_attach_vs_rebuild(root, 6, 0.4, reps=300)
        sweep_scale = _time_disk_attach_vs_rebuild(root, 300, 0.05, reps=5)

        digest = store_digest("bench-disk", 300)
        g = _random_graph(300, 0.05)
        csr = g.undirected_csr()

        def attach_once():
            views = PoolStore(root).attach(digest)
            return DistanceEngine.from_snapshot(
                csr, views["D"], inf=int(views["inf"][0])
            )

        benchmark.pedantic(attach_once, rounds=3, iterations=5, warmup_rounds=1)

    _record("disk_attach_vs_rebuild_n6", shard_scale)
    _record("disk_attach_vs_rebuild_n300", sweep_scale)
    assert not _STRICT_TIMING or sweep_scale["speedup"] >= 10.0, sweep_scale


def _pool_sweep_worker(task):
    """Read a prototype graph's distances through the shared cache."""
    game = BoundedBudgetGame([2] * task.params["n"])
    graph = game.random_realization(seed=task.params["proto"])
    cache = shared_distance_cache(graph)
    engine = cache.base()
    return {
        "checksum": int(np.asarray(engine.matrix, dtype=np.int64).sum()),
        "initial_rebuilds": int(engine.stats["rebuilds"]),
    }


@pytest.mark.paper_artifact("matrix pool / pooled sweep warm start")
def test_pooled_sweep_attaches_and_matches(benchmark):
    """An n=200 sweep whose prototypes were published by the parent
    attaches in every worker (zero initial rebuilds) and returns records
    bit-identical to the unpooled run."""
    n = 200
    protos = [0, 1]
    spec = SweepSpec(axes={"n": [n], "proto": protos}, replications=1, base_seed=5)
    game = BoundedBudgetGame([2] * n)
    prototypes = [game.random_realization(seed=p) for p in protos]

    def pooled():
        clear_distance_caches()
        return run_sweep(_pool_sweep_worker, spec, warm_graphs=prototypes)

    def unpooled():
        clear_distance_caches()
        return run_sweep(_pool_sweep_worker, spec)

    try:
        t0 = time.perf_counter()
        warm = pooled()
        warm_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        cold = unpooled()
        cold_s = time.perf_counter() - t0
        benchmark.pedantic(pooled, rounds=1, iterations=1)
    finally:
        clear_distance_caches()
        install_pool_handles({})

    assert [r["checksum"] for r in warm] == [r["checksum"] for r in cold]
    assert all(r["initial_rebuilds"] == 0 for r in warm)
    assert all(r["initial_rebuilds"] == 1 for r in cold)
    _record(
        "pooled_sweep_n200",
        {
            "tasks": len(spec.tasks()),
            "pooled_s": round(warm_s, 4),
            "unpooled_s": round(cold_s, 4),
        },
    )
