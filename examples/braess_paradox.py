#!/usr/bin/env python
"""The budget paradox (Section 5): more budget, worse network.

Intuition says that giving every player a larger link budget should
shrink equilibrium diameters. The paper shows the opposite can happen
in the MAX version:

* all-unit budgets -> every equilibrium has diameter < 8 (Theorem 4.2);
* all-*positive* budgets (so, at least as much for everyone) -> the
  oriented overlap graph U(t, k) is an equilibrium with diameter
  k ≈ √log n (Theorem 5.3), which grows without bound.

This script builds both instances at the same n and prints the
comparison — the paper's analogue of Braess's paradox.

Run:  python examples/braess_paradox.py
"""

from __future__ import annotations

from repro.analysis import demonstrate_braess
from repro.constructions import overlap_graph_equilibrium
from repro.core import certify_equilibrium


def main() -> None:
    print("Braess-style budget paradox (MAX version)")
    print("=" * 60)

    # Small instance first: n = 16, certified exactly.
    inst = overlap_graph_equilibrium(4, 2)
    cert = certify_equilibrium(inst.graph, "max", method="exact", max_candidates=None)
    print(
        f"U(t=4, k=2): n={inst.n}, diameter={inst.diameter_value}, "
        f"min budget={int(inst.budgets.min())}, certified NE: {cert.is_equilibrium}"
    )

    # Side-by-side comparisons at growing sizes.
    for t, k in ((4, 2), (6, 3)):
        comparison = demonstrate_braess(t, k, seed=1)
        print(comparison.summary())

    print()
    print(
        "The all-positive instances keep diameter k = Θ(√log n) while the\n"
        "unit-budget equilibria stay below 8: increasing everyone's budget\n"
        "made the worst stable network *worse*."
    )


if __name__ == "__main__":
    main()
