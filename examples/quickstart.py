#!/usr/bin/env python
"""Quickstart: define a game, run dynamics, certify the equilibrium.

The smallest end-to-end tour of the public API:

1. pick a budget vector — here 8 players, mixed budgets;
2. draw a random connected realization;
3. run exact best-response dynamics in the SUM version;
4. certify the fixed point as a pure Nash equilibrium;
5. inspect the social cost (diameter) against the OPT bounds.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BoundedBudgetGame,
    Version,
    best_response_dynamics,
    certify_equilibrium,
    diameter,
)
from repro.analysis import optimal_diameter_bounds, poa_interval


def main() -> None:
    budgets = [2, 2, 1, 1, 1, 1, 0, 0]
    game = BoundedBudgetGame(budgets)
    print(f"game: {game}")
    print(f"total budget sigma = {game.total_budget} (n - 1 = {game.n - 1})")

    # A random starting network (connected so costs start finite).
    start = game.random_realization(seed=7, connected=True)
    print(f"start: diameter = {diameter(start)}")

    # Let every player repeatedly switch to its exact best response.
    result = best_response_dynamics(game, start, Version.SUM, max_rounds=100)
    print(
        f"dynamics: converged={result.converged} after {result.rounds} rounds, "
        f"{result.num_moves} strategy changes"
    )

    # A fixed point of exact dynamics is a Nash equilibrium; certify it.
    cert = certify_equilibrium(result.graph, Version.SUM, method="exact")
    print(f"certificate: {cert.summary()}")

    d = diameter(result.graph)
    bounds = optimal_diameter_bounds(game.budgets)
    lo, hi = poa_interval(d, game.budgets)
    print(f"social cost (diameter) = {d}; OPT in [{bounds.lower}, {bounds.upper}]")
    print(f"this equilibrium's diameter ratio is in [{lo}, {hi}]")


if __name__ == "__main__":
    main()
