#!/usr/bin/env python
"""Peer-to-peer overlay formation — the paper's motivating scenario.

The introduction motivates bounded budget games with peer-to-peer and
overlay networks: each peer can afford a fixed number of connections
(its budget) and selfishly optimises its own latency. This script
simulates a small overlay:

* *latency-sensitive* peers minimise their average distance (SUM);
* the network starts as a sparse random overlay and peers rewire;
* we track the social cost (diameter) as the overlay self-organises,
  audit the final network's connectivity (Theorem 7.2: min budget k
  forces k-connectivity or diameter <= 3), and compare heterogeneous
  budget classes (a few "supernodes" with big budgets, many leaves).

Run:  python examples/p2p_overlay.py
"""

from __future__ import annotations

import numpy as np

from repro import BoundedBudgetGame, Version, best_response_dynamics, diameter
from repro.analysis import check_connectivity_theorem
from repro.core import all_costs
from repro.graphs import vertex_connectivity


def build_overlay(num_supernodes: int, num_leaves: int) -> BoundedBudgetGame:
    """Two-tier budget vector: supernodes afford 4 links, leaves 1."""
    budgets = [4] * num_supernodes + [1] * num_leaves
    return BoundedBudgetGame(budgets)


def main() -> None:
    game = build_overlay(num_supernodes=4, num_leaves=16)
    n = game.n
    print(f"overlay: {n} peers, budgets = 4x supernode(4) + 16x leaf(1)")

    start = game.random_realization(seed=11, connected=True)
    print(f"bootstrap overlay: diameter = {diameter(start)}")

    result = best_response_dynamics(
        game, start, Version.SUM, method="exact", max_rounds=100, seed=11
    )
    overlay = result.graph
    print(
        f"after selfish rewiring: converged={result.converged}, "
        f"rounds={result.rounds}, diameter={diameter(overlay)}"
    )
    print("diameter after each round:", result.social_costs)

    costs = all_costs(overlay, Version.SUM)
    avg = costs / (n - 1)
    print(
        f"average latency (hops): supernodes {avg[:4].mean():.2f}, "
        f"leaves {avg[4:].mean():.2f}"
    )

    # Connectivity audit: every peer has budget >= 1.
    kappa = vertex_connectivity(overlay)
    report = check_connectivity_theorem(overlay, k=1)
    print(f"vertex connectivity = {kappa}; {report.summary()}")

    # A uniform richer overlay: everyone can afford 3 links (Theorem 7.2
    # with k = 3: equilibrium is 3-connected or tiny-diameter).
    rich = BoundedBudgetGame([3] * 12)
    rich_result = best_response_dynamics(
        rich, rich.random_realization(seed=3, connected=True), Version.SUM, max_rounds=100
    )
    rich_report = check_connectivity_theorem(rich_result.graph, k=3)
    print(f"uniform budget-3 overlay: {rich_report.summary()}")


if __name__ == "__main__":
    main()
