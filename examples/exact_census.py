#!/usr/bin/env python
"""Exact equilibrium census: solve a tiny game completely.

For games small enough to enumerate, the library can find *every* pure
Nash equilibrium and compute the exact price of anarchy and stability —
no sampling, no asymptotics. This script:

1. enumerates all equilibria of the 4-player unit-budget game;
2. prints the exact PoA/PoS in both versions;
3. shows one worst equilibrium as an adjacency table;
4. verifies the Section 4 structure theorems on the complete set.

Run:  python examples/exact_census.py
"""

from __future__ import annotations

from repro.analysis import check_unit_structure
from repro.core import (
    BoundedBudgetGame,
    enumerate_equilibria,
    exact_prices,
    profile_space_size,
)
from repro.graphs import adjacency_table, diameter


def main() -> None:
    game = BoundedBudgetGame([1, 1, 1, 1, 1])
    print(f"game: {game}  ({profile_space_size(game)} strategy profiles)")

    for version in ("sum", "max"):
        census = exact_prices(game, version)
        print(
            f"[{version}] equilibria: {census.num_equilibria}, "
            f"OPT diameter: {census.opt_diameter}, "
            f"PoA = {census.poa}, PoS = {census.pos}"
        )

    equilibria = enumerate_equilibria(game, "max")
    worst = max(equilibria, key=diameter)
    print(f"\nworst MAX equilibrium (diameter {diameter(worst)}):")
    print(adjacency_table(worst))

    # Theorem 4.1/4.2 audited on the COMPLETE equilibrium set.
    reports = [check_unit_structure(g) for g in equilibria]
    assert all(r.satisfies("max") for r in reports)
    cycles = sorted({r.cycle_length for r in reports})
    print(
        f"\nall {len(equilibria)} MAX equilibria are unicyclic; cycle lengths "
        f"seen: {cycles} (Theorem 4.2 allows up to 7)"
    )


if __name__ == "__main__":
    main()
