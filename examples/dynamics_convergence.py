#!/usr/bin/env python
"""Convergence of best-response dynamics — the paper's open problem.

Section 8 asks: started from an arbitrary profile, does the game
converge to a pure Nash equilibrium, and how fast? (Laoutaris et al.
exhibited a best-response *loop* in their directed variant.) This
script explores the question empirically:

* convergence rate and round counts across schedules (round-robin vs
  random) and versions (SUM vs MAX);
* cycle detection — the dynamics engine hashes profiles and reports
  revisits;
* move-set comparison: exact vs greedy vs swap dynamics.

Run:  python examples/dynamics_convergence.py
"""

from __future__ import annotations

import numpy as np

from repro import BoundedBudgetGame, best_response_dynamics
from repro.graphs import diameter, unit_budgets


def trial_block(version: str, schedule: str, method: str, seeds: range) -> None:
    """Run a block of dynamics trials and print aggregate statistics."""
    game = BoundedBudgetGame(unit_budgets(20))
    converged = 0
    cycled = 0
    rounds: list[int] = []
    diams: list[int] = []
    for seed in seeds:
        start = game.random_realization(seed=seed)
        res = best_response_dynamics(
            game,
            start,
            version,
            method=method,  # type: ignore[arg-type]
            schedule=schedule,  # type: ignore[arg-type]
            max_rounds=150,
            seed=seed,
        )
        converged += res.converged
        cycled += res.cycled
        if res.converged:
            rounds.append(res.rounds)
            diams.append(diameter(res.graph))
    avg_rounds = float(np.mean(rounds)) if rounds else float("nan")
    worst_d = max(diams) if diams else -1
    print(
        f"  {version:3s} | {schedule:11s} | {method:6s} | "
        f"converged {converged}/{len(seeds)} (cycled {cycled}) | "
        f"avg rounds {avg_rounds:4.1f} | worst diameter {worst_d}"
    )


def main() -> None:
    print("Best-response dynamics on (1,...,1)-BG, n = 20, 10 seeds each")
    print("ver | schedule    | method | convergence            | speed | quality")
    print("-" * 78)
    seeds = range(10)
    for version in ("sum", "max"):
        for schedule in ("round_robin", "random"):
            trial_block(version, schedule, "exact", seeds)
    print()
    print("move-set comparison (SUM, round-robin):")
    for method in ("exact", "greedy", "swap"):
        trial_block("sum", "round_robin", method, seeds)
    print()
    print(
        "Every run above converged to a stable profile — consistent with the\n"
        "paper's conjecture-flavoured open problem that these dynamics do\n"
        "converge, unlike in the directed model of Laoutaris et al."
    )


if __name__ == "__main__":
    main()
