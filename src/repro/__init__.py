"""repro — reproduction of *On a Bounded Budget Network Creation Game*.

Ehsani, Shokat Fadaee, Fazli, Mehrabian, Sadeghian Sadeghabad, Safari,
Saghafian — SPAA 2011 (arXiv:1111.0554).

The package implements the bounded budget network creation game (both
SUM and MAX cost versions), exact and heuristic best-response engines,
best-response dynamics, every equilibrium construction in the paper,
the k-center/k-median substrate of the NP-hardness reduction, and an
experiment harness that regenerates Table 1 and Figures 1-3.

Quickstart
----------
>>> import repro
>>> game = repro.BoundedBudgetGame([2, 1, 1, 1, 1, 1, 0])
>>> g = repro.random_connected_realization(game.budgets, seed=0)
>>> result = repro.best_response_dynamics(game, g, version=repro.Version.SUM)
>>> result.converged
True
"""

from .core import (
    BestResponseEnvironment,
    BoundedBudgetGame,
    DynamicsResult,
    EquilibriumCertificate,
    Version,
    best_response_dynamics,
    certify_equilibrium,
    deviation_improves,
    exact_best_response,
    find_improving_deviation,
    greedy_best_response,
    is_best_response,
    is_equilibrium,
    social_cost,
    swap_best_response,
    vertex_cost,
)
from .graphs import (
    OwnedDigraph,
    cinf,
    diameter,
    distance_matrix,
    distance_to_set,
    eccentricities,
    is_connected,
    is_k_connected,
    random_budgets_with_sum,
    random_connected_realization,
    random_realization,
    random_tree_realization,
    unit_budgets,
    vertex_connectivity,
)

__version__ = "1.0.0"

__all__ = [
    "BestResponseEnvironment",
    "BoundedBudgetGame",
    "DynamicsResult",
    "EquilibriumCertificate",
    "OwnedDigraph",
    "Version",
    "best_response_dynamics",
    "certify_equilibrium",
    "cinf",
    "deviation_improves",
    "diameter",
    "distance_matrix",
    "distance_to_set",
    "eccentricities",
    "exact_best_response",
    "find_improving_deviation",
    "greedy_best_response",
    "is_best_response",
    "is_connected",
    "is_equilibrium",
    "is_k_connected",
    "random_budgets_with_sum",
    "random_connected_realization",
    "random_realization",
    "random_tree_realization",
    "social_cost",
    "swap_best_response",
    "unit_budgets",
    "vertex_cost",
    "vertex_connectivity",
    "__version__",
]
