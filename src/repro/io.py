"""Serialization of games, realizations and certificates (JSON).

Experiments that take minutes to stabilise deserve durable artefacts:
this module round-trips games and realizations through a small JSON
schema, so equilibria found by long sweeps can be stored, shared and
re-certified later.

Schema (version 1)::

    {
      "format": "repro-bbncg/1",
      "budgets": [2, 1, 0, ...],
      "arcs": [[0, 1], [1, 2], ...]       # (owner, target) pairs
    }
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from .core.game import BoundedBudgetGame
from .errors import ReproError
from .graphs.digraph import OwnedDigraph

__all__ = [
    "realization_to_dict",
    "realization_from_dict",
    "save_realization",
    "load_realization",
]

_FORMAT = "repro-bbncg/1"


def realization_to_dict(graph: OwnedDigraph) -> dict[str, Any]:
    """JSON-ready dict of a realization (budgets are the out-degrees)."""
    return {
        "format": _FORMAT,
        "budgets": graph.out_degrees().tolist(),
        "arcs": [[u, v] for u, v in graph.arcs()],
    }


def realization_from_dict(data: dict[str, Any]) -> tuple[BoundedBudgetGame, OwnedDigraph]:
    """Rebuild ``(game, graph)`` from :func:`realization_to_dict` output.

    Validates the format tag, arc consistency, and that the arcs realise
    the recorded budget vector.
    """
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        raise ReproError(f"not a {_FORMAT} document: format={data.get('format')!r}")
    budgets = data.get("budgets")
    arcs = data.get("arcs")
    if not isinstance(budgets, list) or not isinstance(arcs, list):
        raise ReproError("document must carry 'budgets' and 'arcs' lists")
    game = BoundedBudgetGame(budgets)
    graph = OwnedDigraph(game.n)
    for pair in arcs:
        if not isinstance(pair, list) or len(pair) != 2:
            raise ReproError(f"malformed arc entry {pair!r}")
        graph.add_arc(int(pair[0]), int(pair[1]))
    game.validate_realization(graph)
    return game, graph


def save_realization(graph: OwnedDigraph, path: "str | pathlib.Path") -> None:
    """Write a realization to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(realization_to_dict(graph), indent=2) + "\n")


def load_realization(path: "str | pathlib.Path") -> tuple[BoundedBudgetGame, OwnedDigraph]:
    """Read a realization written by :func:`save_realization`."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    return realization_from_dict(data)
