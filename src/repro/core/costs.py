"""Cost functions of the two game versions (Section 1.2 of the paper).

With ``dist`` measured in the undirected underlying graph and
``Cinf = n^2`` substituted for cross-component distances:

* **SUM**: ``c_SUM(u) = sum_v dist(u, v)``.
* **MAX**: ``c_MAX(u) = max_v dist(u, v) + (kappa - 1) * n^2`` where
  ``kappa`` is the number of connected components of ``U(G)``.

Both penalty conventions make reconnecting the graph strictly profitable
for any player that can do so, which is all the paper needs from them.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import GameError, VertexError
from ..graphs.bfs import UNREACHABLE, bfs_distances
from ..graphs.connectivity import num_components
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import cinf, distance_matrix, eccentricities, sum_distances

__all__ = ["Version", "vertex_cost", "all_costs", "social_cost", "cost_profile"]


class Version(enum.Enum):
    """Which aggregate a player minimises: sum or maximum of distances."""

    SUM = "sum"
    MAX = "max"

    @classmethod
    def coerce(cls, value: "Version | str") -> "Version":
        """Accept a :class:`Version` or its case-insensitive string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise GameError(f"unknown game version {value!r}; use 'sum' or 'max'") from None


def vertex_cost(graph: OwnedDigraph, u: int, version: Version | str) -> int:
    """Cost incurred by player ``u`` in the given ``version``.

    ``O(n + m)`` (one BFS), plus a component count for MAX.
    """
    version = Version.coerce(version)
    if not 0 <= u < graph.n:
        raise VertexError(u, graph.n)
    n = graph.n
    if n == 1:
        return 0
    d = bfs_distances(graph.undirected_csr(), u)
    unreachable = d == UNREACHABLE
    d = d.astype(np.int64)
    d[unreachable] = cinf(n)
    if version is Version.SUM:
        return int(d.sum())
    kappa = num_components(graph)
    return int(d.max()) + (kappa - 1) * cinf(n)


def all_costs(graph: OwnedDigraph, version: Version | str) -> np.ndarray:
    """Vector of all players' costs (single all-pairs BFS pass)."""
    version = Version.coerce(version)
    n = graph.n
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    if version is Version.SUM:
        return sum_distances(graph)
    ecc = eccentricities(graph)
    kappa = num_components(graph)
    return ecc + (kappa - 1) * cinf(n)


def social_cost(graph: OwnedDigraph, *, engine=None) -> int:
    """The paper's social cost: the diameter of ``U(G)`` (``Cinf`` if
    disconnected).

    ``engine`` (a maintained :class:`~repro.graphs.engine.DistanceEngine`
    over ``U(G)``) replaces the all-pairs BFS with a matrix reduction.
    """
    if engine is not None:
        if graph.n == 1:
            return 0
        # Unreachable pairs carry the engine's finite sentinel (Cinf by
        # construction), so the plain maximum is the paper's diameter.
        return int(engine.matrix.max())
    from ..graphs.distances import diameter

    return diameter(graph)


def cost_profile(graph: OwnedDigraph, version: Version | str) -> dict[int, int]:
    """Mapping ``player -> cost``; convenience wrapper over
    :func:`all_costs`."""
    costs = all_costs(graph, version)
    return {u: int(costs[u]) for u in range(graph.n)}
