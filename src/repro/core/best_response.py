"""Best-response computation (exact, greedy, and single-arc swap).

Key observation (and the engine's whole design): a shortest path from
player ``u`` never revisits ``u``, so for any strategy ``S`` of ``u``,

    ``dist(u, v) = 1 + min_{w in S ∪ In(u)} dist_{G-u}(w, v)``

where ``In(u)`` is the (fixed) set of players owning an arc *to* ``u``
and ``G - u`` is the graph with ``u`` deleted. ``dist_{G-u}`` does not
depend on ``u``'s strategy, so one all-pairs BFS of ``G - u`` per player
turns every candidate-strategy evaluation into a vectorised row-min over
a distance matrix — no graph mutation, no repeated BFS. This is the
"replace the inner loop with a numpy reduction" idiom of the HPC guides.

Finding the true optimum is NP-hard (Theorem 2.1: it embeds k-center /
k-median), so the exact routine enumerates ``C(n-1, b)`` candidate
subsets in vectorised chunks, and polynomial heuristics (greedy marginal
insertion, single-arc swap) are provided for dynamics at scale.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..errors import GameError, StaleDistanceError, VertexError
from ..graphs.connectivity import connected_components
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import cinf
from ..graphs.engine import DistanceEngine, LazyRowGather
from .costs import Version

__all__ = [
    "BestResponseEnvironment",
    "BestResponseResult",
    "exact_best_response",
    "greedy_best_response",
    "swap_best_response",
    "DEFAULT_MAX_CANDIDATES",
]

#: Refuse exact enumeration beyond this many candidate subsets unless the
#: caller explicitly raises the limit. ~2M subsets keeps single-player
#: certification under a second for typical n.
DEFAULT_MAX_CANDIDATES: int = 2_000_000

#: Chunk size (in candidate subsets) for vectorised batch evaluation;
#: bounds peak memory of the ``(chunk, b, n)`` gather.
_CHUNK_TARGET_ELEMENTS: int = 1 << 22


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of a best-response search for one player.

    Attributes
    ----------
    player:
        The deviating player.
    cost:
        Cost of the best strategy found.
    strategy:
        The best strategy found (sorted tuple of targets).
    current_cost:
        Cost of the player's current strategy (same evaluation path, so
        directly comparable).
    evaluated:
        Number of candidate strategies evaluated.
    exact:
        Whether the search provably covered the whole strategy space.
    """

    player: int
    cost: int
    strategy: tuple[int, ...]
    current_cost: int
    evaluated: int
    exact: bool

    @property
    def improvement(self) -> int:
        """Positive iff the player can strictly lower its cost."""
        return self.current_cost - self.cost

    @property
    def is_improving(self) -> bool:
        """Whether a strictly better strategy than the current one exists."""
        return self.cost < self.current_cost


class BestResponseEnvironment:
    """Precomputed substrate for evaluating strategies of one player.

    Builds the all-pairs distance matrix of ``G - u`` and the component
    labelling of ``G - u`` once; thereafter any candidate strategy (or a
    whole batch) is evaluated with numpy reductions only.

    Parameters
    ----------
    graph:
        The current realization.
    u:
        The deviating player; its *current* strategy is irrelevant to the
        environment (only other players' arcs matter).
    version:
        SUM or MAX.
    engine:
        Optional shared :class:`~repro.graphs.engine.DistanceEngine`
        over ``U(G - u)`` (as handed out by
        :class:`~repro.core.distance_cache.DistanceCache`). When given,
        its matrix is used zero-copy and the engine's epoch is
        snapshotted: evaluations after the engine moves on raise
        :class:`~repro.errors.StaleDistanceError`. When omitted, a
        private engine is built from scratch.
    """

    def __init__(
        self,
        graph: OwnedDigraph,
        u: int,
        version: Version | str,
        *,
        engine: DistanceEngine | None = None,
    ) -> None:
        if not 0 <= u < graph.n:
            raise VertexError(u, graph.n)
        self.u = int(u)
        self.version = Version.coerce(version)
        self.n = graph.n
        self.cinf = cinf(self.n)
        if engine is None:
            engine = DistanceEngine(graph.undirected_csr_without(u))
        else:
            if engine.n != self.n:
                raise GameError(
                    f"engine substrate has {engine.n} vertices, graph has {self.n}"
                )
            if engine.csr.degree(u) != 0:
                raise GameError(
                    f"engine substrate must isolate player {u} (U(G - u))"
                )
        if engine.inf != self.cinf:
            raise GameError(
                f"engine sentinel {engine.inf} != Cinf = {self.cinf}; build the "
                f"engine with the default inf"
            )
        self._engine = engine
        self._epoch = engine.epoch
        self._graph = graph
        self._revision = graph.revision
        # D[w, v] = dist_{G-u}(w, v); unreachable pairs carry the engine's
        # sentinel, strictly larger than any finite distance (cinf works:
        # finite distances are <= n - 2 < n^2 for n >= 2). A lazy engine
        # is wrapped in a row-materialising facade so evaluations only
        # pay for the rows they touch (cur ∪ In(u) ∪ candidates) instead
        # of promoting the whole matrix up front.
        D = self.D = LazyRowGather(engine) if engine.lazy else engine.matrix
        self.in_nbrs = graph.in_neighbors(u)
        if self.in_nbrs.size:
            self._base_min = D[self.in_nbrs].min(axis=0)
        else:
            self._base_min = np.full(self.n, self.cinf, dtype=np.int64)
        self._others_mask = np.ones(self.n, dtype=bool)
        self._others_mask[u] = False
        # Component labels of G - u are only consumed by the MAX
        # version's kappa term; they are computed on first use so SUM
        # evaluations never pay for the extra BFS sweep.
        self._comp: "np.ndarray | None" = None
        self._ncomp_others = 0
        self._in_labels = np.empty(0, dtype=np.int64)

    def _ensure_components(self) -> None:
        if self._comp is None:
            comp, ncomp = connected_components(self._engine.csr)
            self._comp = comp
            # u is isolated in the substrate and forms a singleton
            # component, so the other n-1 vertices span ncomp - 1.
            self._ncomp_others = ncomp - 1 if self.n > 1 else 0
            if self.in_nbrs.size:
                self._in_labels = np.unique(comp[self.in_nbrs])

    @property
    def comp(self) -> np.ndarray:
        """Component labels of ``G - u`` (lazily computed)."""
        self._ensure_components()
        return self._comp

    @property
    def ncomp_others(self) -> int:
        """Components of ``G - u`` spanned by the other vertices."""
        self._ensure_components()
        return self._ncomp_others

    # ------------------------------------------------------------------
    @property
    def engine(self) -> DistanceEngine:
        """The distance engine whose matrix this environment evaluates on."""
        return self._engine

    @property
    def graph(self) -> OwnedDigraph:
        """The realization this environment evaluates against."""
        return self._graph

    def is_fresh(self) -> bool:
        """Whether this environment still describes the current graph.

        True while the backing engine serves the epoch captured at
        construction and, if the graph has mutated since, both the
        substrate ``U(G - u)`` and the player's in-neighbourhood are
        verifiably unchanged. The player's own moves keep all of these
        invariants (``U(G - u)`` and ``In(u)`` do not depend on ``u``'s
        strategy), so an environment survives its own player's
        deviations by design.
        """
        try:
            self._check_fresh()
        except StaleDistanceError:
            return False
        return True

    def _check_fresh(self) -> None:
        if self._engine.epoch != self._epoch:
            raise StaleDistanceError(
                f"environment for player {self.u} was built at engine epoch "
                f"{self._epoch}, but the engine is now at epoch "
                f"{self._engine.epoch}; rebuild the environment"
            )
        rev = self._graph.revision
        if rev != self._revision:
            # The graph mutated since this environment was built. The
            # evaluation is still exact iff the substrate U(G - u) and
            # the player's in-neighbourhood both survived — the engine
            # epoch alone cannot witness this, because a lazily-synced
            # engine only bumps it when someone hands it the new CSR.
            cur = self._graph.undirected_csr_without(self.u)
            eng_csr = self._engine.csr
            if not (
                cur.indices.size == eng_csr.indices.size
                and np.array_equal(cur.indptr, eng_csr.indptr)
                and np.array_equal(cur.indices, eng_csr.indices)
            ):
                raise StaleDistanceError(
                    f"substrate U(G - {self.u}) changed since this environment "
                    f"was built and its engine was not re-synced; rebuild the "
                    f"environment"
                )
            if not np.array_equal(self._graph.in_neighbors(self.u), self.in_nbrs):
                raise StaleDistanceError(
                    f"in-neighbourhood of player {self.u} changed since this "
                    f"environment was built; rebuild the environment"
                )
            self._revision = rev

    def candidate_pool(self) -> np.ndarray:
        """All legal link targets for the player (everyone but itself)."""
        return np.flatnonzero(self._others_mask).astype(np.int64)

    def _distances_for_min(self, mins: np.ndarray) -> np.ndarray:
        """Turn neighbour-min vectors into distance vectors from ``u``.

        ``mins`` has shape ``(..., n)``; unreachable stays at ``cinf``
        (never ``cinf + 1``), and the ``u`` column is zeroed.
        """
        dist = np.minimum(mins + 1, self.cinf)
        dist[..., self.u] = 0
        return dist

    def _kappa_batch(self, candidates: np.ndarray) -> np.ndarray:
        """Component count of the new graph for each candidate row.

        ``kappa = (#components of G-u among others) - (#distinct
        components touched by S ∪ In(u)) + 1``: ``u`` and everything it
        touches merge into a single component; untouched components
        survive unchanged.
        """
        k, b = candidates.shape
        if self.ncomp_others <= 1:
            # Fast path: G-u connected (or n == 1). Touching anything at
            # all yields a connected graph.
            touched = b > 0 or self._in_labels.size > 0
            kappa = 1 if touched else min(2, self.ncomp_others + 1)
            return np.full(k, kappa, dtype=np.int64)
        fixed = self._in_labels
        labels = self.comp[candidates] if b else np.empty((k, 0), dtype=np.int64)
        if fixed.size:
            labels = np.concatenate(
                [labels, np.broadcast_to(fixed, (k, fixed.size))], axis=1
            )
        if labels.shape[1] == 0:
            return np.full(k, self.ncomp_others + 1, dtype=np.int64)
        labels = np.sort(labels, axis=1)
        distinct = (np.diff(labels, axis=1) != 0).sum(axis=1) + 1
        return self.ncomp_others - distinct + 1

    # ------------------------------------------------------------------
    def evaluate_batch(self, candidates: np.ndarray) -> np.ndarray:
        """Costs of a batch of candidate strategies.

        Parameters
        ----------
        candidates:
            ``(k, b)`` integer array; each row is a strategy (distinct
            targets, none equal to ``u``). ``b`` may be 0.

        Returns
        -------
        ``(k,)`` ``int64`` array of costs.
        """
        self._check_fresh()
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.ndim != 2:
            raise GameError("candidates must be a 2-D (k, b) array")
        k, b = candidates.shape
        if k == 0:
            return np.empty(0, dtype=np.int64)
        if self.n == 1:
            return np.zeros(k, dtype=np.int64)
        if b:
            mins = self.D[candidates].min(axis=1)
            np.minimum(mins, self._base_min, out=mins)
        else:
            mins = np.broadcast_to(self._base_min, (k, self.n)).copy()
        dist = self._distances_for_min(mins)
        if self.version is Version.SUM:
            return dist.sum(axis=1, dtype=np.int64)
        kappa = self._kappa_batch(candidates)
        return dist.max(axis=1) + (kappa - 1) * self.cinf

    def evaluate(self, strategy: "np.ndarray | tuple[int, ...] | list[int] | frozenset[int]") -> int:
        """Cost of a single candidate strategy."""
        s = np.asarray(sorted(strategy), dtype=np.int64)
        return int(self.evaluate_batch(s.reshape(1, -1))[0])

    def distances_for(self, strategy: "np.ndarray | tuple[int, ...] | list[int]") -> np.ndarray:
        """Distance vector from ``u`` under a hypothetical strategy."""
        self._check_fresh()
        s = np.asarray(sorted(strategy), dtype=np.int64)
        if s.size:
            mins = np.minimum(self.D[s].min(axis=0), self._base_min)
        else:
            mins = self._base_min.copy()
        return self._distances_for_min(mins)

    # ------------------------------------------------------------------
    def exact(
        self,
        budget: int,
        *,
        current: tuple[int, ...] | None = None,
        max_candidates: int | None = DEFAULT_MAX_CANDIDATES,
    ) -> tuple[int, tuple[int, ...], int]:
        """Exhaustive minimum over all ``C(n-1, budget)`` strategies.

        Returns ``(best_cost, best_strategy, num_evaluated)``. Ties break
        to the lexicographically smallest subset. Raises
        :class:`~repro.errors.GameError` if the space exceeds
        ``max_candidates`` (pass ``None`` to lift the cap).
        """
        pool = self.candidate_pool()
        total = math.comb(pool.size, budget)
        if max_candidates is not None and total > max_candidates:
            raise GameError(
                f"exact best response would enumerate {total} subsets (> "
                f"{max_candidates}); use greedy/swap or raise max_candidates"
            )
        if budget == 0:
            return int(self.evaluate_batch(np.empty((1, 0), dtype=np.int64))[0]), (), 1
        chunk_rows = max(1, _CHUNK_TARGET_ELEMENTS // (max(budget, 1) * self.n))
        best_cost: int | None = None
        best_strategy: tuple[int, ...] = ()
        evaluated = 0
        combos = itertools.combinations(pool.tolist(), budget)
        while True:
            block = list(itertools.islice(combos, chunk_rows))
            if not block:
                break
            arr = np.asarray(block, dtype=np.int64)
            costs = self.evaluate_batch(arr)
            i = int(costs.argmin())
            evaluated += arr.shape[0]
            if best_cost is None or costs[i] < best_cost:
                best_cost = int(costs[i])
                best_strategy = tuple(arr[i].tolist())
        assert best_cost is not None
        return best_cost, best_strategy, evaluated

    def greedy(self, budget: int) -> tuple[int, tuple[int, ...], int]:
        """Greedy marginal insertion: add the single best arc, ``budget``
        times.

        Polynomial (``O(budget * n^2)``) but not optimal in general —
        Theorem 2.1 forbids a polynomial exact algorithm unless P = NP.
        Returns ``(cost, strategy, num_evaluated)``.
        """
        self._check_fresh()
        pool = list(self.candidate_pool().tolist())
        chosen: list[int] = []
        evaluated = 0
        cur_min = self._base_min.copy()
        for _ in range(budget):
            remaining = np.asarray([w for w in pool if w not in chosen], dtype=np.int64)
            # Candidate w's neighbour-min vector is elementwise
            # min(cur_min, D[w]) — one broadcast per greedy step.
            mins = np.minimum(self.D[remaining], cur_min)
            dist = self._distances_for_min(mins)
            if self.version is Version.SUM:
                costs = dist.sum(axis=1, dtype=np.int64)
            else:
                base = np.asarray(chosen, dtype=np.int64)
                cand_rows = remaining.reshape(-1, 1)
                rows = (
                    np.concatenate(
                        [cand_rows, np.broadcast_to(base, (remaining.size, base.size))],
                        axis=1,
                    )
                    if base.size
                    else cand_rows
                )
                kappa = self._kappa_batch(rows)
                costs = dist.max(axis=1) + (kappa - 1) * self.cinf
            evaluated += remaining.size
            pick = int(costs.argmin())
            chosen.append(int(remaining[pick]))
            cur_min = np.minimum(cur_min, self.D[chosen[-1]])
        final = self.evaluate(tuple(chosen))
        return final, tuple(sorted(chosen)), evaluated

    def best_swap(
        self, current: "tuple[int, ...] | frozenset[int]"
    ) -> tuple[int, tuple[int, ...], int]:
        """Best single-arc swap from ``current`` (including "stay put").

        Considers every (drop one owned arc, add one new arc) move —
        the transition set of Alon et al.'s *swap equilibria*, which the
        paper's Section 6 uses as *weak equilibria*. Returns
        ``(cost, strategy, num_evaluated)``.
        """
        self._check_fresh()
        cur = tuple(sorted(int(v) for v in current))
        cur_cost = self.evaluate(cur)
        best_cost, best_strategy = cur_cost, cur
        evaluated = 1
        if not cur:
            return best_cost, best_strategy, evaluated
        cur_arr = np.asarray(cur, dtype=np.int64)
        in_set = set(cur) | {self.u}
        pool = np.asarray(
            [w for w in range(self.n) if w not in in_set], dtype=np.int64
        )
        if pool.size == 0:
            return best_cost, best_strategy, evaluated
        # Per-column first/second minima over the kept rows S \ {a} ∪ In(u)
        # let us exclude any one owned arc in O(1) per column.
        rows = self.D[cur_arr]
        if self.in_nbrs.size:
            rows = np.vstack([rows, self.D[self.in_nbrs]])
        order = np.argsort(rows, axis=0, kind="stable")
        m1 = np.take_along_axis(rows, order[:1], axis=0)[0]
        arg1 = order[0]
        if rows.shape[0] > 1:
            m2 = np.take_along_axis(rows, order[1:2], axis=0)[0]
        else:
            m2 = np.full(self.n, self.cinf, dtype=np.int64)
        for i, dropped in enumerate(cur):
            # Min over remaining rows when row i (an owned arc) is excluded.
            excl = np.where(arg1 == i, m2, m1)
            kept = tuple(v for v in cur if v != dropped)
            mins = np.minimum(excl, self.D[pool])
            dist = self._distances_for_min(mins)
            if self.version is Version.SUM:
                costs = dist.sum(axis=1, dtype=np.int64)
            else:
                kept_arr = np.asarray(kept, dtype=np.int64)
                cand_rows = pool.reshape(-1, 1)
                rows_k = (
                    np.concatenate(
                        [cand_rows, np.broadcast_to(kept_arr, (pool.size, kept_arr.size))],
                        axis=1,
                    )
                    if kept_arr.size
                    else cand_rows
                )
                kappa = self._kappa_batch(rows_k)
                costs = dist.max(axis=1) + (kappa - 1) * self.cinf
            evaluated += pool.size
            j = int(costs.argmin())
            if int(costs[j]) < best_cost:
                best_cost = int(costs[j])
                best_strategy = tuple(sorted(kept + (int(pool[j]),)))
        return best_cost, best_strategy, evaluated


# ----------------------------------------------------------------------
# Public one-shot wrappers
# ----------------------------------------------------------------------
def _current_strategy(graph: OwnedDigraph, u: int) -> tuple[int, ...]:
    return tuple(int(v) for v in graph.out_neighbors(u))


def _coerce_env(
    graph: OwnedDigraph,
    u: int,
    version: Version | str,
    env: BestResponseEnvironment | None,
) -> BestResponseEnvironment:
    """Validate a shared environment or build a fresh one."""
    if env is None:
        return BestResponseEnvironment(graph, u, version)
    if env.u != u or env.version is not Version.coerce(version):
        raise GameError(
            f"environment is for player {env.u}/{env.version.value}, "
            f"requested {u}/{Version.coerce(version).value}"
        )
    if env.graph is not graph:
        raise GameError(
            "environment was built on a different graph object; build one "
            "for this graph (or route through DistanceCache.environment)"
        )
    return env


def exact_best_response(
    graph: OwnedDigraph,
    u: int,
    version: Version | str,
    *,
    max_candidates: int | None = DEFAULT_MAX_CANDIDATES,
    env: BestResponseEnvironment | None = None,
) -> BestResponseResult:
    """Provably optimal strategy for player ``u`` (exponential in budget).

    NP-hard in general (Theorem 2.1); intended for certification and for
    the small budgets that dominate the paper's instances. Pass ``env``
    (e.g. from :class:`~repro.core.distance_cache.DistanceCache`) to
    reuse an incrementally maintained distance substrate.
    """
    env = _coerce_env(graph, u, version, env)
    current = _current_strategy(graph, u)
    current_cost = env.evaluate(current)
    cost, strategy, evaluated = env.exact(
        len(current), current=current, max_candidates=max_candidates
    )
    return BestResponseResult(
        player=u,
        cost=cost,
        strategy=strategy,
        current_cost=current_cost,
        evaluated=evaluated,
        exact=True,
    )


def greedy_best_response(
    graph: OwnedDigraph,
    u: int,
    version: Version | str,
    *,
    env: BestResponseEnvironment | None = None,
) -> BestResponseResult:
    """Greedy heuristic response for player ``u`` (polynomial)."""
    env = _coerce_env(graph, u, version, env)
    current = _current_strategy(graph, u)
    current_cost = env.evaluate(current)
    cost, strategy, evaluated = env.greedy(len(current))
    # Never report a "response" worse than staying put: the greedy search
    # space does not include the current strategy, so guard explicitly.
    if cost >= current_cost:
        cost, strategy = current_cost, current
    return BestResponseResult(
        player=u,
        cost=cost,
        strategy=tuple(sorted(strategy)),
        current_cost=current_cost,
        evaluated=evaluated,
        exact=False,
    )


def swap_best_response(
    graph: OwnedDigraph,
    u: int,
    version: Version | str,
    *,
    env: BestResponseEnvironment | None = None,
) -> BestResponseResult:
    """Best single-arc swap for player ``u`` (polynomial).

    A profile stable under these moves for every player is a *weak
    equilibrium* in the sense of Section 6 of the paper.
    """
    env = _coerce_env(graph, u, version, env)
    current = _current_strategy(graph, u)
    current_cost = env.evaluate(current)
    cost, strategy, evaluated = env.best_swap(current)
    return BestResponseResult(
        player=u,
        cost=cost,
        strategy=strategy,
        current_cost=current_cost,
        evaluated=evaluated,
        exact=False,
    )
