"""Shared-memory pool of hot distance matrices.

Sweep workers and census shards repeatedly need the same all-pairs
substrates — ``U(G)`` of a task's start realization, the engine state at
a shard's Gray-walk start rank — and, before this module, every process
rebuilt them from scratch with a full batched BFS/SSSP.
:class:`MatrixPool` removes that redundancy: the owner computes each
matrix once, publishes it into a :mod:`multiprocessing.shared_memory`
segment, and every worker *attaches* a zero-copy read-only
``np.ndarray`` view instead of rebuilding. Engines adopt attached views
through :meth:`DistanceEngine.from_snapshot
<repro.graphs.engine.DistanceEngine.from_snapshot>` under a
**copy-on-write epoch guard**: the adopted buffer is never written — the
first delta repair copies into private memory — so a reader in one
process can never observe another worker's mid-repair matrix.

Segment lifecycle and ownership contract
----------------------------------------
* **Write-once.** A segment's content is immutable from the moment
  :meth:`MatrixPool.publish` returns. Republishing an existing key is
  idempotent (the existing handle comes back); a *changed* graph state
  is a *different* key — keys embed ``(instance id, graph revision,
  weights revision)`` via :func:`pool_key` — so stale content can never
  be served for a mutated graph.
* **One owner.** The process that created the pool owns every segment
  and is the only one that ever unlinks. Workers (forked or spawned)
  only attach and read; they never unlink, and they do not need to
  close — their mappings die with the process.
* **Bounded.** The registry is an LRU bounded by ``max_segments``.
  Eviction unlinks the segment *name*; POSIX keeps the underlying
  memory alive until the last attached mapping is closed, so workers
  holding views of an evicted segment keep reading valid data — only
  new attaches miss and fall back to a rebuild.
* **Cleanup.** :meth:`MatrixPool.close` (also registered ``atexit``)
  closes and unlinks every live segment. If local read-only views are
  still alive, the ``close`` of the owner's mapping is skipped (numpy
  holds the buffer) but the name is still unlinked, so nothing outlives
  the process either way.
* **Crash safety / ``resource_tracker``.** Segment *creation* registers
  the name with the owning process's ``resource_tracker``; if the owner
  dies without unlinking, the tracker unlinks leftover segments at
  shutdown (with the standard "leaked shared_memory objects" warning —
  the crash-cleanup backstop working as designed). Attaching in Python
  < 3.13 *also* registers the name in the attaching process, which
  would make a worker's tracker try to clean — and warn about —
  segments it does not own; :meth:`SegmentHandle.attach` therefore
  immediately unregisters non-owner attachments, restoring the
  one-owner contract. A clean run produces no tracker warnings.

Key discipline
--------------
Keys are opaque picklable tuples chosen by the caller. Two conventions
are used in this repo:

* :func:`pool_key` — ``(instance id, graph revision, weights
  revision)`` for graph-state-addressed entries (the cross-sweep cache
  fix: instance ids are process-unique and never reused, so two
  same-size instances can never alias);
* content keys — e.g. ``(n, profile_key)`` — when independently built
  graphs in different processes must find the same entry (sweep
  warm-start prototypes).

Disk tier (two-level cache)
---------------------------
A pool constructed with ``store=`` (a
:class:`~repro.core.pool_store.PoolStore`) gains a persistent mmap tier
below the shm tier, turning :meth:`MatrixPool.fetch` into a two-level
lookup: **shm hit** (a live segment under the key) → **mmap hit** (a
store file under the *content digest*, promoted into a fresh shm
segment so later attaches are zero-syscall) → **miss** (the caller
builds, then :meth:`publish` with ``digest=`` writes through to both
tiers). The tiers use different key schemes on purpose:

* shm keys may embed process-local state (instance ids, shard ranks) —
  segments die with their owner, so process-unique names are safe;
* store keys are **content digests** (:func:`~repro.core.pool_store.
  store_digest` over graph arcs, weights and kind tags), because the
  whole point of the disk tier is that a *fresh process* — which has
  different instance ids — must find the matrices a dead one published.

Store files live under the store directory as ``<digest>.mat``: a
CRC-framed header (field layout, data-region CRC32) plus 64-byte
aligned payloads, published atomically (pid-unique temp file + fsync +
``os.replace``) and re-verified end to end on every attach — torn or
bit-flipped files degrade to a rebuild-and-republish miss, never a
wrong matrix. The store is LRU-bounded by a byte budget tracked in an
``INDEX.json`` manifest; crash cleanup is
:meth:`~repro.core.pool_store.PoolStore.gc` (CLI: ``repro-bbncg pool
gc``), which reaps dead writers' temp files, quarantines corrupt
entries, rebuilds the index from the self-describing files and
re-enforces the budget. Store write-throughs are best-effort: a full
disk degrades the pool to shm-only (counted in
``stats["store_errors"]``), it never fails a publish.
"""

from __future__ import annotations

import atexit
import itertools
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Iterable, Mapping

import numpy as np

from ..errors import PoolError

__all__ = [
    "MatrixPool",
    "SegmentHandle",
    "pool_key",
    "attach_views",
    "detach_all",
    "sweep_orphan_segments",
]

#: Default cap on simultaneously live segments per pool.
DEFAULT_MAX_SEGMENTS: int = 32

#: Field offsets inside a segment are aligned to this many bytes.
_ALIGN: int = 64

#: Every pool segment is named ``repro_pool_<owner pid>_<seq>`` so a
#: later process can recognise — and reap — segments whose owner died
#: before its cleanup (atexit + resource tracker) could run (SIGKILL,
#: power loss, a fault-injected worker that happened to own a pool).
_SEGMENT_PREFIX: str = "repro_pool"

#: Process-local monotonically increasing segment sequence number.
_SEGMENT_SEQ: "itertools.count | None" = None


def _next_segment_name() -> str:
    """Fresh owner-tagged segment name (unique within this process)."""
    global _SEGMENT_SEQ
    if _SEGMENT_SEQ is None:
        _SEGMENT_SEQ = itertools.count()
    return f"{_SEGMENT_PREFIX}_{os.getpid()}_{next(_SEGMENT_SEQ)}"


def sweep_orphan_segments() -> int:
    """Unlink pool segments whose owning process no longer exists.

    Scans the shared-memory filesystem for ``repro_pool_<pid>_*`` names,
    probes each owner with ``kill(pid, 0)``, and unlinks segments of
    dead owners — the cleanup of last resort for runs whose parent was
    SIGKILLed past every in-process backstop. Invoked at census scan
    start (and sweep pool warm-up), so leaked segments live at most
    until the next scan. Returns the number of segments removed; a
    platform without a scannable segment directory sweeps nothing.
    """
    shm_dir = "/dev/shm"
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return 0
    me = os.getpid()
    removed = 0
    for name in names:
        if not name.startswith(_SEGMENT_PREFIX + "_"):
            continue
        parts = name[len(_SEGMENT_PREFIX) + 1 :].split("_")
        try:
            pid = int(parts[0])
        except (IndexError, ValueError):
            continue
        if pid == me:
            continue  # live segments of this very process
        try:
            os.kill(pid, 0)
            continue  # owner is alive: not an orphan
        except ProcessLookupError:
            pass  # owner is gone: reap below
        except PermissionError:
            continue  # owner is alive (just not ours to signal)
        try:
            os.unlink(os.path.join(shm_dir, name))
            removed += 1
        except OSError:  # pragma: no cover - raced with another sweeper
            pass
    return removed

#: Process-local cache of attached segments, ``name -> SharedMemory``.
#: Forked workers inherit the owner's entries (and their mappings), so
#: an attach in a fork costs zero syscalls; spawned workers populate it
#: on first attach. Entries are kept alive for the process lifetime —
#: views handed out alias these buffers.
_ATTACHED: "dict[str, shared_memory.SharedMemory]" = {}


def pool_key(graph, *, weights_revision: int = 0) -> tuple:
    """Canonical pool key of one graph *state*.

    ``(instance id, graph revision, weights revision)`` — the triple the
    tentpole caches are keyed by. The instance id is process-unique and
    never reused (see :attr:`OwnedDigraph.instance_id
    <repro.graphs.digraph.OwnedDigraph.instance_id>`), so a key can
    never alias another instance; the revisions pin the exact mutation
    state the published matrices describe.
    """
    return ("graph", graph.instance_id, graph.revision, int(weights_revision))


def _unregister_nonowner(shm: shared_memory.SharedMemory) -> None:
    """Drop a non-owner attachment from this process's resource tracker.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment
    with the attaching process's ``resource_tracker`` as if it were the
    owner; left in place, a spawned worker's tracker would try to unlink
    (and warn about) segments the parent still owns. Harmless if the
    interpreter version no longer registers attachments.

    Expected, version-dependent failures (no tracker module/attribute,
    the segment was never registered, the tracker pipe is gone) are
    swallowed; anything else is surfaced as a :class:`RuntimeWarning`
    rather than silently discarded — a blanket ``pass`` here once hid
    real bugs in the cleanup path.

    Multiprocessing children (forked or spawned) are skipped entirely:
    they inherit the *owner's* tracker fd, so an unregister from a
    worker would erase the owner's own registration — the owner's later
    unlink then KeyErrors inside the shared tracker process. Their
    duplicate attach-registration is an idempotent set-add the owner's
    unlink cleans up anyway.
    """
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        return
    try:  # pragma: no cover - depends on interpreter version
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except (ImportError, AttributeError, KeyError, OSError):
        pass
    except Exception as exc:  # pragma: no cover - unexpected tracker state
        warnings.warn(
            f"unexpected error unregistering shared segment {shm.name!r} "
            f"from the resource tracker: {exc!r}",
            RuntimeWarning,
            stacklevel=2,
        )


def attach_views(
    name: str, fields: "Iterable[tuple[str, str, tuple[int, ...], int]]"
) -> "dict[str, np.ndarray]":
    """Read-only views of every field of the named segment.

    The segment object is cached process-locally so repeated attaches
    are free and the buffer outlives the call. Raises
    :class:`~repro.errors.PoolError` when the name no longer exists
    (evicted or owner exited) — callers treat that as a miss.
    """
    shm = _ATTACHED.get(name)
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError as exc:
            raise PoolError(f"shared segment {name!r} no longer exists") from exc
        _unregister_nonowner(shm)
        _ATTACHED[name] = shm
    views: "dict[str, np.ndarray]" = {}
    for fname, dtype, shape, offset in fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views[fname] = view
    return views


def detach_all() -> None:
    """Close every process-local attachment (test/shutdown helper).

    Attachments whose views are still referenced cannot release their
    buffer (numpy pins it); those are left mapped and simply dropped
    from the cache.
    """
    for name in list(_ATTACHED):
        shm = _ATTACHED.pop(name)
        try:
            shm.close()
        except BufferError:  # a view still aliases the buffer
            pass


@dataclass(frozen=True)
class SegmentHandle:
    """Picklable description of one published segment.

    Carries everything a worker needs to attach: the shared-memory
    name, the field layout (name, dtype string, shape, byte offset),
    and the pool epoch at publish time. Handles travel inside worker
    payloads; the arrays themselves never do.
    """

    name: str
    key: tuple
    epoch: int
    nbytes: int
    fields: "tuple[tuple[str, str, tuple[int, ...], int], ...]" = field(default=())

    def attach(self) -> "dict[str, np.ndarray]":
        """Zero-copy read-only views of the segment's arrays."""
        return attach_views(self.name, self.fields)


class MatrixPool:
    """LRU-bounded registry of write-once shared-memory array bundles.

    Parameters
    ----------
    max_segments:
        Live-segment cap; publishing beyond it unlinks the least
        recently used segment (attached readers keep their mappings).
    store:
        Optional :class:`~repro.core.pool_store.PoolStore` enabling the
        persistent mmap tier (see *Disk tier* in the module docstring):
        :meth:`fetch` falls back to — and promotes from — the store,
        and :meth:`publish` with ``digest=`` writes through to it.

    Notes
    -----
    The pool is an *owner-side* object: workers never hold a
    ``MatrixPool``, only :class:`SegmentHandle`\\ s. See the module
    docstring for the full lifecycle/ownership contract.
    """

    def __init__(
        self, *, max_segments: int = DEFAULT_MAX_SEGMENTS, store=None
    ) -> None:
        if max_segments < 1:
            raise PoolError(f"max_segments must be positive, got {max_segments}")
        self._max_segments = int(max_segments)
        self._segments: "OrderedDict[tuple, tuple[SegmentHandle, shared_memory.SharedMemory]]" = (
            OrderedDict()
        )
        self._epoch = 0
        self._closed = False
        self._store = store
        self.stats = {
            "published": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "disk_hits": 0,
            "disk_misses": 0,
            "promotions": 0,
            "store_errors": 0,
        }
        atexit.register(self.close)

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Counter bumped on every publish (segment generation stamp)."""
        return self._epoch

    @property
    def store(self):
        """The persistent mmap tier, or ``None`` for an shm-only pool."""
        return self._store

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, key: tuple) -> bool:
        return key in self._segments

    def keys(self) -> "list[tuple]":
        """Live keys, least recently used first."""
        return list(self._segments)

    # ------------------------------------------------------------------
    def publish(
        self,
        key: tuple,
        arrays: "Mapping[str, np.ndarray]",
        *,
        digest: "str | None" = None,
    ) -> SegmentHandle:
        """Copy ``arrays`` into a fresh segment registered under ``key``.

        Idempotent: an existing key returns its existing handle without
        touching the segment (write-once — there is no way to mutate
        published content through the pool). The copy is the only time
        the data is ever written; every later consumer reads the same
        physical pages.

        ``digest`` (with a ``store=`` pool) additionally writes the
        bundle through to the persistent mmap tier under that content
        digest — best-effort: a store failure is counted in
        ``stats["store_errors"]`` and the shm publish stands.
        """
        if self._closed:
            raise PoolError("pool is closed")
        if not arrays:
            raise PoolError("cannot publish an empty array bundle")
        if digest is not None:
            self._store_publish(digest, arrays)
        existing = self._segments.get(key)
        if existing is not None:
            self._segments.move_to_end(key)
            return existing[0]
        layout = []
        offset = 0
        prepared = []
        for fname, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            layout.append((str(fname), arr.dtype.str, tuple(arr.shape), offset))
            prepared.append((arr, offset))
            offset += arr.nbytes
        while True:
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, offset), name=_next_segment_name()
                )
                break
            except FileExistsError:  # pragma: no cover - stale name collision
                continue  # the counter advances; the next name is fresh
        for arr, off in prepared:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[...] = arr
            del dst  # drop the exported buffer so close() stays legal
        self._epoch += 1
        handle = SegmentHandle(
            name=shm.name,
            key=key,
            epoch=self._epoch,
            nbytes=offset,
            fields=tuple(layout),
        )
        # Seed the attach cache with the owner's own mapping: parent-side
        # attaches reuse it (no double-open, and the owner's tracker
        # registration stays intact), and forked workers inherit it.
        _ATTACHED[shm.name] = shm
        self._segments[key] = (handle, shm)
        self.stats["published"] += 1
        while len(self._segments) > self._max_segments:
            _, (old_handle, old_shm) = self._segments.popitem(last=False)
            self._release(old_handle, old_shm)
            self.stats["evictions"] += 1
        return handle

    def lookup(self, key: tuple) -> "SegmentHandle | None":
        """Handle for ``key`` (refreshing its LRU slot), else ``None``."""
        entry = self._segments.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self._segments.move_to_end(key)
        self.stats["hits"] += 1
        return entry[0]

    def fetch(
        self, key: tuple, *, digest: "str | None" = None
    ) -> "SegmentHandle | None":
        """Two-level lookup: shm hit → mmap hit (promoted) → ``None``.

        The shm tier is probed under ``key``; on a miss, a ``store=``
        pool probes the persistent tier under the content ``digest``
        and *promotes* a hit — the verified read-only mmap views are
        republished as a fresh shm segment under ``key``, so every
        later consumer attaches shared memory as if the matrix had been
        built here. ``None`` means both tiers missed (or the store copy
        failed verification and was quarantined): build, then
        :meth:`publish` with the same ``digest`` to fill both tiers.
        """
        handle = self.lookup(key)
        if handle is not None:
            return handle
        if self._store is None or digest is None:
            return None
        views = self._store.attach(digest)
        if views is None:
            self.stats["disk_misses"] += 1
            return None
        self.stats["disk_hits"] += 1
        self.stats["promotions"] += 1
        return self.publish(key, views)

    def _store_publish(
        self, digest: str, arrays: "Mapping[str, np.ndarray]"
    ) -> None:
        """Best-effort write-through to the persistent tier."""
        if self._store is None:
            return
        try:
            self._store.publish(digest, arrays)
        except (PoolError, OSError) as exc:
            self.stats["store_errors"] += 1
            warnings.warn(
                f"matrix pool could not persist digest {digest!r}: {exc!r}; "
                f"continuing shm-only",
                RuntimeWarning,
                stacklevel=3,
            )

    def attach(self, key: tuple) -> "dict[str, np.ndarray] | None":
        """Owner-side convenience: :meth:`lookup` + attach in one call."""
        handle = self.lookup(key)
        return None if handle is None else handle.attach()

    def evict(self, key: tuple) -> bool:
        """Unlink one segment by key; ``True`` if it was live."""
        entry = self._segments.pop(key, None)
        if entry is None:
            return False
        self._release(*entry)
        self.stats["evictions"] += 1
        return True

    def close(self) -> None:
        """Unlink every live segment (idempotent; runs atexit too)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        while self._segments:
            _, entry = self._segments.popitem(last=False)
            self._release(*entry)

    def __enter__(self) -> "MatrixPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _release(handle: SegmentHandle, shm: shared_memory.SharedMemory) -> None:
        """Close + unlink one segment, tolerating live local views.

        A failing ``close`` must never leak the segment *name*: the
        unlink below still runs, and unexpected close errors are
        reported as a :class:`RuntimeWarning` instead of either
        propagating (skipping the unlink) or vanishing silently.
        """
        _ATTACHED.pop(handle.name, None)
        try:
            shm.close()
        except BufferError:
            # A local read-only view still aliases the buffer; the
            # mapping stays until the view dies, but the name must go.
            pass
        except OSError as exc:
            warnings.warn(
                f"error closing shared segment {handle.name!r}: {exc!r}; "
                f"unlinking its name anyway",
                RuntimeWarning,
                stacklevel=2,
            )
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
