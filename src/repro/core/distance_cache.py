"""Shared distance engines kept coherent with one evolving realization.

Best-response dynamics needs two families of distance matrices: the
underlying graph ``U(G)`` (social cost, Lemma 2.2 skips) and, per
deviating player ``u``, the punctured substrate ``U(G - u)`` that every
candidate strategy of ``u`` is evaluated against. Both change by a few
edges per dynamics step, so :class:`DistanceCache` keeps one
:class:`~repro.graphs.engine.DistanceEngine` per substrate and repairs
it lazily on access instead of recomputing all-pairs BFS from scratch.

Coherence is revision-driven, not notification-driven: every access
compares the graph's mutation counter with the revision the engine last
synced to, and on mismatch hands the engine the current CSR to diff.
Out-of-band mutations (callers poking the graph directly) are therefore
picked up automatically — there is no way to read distances of a stale
substrate, and a changed-then-rolled-back graph syncs as a no-op.

Two structural facts make the per-player family cheap:

* ``U(G - u)`` does not depend on ``u``'s own strategy, so a player's
  engine survives that player's own moves untouched;
* every other player's move rewires only edges incident to that mover,
  which is exactly the single-pivot delta the engine repairs fastest.

Memory: each cached player engine holds an ``(n, n)`` matrix (int32
for every realistic ``n``). ``max_player_engines`` (default: a ~256 MB
budget) bounds the total; least-recently-used engines are evicted and
rebuilt on re-entry, which degrades gracefully to the from-scratch
cost, never worse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..errors import GraphError, VertexError
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import cinf
from ..graphs.engine import DistanceEngine
from ..graphs.weighted_engine import (
    EdgeWeightMap,
    WeightedCSR,
    WeightedDistanceEngine,
    weighted_csr_from_csr,
    weighted_csr_without_vertex,
)
from .best_response import BestResponseEnvironment
from .costs import Version

__all__ = ["DistanceCache", "WeightedDistanceCache"]

#: Default memory budget for per-player engines (bytes of distance rows).
_DEFAULT_CACHE_BYTES: int = 256 * 1024 * 1024


class _StepHistory:
    """Bounded replay log of small sync steps (shared cache machinery).

    Both caches forward tiny deltas into lagging player engines by
    replaying recorded ops instead of rebuilding punctured substrates;
    the token/history/chain bookkeeping is substrate-agnostic and lives
    here once. ``token`` identifies the current sync generation; each
    :meth:`advance` either records the ops of the step just crossed or
    — for an unforwardable step — breaks every chain that would have to
    cross it.
    """

    __slots__ = ("token", "_history", "_max_steps")

    def __init__(self, max_steps: int) -> None:
        self.token = 0
        self._history: "OrderedDict[int, tuple[int, tuple]]" = OrderedDict()
        self._max_steps = max_steps

    def advance(self, ops: "tuple | None") -> None:
        """Bump the token, recording ``ops`` (``None`` breaks chains)."""
        if ops is None:
            self._history.clear()
        else:
            self._history[self.token] = (self.token + 1, ops)
            while len(self._history) > self._max_steps:
                self._history.popitem(last=False)
        self.token += 1

    def chain(self, from_token: "int | None") -> "list[tuple] | None":
        """Replayable op lists covering ``from_token -> token``.

        ``None`` when any intermediate step is unknown (history
        evicted, or a step too large to forward) — the caller then
        falls back to the full substrate rebuild + diff.
        """
        if from_token is None:
            return None
        out: "list[tuple]" = []
        t = from_token
        while t != self.token:
            nxt = self._history.get(t)
            if nxt is None:
                return None
            out.append(nxt[1])
            t = nxt[0]
        return out

    def clear(self) -> None:
        """Forget every recorded step (token keeps counting)."""
        self._history.clear()


class DistanceCache:
    """Lazily repaired :class:`DistanceEngine` pool for one graph.

    Parameters
    ----------
    graph:
        The realization to track. The cache never mutates it.
    max_player_engines:
        Cap on simultaneously cached per-player engines (LRU eviction).
        Defaults to whatever fits a ~256 MB matrix budget, at least one.
    dirty_fraction:
        Forwarded to every engine; a float fixes the delta-vs-rebuild
        cutoff, ``"adaptive"`` lets each engine tune it from its own
        cost EMAs — see :mod:`repro.graphs.engine` for the policy.
    rows:
        Forwarded to every engine the cache builds: ``"lazy"`` starts
        each matrix unmaterialised with row-on-demand reads (the cold
        single-verdict regime — :meth:`query` / :meth:`query_punctured`
        then cost one bounded bidirectional search instead of a full
        build), ``None`` keeps the engines' default full
        materialisation. Adopted ``base_engine``/``player_engines`` are
        used as constructed either way.
    base_engine:
        Optional pre-warmed ``U(G)`` engine adopted instead of building
        one on first access — e.g. a copy-on-write engine attached from
        a :class:`~repro.core.matrix_pool.MatrixPool` segment. The
        caller asserts it describes ``graph``'s *current* CSR; the
        golden suites pin that contract.
    player_engines:
        Optional pre-warmed per-player ``U(G - u)`` engines (mapping
        ``u -> engine``), adopted under the same contract as
        ``base_engine`` — e.g. copy-on-write engines attached from a
        pool's per-player snapshot bundle. Adopted engines replace the
        initial all-pairs BFS of their player's first access.

    Step forwarding
    ---------------
    When one revision bump changed at most two undirected edges — a
    fold's single removal, or a census Gray step's remove-one-add-one
    arc swap — the ops are recorded in a bounded step *history* and
    replayed into lagging player engines through the diff-free
    :meth:`~repro.graphs.engine.DistanceEngine.remove_edge` /
    :meth:`~repro.graphs.engine.DistanceEngine.add_edge` entry points,
    skipping the per-player punctured-substrate rebuild plus edge-set
    diff entirely (ops incident to ``u`` are dropped — the puncture
    removes those edges from ``U(G - u)`` on both sides of the step).
    The history keeps the last few steps so engines that skipped a
    revision (screened players) still catch up by replay; any engine
    lagging across an unknown or oversized step falls back to the full
    substrate diff of :meth:`player`.
    """

    def __init__(
        self,
        graph: OwnedDigraph,
        *,
        max_player_engines: int | None = None,
        dirty_fraction: "float | str | None" = None,
        rows: "str | None" = None,
        base_engine: "DistanceEngine | None" = None,
        player_engines: "dict[int, DistanceEngine] | None" = None,
    ) -> None:
        self._graph = graph
        self._max_players_requested = max_player_engines
        self._max_players = self._resolve_max_players(graph.n)
        self._engine_kwargs = (
            {} if dirty_fraction is None else {"dirty_fraction": dirty_fraction}
        )
        self._lazy_rows = rows == "lazy"
        if rows is not None:
            self._engine_kwargs["rows"] = rows  # engines validate the value
        self._base: DistanceEngine | None = None
        self._players: "OrderedDict[int, DistanceEngine]" = OrderedDict()
        self._player_tokens: dict[int, int] = {}
        self._envs: dict[tuple[int, Version], tuple[BestResponseEnvironment, int]] = {}
        self._csr = None
        self._seen_revision: "int | None" = None
        self._steps = _StepHistory(self._MAX_STEP_HISTORY)
        self._base_token = -1
        self._lock = threading.RLock()
        self.evictions = 0
        self.env_hits = 0
        self.step_forwards = 0
        if base_engine is not None or player_engines:
            # Adopted engines describe the graph's *current* substrate:
            # seed the sync state so their first access replays nothing.
            self._csr = graph.undirected_csr()
            self._seen_revision = graph.revision
            self._steps.advance(None)
        if base_engine is not None:
            if base_engine.n != graph.n:
                raise GraphError(
                    f"base engine is over {base_engine.n} vertices, "
                    f"graph has {graph.n}"
                )
            self._base = base_engine
            self._base_token = self._steps.token
        if player_engines:
            for u, engine in player_engines.items():
                if not 0 <= int(u) < graph.n:
                    raise VertexError(int(u), graph.n)
                if engine.n != graph.n:
                    raise GraphError(
                        f"player engine for {u} is over {engine.n} vertices, "
                        f"graph has {graph.n}"
                    )
                self._players[int(u)] = engine
                self._player_tokens[int(u)] = self._steps.token
            while len(self._players) > self._max_players:
                evicted, _ = self._players.popitem(last=False)
                self._player_tokens.pop(evicted, None)
                self.evictions += 1

    def _resolve_max_players(self, n: int) -> int:
        """Engine-count cap for instance size ``n`` (at least one).

        With no explicit request, sized so the matrices fit the ~256 MB
        budget: engines store int32 whenever the sentinel arithmetic
        fits (every realistic ``n``), int64 otherwise.
        """
        if self._max_players_requested is not None:
            return max(1, int(self._max_players_requested))
        itemsize = 4 if 2 * cinf(n) < 2**31 else 8
        per_engine = max(1, n * n * itemsize)
        return max(1, min(n, _DEFAULT_CACHE_BYTES // per_engine))

    @property
    def graph(self) -> OwnedDigraph:
        """The tracked realization."""
        return self._graph

    @property
    def lazy_rows(self) -> bool:
        """Whether cache-built engines start in row-on-demand mode."""
        return self._lazy_rows

    def rebind(self, graph: OwnedDigraph) -> None:
        """Point the cache at another graph of the same size.

        Engines (and their preallocated matrices) are kept, and so is
        the previous substrate: the next access diffs content against
        the new graph's — one arc apart (a fold onto a working copy)
        even forwards as a single-op step, unrelated graphs degrade to
        buffer-reusing rebuilds. Sweep workers use this to recycle
        buffers across tasks.
        """
        if graph.n != self._graph.n:
            self._base = None
            self._players.clear()
            self._player_tokens.clear()
            self._steps.clear()
            self._csr = None
            self._base_token = -1
            self._max_players = self._resolve_max_players(graph.n)
        self._graph = graph
        self._seen_revision = None
        self._envs.clear()

    def trim(self) -> None:
        """Drop the per-player engines (and environments), keep the base.

        The per-player family dominates a cache's footprint (up to
        ``max_player_engines`` full matrices); a cache parked for later
        recycling — e.g. retired from the sweep pool — only needs its
        base buffer to stay cheap to revive.
        """
        self._players.clear()
        self._player_tokens.clear()
        self._envs.clear()

    #: Steps kept replayable; engines lagging further fall back to the
    #: full substrate rebuild + diff of :meth:`player`.
    _MAX_STEP_HISTORY: int = 8

    #: The op detector is for the tiny-substrate census/dynamics regime;
    #: above this many edges the per-sync set diff is not worth it.
    _MAX_STEP_EDGES: int = 512

    def _detect_step_ops(self, old, new) -> "tuple[tuple, ...] | None":
        """Ops of one sync step when it is small enough to forward.

        Returns ``(("rm"|"add", x, y), ...)`` (removals first) when the
        step changed at most two undirected edges — exactly a fold's
        single removal or a Gray step's arc swap — else ``None``.
        """
        from ..graphs.engine import _edge_ids

        # indices holds two directed entries per undirected edge.
        if old is None or max(old.indices.size, new.indices.size) > (
            2 * self._MAX_STEP_EDGES
        ):
            return None
        if abs(int(old.indices.size) - int(new.indices.size)) > 4:
            return None  # more than two edges apart: never forwardable
        old_set = set(_edge_ids(old).tolist())
        new_set = set(_edge_ids(new).tolist())
        removed = sorted(old_set - new_set)
        added = sorted(new_set - old_set)
        if not 1 <= len(removed) + len(added) <= 2:
            return None
        n = old.n
        return tuple(("rm", eid // n, eid % n) for eid in removed) + tuple(
            ("add", eid // n, eid % n) for eid in added
        )

    def _sync(self):
        """Refresh the ``U(G)`` substrate, the token and the step history."""
        rev = self._graph.revision
        if self._csr is None or self._seen_revision != rev:
            new_csr = self._graph.undirected_csr()
            self._steps.advance(self._detect_step_ops(self._csr, new_csr))
            self._csr = new_csr
            self._seen_revision = rev
        return self._csr

    # ------------------------------------------------------------------
    def base(self) -> DistanceEngine:
        """Engine over ``U(G)``, synced to the graph's current revision."""
        csr = self._sync()
        if self._base is None:
            self._base = DistanceEngine(csr, **self._engine_kwargs)
        elif self._base_token != self._steps.token:
            self._base.update(csr)
        self._base_token = self._steps.token
        return self._base

    def base_if_fresh(self) -> DistanceEngine | None:
        """The ``U(G)`` engine only if it is already synced, else ``None``.

        Point reads (one lemma check, one eccentricity) are cheaper as a
        single BFS than as a full matrix repair, so callers that only
        need a row use the maintained matrix when it happens to be
        current — e.g. for every player of a converged round, right
        after the round-boundary :meth:`base` sync — and fall back to
        the direct computation otherwise, instead of forcing a sync.
        """
        if (
            self._base is not None
            and self._seen_revision == self._graph.revision
            and self._base_token == self._steps.token
        ):
            return self._base
        return None

    def query(self, u: int, v: int) -> int:
        """Single ``dist(u, v)`` in ``U(G)`` (``Cinf`` across components).

        Tier-1 read: a fresh (or lazy, hence cheap to sync) base engine
        answers from whatever it has materialised; a cold full-mode
        cache answers with one bounded bidirectional search on the
        substrate — never a full all-pairs build.
        """
        csr = self._sync()
        if self._lazy_rows or (
            self._base is not None and self._base_token == self._steps.token
        ):
            return self.base().query(u, v)
        from ..graphs.query import point_to_point

        return point_to_point(csr, u, v, inf=cinf(csr.n))

    @property
    def lock(self) -> "threading.RLock":
        """Reentrant lock serialising engine access across threads.

        The cache's engines are single-threaded state machines; an
        asyncio server hands them between the event loop and its
        per-instance compute thread. :meth:`batch_query` takes this
        lock itself; callers composing multi-call sequences (sync +
        environment + evaluate) hold it around the whole sequence —
        reentrancy makes nesting with :meth:`batch_query` safe.
        """
        return self._lock

    def batch_query(self, pairs: "np.ndarray | list[tuple[int, int]]") -> np.ndarray:
        """Distances for many ``(u, v)`` pairs in ``U(G)`` — one sweep.

        The thread-safe batched entry the serve layer's micro-batching
        dispatcher coalesces concurrent requests into: ``k >= 2`` pairs
        materialise the union of needed rows with **one** batched
        flat-frontier sweep on the base engine (cold full-mode caches
        route through
        :func:`~repro.graphs.query.batched_pair_distances`, same single
        sweep without building an engine), while a singleton batch
        falls back to :meth:`query`'s bidirectional point kernel.
        Returns an ``int64`` array, each entry bit-identical to the
        corresponding :meth:`query` call.
        """
        with self._lock:
            p = np.asarray(pairs, dtype=np.int64)
            if p.ndim != 2 or p.shape[1] != 2:
                raise GraphError(
                    f"pairs must be a (k, 2) array of (u, v) endpoints, "
                    f"got shape {p.shape}"
                )
            n = self._graph.n
            if p.size and (p.min() < 0 or p.max() >= n):
                bad = int(p.min()) if p.min() < 0 else int(p.max())
                raise VertexError(bad, n)
            k = p.shape[0]
            if k == 0:
                return np.empty(0, dtype=np.int64)
            if k == 1:
                return np.asarray(
                    [self.query(int(p[0, 0]), int(p[0, 1]))], dtype=np.int64
                )
            csr = self._sync()
            if self._lazy_rows or (
                self._base is not None and self._base_token == self._steps.token
            ):
                engine = self.base()
                engine.ensure_rows(np.unique(p[:, 0]))
                return np.asarray(
                    [engine.query(int(u), int(v)) for u, v in p], dtype=np.int64
                )
            from ..graphs.query import batched_pair_distances

            return batched_pair_distances(csr, p, inf=cinf(csr.n))

    def query_punctured(self, player: int, u: int, v: int) -> int:
        """Single ``dist(u, v)`` in the punctured ``U(G - player)``.

        The single-pair form of the per-player family — what one swap
        check or Lemma 2.2 deviation screen needs. Same tiering as
        :meth:`query`: a cached-and-synced (or lazy) player engine
        answers directly, a cold full-mode cache runs one bounded
        bidirectional search on the punctured substrate without
        building the engine.
        """
        if not 0 <= player < self._graph.n:
            raise VertexError(player, self._graph.n)
        self._sync()
        engine = self._players.get(player)
        synced = (
            engine is not None
            and self._player_tokens.get(player) == self._steps.token
        )
        if self._lazy_rows or synced:
            return self.player(player).query(u, v)
        from ..graphs.query import point_to_point

        csr = self._graph.undirected_csr_without(player)
        return point_to_point(csr, u, v, inf=cinf(csr.n))

    def player(self, u: int) -> DistanceEngine:
        """Engine over ``U(G - u)``, synced to the current revision.

        Lagging engines catch up by replaying the recorded step ops
        (see the class docstring) when every intervening step is known
        and small; otherwise by diffing the freshly built punctured
        substrate.
        """
        if not 0 <= u < self._graph.n:
            raise VertexError(u, self._graph.n)
        self._sync()
        engine = self._players.get(u)
        if engine is None:
            engine = DistanceEngine(
                self._graph.undirected_csr_without(u), **self._engine_kwargs
            )
            self._players[u] = engine
            if len(self._players) > self._max_players:
                evicted, _ = self._players.popitem(last=False)
                self._player_tokens.pop(evicted, None)
                for version in Version:
                    self._envs.pop((evicted, version), None)
                self.evictions += 1
        elif self._player_tokens.get(u) != self._steps.token:
            chain = self._steps.chain(self._player_tokens.get(u))
            if chain is not None:
                # Every step between the engine's token and now is a
                # known small delta: replay them through the diff-free
                # entry points. Ops incident to ``u`` are skipped — the
                # puncture removes those edges from ``U(G - u)`` on both
                # sides of the step, so they change nothing.
                for ops in chain:
                    for kind, x, y in ops:
                        if x == u or y == u:
                            continue
                        if kind == "rm":
                            engine.remove_edge(x, y)
                        else:
                            engine.add_edge(x, y)
                self.step_forwards += 1
            else:
                engine.update(self._graph.undirected_csr_without(u))
        self._players.move_to_end(u)
        self._player_tokens[u] = self._steps.token
        return engine

    def environment(self, u: int, version: Version | str) -> BestResponseEnvironment:
        """Engine-backed evaluation substrate for player ``u``.

        The environment snapshots the engine's epoch; if the graph moves
        on afterwards, its evaluation calls raise
        :class:`~repro.errors.StaleDistanceError` instead of silently
        using outdated distances.

        Environments are themselves cached per ``(player, version)``:
        while the graph revision is unchanged, the previous round's
        in-neighbour sets and component labels are still exact, so the
        whole object is reused without touching the graph.
        """
        version = Version.coerce(version)
        key = (int(u), version)
        cached = self._envs.get(key)
        if cached is not None and cached[1] == self._graph.revision:
            self.env_hits += 1
            return cached[0]
        env = BestResponseEnvironment(self._graph, u, version, engine=self.player(u))
        self._envs[key] = (env, self._graph.revision)
        return env

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero every engine's counters (and the cache's own).

        Counters are cumulative over the cache's lifetime — including
        across :meth:`rebind` — so callers that want per-run numbers
        from a shared cache should reset before the run.
        """
        for engine in self._players.values():
            for key in engine.stats:
                engine.stats[key] = 0
        if self._base is not None:
            for key in self._base.stats:
                self._base.stats[key] = 0
        self.evictions = 0
        self.env_hits = 0
        self.step_forwards = 0

    def stats(self) -> dict[str, int]:
        """Aggregated engine counters (rebuilds/deltas/noops/rows/evictions).

        Cumulative since construction or the last :meth:`reset_stats` —
        a cache shared across several dynamics runs reports the total,
        not the last run's share.
        """
        total = {
            "rebuilds": 0,
            "deltas": 0,
            "noops": 0,
            "rows_recomputed": 0,
            "pendant_fixes": 0,
            "region_repairs": 0,
            "region_vertices": 0,
            "lazy_rows": 0,
            "lazy_invalidations": 0,
            "promotions": 0,
            "point_queries": 0,
        }
        engines = list(self._players.values())
        if self._base is not None:
            engines.append(self._base)
        for engine in engines:
            for key in total:
                total[key] += engine.stats[key]
        total["player_engines"] = len(self._players)
        total["evictions"] = self.evictions
        total["env_hits"] = self.env_hits
        total["step_forwards"] = self.step_forwards
        return total


class WeightedDistanceCache:
    """Lazily repaired :class:`WeightedDistanceEngine` pool for one graph.

    The weighted sibling of :class:`DistanceCache`: one engine per
    substrate (``U(G)`` and per-player ``U(G - u)``), each holding the
    full weighted distance matrix, repaired lazily on access. Coherence
    is keyed by *two* revision counters — the graph's mutation counter
    and the :class:`~repro.graphs.weighted_engine.EdgeWeightMap`
    revision — so both topology edits and out-of-band edge-weight edits
    are picked up on the next read; neither can serve stale distances.

    With ``edge_weights=None`` every edge has length 1 and the weighted
    engines produce matrices bit-identical to the BFS engines (same
    ``Cinf = n^2`` sentinel, same dtype), which is the regime the
    Section 6 machinery in :mod:`repro.analysis.weighted` runs in.

    Parameters
    ----------
    graph:
        The realization to track. The cache never mutates it.
    edge_weights:
        Optional mutable edge-length assignment; its revision counter
        joins the coherence key.
    max_player_engines:
        Cap on simultaneously cached per-player engines (LRU eviction),
        sized like :class:`DistanceCache`'s by default.
    max_weight:
        Headroom hint forwarded to every engine so later weight edits
        never overflow the ``inf`` sentinel.
    dirty_fraction:
        Delta-vs-rebuild cutoff forwarded to every engine.
    rows:
        Forwarded to every engine the cache builds: ``"lazy"`` for
        row-on-demand matrices (the cold single-verdict regime),
        ``None`` for the engines' default full materialisation.
    base_engine:
        Optional pre-warmed weighted ``U(G)`` engine adopted instead of
        building one on first access (a pool-attached copy-on-write
        engine). Must describe ``graph``'s current substrate under the
        current weights.
    """

    def __init__(
        self,
        graph: OwnedDigraph,
        *,
        edge_weights: "EdgeWeightMap | None" = None,
        max_player_engines: "int | None" = None,
        max_weight: "int | None" = None,
        dirty_fraction: "float | None" = None,
        rows: "str | None" = None,
        base_engine: "WeightedDistanceEngine | None" = None,
    ) -> None:
        self._graph = graph
        self._edge_weights = edge_weights
        self._max_players_requested = max_player_engines
        self._engine_kwargs: dict = {}
        if dirty_fraction is not None:
            self._engine_kwargs["dirty_fraction"] = dirty_fraction
        self._lazy_rows = rows == "lazy"
        if rows is not None:
            self._engine_kwargs["rows"] = rows  # engines validate the value
        if max_weight is not None:
            self._max_weight = int(max_weight)
        elif edge_weights is not None:
            self._max_weight = edge_weights.max_weight()
        else:
            self._max_weight = 1
        self._engine_kwargs["max_weight"] = self._max_weight
        self._max_players = self._resolve_max_players(graph.n)
        self._base: "WeightedDistanceEngine | None" = None
        self._base_token = -1
        self._players: "OrderedDict[int, WeightedDistanceEngine]" = OrderedDict()
        self._player_tokens: "dict[int, int]" = {}
        self._wcsr: "WeightedCSR | None" = None
        self._seen_key: "tuple[int, int] | None" = None
        # The _step forwarder: when one sync step changed at most two
        # edges (a fold's single removal; a census Gray step's
        # remove-one-add-one arc swap) with weights untouched, the ops
        # are recorded in the shared :class:`_StepHistory` and replayed
        # into lagging player engines via the diff-free
        # ``remove_edge``/``add_edge`` entry points, skipping the
        # per-player substrate rebuild + edge-set diff entirely. The
        # history keeps the last few steps so engines that skipped a
        # profile (screened players) still catch up by replay.
        self._steps = _StepHistory(self._MAX_STEP_HISTORY)
        self._lock = threading.RLock()
        self.evictions = 0
        self.step_forwards = 0
        if base_engine is not None:
            if base_engine.n != graph.n:
                raise GraphError(
                    f"base engine is over {base_engine.n} vertices, "
                    f"graph has {graph.n}"
                )
            self._base = base_engine
            self._wcsr = base_engine.wcsr
            self._seen_key = self._key()
            self._steps.advance(None)
            self._base_token = self._steps.token

    def _resolve_max_players(self, n: int) -> int:
        if self._max_players_requested is not None:
            return max(1, int(self._max_players_requested))
        # Engines pick int64 matrices when the weighted sentinel
        # (inf = max(Cinf, (n-1) * w_max + 1)) outgrows int32 headroom,
        # so the memory budget must use the same dtype rule.
        inf = max(cinf(n), (n - 1) * self._max_weight + 1)
        itemsize = 4 if 2 * inf < 2**31 else 8
        per_engine = max(1, n * n * itemsize)
        return max(1, min(n, _DEFAULT_CACHE_BYTES // per_engine))

    @property
    def graph(self) -> OwnedDigraph:
        """The tracked realization."""
        return self._graph

    @property
    def edge_weights(self) -> "EdgeWeightMap | None":
        """The tracked edge-length assignment (``None`` means unit)."""
        return self._edge_weights

    @property
    def lazy_rows(self) -> bool:
        """Whether cache-built engines start in row-on-demand mode."""
        return self._lazy_rows

    @property
    def max_weight(self) -> int:
        """Edge-length headroom every pooled engine's sentinel covers.

        Starts at the construction-time hint (or the edge map's current
        maximum) and grows automatically when a later weight edit
        exceeds it — the pool is then rebuilt with a larger sentinel
        instead of erroring on the next access.
        """
        return self._max_weight

    def _key(self) -> "tuple[int, int]":
        rev = self._graph.revision
        wrev = 0 if self._edge_weights is None else self._edge_weights.revision
        return (rev, wrev)

    #: Steps kept replayable; engines lagging further fall back to the
    #: full substrate rebuild + diff of :meth:`player`.
    _MAX_STEP_HISTORY: int = 8

    #: The op detector is for the tiny-substrate census/fold regime;
    #: above this many edge ids the per-sync dict diff is not worth it.
    _MAX_STEP_EDGES: int = 512

    def _detect_step_ops(
        self, old: "WeightedCSR | None", new: WeightedCSR
    ) -> "tuple[tuple[str, int, int, int], ...] | None":
        """Ops of one sync step when it is small enough to forward.

        Returns ``(("rm"|"add", x, y, w), ...)`` (removals first) when
        the step changed at most two edges and touched no surviving
        edge's weight — exactly a fold's single removal or a Gray
        step's arc swap — else ``None``. Forwardable ops are what the
        ``_step`` forwarder replays into lagging player engines.
        """
        from ..graphs.weighted_engine import _edge_ids_weights

        # indices holds two directed entries per undirected edge.
        if old is None or max(old.indices.size, new.indices.size) > (
            2 * self._MAX_STEP_EDGES
        ):
            return None
        if abs(old.indices.size - new.indices.size) > 4:
            return None  # more than two edges apart: never forwardable
        old_ids, old_w = _edge_ids_weights(old)
        new_ids, new_w = _edge_ids_weights(new)
        old_map = dict(zip(old_ids.tolist(), old_w.tolist()))
        new_map = dict(zip(new_ids.tolist(), new_w.tolist()))
        removed = sorted(old_map.keys() - new_map.keys())
        added = sorted(new_map.keys() - old_map.keys())
        if not 1 <= len(removed) + len(added) <= 2:
            return None
        if any(old_map[k] != new_map[k] for k in old_map.keys() & new_map.keys()):
            return None  # a surviving edge changed weight: not a pure swap
        n = old.n
        ops = tuple(
            ("rm", eid // n, eid % n, old_map[eid]) for eid in removed
        ) + tuple(("add", eid // n, eid % n, new_map[eid]) for eid in added)
        return ops

    def _sync(self) -> WeightedCSR:
        """Refresh the ``U(G)`` substrate and the coherence token."""
        key = self._key()
        if self._wcsr is None or self._seen_key != key:
            new_wcsr = weighted_csr_from_csr(
                self._graph.undirected_csr(), self._edge_weights
            )
            if new_wcsr.max_weight() > self._max_weight:
                # A weight edit outgrew the engines' sentinel headroom:
                # drop the pool (rare resize event) so every engine is
                # rebuilt with a sentinel covering the new maximum,
                # instead of erroring on its next update.
                self._max_weight = new_wcsr.max_weight()
                self._engine_kwargs["max_weight"] = self._max_weight
                self._max_players = self._resolve_max_players(self._graph.n)
                self._base = None
                self._base_token = -1
                self._players.clear()
                self._player_tokens.clear()
                self._steps.clear()
            self._steps.advance(self._detect_step_ops(self._wcsr, new_wcsr))
            self._wcsr = new_wcsr
            self._seen_key = key
        return self._wcsr

    def rebind(self, graph: OwnedDigraph) -> None:
        """Point the cache at another graph of the same size.

        Engines (and their matrices) are kept, and so is the previous
        substrate: the next access diffs content against the new
        graph's — one arc apart (a fold onto a working copy) repairs as
        a single-edge delta, unrelated graphs degrade to buffer-reusing
        rebuilds.
        """
        if graph.n != self._graph.n:
            self._base = None
            self._players.clear()
            self._player_tokens.clear()
            self._steps.clear()
            self._wcsr = None
            self._max_players = self._resolve_max_players(graph.n)
        self._graph = graph
        self._seen_key = None

    # ------------------------------------------------------------------
    def base(self) -> WeightedDistanceEngine:
        """Engine over weighted ``U(G)``, synced to both revisions."""
        wcsr = self._sync()
        if self._base is None:
            self._base = WeightedDistanceEngine(wcsr, **self._engine_kwargs)
        elif self._base_token != self._steps.token:
            self._base.update(wcsr)
        self._base_token = self._steps.token
        return self._base

    def _query_inf(self) -> int:
        """The pooled engines' shared ``inf`` sentinel.

        Every engine gets the same ``max_weight`` headroom hint, so
        base and punctured engines agree on
        ``max(Cinf, (n - 1) * max_weight + 1)`` — a bypassing
        bidirectional search must use the same sentinel to stay
        bit-identical.
        """
        n = self._graph.n
        return max(cinf(n), (n - 1) * self._max_weight + 1)

    def query(self, u: int, v: int) -> int:
        """Single weighted ``dist(u, v)`` in ``U(G)``.

        The weighted sibling of :meth:`DistanceCache.query`: a synced
        (or lazy) base engine answers directly, a cold full-mode cache
        runs one bounded bidirectional Dial search on the substrate.
        """
        wcsr = self._sync()
        if self._lazy_rows or (
            self._base is not None and self._base_token == self._steps.token
        ):
            return self.base().query(u, v)
        from ..graphs.query import point_to_point

        return point_to_point(wcsr, u, v, inf=self._query_inf())

    @property
    def lock(self) -> "threading.RLock":
        """Reentrant lock serialising engine access across threads.

        Same contract as :attr:`DistanceCache.lock` — the serve layer
        holds it around every compute-thread touch of this cache.
        """
        return self._lock

    def batch_query(self, pairs: "np.ndarray | list[tuple[int, int]]") -> np.ndarray:
        """Weighted distances for many ``(u, v)`` pairs — one sweep.

        The weighted sibling of :meth:`DistanceCache.batch_query`:
        thread-safe, one batched sweep (Dial-bucket for true weights)
        for ``k >= 2`` pairs, the bidirectional point kernel for a
        singleton, every entry bit-identical to :meth:`query`.
        """
        with self._lock:
            p = np.asarray(pairs, dtype=np.int64)
            if p.ndim != 2 or p.shape[1] != 2:
                raise GraphError(
                    f"pairs must be a (k, 2) array of (u, v) endpoints, "
                    f"got shape {p.shape}"
                )
            n = self._graph.n
            if p.size and (p.min() < 0 or p.max() >= n):
                bad = int(p.min()) if p.min() < 0 else int(p.max())
                raise VertexError(bad, n)
            k = p.shape[0]
            if k == 0:
                return np.empty(0, dtype=np.int64)
            if k == 1:
                return np.asarray(
                    [self.query(int(p[0, 0]), int(p[0, 1]))], dtype=np.int64
                )
            wcsr = self._sync()
            if self._lazy_rows or (
                self._base is not None and self._base_token == self._steps.token
            ):
                engine = self.base()
                engine.ensure_rows(np.unique(p[:, 0]))
                return np.asarray(
                    [engine.query(int(u), int(v)) for u, v in p], dtype=np.int64
                )
            from ..graphs.query import batched_pair_distances

            return batched_pair_distances(wcsr, p, inf=self._query_inf())

    def query_punctured(self, player: int, u: int, v: int) -> int:
        """Single weighted ``dist(u, v)`` in the punctured ``U(G - player)``.

        Same tiering as :meth:`query`, against the per-player family.
        """
        if not 0 <= player < self._graph.n:
            raise VertexError(player, self._graph.n)
        wcsr = self._sync()
        engine = self._players.get(player)
        synced = (
            engine is not None
            and self._player_tokens.get(player) == self._steps.token
        )
        if self._lazy_rows or synced:
            return self.player(player).query(u, v)
        from ..graphs.query import point_to_point

        punctured = weighted_csr_without_vertex(wcsr, player)
        return point_to_point(punctured, u, v, inf=self._query_inf())

    def player(self, u: int) -> WeightedDistanceEngine:
        """Engine over weighted ``U(G - u)``, synced to both revisions."""
        if not 0 <= u < self._graph.n:
            raise VertexError(u, self._graph.n)
        wcsr = self._sync()
        engine = self._players.get(u)
        if engine is None:
            engine = WeightedDistanceEngine(
                weighted_csr_without_vertex(wcsr, u), **self._engine_kwargs
            )
            self._players[u] = engine
            if len(self._players) > self._max_players:
                evicted, _ = self._players.popitem(last=False)
                self._player_tokens.pop(evicted, None)
                self.evictions += 1
        elif self._player_tokens.get(u) != self._steps.token:
            chain = self._steps.chain(self._player_tokens.get(u))
            if chain is not None:
                # Every step between the engine's token and now is a
                # known small delta: replay them through the diff-free
                # entry points. Ops incident to ``u`` are skipped — the
                # puncture removes those edges from ``U(G - u)`` on both
                # sides of the step, so they change nothing.
                for ops in chain:
                    for kind, x, y, w in ops:
                        if x == u or y == u:
                            continue
                        if kind == "rm":
                            engine.remove_edge(x, y)
                        else:
                            engine.add_edge(x, y, w)
                self.step_forwards += 1
            else:
                engine.update(weighted_csr_without_vertex(wcsr, u))
        self._players.move_to_end(u)
        self._player_tokens[u] = self._steps.token
        return engine

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero every engine's counters (and the cache's own)."""
        for engine in self._players.values():
            for key in engine.stats:
                engine.stats[key] = 0
        if self._base is not None:
            for key in self._base.stats:
                self._base.stats[key] = 0
        self.evictions = 0
        self.step_forwards = 0

    def stats(self) -> dict[str, int]:
        """Aggregated engine counters, cumulative since construction."""
        total = {
            "rebuilds": 0,
            "deltas": 0,
            "noops": 0,
            "rows_recomputed": 0,
            "pendant_fixes": 0,
            "region_repairs": 0,
            "region_vertices": 0,
            "lazy_rows": 0,
            "lazy_invalidations": 0,
            "promotions": 0,
            "point_queries": 0,
        }
        engines = list(self._players.values())
        if self._base is not None:
            engines.append(self._base)
        for engine in engines:
            for key in total:
                total[key] += engine.stats[key]
        total["player_engines"] = len(self._players)
        total["evictions"] = self.evictions
        total["step_forwards"] = self.step_forwards
        return total
