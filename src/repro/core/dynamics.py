"""Best-response dynamics.

The paper's Section 8 asks (open problem) whether the game converges
when players keep improving. This engine runs the dynamics under
configurable schedules and move sets, detects fixed points (with an
exact-method fixed point being a certified Nash equilibrium) and
best-response *cycles* via profile hashing — the phenomenon Laoutaris
et al. demonstrated for their directed variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal

import numpy as np

from ..errors import DynamicsError
from ..graphs.digraph import OwnedDigraph
from ..rng import as_generator
from .costs import Version, social_cost
from .deviations import (
    Method,
    best_response_for,
    deviation_improves,
    satisfies_lemma_2_2,
)
from .distance_cache import DistanceCache
from .game import BoundedBudgetGame

__all__ = ["Schedule", "MoveRecord", "DynamicsResult", "best_response_dynamics"]

Schedule = Literal["round_robin", "random"]


@dataclass(frozen=True)
class MoveRecord:
    """One strategy change executed during the dynamics."""

    round_index: int
    player: int
    old_strategy: tuple[int, ...]
    new_strategy: tuple[int, ...]
    old_cost: int
    new_cost: int

    @property
    def gain(self) -> int:
        """Cost reduction realised by the move (always positive)."""
        return self.old_cost - self.new_cost


@dataclass
class DynamicsResult:
    """Outcome of a best-response dynamics run.

    Attributes
    ----------
    graph:
        Final realization.
    converged:
        True iff a full round passed with no improving move — with
        ``method="exact"`` this certifies a Nash equilibrium.
    cycled:
        True iff the profile revisited an earlier state (only checked at
        round boundaries).
    rounds:
        Number of completed rounds.
    moves:
        Chronological log of executed strategy changes.
    social_costs:
        Social cost (diameter) after each round, for convergence plots.
    engine_stats:
        Distance-cache counters when the run used one (``None``
        otherwise). For a cache passed in by the caller these are
        cumulative over the cache's lifetime, not this run's share —
        call ``cache.reset_stats()`` beforehand for per-run numbers.
    """

    graph: OwnedDigraph
    converged: bool
    cycled: bool
    rounds: int
    moves: list[MoveRecord] = field(default_factory=list)
    social_costs: list[int] = field(default_factory=list)
    engine_stats: "dict[str, int] | None" = None

    @property
    def num_moves(self) -> int:
        """Total strategy changes executed."""
        return len(self.moves)


def _player_order(
    n: int, schedule: Schedule, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    while True:
        if schedule == "round_robin":
            yield np.arange(n, dtype=np.int64)
        elif schedule == "random":
            yield rng.permutation(n).astype(np.int64)
        else:  # pragma: no cover - validated upstream
            raise DynamicsError(f"unknown schedule {schedule!r}")


def best_response_dynamics(
    game: BoundedBudgetGame,
    initial: OwnedDigraph,
    version: Version | str,
    *,
    method: Method = "exact",
    schedule: Schedule = "round_robin",
    max_rounds: int = 200,
    seed: int | np.random.Generator | None = 0,
    detect_cycles: bool = True,
    use_lemma: bool = True,
    record_moves: bool = True,
    use_engine: bool = True,
    cache: DistanceCache | None = None,
    rows: "str | None" = None,
    **kwargs,
) -> DynamicsResult:
    """Run best-response dynamics from ``initial`` until stable.

    Each *round* visits every player once (in schedule order); a player
    with an improving deviation switches to the best strategy the chosen
    ``method`` finds. The run stops when a round executes no move
    (converged), when the profile repeats (cycled), or at ``max_rounds``.

    Parameters
    ----------
    game:
        The game specification; ``initial`` must be one of its
        realizations.
    initial:
        Starting realization (not mutated; the dynamics works on a copy).
    version:
        SUM or MAX.
    method:
        Move set: ``"exact"`` (true best responses), ``"greedy"``, or
        ``"swap"``.
    schedule:
        ``"round_robin"`` (players 0..n-1 in order) or ``"random"``
        (fresh permutation per round).
    max_rounds:
        Hard cap on rounds.
    seed:
        RNG for the random schedule.
    detect_cycles:
        Hash the profile at each round boundary and stop on repetition.
    use_lemma:
        Skip players certified stable by the paper's Lemma 2.2.
    record_moves:
        Keep the full move log (disable to save memory on long runs).
    use_engine:
        Route all distance queries through a shared
        :class:`~repro.core.distance_cache.DistanceCache` that repairs
        per-substrate distance matrices incrementally between moves
        instead of recomputing all-pairs BFS per player per step. The
        trajectory is bit-identical either way; this only changes speed
        and memory.
    cache:
        Reuse an existing :class:`DistanceCache` (e.g. across sweep
        tasks); it is rebound to this run's working graph. Implies
        ``use_engine``.
    rows:
        Row policy for an internally built cache (ignored when
        ``cache`` is passed): ``"lazy"`` starts every engine in
        row-on-demand mode, so a long run on a cold instance
        materialises only the rows its queries actually touch instead
        of paying full all-pairs builds up front. The trajectory is
        bit-identical to the eager path.
    """
    version = Version.coerce(version)
    if schedule not in ("round_robin", "random"):
        raise DynamicsError(f"unknown schedule {schedule!r}; use round_robin/random")
    if max_rounds < 1:
        raise DynamicsError(f"max_rounds must be >= 1, got {max_rounds}")
    game.validate_realization(initial)
    rng = as_generator(seed)
    graph = initial.copy()
    if cache is not None:
        cache.rebind(graph)
    elif use_engine:
        cache = DistanceCache(graph) if rows is None else DistanceCache(graph, rows=rows)
    seen: set[tuple[tuple[int, ...], ...]] = set()
    result = DynamicsResult(graph=graph, converged=False, cycled=False, rounds=0)
    if detect_cycles:
        seen.add(graph.profile_key())
    orders = _player_order(game.n, schedule, rng)
    # Adaptive routing for the per-visit Lemma 2.2 checks: syncing the
    # shared U(G) engine costs one delta per executed move, a BFS-free
    # lemma check saves one BFS per visit. With k moves in the previous
    # round that trades k deltas against ~n BFS, so eager sync wins
    # exactly in the low-churn rounds; in heavy rounds the maintained
    # matrix is used only when it happens to be current already.
    eager_base_cap = max(8, game.n // 4)
    prev_round_moves: int | None = None
    for round_index in range(max_rounds):
        moved = False
        round_moves = 0
        for u in next(orders):
            u = int(u)
            if game.budget(u) == 0:
                continue  # zero-budget players have a unique (empty) strategy
            if use_lemma:
                if cache is None:
                    lemma_engine = None
                elif cache.lazy_rows:
                    # Lazy engines make the screen a row read, never a
                    # full build — always worth syncing.
                    lemma_engine = cache.base()
                elif prev_round_moves is not None and prev_round_moves <= eager_base_cap:
                    lemma_engine = cache.base()
                else:
                    lemma_engine = cache.base_if_fresh()
                if satisfies_lemma_2_2(graph, u, engine=lemma_engine):
                    continue
            br = best_response_for(graph, u, version, method, cache=cache, **kwargs)
            # The executed-move verdict goes through the same
            # single-deviation predicate the analysis layer uses: on a
            # cached run both costs come from the one shared player
            # environment (no extra builds), so the decision is
            # bit-identical to ``br.is_improving`` while keeping the
            # whole per-step path on the cache — with ``rows="lazy"``
            # a cold instance never pays a full all-pairs build.
            if cache is not None:
                improving = deviation_improves(
                    graph, u, br.strategy, version, cache=cache, use_lemma=False
                )
            else:
                improving = br.is_improving
            if not improving:
                continue
            old = tuple(int(v) for v in graph.out_neighbors(u))
            graph.set_strategy(u, br.strategy)
            moved = True
            round_moves += 1
            if record_moves:
                result.moves.append(
                    MoveRecord(
                        round_index=round_index,
                        player=u,
                        old_strategy=old,
                        new_strategy=br.strategy,
                        old_cost=br.current_cost,
                        new_cost=br.cost,
                    )
                )
        prev_round_moves = round_moves
        result.rounds = round_index + 1
        result.social_costs.append(
            social_cost(graph, engine=cache.base() if cache is not None else None)
        )
        if not moved:
            result.converged = True
            break
        if detect_cycles:
            key = graph.profile_key()
            if key in seen:
                result.cycled = True
                break
            seen.add(key)
    result.graph = graph
    if cache is not None:
        result.engine_stats = cache.stats()
    return result
