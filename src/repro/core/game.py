"""Game specification: budget vectors and strategy profiles.

A *bounded budget network creation game* ``(b_1, ..., b_n)-BG`` has
``n`` players; the strategy of player ``i`` is a subset
``S_i ⊆ {0..n-1} \\ {i}`` with ``|S_i| = b_i``. A strategy profile is
realised as an :class:`~repro.graphs.digraph.OwnedDigraph` whose arcs
``i -> j`` (``j in S_i``) are *owned* by ``i``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import BudgetError, StrategyError
from ..graphs.digraph import OwnedDigraph
from ..graphs.generators import random_connected_realization, random_realization
from ..rng import as_generator

__all__ = ["BoundedBudgetGame"]


class BoundedBudgetGame:
    """Immutable specification of a ``(b_1, ..., b_n)``-BG instance.

    Parameters
    ----------
    budgets:
        Sequence of ``n`` nonnegative integers with ``b_i < n``.

    Examples
    --------
    >>> game = BoundedBudgetGame([1, 1, 1])
    >>> game.n, game.total_budget, game.is_tree_game
    (3, 3, False)
    """

    __slots__ = ("_budgets",)

    def __init__(self, budgets: Sequence[int] | np.ndarray) -> None:
        b = np.asarray(budgets, dtype=np.int64).copy()
        if b.ndim != 1 or b.size == 0:
            raise BudgetError("budgets must be a nonempty 1-D sequence")
        n = b.size
        if (b < 0).any():
            raise BudgetError(f"budgets must be nonnegative, got {b.tolist()}")
        if (b >= n).any():
            raise BudgetError(f"budgets must be < n = {n}, got {b.tolist()}")
        b.setflags(write=False)
        self._budgets = b

    # ------------------------------------------------------------------
    @property
    def budgets(self) -> np.ndarray:
        """The (read-only) budget vector."""
        return self._budgets

    @property
    def n(self) -> int:
        """Number of players."""
        return int(self._budgets.size)

    @property
    def total_budget(self) -> int:
        """``sigma = sum_i b_i``, the number of arcs in every realization."""
        return int(self._budgets.sum())

    @property
    def is_tree_game(self) -> bool:
        """Whether this is a Tree-BG instance (``sigma = n - 1``, Section 3)."""
        return self.total_budget == self.n - 1

    @property
    def can_connect(self) -> bool:
        """Whether any realization can be connected (``sigma >= n - 1``)."""
        return self.total_budget >= self.n - 1

    @property
    def min_budget(self) -> int:
        """Smallest player budget (Theorem 7.2's ``k``)."""
        return int(self._budgets.min())

    @property
    def is_unit_game(self) -> bool:
        """Whether all budgets are exactly 1 (Section 4)."""
        return bool((self._budgets == 1).all())

    @property
    def all_positive(self) -> bool:
        """Whether every player has positive budget (Section 5)."""
        return bool((self._budgets > 0).all())

    # ------------------------------------------------------------------
    def budget(self, player: int) -> int:
        """Budget of a single player."""
        if not 0 <= player < self.n:
            raise BudgetError(f"player {player} out of range [0, {self.n})")
        return int(self._budgets[player])

    def validate_strategy(self, player: int, strategy: Iterable[int]) -> frozenset[int]:
        """Check (and canonicalise) a strategy for ``player``.

        A valid strategy is a set of exactly ``b_player`` distinct
        opponents.
        """
        s = frozenset(int(v) for v in strategy)
        b = self.budget(player)
        if len(s) != b:
            raise StrategyError(
                f"player {player} has budget {b} but strategy of size {len(s)}"
            )
        if player in s:
            raise StrategyError(f"player {player} may not link to itself")
        for v in s:
            if not 0 <= v < self.n:
                raise StrategyError(f"strategy of player {player} targets invalid vertex {v}")
        return s

    def validate_realization(self, graph: OwnedDigraph) -> None:
        """Check that ``graph`` is a realization of this game."""
        if graph.n != self.n:
            raise StrategyError(f"graph has {graph.n} vertices, game has {self.n} players")
        out = graph.out_degrees()
        if not np.array_equal(out, self._budgets):
            bad = np.flatnonzero(out != self._budgets)
            raise StrategyError(
                f"out-degrees {out[bad].tolist()} of players {bad.tolist()} do not "
                f"match budgets {self._budgets[bad].tolist()}"
            )

    def is_realization(self, graph: OwnedDigraph) -> bool:
        """Non-raising version of :meth:`validate_realization`."""
        try:
            self.validate_realization(graph)
        except StrategyError:
            return False
        return True

    def realization(self, strategies: Sequence[Iterable[int]]) -> OwnedDigraph:
        """Build the realization graph of a full strategy profile."""
        if len(strategies) != self.n:
            raise StrategyError(f"expected {self.n} strategies, got {len(strategies)}")
        checked = [self.validate_strategy(i, s) for i, s in enumerate(strategies)]
        return OwnedDigraph.from_strategies(checked, self.n)

    def random_realization(
        self, seed: int | np.random.Generator | None = None, *, connected: bool = False
    ) -> OwnedDigraph:
        """Uniformly random realization (optionally forced connected)."""
        if connected:
            return random_connected_realization(self._budgets, seed)
        return random_realization(self._budgets, seed)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundedBudgetGame):
            return NotImplemented
        return np.array_equal(self._budgets, other._budgets)

    def __hash__(self) -> int:
        return hash(tuple(self._budgets.tolist()))

    def __repr__(self) -> str:
        b = self._budgets.tolist()
        shown = b if self.n <= 12 else b[:10] + ["..."]
        return f"BoundedBudgetGame(n={self.n}, budgets={shown})"
