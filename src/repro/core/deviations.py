"""Deviation search and equilibrium predicates.

A strategy profile is a (pure) Nash equilibrium iff no player has an
improving deviation. This module answers that question per player and
globally, with three search methods of increasing strength:

* ``"swap"``   — single-arc swaps only (certifies *weak* equilibrium);
* ``"greedy"`` — greedy rebuild (refutation-only: may miss deviations);
* ``"exact"``  — exhaustive subset enumeration (certifies Nash, but
  exponential in the player's budget; Theorem 2.1 says this is
  unavoidable in general).

A fast sufficient check from the paper (Lemma 2.2) is also provided:
a player with local diameter 1, or local diameter 2 and no brace, is
always playing a best response in *both* versions.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from typing import TYPE_CHECKING

from ..errors import GameError, VertexError
from ..graphs.bfs import UNREACHABLE, bfs_distances
from ..graphs.digraph import OwnedDigraph
from ..graphs.engine import DistanceEngine
from .best_response import (
    BestResponseEnvironment,
    BestResponseResult,
    _coerce_env,
    exact_best_response,
    greedy_best_response,
    swap_best_response,
)
from .costs import Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .distance_cache import DistanceCache

__all__ = [
    "Method",
    "deviation_improves",
    "find_improving_deviation",
    "is_best_response",
    "is_equilibrium",
    "is_weak_equilibrium",
    "satisfies_lemma_2_2",
    "screen_best_responders",
    "best_response_for",
]

Method = Literal["exact", "greedy", "swap"]

_METHODS = {
    "exact": exact_best_response,
    "greedy": greedy_best_response,
    "swap": swap_best_response,
}


def best_response_for(
    graph: OwnedDigraph,
    u: int,
    version: Version | str,
    method: Method = "exact",
    *,
    cache: "DistanceCache | None" = None,
    **kwargs,
) -> BestResponseResult:
    """Dispatch to the requested best-response routine.

    ``cache`` routes the evaluation through a shared
    :class:`~repro.core.distance_cache.DistanceCache`, replacing the
    per-call all-pairs BFS of ``U(G - u)`` with an incremental repair.
    """
    try:
        fn = _METHODS[method]
    except KeyError:
        raise GameError(f"unknown method {method!r}; use exact/greedy/swap") from None
    if cache is not None:
        _check_cache_graph(cache, graph)
        if "env" not in kwargs:
            kwargs["env"] = cache.environment(u, version)
    return fn(graph, u, version, **kwargs)


def _check_cache_graph(cache: "DistanceCache", graph: OwnedDigraph) -> None:
    """A cache bound to another graph would silently mix two graphs'
    state into one answer — refuse instead."""
    if cache.graph is not graph:
        raise GameError(
            "distance cache is bound to a different graph object; call "
            "cache.rebind(graph) first"
        )


def satisfies_lemma_2_2(
    graph: OwnedDigraph, u: int, *, engine: DistanceEngine | None = None
) -> bool:
    """Paper's Lemma 2.2 sufficient condition for a best response.

    True when ``u`` has local diameter 1, or local diameter 2 and is not
    contained in any brace. In either case ``u`` plays a best response in
    both SUM and MAX versions, so the exponential search can be skipped.

    ``engine`` (a maintained engine over ``U(G)``, e.g.
    ``DistanceCache.base()``) turns the per-call BFS into a row read.
    """
    if graph.n == 1:
        return True
    if engine is not None:
        d = engine.row(u)
        if int(d.max()) >= engine.inf:
            return False
        ecc = int(d.max())
    else:
        d = bfs_distances(graph.undirected_csr(), u)
        if (d == UNREACHABLE).any():
            return False
        ecc = int(d.max())
    if ecc <= 1:
        return True
    if ecc == 2:
        out = graph.out_neighbors(u)
        # u must not be an endpoint of a brace.
        return not any(graph.has_arc(int(v), u) for v in out)
    return False


def screen_best_responders(graph: OwnedDigraph, engine: DistanceEngine) -> np.ndarray:
    """Vectorized Lemma 2.2 over a maintained distance matrix.

    Returns a boolean mask: ``mask[u]`` is ``True`` when player ``u`` is
    *certified* to play a best response (local diameter 1, or local
    diameter 2 with no incident brace), computed for all players in one
    pass over ``engine``'s all-pairs matrix instead of one BFS each.
    ``False`` entries are merely unscreened — they still need a search.

    ``engine`` must be synced to ``graph`` (e.g. ``DistanceCache.base()``);
    the result then agrees with :func:`satisfies_lemma_2_2` player by
    player.
    """
    n = graph.n
    if n == 1:
        return np.ones(1, dtype=bool)
    ecc = engine.matrix.max(axis=1).astype(np.int64)
    certified = ecc <= 1
    at_two = ecc == 2
    if at_two.any():
        adj = np.zeros((n, n), dtype=bool)
        for u, v in graph.arcs():
            adj[u, v] = True
        certified |= at_two & ~(adj & adj.T).any(axis=1)
    return certified


def _lemma_screen_engine(cache: "DistanceCache | None") -> "DistanceEngine | None":
    """The cheapest maintained ``U(G)`` engine for a Lemma 2.2 screen.

    A lazy cache syncs for one row's worth of work, so its base engine
    is always worth routing through; a full-mode cache is only used
    when already fresh — forcing a cold all-pairs build to answer one
    row would invert the economics the screen exists for.
    """
    if cache is None:
        return None
    if cache.lazy_rows:
        return cache.base()
    return cache.base_if_fresh()


def deviation_improves(
    graph: OwnedDigraph,
    u: int,
    strategy,
    version: Version | str,
    *,
    cache: "DistanceCache | None" = None,
    env: "BestResponseEnvironment | None" = None,
    use_lemma: bool = True,
) -> bool:
    """Whether rewiring ``u`` to ``strategy`` strictly lowers its cost.

    The single-deviation verdict: unlike
    :func:`find_improving_deviation` nothing is searched — one proposed
    strategy is priced against the current one. With a ``rows="lazy"``
    cache (or no cache at all, which builds a throwaway lazy engine)
    the answer costs the distance rows of ``current ∪ In(u) ∪
    strategy`` — a bounded batch of single-source sweeps on the
    punctured substrate — never a full all-pairs build, which is what
    makes cold-instance swap checks cheap.

    ``use_lemma`` first applies the Lemma 2.2 sufficient condition
    (via the cache's maintained matrix when that is free): a certified
    best responder has no improving deviation, so the evaluation is
    skipped entirely.
    """
    if not 0 <= u < graph.n:
        raise VertexError(u, graph.n)
    if cache is not None:
        _check_cache_graph(cache, graph)
    new = tuple(sorted({int(v) for v in strategy}))
    for v in new:
        if not 0 <= v < graph.n:
            raise VertexError(v, graph.n)
        if v == u:
            raise GameError(f"player {u} cannot link to itself")
    current = tuple(sorted(int(v) for v in graph.out_neighbors(u)))
    if len(new) > len(current):
        raise GameError(
            f"deviation uses {len(new)} links but player {u}'s budget "
            f"in use is {len(current)}"
        )
    if new == current:
        return False
    if use_lemma and satisfies_lemma_2_2(
        graph, u, engine=_lemma_screen_engine(cache)
    ):
        return False
    if env is None and cache is not None:
        env = cache.environment(u, version)
    elif env is None:
        lazy_engine = DistanceEngine(
            graph.undirected_csr_without(u), rows="lazy"
        )
        env = BestResponseEnvironment(graph, u, version, engine=lazy_engine)
    else:
        env = _coerce_env(graph, u, version, env)
    return env.evaluate(new) < env.evaluate(current)


def find_improving_deviation(
    graph: OwnedDigraph,
    u: int,
    version: Version | str,
    method: Method = "exact",
    *,
    use_lemma: bool = True,
    cache: "DistanceCache | None" = None,
    **kwargs,
) -> BestResponseResult | None:
    """An improving deviation for ``u``, or ``None`` if none was found.

    With ``method="exact"``, ``None`` is a *certificate* that ``u`` plays
    a best response. With the heuristics, ``None`` only means the
    restricted search found nothing.
    """
    if cache is not None:
        _check_cache_graph(cache, graph)
    if use_lemma and satisfies_lemma_2_2(
        graph, u, engine=cache.base() if cache is not None else None
    ):
        return None
    result = best_response_for(graph, u, version, method, cache=cache, **kwargs)
    return result if result.is_improving else None


def is_best_response(
    graph: OwnedDigraph,
    u: int,
    version: Version | str,
    method: Method = "exact",
    **kwargs,
) -> bool:
    """Whether ``u``'s current strategy is optimal (w.r.t. ``method``)."""
    return find_improving_deviation(graph, u, version, method, **kwargs) is None


def is_equilibrium(
    graph: OwnedDigraph,
    version: Version | str,
    method: Method = "exact",
    *,
    players: "list[int] | None" = None,
    cache: "DistanceCache | None" = None,
    **kwargs,
) -> bool:
    """Whether the profile is a Nash equilibrium (``method="exact"``)
    or stable under the given move set (heuristic methods).

    ``players`` restricts the check (useful for symmetric constructions
    where one representative per orbit suffices). ``cache`` routes every
    player through a shared :class:`DistanceCache` and screens all
    players at once with :func:`screen_best_responders` on the
    maintained ``U(G)`` matrix before any per-player search runs — the
    census fast path. The answer is identical with or without a cache.
    """
    todo = range(graph.n) if players is None else players
    screened = None
    if cache is not None:
        _check_cache_graph(cache, graph)
        screened = screen_best_responders(graph, cache.base())
        kwargs = dict(kwargs, cache=cache, use_lemma=False)
    for u in todo:
        if screened is not None and screened[u]:
            continue
        if not is_best_response(graph, u, version, method, **kwargs):
            return False
    return True


def is_weak_equilibrium(
    graph: OwnedDigraph, version: Version | str, *, players: "list[int] | None" = None
) -> bool:
    """Stability under single-arc swaps (Section 6's weak equilibrium)."""
    return is_equilibrium(graph, version, method="swap", players=players)
