"""Game core: specification, costs, best responses, dynamics, certificates."""

from .best_response import (
    DEFAULT_MAX_CANDIDATES,
    BestResponseEnvironment,
    BestResponseResult,
    exact_best_response,
    greedy_best_response,
    swap_best_response,
)
from .costs import Version, all_costs, cost_profile, social_cost, vertex_cost
from .deviations import (
    Method,
    best_response_for,
    find_improving_deviation,
    is_best_response,
    is_equilibrium,
    is_weak_equilibrium,
    satisfies_lemma_2_2,
    screen_best_responders,
)
from .distance_cache import DistanceCache, WeightedDistanceCache
from .dynamics import DynamicsResult, MoveRecord, Schedule, best_response_dynamics
from .enumeration import (
    CensusResult,
    ExactPriceReport,
    WeightedCensusReport,
    census_scan,
    enumerate_equilibria,
    enumerate_realizations,
    exact_prices,
    gray_profile_walk,
    profile_space_size,
    revolving_door_combinations,
    weighted_census_scan,
)
from .equilibrium import EquilibriumCertificate, PlayerWitness, certify_equilibrium
from .isomorphism import (
    are_isomorphic,
    canonical_form,
    count_isomorphism_classes,
    isomorphism_invariant,
    refined_vertex_colors,
)
from .matrix_pool import MatrixPool, SegmentHandle, pool_key
from .potential import (
    FIPReport,
    ImprovementGraph,
    check_finite_improvement,
    find_improvement_cycle,
    improvement_graph,
)
from .game import BoundedBudgetGame

__all__ = [
    "DEFAULT_MAX_CANDIDATES",
    "BestResponseEnvironment",
    "BestResponseResult",
    "BoundedBudgetGame",
    "CensusResult",
    "DistanceCache",
    "DynamicsResult",
    "EquilibriumCertificate",
    "ExactPriceReport",
    "MatrixPool",
    "SegmentHandle",
    "WeightedCensusReport",
    "WeightedDistanceCache",
    "pool_key",
    "weighted_census_scan",
    "FIPReport",
    "ImprovementGraph",
    "are_isomorphic",
    "canonical_form",
    "census_scan",
    "check_finite_improvement",
    "count_isomorphism_classes",
    "find_improvement_cycle",
    "gray_profile_walk",
    "improvement_graph",
    "isomorphism_invariant",
    "refined_vertex_colors",
    "revolving_door_combinations",
    "screen_best_responders",
    "enumerate_equilibria",
    "enumerate_realizations",
    "exact_prices",
    "profile_space_size",
    "Method",
    "MoveRecord",
    "PlayerWitness",
    "Schedule",
    "Version",
    "all_costs",
    "best_response_dynamics",
    "best_response_for",
    "certify_equilibrium",
    "cost_profile",
    "exact_best_response",
    "find_improving_deviation",
    "greedy_best_response",
    "is_best_response",
    "is_equilibrium",
    "is_weak_equilibrium",
    "satisfies_lemma_2_2",
    "social_cost",
    "swap_best_response",
    "vertex_cost",
]
