"""Exhaustive enumeration of strategy profiles and equilibria.

For tiny instances the full profile space ``prod_i C(n-1, b_i)`` is
enumerable, which buys three things the asymptotic machinery cannot:

* the *exact* optimal social cost (min diameter over realizations),
* the *complete* set of pure Nash equilibria, hence exact price of
  anarchy and price of stability (not intervals),
* exhaustive checks of the structure theorems ("every unit-budget
  equilibrium at n = 5 is unicyclic with cycle ≤ 5" verified over the
  whole space rather than sampled).

Everything here is deliberately brute force and guarded by profile
caps; the sampling/dynamics pipeline covers larger sizes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

from ..errors import GameError
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import diameter
from .costs import Version
from .deviations import is_equilibrium
from .game import BoundedBudgetGame

__all__ = [
    "profile_space_size",
    "enumerate_realizations",
    "enumerate_equilibria",
    "ExactPriceReport",
    "exact_prices",
]


def profile_space_size(game: BoundedBudgetGame) -> int:
    """``prod_i C(n-1, b_i)``: the number of strategy profiles."""
    n = game.n
    total = 1
    for b in game.budgets:
        total *= math.comb(n - 1, int(b))
    return total


def _check_cap(game: BoundedBudgetGame, max_profiles: int) -> None:
    total = profile_space_size(game)
    if total > max_profiles:
        raise GameError(
            f"profile space has {total} elements (> {max_profiles}); "
            "exhaustive enumeration is only for tiny instances"
        )


def enumerate_realizations(
    game: BoundedBudgetGame, *, max_profiles: int = 2_000_000
) -> Iterator[OwnedDigraph]:
    """Yield every realization of the game, in lexicographic profile order."""
    _check_cap(game, max_profiles)
    n = game.n
    per_player = []
    for u in range(n):
        pool = [v for v in range(n) if v != u]
        per_player.append(list(itertools.combinations(pool, int(game.budgets[u]))))
    for profile in itertools.product(*per_player):
        yield OwnedDigraph.from_strategies(profile, n)


def enumerate_equilibria(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    max_profiles: int = 500_000,
) -> list[OwnedDigraph]:
    """All pure Nash equilibria of a tiny game, by exhaustive check.

    Each profile is tested with the exact per-player engine (with the
    Lemma 2.2 shortcut), so membership is provably correct.
    """
    version = Version.coerce(version)
    found = []
    for graph in enumerate_realizations(game, max_profiles=max_profiles):
        if is_equilibrium(graph, version, method="exact"):
            found.append(graph)
    return found


@dataclass(frozen=True)
class ExactPriceReport:
    """Exact equilibrium census of one tiny game.

    ``poa``/``pos`` are exact fractions (worst resp. best equilibrium
    diameter over the optimal realization diameter); ``None`` when the
    game has no equilibrium within the enumerated space (cannot happen:
    Theorem 2.3 guarantees existence, and the test suite asserts so).
    """

    version: Version
    num_profiles: int
    num_equilibria: int
    opt_diameter: int
    best_equilibrium_diameter: "int | None"
    worst_equilibrium_diameter: "int | None"

    @property
    def poa(self) -> "Fraction | None":
        """Exact price of anarchy."""
        if self.worst_equilibrium_diameter is None:
            return None
        return Fraction(self.worst_equilibrium_diameter, self.opt_diameter)

    @property
    def pos(self) -> "Fraction | None":
        """Exact price of stability."""
        if self.best_equilibrium_diameter is None:
            return None
        return Fraction(self.best_equilibrium_diameter, self.opt_diameter)


def exact_prices(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    max_profiles: int = 500_000,
) -> ExactPriceReport:
    """Exact PoA / PoS of a tiny game by full enumeration.

    One pass over the profile space computes the optimal diameter and
    the best/worst equilibrium diameters simultaneously.
    """
    version = Version.coerce(version)
    _check_cap(game, max_profiles)
    opt = None
    best_eq = None
    worst_eq = None
    count = 0
    eq_count = 0
    for graph in enumerate_realizations(game, max_profiles=max_profiles):
        count += 1
        d = diameter(graph)
        if opt is None or d < opt:
            opt = d
        if is_equilibrium(graph, version, method="exact"):
            eq_count += 1
            if best_eq is None or d < best_eq:
                best_eq = d
            if worst_eq is None or d > worst_eq:
                worst_eq = d
    assert opt is not None, "profile space is never empty"
    return ExactPriceReport(
        version=version,
        num_profiles=count,
        num_equilibria=eq_count,
        opt_diameter=opt,
        best_equilibrium_diameter=best_eq,
        worst_equilibrium_diameter=worst_eq,
    )
