"""Exhaustive enumeration of strategy profiles and equilibria.

For tiny instances the full profile space ``prod_i C(n-1, b_i)`` is
enumerable, which buys three things the asymptotic machinery cannot:

* the *exact* optimal social cost (min diameter over realizations),
* the *complete* set of pure Nash equilibria, hence exact price of
  anarchy and price of stability (not intervals),
* exhaustive checks of the structure theorems ("every unit-budget
  equilibrium at n = 5 is unicyclic with cycle ≤ 5" verified over the
  whole space rather than sampled).

Incremental census design
-------------------------
The kernel walks the profile space in **Gray order** instead of
materialising a fresh graph per profile: each player's strategy space
is laid out in *revolving-door* order (consecutive ``C(n-1, b)``
combinations differ by dropping one target and adding one), and the
per-player sequences are composed with a reflected mixed-radix Gray
code, so consecutive profiles of the whole walk differ by exactly one
arc swap of one player. That swap is applied in place to a single
mutable :class:`~repro.graphs.digraph.OwnedDigraph` and repaired by the
:class:`~repro.graphs.engine.DistanceEngine` delta machinery (via a
:class:`~repro.core.distance_cache.DistanceCache`), replacing the
rebuild-per-profile all-pairs BFS of the brute-force path with a
few-row repair per step. Equilibrium membership screens all players at
once with the vectorized Lemma 2.2 pass
(:func:`~repro.core.deviations.screen_best_responders`) over the
maintained matrix before any per-player ``exact()`` search runs.

**Symmetry pruning** (``symmetry=True``): players with equal budgets
induce profile-space orbits under the budget-preserving relabeling
group ``∏ Sym(budget class)``. A profile is *canonical* when its
ownership-adjacency bit key is minimal over its orbit; the walk keeps
all ``|group|`` relabeled keys up to date incrementally (two bit
toggles per group element per step), evaluates only canonical
representatives, and multiplies their contributions by the orbit size
``|group| / |stabilizer|``. Diameter and equilibrium membership are
orbit invariants, so the census is bit-identical with pruning on or
off.

**Sharding** (``workers > 1``): the Gray rank space splits into
contiguous ranges (one unranking per shard, then stepping), dispatched
through :func:`~repro.parallel.executor.parallel_map`; each worker owns
its own mutable graph and engine pool, and the merge of shard partials
is order-independent, so reports are identical for any worker count.

**Key format**: with symmetry pruning each relabeled profile is packed
into a **two-word (128-bit) key** — cell ``(a, b)`` occupies the bit
position :func:`~repro.core.isomorphism.chain_cell_positions` assigns
it, word ``position >> 6``, bit ``position & 63`` — so ``n^2 <= 128``
(``n <= 11``) works. The cell order is chain-aligned: cells the
stabilizer-chain descent reveals first are most significant, so the
incremental probe stage and the exact
:class:`~repro.core.isomorphism.BudgetStabilizerChain` recheck decide
minimality under the same total order. Checkpoint journals record the
key format version; v1 (single-word row-major) journals migrate on
resume when ``n^2 <= 64`` and fail loudly otherwise.

**Sampled census** (:func:`sampled_census_scan`): beyond exhaustive
reach, a seeded Monte Carlo draw of Gray ranks rides the same
unranking / engine-repair / shard / checkpoint machinery and reports
equilibrium-density and price-of-anarchy *estimates* with Wilson and
bootstrap confidence intervals. The ``"orbit"`` method canonicalises
each sampled profile through the stabilizer chain and memoises
verdicts per orbit — bit-identical histograms to ``"stratified"``,
cheaper when samples collide in orbit space.

Everything else is still guarded by profile caps; the sampling and
dynamics pipelines cover larger sizes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np

from ..errors import CheckpointError, GameError
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import diameter
from .costs import Version
from .deviations import is_equilibrium
from .distance_cache import DistanceCache
from .game import BoundedBudgetGame

__all__ = [
    "profile_space_size",
    "enumerate_realizations",
    "enumerate_equilibria",
    "revolving_door_combinations",
    "gray_profile_walk",
    "CensusResult",
    "IncompletenessManifest",
    "census_scan",
    "ExactPriceReport",
    "exact_prices",
    "WeightedCensusReport",
    "weighted_census_scan",
    "SampledCensusReport",
    "sampled_census_scan",
    "last_census_pool_stats",
    "last_census_runtime_stats",
]

#: Symmetry pruning packs the ownership adjacency into a two-word
#: (128-bit) key per group element, which needs ``n^2 <= 128``.
_MAX_SYMMETRY_N: int = 11

#: Exact-stage survivor rechecks run through the stabilizer chain in
#: batches this large — the chain's per-key cost is lowest on modest
#: frontier sizes, so huge survivor sets are chunked, not one-shot.
_EXACT_CHUNK: int = 512


def _check_symmetry_cap(n: int) -> None:
    """Single source of the symmetry-pruning size cap (and its message).

    Both entry points — :func:`census_scan` up front and
    :class:`_OrbitKeys` at construction — raise through here, so the
    limit and its wording can never drift apart again.
    """
    if n > _MAX_SYMMETRY_N:
        raise GameError(
            f"symmetry pruning packs profiles into two-word 128-bit keys "
            f"and is capped at n = {_MAX_SYMMETRY_N} (n^2 <= 128), "
            f"got n = {n}"
        )


def profile_space_size(game: BoundedBudgetGame) -> int:
    """``prod_i C(n-1, b_i)``: the number of strategy profiles."""
    n = game.n
    total = 1
    for b in game.budgets:
        total *= math.comb(n - 1, int(b))
    return total


def _check_cap(game: BoundedBudgetGame, max_profiles: int) -> None:
    total = profile_space_size(game)
    if total > max_profiles:
        raise GameError(
            f"profile space has {total} elements (> {max_profiles}); "
            "exhaustive enumeration is only for tiny instances"
        )


def enumerate_realizations(
    game: BoundedBudgetGame, *, max_profiles: int = 2_000_000
) -> Iterator[OwnedDigraph]:
    """Yield every realization of the game, in lexicographic profile order."""
    _check_cap(game, max_profiles)
    n = game.n
    per_player = []
    for u in range(n):
        pool = [v for v in range(n) if v != u]
        per_player.append(list(itertools.combinations(pool, int(game.budgets[u]))))
    for profile in itertools.product(*per_player):
        yield OwnedDigraph.from_strategies(profile, n)


# ----------------------------------------------------------------------
# Gray-order profile walk
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _revolving_door_indices(m: int, t: int) -> tuple[tuple[int, ...], ...]:
    if t < 0 or t > m:
        return ()
    if t == 0:
        return ((),)
    if t == m:
        return (tuple(range(t)),)
    head = _revolving_door_indices(m - 1, t)
    tail = _revolving_door_indices(m - 1, t - 1)
    return head + tuple(c + (m - 1,) for c in reversed(tail))


def revolving_door_combinations(pool: Sequence[int], t: int) -> list[tuple[int, ...]]:
    """All ``C(len(pool), t)`` combinations in revolving-door Gray order.

    Consecutive combinations (and the wrap-around pair) differ by
    exactly one element dropped and one added — the Nijenhuis–Wilf
    ordering, built by the reflected recurrence ``A(m, t) = A(m-1, t)
    ++ reverse(A(m-1, t-1)) * {m-1}``. Elements within each
    combination are in increasing pool order.
    """
    pool = list(pool)
    return [
        tuple(pool[i] for i in combo)
        for combo in _revolving_door_indices(len(pool), t)
    ]


def _gray_digits(rank: int, radices: Sequence[int], rests: Sequence[int]) -> list[int]:
    """Reflected mixed-radix Gray digits of ``rank`` (MSB first).

    ``rests[i]`` is ``prod(radices[i:])``. Consecutive ranks differ in
    exactly one digit, by exactly ±1.
    """
    digits = []
    r = rank
    for i in range(len(radices)):
        rest = rests[i + 1]
        d, r = divmod(r, rest)
        digits.append(d)
        if d & 1:
            r = rest - 1 - r  # odd digit: the suffix block is reversed
    return digits


def _gray_rank(digits: Sequence[int], rests: Sequence[int]) -> int:
    """Inverse of :func:`_gray_digits`: the rank of an MSB-first vector.

    Reconstructs backward through the reflection — at each level the
    suffix remainder is un-reflected when the digit is odd, then scaled
    back in — so ``_gray_rank(_gray_digits(r, radices, rests), rests)
    == r`` for every rank. Used to map collected profiles back into
    Gray-rank windows (the n = 8 cross-validation bench filters a
    pruned census's equilibria to an unpruned subrange this way).
    """
    r = 0
    for i in range(len(digits) - 1, -1, -1):
        d = int(digits[i])
        rest = rests[i + 1]
        inner = rest - 1 - r if d & 1 else r
        r = d * rest + inner
    return r


def _profile_tables(
    game: BoundedBudgetGame,
) -> tuple[list[list[tuple[int, ...]]], list[int], list[int]]:
    """Per-player revolving-door strategy tables, radices and suffix products."""
    n = game.n
    combos = []
    for u in range(n):
        pool = [v for v in range(n) if v != u]
        combos.append(revolving_door_combinations(pool, int(game.budgets[u])))
    radices = [len(c) for c in combos]
    rests = [1] * (n + 1)
    for i in reversed(range(n)):
        rests[i] = rests[i + 1] * radices[i]
    return combos, radices, rests


def _gray_digit_stream(
    radices: Sequence[int], digits: "list[int]"
) -> Iterator[tuple[int, int, int]]:
    """Loop-free successor stream of the reflected mixed-radix Gray code.

    Mutates ``digits`` (the MSB-first digit vector of the current rank)
    in place and yields ``(position, old_digit, new_digit)`` per rank
    increment — the same sequence :func:`_gray_digits` produces rank by
    rank, at amortised O(1) per step instead of O(n). Directions are
    recovered from the reflection parity (digit ``i`` ascends iff the
    digits before it sum to an even number), so the stream can start at
    any rank — which is what lets census shards resume mid-sequence.
    """
    n = len(radices)
    o = []
    prefix = 0
    for i in range(n):
        o.append(1 if prefix % 2 == 0 else -1)
        prefix += digits[i]
    while True:
        for j in range(n - 1, -1, -1):
            d = digits[j] + o[j]
            if 0 <= d < radices[j]:
                old = digits[j]
                digits[j] = d
                # Positions right of j were at their extremes; passing
                # them flipped their direction already, which is exactly
                # the parity flip the changed digit at j implies.
                yield j, old, d
                break
            o[j] = -o[j]
        else:
            return  # rank space exhausted


def gray_profile_walk(
    game: BoundedBudgetGame,
    *,
    start: int = 0,
    stop: "int | None" = None,
    max_profiles: int = 2_000_000,
) -> Iterator[tuple[int, OwnedDigraph, "tuple[int, int, int] | None"]]:
    """Walk profile ranks ``[start, stop)`` in Gray order over ONE graph.

    Yields ``(rank, graph, swap)`` where ``graph`` is the same mutable
    :class:`OwnedDigraph` every time (snapshot with ``graph.copy()`` if
    you need to keep a profile) and ``swap`` is ``None`` for the first
    yield, then ``(player, dropped_target, added_target)`` — the single
    arc swap that produced this profile from the previous one. Ranks
    index the reflected-Gray order, not the lexicographic one;
    restarting at any ``start`` is O(n) (one unranking), which is what
    lets shards split the rank space.
    """
    _check_cap(game, max_profiles)
    n = game.n
    combos, radices, rests = _profile_tables(game)
    total = rests[0]
    stop = total if stop is None else stop
    if not 0 <= start <= stop <= total:
        raise GameError(f"bad walk range [{start}, {stop}) for {total} profiles")
    if start == stop:
        return
    digits = _gray_digits(start, radices, rests)
    graph = OwnedDigraph.from_strategies(
        [combos[u][digits[u]] for u in range(n)], n
    )
    yield start, graph, None
    for rank in range(start + 1, stop):
        nxt = _gray_digits(rank, radices, rests)
        j = next(i for i in range(n) if nxt[i] != digits[i])
        old = combos[j][digits[j]]
        new = combos[j][nxt[j]]
        (dropped,) = set(old) - set(new)
        (added,) = set(new) - set(old)
        graph.remove_arc(j, dropped)
        graph.add_arc(j, added)
        digits = nxt
        yield rank, graph, (j, dropped, added)


# ----------------------------------------------------------------------
# Symmetry pruning: orbit-canonical profiles under budget-preserving
# relabelings
# ----------------------------------------------------------------------
def _budget_symmetry_group(budgets: Sequence[int]) -> np.ndarray:
    """All player relabelings preserving the budget vector, ``(g, n)``.

    Row ``k`` maps player ``i`` to ``perms[k, i]``; the identity is row
    0. The group is the direct product of the symmetric groups on the
    equal-budget classes.
    """
    n = len(budgets)
    classes: "dict[int, list[int]]" = {}
    for i, b in enumerate(budgets):
        classes.setdefault(int(b), []).append(i)
    blocks = list(classes.values())
    perms = []
    for images in itertools.product(*(itertools.permutations(c) for c in blocks)):
        perm = np.empty(n, dtype=np.int64)
        for block, image in zip(blocks, images):
            for src, dst in zip(block, image):
                perm[src] = dst
        perms.append(perm)
    out = np.stack(perms)
    assert np.array_equal(out[0], np.arange(n))  # identity first
    return out


class _OrbitKeys:
    """Incrementally maintained canonical keys of one evolving profile.

    For a group element the ownership adjacency of the relabeled
    profile is packed into a **two-word (128-bit) key**: cell ``(a, b)``
    occupies bit position :func:`~repro.core.isomorphism.chain_cell_positions`
    ``[a, b]`` — word ``position >> 6``, bit ``position & 63`` — so
    ``n^2 <= 128`` works. Each present arc sets exactly one bit of one
    word, hence per-word ``uint64`` addition/subtraction (and the block
    cumulative sums below) stay exact with no cross-word carries; keys
    compare lexicographically as ``(hi, lo)``. A profile is canonical
    iff its own key (the identity element) is the orbit minimum; the
    orbit size follows from the stabilizer count. Keys are injective on
    directed graphs, so equal keys mean equal relabeled profiles.

    The cell order is the *chain-aligned* one — cells revealed early by
    the stabilizer-chain descent are most significant — shared verbatim
    with :class:`~repro.core.isomorphism.BudgetStabilizerChain`, so the
    probe stage and the exact stage decide minimality under the same
    total order.

    Two-stage evaluation keeps the per-profile cost sublinear in the
    group order: only a small **probe** subset — the identity plus
    every within-class transposition — is maintained incrementally
    (two gathers per Gray step). A probe key below the identity key
    certainly refutes canonicity; the rare survivors are collected
    across a whole Gray block and settled in one batched
    stabilizer-chain descent (:meth:`_exact_orbit_sizes`), whose cost
    tracks the profiles' automorphisms instead of the group order —
    the former whole-group gather (40320 rows at n = 8) survives only
    as the test reference :meth:`_reference_orbit_size`. When the
    group is no larger than the probe set the full group simply *is*
    the probe set and the exact stage is skipped. Both stages decide
    "is the identity key the orbit minimum" exactly, so the pruning
    decision — and hence the census — is bit-identical to the
    maintain-everything implementation it replaces.

    :meth:`advance_block` amortises the walk further: a whole block of
    Gray swaps becomes one ``(block, probes)`` cumulative-sum pass per
    word, so the per-profile Python and scan cost that used to dominate
    the n = 7 census collapses into a handful of vectorised passes.
    """

    __slots__ = (
        "_n",
        "_g",
        "_perms",
        "_probe_slot",
        "_cellpos",
        "_pos_heads",
        "_pos_tails",
        "_w_hi",
        "_w_lo",
        "_vals_hi",
        "_vals_lo",
        "_exact",
        "_chain",
    )

    def __init__(self, n: int, perms: np.ndarray) -> None:
        _check_symmetry_cap(n)
        from .isomorphism import (
            BudgetStabilizerChain,
            budget_class_transpositions,
            chain_cell_positions,
        )

        cellpos = chain_cell_positions(n)

        def slots(p: np.ndarray) -> np.ndarray:
            # slot[k, i, j]: bit position of arc (i, j) after relabeling
            # by p[k] — the arc lands at cell (inv[i], inv[j]) of the
            # relabeled adjacency, whose bit is cellpos there.
            inv = np.argsort(p, axis=1)
            return cellpos[inv[:, :, None], inv[:, None, :]]

        self._n = int(n)
        self._g = int(perms.shape[0])
        self._perms = perms
        self._cellpos = cellpos
        # position -> cell maps, for rebuilding adjacencies from keys.
        flat = cellpos.ravel()
        self._pos_heads = np.empty(n * n, dtype=np.int64)
        self._pos_tails = np.empty(n * n, dtype=np.int64)
        self._pos_heads[flat] = np.repeat(np.arange(n, dtype=np.int64), n)
        self._pos_tails[flat] = np.tile(np.arange(n, dtype=np.int64), n)
        # Per-word weights of each bit position (exactly one is nonzero
        # per position, so per-word arithmetic never carries across).
        self._w_hi = np.zeros(n * n, dtype=np.uint64)
        self._w_lo = np.zeros(n * n, dtype=np.uint64)
        pos = np.arange(n * n)
        lo_mask = pos < 64
        self._w_lo[lo_mask] = np.uint64(1) << pos[lo_mask].astype(np.uint64)
        self._w_hi[~lo_mask] = np.uint64(1) << (
            pos[~lo_mask].astype(np.uint64) - np.uint64(64)
        )
        # Budgets are recoverable from any group: every permutation in
        # ∏ Sym(class) preserves them, so the classes are the orbits of
        # the group's own action on players. Cheaper: the caller's
        # perms came from a budget vector whose transpositions we can
        # derive from the group's point orbits.
        orbits = self._point_orbit_labels(perms)
        probes = budget_class_transpositions(orbits)
        if self._g <= probes.shape[0] + 1:
            self._probe_slot = slots(perms)  # tiny group: probes = group
            self._exact = False
            self._chain = None
        else:
            identity = np.arange(n, dtype=np.int64)[None, :]
            self._probe_slot = slots(np.concatenate([identity, probes], axis=0))
            self._exact = True
            self._chain = BudgetStabilizerChain(orbits)
            assert self._chain.order == self._g
        p_count = self._probe_slot.shape[0]
        self._vals_hi = np.zeros(p_count, dtype=np.uint64)
        self._vals_lo = np.zeros(p_count, dtype=np.uint64)

    @staticmethod
    def _point_orbit_labels(perms: np.ndarray) -> np.ndarray:
        """Label players by the orbit of the group's action on them.

        For the budget symmetry group the orbits are exactly the
        equal-budget classes, so the labels stand in for budgets when
        deriving the within-class transpositions.
        """
        n = perms.shape[1]
        labels = np.full(n, -1, dtype=np.int64)
        nxt = 0
        for i in range(n):
            if labels[i] >= 0:
                continue
            members = np.unique(perms[:, i])
            labels[members] = nxt
            nxt += 1
        return labels

    def _adjs_from_keys(
        self, his: np.ndarray, los: np.ndarray
    ) -> np.ndarray:
        """Ownership adjacencies ``(K, n, n)`` rebuilt from identity keys."""
        n = self._n
        shifts = np.arange(64, dtype=np.uint64)
        lo_bits = (los[:, None] >> shifts[None, :]) & np.uint64(1)
        hi_bits = (his[:, None] >> shifts[None, :]) & np.uint64(1)
        bits = np.concatenate([lo_bits, hi_bits], axis=1)[:, : n * n] != 0
        adjs = np.zeros((his.size, n, n), dtype=bool)
        adjs[:, self._pos_heads, self._pos_tails] = bits
        return adjs

    def _exact_orbit_sizes(
        self, his: np.ndarray, los: np.ndarray
    ) -> np.ndarray:
        """Batched stabilizer-chain decision for probe-stage survivors.

        Rebuilds each survivor's adjacency from its identity key and
        descends the chain once for the whole batch (chunked at
        ``_EXACT_CHUNK``): a survivor is canonical iff the chain's
        orbit-minimal key equals its own, and its orbit size is
        ``|G| / |stabilizer|``. Returns ``int64`` sizes with ``0`` for
        refuted (non-canonical) survivors.
        """
        sizes = np.zeros(his.size, dtype=np.int64)
        for s in range(0, his.size, _EXACT_CHUNK):
            chunk_hi = his[s : s + _EXACT_CHUNK]
            chunk_lo = los[s : s + _EXACT_CHUNK]
            adjs = self._adjs_from_keys(chunk_hi, chunk_lo)
            min_hi, min_lo, stab = self._chain.minimal_images(adjs)
            canon = (min_hi == chunk_hi) & (min_lo == chunk_lo)
            out = np.zeros(chunk_hi.size, dtype=np.int64)
            out[canon] = self._g // stab[canon]
            sizes[s : s + chunk_hi.size] = out
        return sizes

    def _reference_orbit_size(self, key_hi: int, key_lo: int) -> "int | None":
        """Whole-group gather decision for one survivor (test reference).

        The pre-chain implementation of the exact stage: rebuild the
        arc list from the identity key and gather every group element's
        key — ``O(g * m)``. Kept (lazily, off the stored ``perms``)
        so the suites can pit the chain against it; the census itself
        never calls this.
        """
        key_hi = np.uint64(key_hi)
        key_lo = np.uint64(key_lo)
        adj = self._adjs_from_keys(
            np.asarray([key_hi]), np.asarray([key_lo])
        )[0]
        heads, tails = (idx.astype(np.int64) for idx in np.nonzero(adj))
        inv = np.argsort(self._perms, axis=1)
        if heads.size:
            slot = self._cellpos[inv[:, heads], inv[:, tails]]
            vals_hi = self._w_hi[slot].sum(axis=1, dtype=np.uint64)
            vals_lo = self._w_lo[slot].sum(axis=1, dtype=np.uint64)
        else:
            vals_hi = np.zeros(self._g, dtype=np.uint64)
            vals_lo = np.zeros(self._g, dtype=np.uint64)
        lt = (vals_hi < key_hi) | ((vals_hi == key_hi) & (vals_lo < key_lo))
        if lt.any():
            return None
        eq = (vals_hi == key_hi) & (vals_lo == key_lo)
        return self._g // int(eq.sum())

    def export_state(self) -> "tuple[int, ...]":
        """Probe-key vector as JSON-safe ints (checkpoint payload).

        Format 2 (the current one): the two words of each probe key,
        interleaved ``(hi, lo)`` per probe — tuple length is twice the
        probe count. The vector is a pure function of the current
        profile (each present arc contributes one weight per probe), so
        a resumed walk could equally recompute it from the rebuilt
        graph — storing it verbatim keeps the checkpoint self-contained
        and the restore O(probes).
        """
        out = []
        for hi, lo in zip(self._vals_hi, self._vals_lo):
            out.append(int(hi))
            out.append(int(lo))
        return tuple(out)

    def _migrate_v1_key(self, key: int) -> "tuple[int, int]":
        """Re-encode one v1 (row-major uint64) key as ``(hi, lo)``.

        v1 keys put arc ``(a, b)`` at bit ``a*n + b``; the two-word
        format puts it at the chain cell position. Only meaningful when
        every cell fits a v1 key, i.e. ``n^2 <= 64`` — the caller
        guards.
        """
        n = self._n
        hi = lo = 0
        for p_old in range(n * n):
            if (key >> p_old) & 1:
                a, b = divmod(p_old, n)
                p = int(self._cellpos[a, b])
                if p >= 64:
                    hi |= 1 << (p - 64)
                else:
                    lo |= 1 << p
        return hi, lo

    def restore_state(
        self, vals: "Sequence[int]", *, key_format: int = 2
    ) -> None:
        """Adopt a probe-key vector exported by :meth:`export_state`.

        ``key_format=2`` expects the interleaved two-word vector this
        code writes. ``key_format=1`` migrates a 64-bit (row-major)
        vector journalled by the pre-128-bit code — valid only when
        ``n^2 <= 64``; otherwise (or for an unknown format) the resume
        fails loudly rather than silently miscounting.
        """
        p_count = self._vals_hi.shape[0]
        ints = [int(v) for v in vals]
        if key_format == 2:
            if len(ints) != 2 * p_count:
                raise CheckpointError(
                    f"orbit state has {len(ints)} words, walk maintains "
                    f"{p_count} probe keys ({2 * p_count} words)"
                )
            arr = np.asarray(ints, dtype=np.uint64)
            self._vals_hi = arr[0::2].copy()
            self._vals_lo = arr[1::2].copy()
            return
        if key_format == 1:
            if self._n * self._n > 64:
                raise CheckpointError(
                    f"checkpoint carries v1 (64-bit) orbit keys but "
                    f"n = {self._n} needs the two-word format; this "
                    f"journal cannot have been written for this game — "
                    f"delete the checkpoint directory and rerun"
                )
            if len(ints) != p_count:
                raise CheckpointError(
                    f"v1 orbit state has {len(ints)} probe keys, walk "
                    f"maintains {p_count}"
                )
            pairs = [self._migrate_v1_key(v) for v in ints]
            self._vals_hi = np.asarray(
                [hi for hi, _ in pairs], dtype=np.uint64
            )
            self._vals_lo = np.asarray(
                [lo for _, lo in pairs], dtype=np.uint64
            )
            return
        raise CheckpointError(
            f"unknown orbit key format {key_format!r} (this build reads "
            f"formats 1 and 2)"
        )

    def toggle(self, i: int, j: int, present: bool) -> None:
        """Record that arc ``i -> j`` was added (or removed)."""
        slot = self._probe_slot[:, i, j]
        delta_hi = self._w_hi[slot]
        delta_lo = self._w_lo[slot]
        if present:
            self._vals_hi += delta_hi
            self._vals_lo += delta_lo
        else:
            self._vals_hi -= delta_hi
            self._vals_lo -= delta_lo

    def canonical_orbit_size(self) -> "int | None":
        """Orbit size if the current profile is canonical, else ``None``."""
        key_hi = self._vals_hi[0]  # identity relabeling = the profile
        key_lo = self._vals_lo[0]
        lt = (self._vals_hi < key_hi) | (
            (self._vals_hi == key_hi) & (self._vals_lo < key_lo)
        )
        if lt.any():
            return None
        if not self._exact:
            eq = (self._vals_hi == key_hi) & (self._vals_lo == key_lo)
            return self._g // int(eq.sum())
        size = int(
            self._exact_orbit_sizes(
                np.asarray([key_hi]), np.asarray([key_lo])
            )[0]
        )
        return size if size else None

    def advance_block(
        self, js: np.ndarray, drops: np.ndarray, adds: np.ndarray
    ) -> np.ndarray:
        """Apply a block of Gray arc swaps; orbit sizes per step.

        Step ``t`` replaces arc ``js[t] -> drops[t]`` with
        ``js[t] -> adds[t]``. Returns an ``int64`` array with the orbit
        size at each post-swap profile for canonical profiles and ``0``
        for non-canonical ones. One cumulative-sum pass per word
        maintains every probe key across the whole block (``uint64``
        wrap-around is exact: all true partial sums are valid keys);
        survivors of the probe minimum test are settled together in one
        batched stabilizer-chain recheck, so the exact-stage cost stops
        scaling with the group order.
        """
        slot_adds = self._probe_slot[:, js, adds]
        slot_drops = self._probe_slot[:, js, drops]
        deltas_hi = (self._w_hi[slot_adds] - self._w_hi[slot_drops]).T
        deltas_lo = (self._w_lo[slot_adds] - self._w_lo[slot_drops]).T
        block_hi = self._vals_hi[None, :] + np.cumsum(deltas_hi, axis=0)
        block_lo = self._vals_lo[None, :] + np.cumsum(deltas_lo, axis=0)
        self._vals_hi = block_hi[-1].copy()
        self._vals_lo = block_lo[-1].copy()
        keys_hi = block_hi[:, 0]
        keys_lo = block_lo[:, 0]
        lt = (block_hi < keys_hi[:, None]) | (
            (block_hi == keys_hi[:, None]) & (block_lo < keys_lo[:, None])
        )
        candidates = ~lt.any(axis=1)
        sizes = np.zeros(js.size, dtype=np.int64)
        hits = np.flatnonzero(candidates)
        if not hits.size:
            return sizes
        if not self._exact:
            eq = (block_hi[hits] == keys_hi[hits, None]) & (
                block_lo[hits] == keys_lo[hits, None]
            )
            sizes[hits] = self._g // eq.sum(axis=1)
            return sizes
        sizes[hits] = self._exact_orbit_sizes(keys_hi[hits], keys_lo[hits])
        return sizes


def _expand_orbit(
    profile: "tuple[tuple[int, ...], ...]", perms: np.ndarray
) -> "set[tuple[tuple[int, ...], ...]]":
    """All distinct relabelings of a profile under the group."""
    out = set()
    for perm in perms:
        relabeled = [()] * len(profile)
        for i, strat in enumerate(profile):
            relabeled[int(perm[i])] = tuple(sorted(int(perm[v]) for v in strat))
        out.add(tuple(relabeled))
    return out


# ----------------------------------------------------------------------
# Incremental census kernel
# ----------------------------------------------------------------------
def _attach_unit_snapshot(handle, graph: OwnedDigraph) -> "object | None":
    """Pool-attached ``U(G)`` engine for a shard's start graph, or ``None``.

    The parent published the all-pairs matrix of exactly this start
    profile; attaching adopts it zero-copy (copy-on-write), replacing
    the shard's initial all-pairs rebuild. Any failure — segment
    evicted, owner gone — degrades silently to the cold path.
    """
    if handle is None:
        return None
    from ..errors import GraphError, PoolError
    from ..graphs.engine import DistanceEngine as _Engine

    try:
        views = handle.attach()
        return _Engine.from_snapshot(
            graph.undirected_csr(),
            views["D"],
            inf=int(views["inf"][0]),
            dirty_fraction="adaptive",
        )
    except (PoolError, KeyError, GraphError):
        return None


#: Gray swaps per vectorised orbit-key block of the symmetry census.
_ORBIT_BLOCK: int = 2048

#: Process-local cache of per-directory :class:`PoolStore` objects used
#: by shard workers to persist checkpoint-rank matrices.
_WORKER_STORES: "dict[str, object]" = {}


def _checkpoint_store(store_dir: str):
    store = _WORKER_STORES.get(store_dir)
    if store is None:
        from .pool_store import PoolStore

        store = PoolStore(store_dir)
        _WORKER_STORES[store_dir] = store
    return store


def _persist_checkpoint_matrix(
    store_dir: "str | None", graph: OwnedDigraph, engine, *, weighted: bool
) -> None:
    """Best-effort publish of the current ``U(G)`` matrix to the disk tier.

    Called at shard checkpoint boundaries when the scan runs with
    ``pool_dir=``: the engine's matrix (synced to exactly this graph
    state) lands in the store under the graph's content digest, so a
    fresh process resuming at this cursor re-attaches from disk instead
    of rebuilding the resume-rank matrix. Persistence is strictly
    additive — a store failure never fails the scan, but it is *not*
    silent: the failure is counted in the store's
    ``stats["store_errors"]`` and surfaced as a ``RuntimeWarning``
    (matching :class:`~repro.core.matrix_pool.MatrixPool`'s write-
    through contract), so a dead ``pool_dir`` doesn't quietly disable
    checkpoint-matrix persistence.
    """
    if store_dir is None or engine is None:
        return
    import warnings

    from ..errors import PoolError
    from .pool_store import census_graph_digest

    digest = census_graph_digest(graph, weighted=weighted)
    try:
        store = _checkpoint_store(store_dir)
    except (PoolError, OSError) as exc:
        warnings.warn(
            f"checkpoint matrix store {store_dir!r} is unusable: {exc!r}; "
            f"resume will rebuild instead of attaching",
            RuntimeWarning,
            stacklevel=2,
        )
        return
    try:
        store.publish(
            digest,
            {
                "D": engine.matrix,
                "inf": np.asarray([engine.inf], dtype=np.int64),
            },
        )
    except (PoolError, OSError) as exc:
        store.stats["store_errors"] += 1
        warnings.warn(
            f"could not persist checkpoint matrix {digest!r} to "
            f"{store_dir!r}: {exc!r}; resume will rebuild instead of "
            f"attaching",
            RuntimeWarning,
            stacklevel=2,
        )


def _resume_handle(handle, cursor: int):
    """Unwrap a rank-tagged pool handle; stale tags degrade to cold.

    Fresh shards carry a plain handle published at rank ``lo``; the
    runtime's resume hook republishes at the resume cursor and tags the
    handle ``(cursor, handle)`` so a shard can never silently adopt a
    matrix snapshot of the wrong rank.
    """
    if isinstance(handle, tuple):
        tag, handle = handle
        if tag != cursor:
            return None
    return handle


def _census_shard(payload: tuple, ctx=None) -> "dict[str, object]":
    """One contiguous Gray-rank range of the census (worker function).

    Owns a private mutable graph, engine pool and orbit keys; returns
    order-independently mergeable partial aggregates. When the payload
    carries a warm-start :class:`~repro.core.matrix_pool.SegmentHandle`,
    the shard attaches the parent's snapshot of its start rank instead
    of rebuilding the base matrix from scratch.

    With symmetry pruning the shard is a **canonical-rep-only walk**:
    the Gray swap stream advances digits at amortised O(1) per rank,
    orbit keys advance in vectorised :meth:`_OrbitKeys.advance_block`
    blocks, and the graph (plus its engine pool) is only materialised
    at the sparse canonical ranks — skipped profiles never touch the
    graph at all, which is what breaks the n = 7 barrier.

    ``ctx`` (a :class:`~repro.parallel.runtime.ShardContext`) makes the
    shard checkpointable: progress records go to the shard journal at
    ``ctx.interval`` rank spacing, and ``ctx.resume_state`` restarts
    the walk mid-range — counters and orbit probe keys restored
    verbatim, the graph rebuilt at rank ``next_rank - 1`` with one
    unranking — without re-counting any rank. ``ctx=None`` is the
    plain :func:`~repro.parallel.executor.parallel_map` path,
    bit-identical to the checkpointed one.
    """
    (
        budgets,
        version_value,
        lo,
        hi,
        symmetry,
        collect,
        max_profiles,
        store_dir,
        handle,
    ) = payload
    game = BoundedBudgetGame(list(budgets))
    version = Version.coerce(version_value)
    n = game.n
    perms = _budget_symmetry_group(budgets) if symmetry else None
    orbit = _OrbitKeys(n, perms) if perms is not None else None
    resume_rec = ctx.resume_state if ctx is not None else None
    if resume_rec is not None and resume_rec.next_rank <= lo:
        resume_rec = None  # vacuous progress: run the shard fresh
    count = 0
    eq_count = 0
    warm = 0
    opt: "int | None" = None
    best_eq: "int | None" = None
    worst_eq: "int | None" = None
    eq_profiles: "list[tuple[tuple[int, ...], ...]]" = []
    start = lo
    if resume_rec is not None:
        c = resume_rec.counters
        count = int(c["count"] or 0)
        eq_count = int(c["eq_count"] or 0)
        warm = int(c.get("warm") or 0)
        opt = c["opt"]
        best_eq = c["best_eq"]
        worst_eq = c["worst_eq"]
        if collect and resume_rec.eq_profiles is not None:
            eq_profiles = list(resume_rec.eq_profiles)
        start = resume_rec.next_rank

    def counters() -> "dict[str, int | None]":
        return {
            "count": count,
            "eq_count": eq_count,
            "opt": opt,
            "best_eq": best_eq,
            "worst_eq": worst_eq,
            "warm": warm,
        }

    def part() -> "dict[str, object]":
        out: "dict[str, object]" = counters()
        out["eq_profiles"] = eq_profiles if collect else None
        return out

    def save(next_rank: int, *, done: bool = False) -> None:
        if ctx is None:
            return
        if not done and cache is not None:
            _persist_checkpoint_matrix(
                store_dir, graph, cache.base(), weighted=False
            )
        ctx.checkpoint(
            lo=lo,
            hi=hi,
            next_rank=next_rank,
            counters=counters(),
            eq_profiles=tuple(eq_profiles) if collect else None,
            orbit_vals=orbit.export_state() if orbit is not None else None,
            done=done,
        )

    if start >= hi:
        if lo <= hi:
            save(hi, done=True)
        return part()
    _check_cap(game, max_profiles)
    combos, radices, rests = _profile_tables(game)
    cursor = start - 1 if resume_rec is not None else lo
    digits = _gray_digits(cursor, radices, rests)
    graph = OwnedDigraph.from_strategies(
        [combos[u][digits[u]] for u in range(n)], n
    )
    base_engine = _attach_unit_snapshot(_resume_handle(handle, cursor), graph)
    warm += int(base_engine is not None)
    cache = DistanceCache(graph, dirty_fraction="adaptive", base_engine=base_engine)
    if orbit is not None:
        if resume_rec is not None and resume_rec.orbit_vals is not None:
            orbit.restore_state(
                resume_rec.orbit_vals,
                key_format=resume_rec.orbit_key_format,
            )
        else:
            for a, b in graph.arcs():
                orbit.toggle(a, b, True)
    gdigits = list(digits)  # digit vector the materialised graph reflects

    # trans[j][d]: the (dropped, added) targets of player j's
    # revolving-door step d -> d+1, precomputed once so the per-rank
    # loop decodes a swap with one tuple lookup instead of two set
    # differences.
    trans = [
        [
            (
                next(iter(set(cj[d]) - set(cj[d + 1]))),
                next(iter(set(cj[d + 1]) - set(cj[d]))),
            )
            for d in range(len(cj) - 1)
        ]
        for cj in combos
    ]

    def decode_swap(j: int, old_d: int, new_d: int) -> "tuple[int, int]":
        """(dropped, added) targets of the digit move ``old_d -> new_d``."""
        if new_d == old_d + 1:
            return trans[j][old_d]
        added, dropped = trans[j][new_d]
        return dropped, added

    def evaluate(pdigits: "list[int]", orbit_size: int) -> None:
        """Materialise the profile at ``pdigits`` and census it."""
        nonlocal count, eq_count, opt, best_eq, worst_eq
        for j in range(n):
            if gdigits[j] != pdigits[j]:
                graph.set_strategy(j, combos[j][pdigits[j]])
                gdigits[j] = pdigits[j]
        d = int(cache.base().matrix.max()) if n > 1 else 0
        count += orbit_size
        if opt is None or d < opt:
            opt = d
        if is_equilibrium(graph, version, cache=cache):
            eq_count += orbit_size
            if best_eq is None or d < best_eq:
                best_eq = d
            if worst_eq is None or d > worst_eq:
                worst_eq = d
            if collect:
                key = graph.profile_key()
                if perms is not None and orbit_size > 1:
                    eq_profiles.extend(_expand_orbit(key, perms))
                else:
                    eq_profiles.append(key)

    if resume_rec is None:
        # The cursor rank itself is only censused on a fresh start; a
        # resumed walk already aggregated it (``[lo, next_rank)`` done).
        first_size = 1 if orbit is None else orbit.canonical_orbit_size()
        if first_size is not None:
            evaluate(digits, first_size)

    interval = ctx.interval if ctx is not None else 0
    next_cp = start + interval if interval else None

    if orbit is None:
        # Every rank is evaluated: apply each swap as a single-arc delta
        # so the engine pool repairs (and step-forwards) one op at a time.
        stream = _gray_digit_stream(radices, digits)
        for rank in range(cursor + 1, hi):
            j, old_d, new_d = next(stream)
            dropped, added = decode_swap(j, old_d, new_d)
            graph.remove_arc(j, dropped)
            graph.add_arc(j, added)
            gdigits[j] = new_d
            evaluate(digits, 1)
            if ctx is not None:
                ctx.tick(rank)
                if next_cp is not None and rank + 1 >= next_cp and rank + 1 < hi:
                    save(rank + 1)
                    next_cp = rank + 1 + interval
    else:
        # Canonical-rep-only walk: batch the swap stream into blocks,
        # advance all probe keys per block in one vectorised pass, and
        # only touch the graph at the (rare) canonical ranks.
        # Checkpoints land on block boundaries: ``orbit._vals`` and the
        # stream's digit vector both describe the block's last rank
        # there, exactly the ``next_rank - 1`` state a resume rebuilds.
        stream = _gray_digit_stream(radices, digits)
        pdigits = list(digits)  # digit vector at the evaluation pointer
        rank = cursor + 1
        js = np.empty(_ORBIT_BLOCK, dtype=np.int64)
        drops = np.empty(_ORBIT_BLOCK, dtype=np.int64)
        adds = np.empty(_ORBIT_BLOCK, dtype=np.int64)
        newds = np.empty(_ORBIT_BLOCK, dtype=np.int64)
        while rank < hi:
            b = min(_ORBIT_BLOCK, hi - rank)
            for t in range(b):
                j, old_d, new_d = next(stream)
                dropped, added = decode_swap(j, old_d, new_d)
                js[t] = j
                drops[t] = dropped
                adds[t] = added
                newds[t] = new_d
            sizes = orbit.advance_block(js[:b], drops[:b], adds[:b])
            ptr = 0
            for t in np.flatnonzero(sizes):
                for t2 in range(ptr, int(t) + 1):
                    pdigits[int(js[t2])] = int(newds[t2])
                ptr = int(t) + 1
                evaluate(pdigits, int(sizes[t]))
            for t2 in range(ptr, b):
                pdigits[int(js[t2])] = int(newds[t2])
            rank += b
            if ctx is not None:
                ctx.tick(rank - 1)
                if next_cp is not None and rank >= next_cp and rank < hi:
                    save(rank)
                    next_cp = rank + interval
    save(hi, done=True)
    return part()


@dataclass(frozen=True)
class IncompletenessManifest:
    """Exactly what a degraded census run did *not* cover.

    Produced only by the checkpointed runtime path when poison shards
    exhausted their retries and were quarantined. ``missing`` holds one
    ``(shard_id, first_missing_rank, hi)`` triple per quarantined shard
    — the half-open Gray-rank range ``[first_missing_rank, hi)`` whose
    profiles are absent from every merged aggregate. ``covered`` is the
    number of profiles the partial counters do include (orbit-weighted
    under symmetry, so it is comparable to ``total``).
    """

    total: int
    covered: int
    missing: "tuple[tuple[int, int, int], ...]"


@dataclass(frozen=True)
class CensusResult:
    """Merged output of one full census scan.

    ``equilibria`` (when collected) holds every equilibrium profile as
    a :meth:`~repro.graphs.digraph.OwnedDigraph.profile_key`, sorted —
    which is exactly lexicographic profile order, matching the
    brute-force enumeration.

    ``incomplete`` is ``None`` for every fully-covered census (the
    overwhelmingly common case, asserted internally); a checkpointed
    run that had to quarantine poison shards instead attaches the
    :class:`IncompletenessManifest` naming the uncovered rank ranges,
    and its ``report`` aggregates only the covered profiles.
    """

    report: "ExactPriceReport"
    equilibria: "tuple[tuple[tuple[int, ...], ...], ...] | None" = None
    incomplete: "IncompletenessManifest | None" = None

    def equilibrium_graphs(self) -> "list[OwnedDigraph]":
        """Materialise the collected equilibria as graphs."""
        if self.equilibria is None:
            raise GameError("census was run without collect_equilibria=True")
        n = len(self.equilibria[0]) if self.equilibria else 0
        return [
            OwnedDigraph.from_strategies(key, n) for key in self.equilibria
        ]


#: Observability side-channel of the last pooled census run:
#: ``{"shards": int, "warm_attached": int, "disk_attached": int,
#: "parent_builds": int}``. ``disk_attached`` counts shard start-rank
#: matrices promoted from the mmap tier (zero builds) and
#: ``parent_builds`` the matrices the parent actually had to compute.
#: Kept out of the reports so pooled and unpooled results stay
#: bit-identical. Every key is zeroed at scan entry
#: (:func:`_reset_census_stats`), so an unpooled scan — or one that
#: raises — reports zeros rather than the previous run's numbers; read
#: through :func:`last_census_pool_stats` for a consistent snapshot.
LAST_CENSUS_POOL_STATS: "dict[str, int]" = {
    "shards": 0,
    "warm_attached": 0,
    "disk_attached": 0,
    "parent_builds": 0,
}


def _export_pool_disk_stats(matrix_pool) -> None:
    """Mirror a pool's two-level counters into the side-channel."""
    if matrix_pool is not None:
        LAST_CENSUS_POOL_STATS["disk_attached"] = matrix_pool.stats["disk_hits"]
        LAST_CENSUS_POOL_STATS["parent_builds"] = (
            matrix_pool.stats["published"] - matrix_pool.stats["promotions"]
        )
    else:
        LAST_CENSUS_POOL_STATS["disk_attached"] = 0
        LAST_CENSUS_POOL_STATS["parent_builds"] = 0

#: Observability side-channel of the last *checkpointed* census run:
#: the runtime's supervision stats (workers spawned, crashes, stalls,
#: retries, quarantines, shards resumed/skipped) plus coverage
#: (``covered``/``total``/``missing``). A side-channel because
#: :func:`weighted_census_scan` returns a fixed 2-tuple whose shape the
#: incompleteness manifest must not change; cleared at every scan entry
#: and rewritten per runtime scan (so a non-checkpointed scan reads as
#: ``{}``, never as the previous run's supervision numbers).
LAST_CENSUS_RUNTIME_STATS: "dict[str, object]" = {}


def _reset_census_stats() -> None:
    """Zero both observability side-channels at scan entry.

    ``shards``/``warm_attached`` used to be rewritten only on the
    pooled path and nothing reset either dict when a scan ran unpooled
    or raised — a later reader (the serve layer's ``stats`` op, a
    benchmark) saw the *previous* run's numbers. Resetting up front
    makes every scan's side-channel self-describing: zeros / empty
    until this run publishes its own counters.
    """
    for key in LAST_CENSUS_POOL_STATS:
        LAST_CENSUS_POOL_STATS[key] = 0
    LAST_CENSUS_RUNTIME_STATS.clear()


def last_census_pool_stats() -> "dict[str, int]":
    """Per-run snapshot of the pool side-channel (always all keys).

    A copy — safe to hold across a later scan — with zeros when the
    last scan was unpooled (or raised before sharding). This is the
    accessor the serve layer reads; prefer it to poking
    :data:`LAST_CENSUS_POOL_STATS` directly.
    """
    return dict(LAST_CENSUS_POOL_STATS)


def last_census_runtime_stats() -> "dict[str, object]":
    """Per-run snapshot of the runtime side-channel.

    A copy; empty when the last scan did not run through the
    checkpointed work-stealing runtime (or raised before reaching it).
    """
    return dict(LAST_CENSUS_RUNTIME_STATS)


def _warm_start_shards(
    game: BoundedBudgetGame,
    shards: "list[tuple[int, int]]",
    *,
    weighted: bool,
    slack: int = 0,
    store=None,
):
    """Publish each shard's start-rank engine state into a fresh pool.

    The parent walks the Gray code to every shard's start rank (one
    O(n) unranking each), computes the all-pairs matrix of that start
    profile once, and publishes it as a shared-memory segment; shards
    attach zero-copy instead of rebuilding. Returns ``(pool, handles)``
    — the caller owns the pool and must close it after the shards
    finish (segments stay readable for attached workers even after the
    unlink, per POSIX semantics). ``slack`` widens the pool's segment
    cap beyond one-per-shard — the checkpointed runtime republishes a
    resume-rank matrix per retry and must not evict live shard
    segments. Scan start is also when orphaned segments of previously
    killed owner processes are swept from the system.

    ``store`` (a :class:`~repro.core.pool_store.PoolStore`) makes the
    pool two-level: a shard whose start-rank matrix is already on disk
    — published by an earlier run or a dead process — is *promoted*
    into shared memory with zero builds, and every matrix built here is
    written through so the next fresh process attaches instead.
    """
    from ..graphs.engine import DistanceEngine
    from ..graphs.weighted_engine import WeightedDistanceEngine, weighted_csr_from_csr
    from .matrix_pool import MatrixPool, sweep_orphan_segments

    sweep_orphan_segments()
    n = game.n
    combos, radices, rests = _profile_tables(game)
    pool = MatrixPool(
        max_segments=max(1, len(shards)) + max(0, int(slack)), store=store
    )
    handles = []
    for lo, hi in shards:
        digits = _gray_digits(lo, radices, rests)
        graph = OwnedDigraph.from_strategies(
            [combos[u][digits[u]] for u in range(n)], n
        )
        key = ("census-shard", lo, hi, weighted)
        digest = None
        if store is not None:
            from .pool_store import census_graph_digest

            digest = census_graph_digest(graph, weighted=weighted)
            handle = pool.fetch(key, digest=digest)
            if handle is not None:
                handles.append(handle)
                continue
        if weighted:
            engine = WeightedDistanceEngine(
                weighted_csr_from_csr(graph.undirected_csr())
            )
        else:
            engine = DistanceEngine(graph.undirected_csr())
        handles.append(
            pool.publish(
                key,
                {
                    "D": engine.matrix,
                    "inf": np.asarray([engine.inf], dtype=np.int64),
                },
                digest=digest,
            )
        )
    return pool, handles


def _merge_unit_parts(
    parts: "list[dict]",
    *,
    version: Version,
    total: int,
    collect: bool,
    expect_full: bool = True,
):
    """Order-independent merge of unit-census shard partials.

    ``expect_full=False`` is the degraded (quarantine) merge: coverage
    may fall short of ``total`` and every reduction guards against an
    empty covered set.
    """
    count = sum(p["count"] for p in parts)
    if expect_full:
        assert count == total, f"census covered {count} of {total} profiles"
    eq_count = sum(p["eq_count"] for p in parts)
    opts = [p["opt"] for p in parts if p["opt"] is not None]
    bests = [p["best_eq"] for p in parts if p["best_eq"] is not None]
    worsts = [p["worst_eq"] for p in parts if p["worst_eq"] is not None]
    report = ExactPriceReport(
        version=version,
        num_profiles=count,
        num_equilibria=eq_count,
        opt_diameter=min(opts) if opts else 0,
        best_equilibrium_diameter=min(bests) if bests else None,
        worst_equilibrium_diameter=max(worsts) if worsts else None,
    )
    equilibria = None
    if collect:
        merged: "list[tuple[tuple[int, ...], ...]]" = []
        for p in parts:
            if p["eq_profiles"]:
                merged.extend(p["eq_profiles"])
        equilibria = tuple(sorted(merged))
    return report, equilibria


_UNIT_COUNTER_KEYS = ("count", "eq_count", "opt", "best_eq", "worst_eq")
_WEIGHTED_COUNTER_KEYS = (
    "count",
    "eq_count",
    "opt_d",
    "opt_c",
    "best_d",
    "worst_d",
    "best_c",
    "worst_c",
)


def _part_from_record(record, keys: "tuple[str, ...]") -> "dict[str, object]":
    """Rebuild a shard's mergeable part dict from a checkpoint record.

    Used for ``done`` records on resume (the shard is not re-executed)
    and for the last record of a quarantined shard (its partial
    counters still contribute to the degraded merge).
    """
    part: "dict[str, object]" = {k: record.counters.get(k) for k in keys}
    part["count"] = int(part["count"] or 0)
    part["eq_count"] = int(part["eq_count"] or 0)
    part["warm"] = int(record.counters.get("warm") or 0)
    part["eq_profiles"] = (
        list(record.eq_profiles) if record.eq_profiles is not None else None
    )
    return part


def _unit_part_from_record(record) -> "dict[str, object]":
    return _part_from_record(record, _UNIT_COUNTER_KEYS)


def _weighted_part_from_record(record) -> "dict[str, object]":
    return _part_from_record(record, _WEIGHTED_COUNTER_KEYS)


def _make_resume_payload(game: BoundedBudgetGame, matrix_pool, *, weighted: bool):
    """Parent-side hook refreshing a reclaimed shard's warm-start handle.

    A shard resuming at checkpoint cursor ``next_rank - 1`` must not
    attach the matrix published for its *start* rank — that snapshot
    describes a different profile. The hook walks the Gray code to the
    cursor (one O(n) unranking), publishes that profile's all-pairs
    matrix into the live pool, and swaps a rank-tagged handle into the
    payload so the retry re-attaches instead of rebuilding. Any pool
    failure degrades to a cold (handle-free) retry.

    With a disk-tier pool (``store=`` / ``pool_dir=``) the hook goes
    through :meth:`MatrixPool.fetch` first: shards persist their
    checkpoint-rank matrices under content digests, so a resume — in
    this process or a completely fresh one — re-attaches the
    resume-rank matrix from the mmap tier instead of rebuilding it.
    """
    from ..errors import PoolError

    n = game.n
    combos, radices, rests = _profile_tables(game)
    has_store = matrix_pool.store is not None

    def hook(payload: tuple, record) -> tuple:
        cursor = record.next_rank - 1
        if cursor < record.lo:
            return payload[:-1] + (None,)
        digits = _gray_digits(cursor, radices, rests)
        graph = OwnedDigraph.from_strategies(
            [combos[u][digits[u]] for u in range(n)], n
        )
        key = (
            "census-shard-resume",
            record.shard_id,
            cursor,
            weighted,
            record.attempt,
        )
        digest = None
        try:
            if has_store:
                from .pool_store import census_graph_digest

                digest = census_graph_digest(graph, weighted=weighted)
                handle = matrix_pool.fetch(key, digest=digest)
                if handle is not None:
                    return payload[:-1] + ((cursor, handle),)
            if weighted:
                from ..graphs.weighted_engine import (
                    WeightedDistanceEngine,
                    weighted_csr_from_csr,
                )

                engine = WeightedDistanceEngine(
                    weighted_csr_from_csr(graph.undirected_csr())
                )
            else:
                from ..graphs.engine import DistanceEngine

                engine = DistanceEngine(graph.undirected_csr())
            handle = matrix_pool.publish(
                key,
                {
                    "D": engine.matrix,
                    "inf": np.asarray([engine.inf], dtype=np.int64),
                },
                digest=digest,
            )
        except PoolError:
            return payload[:-1] + (None,)
        return payload[:-1] + ((cursor, handle),)

    return hook


def _resolve_runtime_shards(
    checkpoint_dir,
    *,
    resume: bool,
    kind: str,
    budgets: "tuple[int, ...]",
    total: int,
    shard_count: "int | None",
    workers: int,
    version: "str | None" = None,
    weights: "tuple[int, ...] | None" = None,
    symmetry: bool = False,
    collect: bool = False,
    seed: "int | None" = None,
    sample_method: "str | None" = None,
) -> "tuple[tuple[int, int], ...]":
    """Manifest handshake: pin (fresh) or verify (resume) the run shape.

    A fresh run writes the manifest atomically before any journal
    exists; a resume reads it back and refuses to proceed unless the
    caller's game/version/weights/symmetry/collect match exactly — the
    shard decomposition then comes *from the manifest*, never from the
    caller, so journals always line up with their rank ranges.
    """
    from .checkpoint import RunManifest, read_manifest, write_manifest

    if resume:
        manifest = read_manifest(checkpoint_dir)
        expected = RunManifest(
            kind=kind,
            budgets=budgets,
            total=total,
            shards=manifest.shards,
            version=version,
            weights=weights,
            symmetry=symmetry,
            collect=collect,
            seed=seed,
            sample_method=sample_method,
        )
        if manifest != expected:
            raise CheckpointError(
                f"resume manifest mismatch at {checkpoint_dir}: journals "
                f"describe {manifest}, caller expects {expected}"
            )
        return manifest.shards
    from ..parallel.executor import contiguous_shards

    n_shards = int(shard_count) if shard_count is not None else max(1, workers)
    shards = tuple(contiguous_shards(total, n_shards))
    write_manifest(
        checkpoint_dir,
        RunManifest(
            kind=kind,
            budgets=budgets,
            total=total,
            shards=shards,
            version=version,
            weights=weights,
            symmetry=symmetry,
            collect=collect,
            seed=seed,
            sample_method=sample_method,
        ),
    )
    return shards


def _run_census_shards(
    game: BoundedBudgetGame,
    shard_fn,
    payload_for,
    record_to_part,
    shards: "tuple[tuple[int, int], ...]",
    *,
    weighted: bool,
    workers: int,
    use_pool: bool,
    checkpoint_dir,
    resume: bool,
    fault_plan,
    runtime_opts: "dict | None",
    store=None,
):
    """Shared checkpointed-execution core of both census kinds.

    Warm-starts the shard pool, runs the work-stealing supervised
    runtime, converts outcomes into mergeable parts (quarantined shards
    contribute the partial counters of their last good record), and
    publishes the run's supervision stats. Returns
    ``(parts, missing, runtime_stats)``.
    """
    from ..parallel.runtime import run_shards

    matrix_pool = None
    handles: "list" = [None] * len(shards)
    resume_hook = None
    if use_pool and shards:
        matrix_pool, handles = _warm_start_shards(
            game,
            list(shards),
            weighted=weighted,
            slack=4 * len(shards) + 4,
            store=store,
        )
        resume_hook = _make_resume_payload(game, matrix_pool, weighted=weighted)
    else:
        from .matrix_pool import sweep_orphan_segments

        sweep_orphan_segments()
    payloads = [
        payload_for(lo, hi, handle) for (lo, hi), handle in zip(shards, handles)
    ]
    opts = dict(runtime_opts or {})
    try:
        rt = run_shards(
            shard_fn,
            payloads,
            checkpoint_dir=checkpoint_dir,
            workers=workers,
            resume=resume,
            fault_plan=fault_plan,
            resume_payload=resume_hook,
            result_from_record=record_to_part,
            **opts,
        )
    finally:
        if matrix_pool is not None:
            matrix_pool.close()
    parts: "list[dict]" = []
    missing: "list[tuple[int, int, int]]" = []
    for outcome in rt.outcomes:
        lo, hi = shards[outcome.shard_id]
        if outcome.result is not None:
            parts.append(outcome.result)
        elif outcome.last_record is not None:
            parts.append(record_to_part(outcome.last_record))
            missing.append((outcome.shard_id, outcome.last_record.next_rank, hi))
        else:
            missing.append((outcome.shard_id, lo, hi))
    # Pop "warm" unconditionally so parts stay merge-clean, but only record
    # pool stats for runs that actually attached a pool: unpooled scans must
    # leave the reset zeros in place (stale-stats regression).
    warm = sum(p.pop("warm", 0) for p in parts)
    if matrix_pool is not None:
        LAST_CENSUS_POOL_STATS["shards"] = len(shards)
        LAST_CENSUS_POOL_STATS["warm_attached"] = warm
        _export_pool_disk_stats(matrix_pool)
    covered = sum(p["count"] for p in parts)
    stats: "dict[str, object]" = dict(rt.stats)
    stats["shards"] = len(shards)
    stats["covered"] = covered
    stats["missing"] = [list(m) for m in missing]
    LAST_CENSUS_RUNTIME_STATS.clear()
    LAST_CENSUS_RUNTIME_STATS.update(stats)
    return parts, tuple(missing), covered


def census_scan(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    max_profiles: int = 500_000,
    symmetry: bool = False,
    workers: int = 1,
    collect_equilibria: bool = False,
    pool: "bool | None" = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    fault_plan=None,
    shard_count: "int | None" = None,
    runtime_opts: "dict | None" = None,
    pool_dir: "str | None" = None,
) -> CensusResult:
    """Full equilibrium census via the incremental Gray-order kernel.

    One pass over the profile space (or its canonical orbit
    representatives with ``symmetry=True``) computes the optimal
    diameter, the equilibrium count, and the best/worst equilibrium
    diameters; ``workers > 1`` splits the rank space into contiguous
    shards executed through :func:`repro.parallel.executor.parallel_map`.
    ``pool`` controls shard **warm starts** through a shared-memory
    :class:`~repro.core.matrix_pool.MatrixPool` (the parent snapshots
    each shard's start-rank matrix once; shards attach instead of
    rebuilding): ``None`` enables it exactly when the scan is sharded.
    The result is bit-identical for every combination of knobs.

    ``checkpoint_dir`` switches execution to the fault-tolerant
    work-stealing runtime (:func:`repro.parallel.runtime.run_shards`):
    shards journal their progress there, ``resume=True`` continues an
    interrupted run from the journals (after a manifest handshake), and
    ``fault_plan`` / ``shard_count`` / ``runtime_opts`` expose the
    fault-injection harness, the shard decomposition width, and the
    supervisor's tuning knobs. Checkpointed results are bit-identical
    to the static path; only a run that quarantines poison shards
    degrades — explicitly, via :attr:`CensusResult.incomplete`.

    ``pool_dir`` adds the persistent mmap tier
    (:class:`~repro.core.pool_store.PoolStore`): shard start-rank (and,
    on checkpointed runs, checkpoint-rank) matrices are written through
    to disk under content digests, so a fresh process pointed at the
    same directory attaches them with zero rebuilds. Results stay
    bit-identical; the tier only changes where warm matrices come from.
    """
    from ..parallel.executor import contiguous_shards, parallel_map

    _reset_census_stats()
    version = Version.coerce(version)
    if symmetry:
        _check_symmetry_cap(game.n)
    _check_cap(game, max_profiles)
    if workers < 1:
        raise GameError(f"workers must be positive, got {workers}")
    if checkpoint_dir is None and (
        resume or fault_plan is not None or shard_count is not None
    ):
        raise GameError(
            "resume/fault_plan/shard_count require checkpoint_dir (the "
            "checkpointed runtime path)"
        )
    total = profile_space_size(game)
    budgets = tuple(int(b) for b in game.budgets)
    store = None
    if pool_dir is not None:
        from .pool_store import PoolStore

        store = PoolStore(pool_dir)

    if checkpoint_dir is not None:
        shards_t = _resolve_runtime_shards(
            checkpoint_dir,
            resume=resume,
            kind="census",
            budgets=budgets,
            total=total,
            shard_count=shard_count,
            workers=workers,
            version=version.value,
            symmetry=symmetry,
            collect=collect_equilibria,
        )
        use_pool = (
            pool
            if pool is not None
            else (len(shards_t) > 1 or store is not None)
        )

        def payload_for(lo: int, hi: int, handle) -> tuple:
            return (
                budgets,
                version.value,
                lo,
                hi,
                symmetry,
                collect_equilibria,
                max_profiles,
                pool_dir,
                handle,
            )

        parts, missing, covered = _run_census_shards(
            game,
            _census_shard,
            payload_for,
            _unit_part_from_record,
            shards_t,
            weighted=False,
            workers=workers,
            use_pool=use_pool,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            fault_plan=fault_plan,
            runtime_opts=runtime_opts,
            store=store,
        )
        report, equilibria = _merge_unit_parts(
            parts,
            version=version,
            total=total,
            collect=collect_equilibria,
            expect_full=not missing,
        )
        incomplete = (
            IncompletenessManifest(total=total, covered=covered, missing=missing)
            if missing
            else None
        )
        return CensusResult(
            report=report, equilibria=equilibria, incomplete=incomplete
        )

    shards = contiguous_shards(total, workers)
    use_pool = pool if pool is not None else (len(shards) > 1 or store is not None)
    matrix_pool = None
    handles: "list" = [None] * len(shards)
    if use_pool and shards:
        matrix_pool, handles = _warm_start_shards(
            game, shards, weighted=False, store=store
        )
    try:
        payloads = [
            (
                budgets,
                version.value,
                lo,
                hi,
                symmetry,
                collect_equilibria,
                max_profiles,
                pool_dir,
                handle,
            )
            for (lo, hi), handle in zip(shards, handles)
        ]
        parts = parallel_map(_census_shard, payloads, processes=workers)
    finally:
        if matrix_pool is not None:
            matrix_pool.close()
    # Pop "warm" unconditionally (shards always report it) but only record
    # pool stats when a pool was attached, so unpooled scans report zeros.
    warm = sum(p.pop("warm", 0) for p in parts)
    if matrix_pool is not None:
        LAST_CENSUS_POOL_STATS["shards"] = len(shards)
        LAST_CENSUS_POOL_STATS["warm_attached"] = warm
        _export_pool_disk_stats(matrix_pool)
    report, equilibria = _merge_unit_parts(
        parts, version=version, total=total, collect=collect_equilibria
    )
    return CensusResult(report=report, equilibria=equilibria)


def enumerate_equilibria(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    max_profiles: int = 500_000,
    incremental: bool = True,
    symmetry: bool = False,
    workers: int = 1,
    pool: "bool | None" = None,
) -> list[OwnedDigraph]:
    """All pure Nash equilibria of a tiny game, by exhaustive check.

    Each profile is tested with the exact per-player engine (with the
    Lemma 2.2 shortcut), so membership is provably correct. The default
    incremental kernel returns the identical list (lexicographic
    profile order) as the ``incremental=False`` rebuild-per-profile
    reference path.
    """
    version = Version.coerce(version)
    if not incremental:
        if symmetry or workers != 1:
            raise GameError(
                "symmetry/workers require the incremental census kernel"
            )
        found = []
        for graph in enumerate_realizations(game, max_profiles=max_profiles):
            if is_equilibrium(graph, version, method="exact"):
                found.append(graph)
        return found
    result = census_scan(
        game,
        version,
        max_profiles=max_profiles,
        symmetry=symmetry,
        workers=workers,
        collect_equilibria=True,
        pool=pool,
    )
    return result.equilibrium_graphs()


@dataclass(frozen=True)
class ExactPriceReport:
    """Exact equilibrium census of one tiny game.

    ``poa``/``pos`` are exact fractions (worst resp. best equilibrium
    diameter over the optimal realization diameter); ``None`` when the
    game has no equilibrium within the enumerated space (cannot happen:
    Theorem 2.3 guarantees existence, and the test suite asserts so).
    """

    version: Version
    num_profiles: int
    num_equilibria: int
    opt_diameter: int
    best_equilibrium_diameter: "int | None"
    worst_equilibrium_diameter: "int | None"

    @property
    def poa(self) -> "Fraction | None":
        """Exact price of anarchy."""
        if self.worst_equilibrium_diameter is None:
            return None
        return Fraction(self.worst_equilibrium_diameter, self.opt_diameter)

    @property
    def pos(self) -> "Fraction | None":
        """Exact price of stability."""
        if self.best_equilibrium_diameter is None:
            return None
        return Fraction(self.best_equilibrium_diameter, self.opt_diameter)


# ----------------------------------------------------------------------
# Weighted weak-equilibrium census (Section 6)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WeightedCensusReport:
    """Exact weighted weak-equilibrium census of one tiny game.

    Counts profiles stable under weighted single-arc swaps (Section 6's
    weak equilibria for a fixed positive vertex-weight vector), along
    with diameter and weighted social cost extrema. ``social cost``
    here is ``sum_{u active} sum_v w(v) dist(u, v)`` with the paper's
    ``Cinf`` convention for cross-component terms.
    """

    weights: "tuple[int, ...]"
    num_profiles: int
    num_weak_equilibria: int
    opt_diameter: int
    opt_social_cost: int
    best_equilibrium_diameter: "int | None"
    worst_equilibrium_diameter: "int | None"
    best_equilibrium_social_cost: "int | None"
    worst_equilibrium_social_cost: "int | None"

    @property
    def poa(self) -> "Fraction | None":
        """Diameter price of anarchy over the weak-equilibrium set."""
        if self.worst_equilibrium_diameter is None:
            return None
        return Fraction(self.worst_equilibrium_diameter, self.opt_diameter)

    @property
    def pos(self) -> "Fraction | None":
        """Diameter price of stability over the weak-equilibrium set."""
        if self.best_equilibrium_diameter is None:
            return None
        return Fraction(self.best_equilibrium_diameter, self.opt_diameter)


def _attach_weighted_snapshot(handle, graph: OwnedDigraph) -> "object | None":
    """Pool-attached weighted ``U(G)`` engine for a shard start, or ``None``."""
    if handle is None:
        return None
    from ..errors import GraphError, PoolError
    from ..graphs.weighted_engine import (
        WeightedDistanceEngine,
        weighted_csr_from_csr,
    )

    try:
        views = handle.attach()
        return WeightedDistanceEngine.from_snapshot(
            weighted_csr_from_csr(graph.undirected_csr()),
            views["D"],
            inf=int(views["inf"][0]),
        )
    except (PoolError, KeyError, GraphError):
        return None


def _weighted_census_shard(payload: tuple, ctx=None) -> "dict[str, object]":
    """One contiguous Gray-rank range of the weighted census.

    Owns a private mutable graph and weighted engine pool; every swap
    verdict routes through the cache, so consecutive profiles cost one
    single-arc delta repair per touched engine instead of a fresh
    all-pairs BFS per player.

    ``ctx`` enables checkpointing and mid-range resume exactly as in
    :func:`_census_shard`: the walk restarts at ``next_rank - 1`` (one
    unranking seeds the graph and its pool-attached engine), the
    already-counted cursor rank is skipped, and counters continue
    verbatim — the merge is bit-identical to an uninterrupted run.
    """
    # Imported lazily: analysis.weighted consumes core modules, so a
    # top-level import here would cycle through the package __init__s.
    from ..analysis.weighted import WeightedRealization, is_weighted_weak_equilibrium
    from .distance_cache import WeightedDistanceCache

    budgets, weights, lo, hi, collect, max_profiles, store_dir, handle = payload
    game = BoundedBudgetGame(list(budgets))
    w = np.asarray(weights, dtype=np.int64)
    resume_rec = ctx.resume_state if ctx is not None else None
    if resume_rec is not None and resume_rec.next_rank <= lo:
        resume_rec = None  # vacuous progress: run the shard fresh
    count = 0
    eq_count = 0
    warm = 0
    opt_d: "int | None" = None
    opt_c: "int | None" = None
    best_d = worst_d = best_c = worst_c = None
    eq_profiles: "list[tuple[tuple[int, ...], ...]]" = []
    start = lo
    if resume_rec is not None:
        c = resume_rec.counters
        count = int(c["count"] or 0)
        eq_count = int(c["eq_count"] or 0)
        warm = int(c.get("warm") or 0)
        opt_d, opt_c = c["opt_d"], c["opt_c"]
        best_d, worst_d = c["best_d"], c["worst_d"]
        best_c, worst_c = c["best_c"], c["worst_c"]
        if collect and resume_rec.eq_profiles is not None:
            eq_profiles = list(resume_rec.eq_profiles)
        start = resume_rec.next_rank

    def counters() -> "dict[str, int | None]":
        return {
            "count": count,
            "eq_count": eq_count,
            "opt_d": opt_d,
            "opt_c": opt_c,
            "best_d": best_d,
            "worst_d": worst_d,
            "best_c": best_c,
            "worst_c": worst_c,
            "warm": warm,
        }

    def part() -> "dict[str, object]":
        out: "dict[str, object]" = counters()
        out["eq_profiles"] = eq_profiles if collect else None
        return out

    def save(next_rank: int, *, done: bool = False) -> None:
        if ctx is None:
            return
        if not done and cache is not None:
            _persist_checkpoint_matrix(
                store_dir, graph, cache.base(), weighted=True
            )
        ctx.checkpoint(
            lo=lo,
            hi=hi,
            next_rank=next_rank,
            counters=counters(),
            eq_profiles=tuple(eq_profiles) if collect else None,
            done=done,
        )

    if start >= hi:
        if lo <= hi:
            save(hi, done=True)
        return part()
    cursor = start - 1 if resume_rec is not None else lo
    interval = ctx.interval if ctx is not None else 0
    next_cp = start + interval if interval else None
    cache: "WeightedDistanceCache | None" = None
    wr = None
    active = None
    for rank, graph, swap in gray_profile_walk(
        game, start=cursor, stop=hi, max_profiles=max_profiles
    ):
        if cache is None:
            base_engine = _attach_weighted_snapshot(
                _resume_handle(handle, cursor), graph
            )
            warm += int(base_engine is not None)
            cache = WeightedDistanceCache(graph, base_engine=base_engine)
            wr = WeightedRealization(graph=graph, weights=w)
            active = wr.active
        if resume_rec is not None and rank == cursor:
            continue  # already aggregated by the checkpointed prefix
        count += 1
        D = cache.base().matrix
        d = int(D.max())
        cost = int((D.astype(np.int64) @ w)[active].sum())
        if opt_d is None or d < opt_d:
            opt_d = d
        if opt_c is None or cost < opt_c:
            opt_c = cost
        if is_weighted_weak_equilibrium(wr, cache=cache):
            eq_count += 1
            if best_d is None or d < best_d:
                best_d = d
            if worst_d is None or d > worst_d:
                worst_d = d
            if best_c is None or cost < best_c:
                best_c = cost
            if worst_c is None or cost > worst_c:
                worst_c = cost
            if collect:
                eq_profiles.append(graph.profile_key())
        if ctx is not None:
            ctx.tick(rank)
            if next_cp is not None and rank + 1 >= next_cp and rank + 1 < hi:
                save(rank + 1)
                next_cp = rank + 1 + interval
    save(hi, done=True)
    return part()


def _merge_weighted_parts(
    parts: "list[dict]",
    *,
    weights_t: "tuple[int, ...]",
    total: int,
    collect: bool,
    expect_full: bool = True,
):
    """Order-independent merge of weighted-census shard partials."""
    count = sum(p["count"] for p in parts)
    if expect_full:
        assert count == total, f"census covered {count} of {total} profiles"
    eq_count = sum(p["eq_count"] for p in parts)

    def _merge(key, fn):
        vals = [p[key] for p in parts if p[key] is not None]
        return fn(vals) if vals else None

    report = WeightedCensusReport(
        weights=weights_t,
        num_profiles=count,
        num_weak_equilibria=eq_count,
        opt_diameter=_merge("opt_d", min),
        opt_social_cost=_merge("opt_c", min),
        best_equilibrium_diameter=_merge("best_d", min),
        worst_equilibrium_diameter=_merge("worst_d", max),
        best_equilibrium_social_cost=_merge("best_c", min),
        worst_equilibrium_social_cost=_merge("worst_c", max),
    )
    equilibria = None
    if collect:
        merged: list = []
        for p in parts:
            if p["eq_profiles"]:
                merged.extend(p["eq_profiles"])
        equilibria = tuple(sorted(merged))
    return report, equilibria


def weighted_census_scan(
    game: BoundedBudgetGame,
    weights: "Sequence[int] | np.ndarray",
    *,
    max_profiles: int = 500_000,
    workers: int = 1,
    incremental: bool = True,
    collect_equilibria: bool = False,
    pool: "bool | None" = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    fault_plan=None,
    shard_count: "int | None" = None,
    runtime_opts: "dict | None" = None,
    pool_dir: "str | None" = None,
) -> "tuple[WeightedCensusReport, tuple | None]":
    """Full weighted weak-equilibrium census via the Gray-order kernel.

    One engine-repaired pass over the profile space counts the profiles
    that are weighted weak equilibria for the given positive vertex
    weights and tracks diameter / weighted-social-cost extrema;
    ``workers > 1`` shards the rank space. ``incremental=False`` runs
    the retained rebuild-per-profile reference path (fresh graph and
    fresh BFS sweeps per profile) — reports and collected equilibrium
    sets are bit-identical for every knob combination. Vertex weights
    break player symmetry, so there is no orbit pruning here.

    Returns ``(report, equilibria)`` where ``equilibria`` is a sorted
    tuple of profile keys when ``collect_equilibria=True``, else
    ``None``.

    Weight-0 vertices follow the Section 6 *folded ghost* semantics of
    :func:`~repro.analysis.weighted.is_weighted_weak_equilibrium`: they
    are neither checked for deviations nor legal swap targets (though
    the profile space may still wire arcs to them — give a vertex
    weight 1 if it should remain a live member of the folded graph).

    ``checkpoint_dir`` / ``resume`` / ``fault_plan`` / ``shard_count``
    / ``runtime_opts`` select the fault-tolerant checkpointed runtime
    exactly as in :func:`census_scan` (incremental path only). The
    2-tuple return shape is preserved; a degraded run's incompleteness
    manifest is published through :data:`LAST_CENSUS_RUNTIME_STATS`.
    ``pool_dir`` adds the persistent mmap warm-start tier, also exactly
    as in :func:`census_scan` (incremental path only).
    """
    from ..analysis.weighted import WeightedRealization, is_weighted_weak_equilibrium

    _reset_census_stats()
    _check_cap(game, max_profiles)
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (game.n,):
        raise GameError(
            f"weights shape {w.shape} != (n,) = ({game.n},) for this game"
        )
    if (w < 0).any():
        raise GameError("census weights must be nonnegative")
    if workers < 1:
        raise GameError(f"workers must be positive, got {workers}")
    if checkpoint_dir is None and (
        resume or fault_plan is not None or shard_count is not None
    ):
        raise GameError(
            "resume/fault_plan/shard_count require checkpoint_dir (the "
            "checkpointed runtime path)"
        )
    if checkpoint_dir is not None and not incremental:
        raise GameError(
            "the checkpointed runtime requires the incremental census kernel"
        )
    if pool_dir is not None and not incremental:
        raise GameError(
            "pool_dir requires the incremental weighted census kernel"
        )
    weights_t = tuple(int(x) for x in w)
    if incremental:
        from ..parallel.executor import contiguous_shards, parallel_map

        total = profile_space_size(game)
        budgets = tuple(int(b) for b in game.budgets)
        store = None
        if pool_dir is not None:
            from .pool_store import PoolStore

            store = PoolStore(pool_dir)
        if checkpoint_dir is not None:
            shards_t = _resolve_runtime_shards(
                checkpoint_dir,
                resume=resume,
                kind="weighted_census",
                budgets=budgets,
                total=total,
                shard_count=shard_count,
                workers=workers,
                weights=weights_t,
                collect=collect_equilibria,
            )
            use_pool = (
                pool
                if pool is not None
                else (len(shards_t) > 1 or store is not None)
            )

            def payload_for(lo: int, hi: int, handle) -> tuple:
                return (
                    budgets,
                    weights_t,
                    lo,
                    hi,
                    collect_equilibria,
                    max_profiles,
                    pool_dir,
                    handle,
                )

            parts, missing, covered = _run_census_shards(
                game,
                _weighted_census_shard,
                payload_for,
                _weighted_part_from_record,
                shards_t,
                weighted=True,
                workers=workers,
                use_pool=use_pool,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                fault_plan=fault_plan,
                runtime_opts=runtime_opts,
                store=store,
            )
            return _merge_weighted_parts(
                parts,
                weights_t=weights_t,
                total=total,
                collect=collect_equilibria,
                expect_full=not missing,
            )
        shards = contiguous_shards(total, workers)
        use_pool = (
            pool if pool is not None else (len(shards) > 1 or store is not None)
        )
        matrix_pool = None
        handles: "list" = [None] * len(shards)
        if use_pool and shards:
            matrix_pool, handles = _warm_start_shards(
                game, shards, weighted=True, store=store
            )
        try:
            payloads = [
                (
                    budgets,
                    weights_t,
                    lo,
                    hi,
                    collect_equilibria,
                    max_profiles,
                    pool_dir,
                    handle,
                )
                for (lo, hi), handle in zip(shards, handles)
            ]
            parts = parallel_map(
                _weighted_census_shard, payloads, processes=workers
            )
        finally:
            if matrix_pool is not None:
                matrix_pool.close()
        # Same gating as the unit path: unpooled scans keep the reset zeros.
        warm = sum(p.pop("warm", 0) for p in parts)
        if matrix_pool is not None:
            LAST_CENSUS_POOL_STATS["shards"] = len(shards)
            LAST_CENSUS_POOL_STATS["warm_attached"] = warm
            _export_pool_disk_stats(matrix_pool)
        return _merge_weighted_parts(
            parts, weights_t=weights_t, total=total, collect=collect_equilibria
        )

    if workers != 1:
        raise GameError("workers require the incremental weighted census kernel")
    from ..graphs.distances import distance_matrix

    active = np.flatnonzero(w > 0).astype(np.int64)
    count = 0
    eq_count = 0
    opt_d = opt_c = None
    best_d = worst_d = best_c = worst_c = None
    eq_profiles: list = []
    for graph in enumerate_realizations(game, max_profiles=max_profiles):
        count += 1
        D = distance_matrix(graph)
        d = int(D.max())
        cost = int((D @ w)[active].sum())
        if opt_d is None or d < opt_d:
            opt_d = d
        if opt_c is None or cost < opt_c:
            opt_c = cost
        wr = WeightedRealization(graph=graph, weights=w)
        if is_weighted_weak_equilibrium(wr):
            eq_count += 1
            best_d = d if best_d is None else min(best_d, d)
            worst_d = d if worst_d is None else max(worst_d, d)
            best_c = cost if best_c is None else min(best_c, cost)
            worst_c = cost if worst_c is None else max(worst_c, cost)
            if collect_equilibria:
                eq_profiles.append(graph.profile_key())
    report = WeightedCensusReport(
        weights=weights_t,
        num_profiles=count,
        num_weak_equilibria=eq_count,
        opt_diameter=opt_d,
        opt_social_cost=opt_c,
        best_equilibrium_diameter=best_d,
        worst_equilibrium_diameter=worst_d,
        best_equilibrium_social_cost=best_c,
        worst_equilibrium_social_cost=worst_c,
    )
    equilibria = tuple(sorted(eq_profiles)) if collect_equilibria else None
    return report, equilibria


# ----------------------------------------------------------------------
# Monte Carlo sampled census
# ----------------------------------------------------------------------

#: ``derive_seed`` domain tags: the rank draws and the bootstrap
#: resampler must be independent streams of the same user seed.
_SAMPLED_DRAW_TAG: int = 1101
_SAMPLED_BOOT_TAG: int = 1102

#: The sampling methods :func:`sampled_census_scan` accepts.
_SAMPLE_METHODS: "tuple[str, ...]" = ("uniform", "stratified", "orbit")


def _sampled_ranks(
    total: int, samples: int, seed: int, method: str
) -> "list[int]":
    """The deterministic sorted Gray-rank draw of one sampled run.

    Shared verbatim by the parent and every shard — a shard re-derives
    the full list and evaluates its slice of *sample indices*, which is
    what makes the estimate worker-count invariant. ``"uniform"`` draws
    ``samples`` i.i.d. ranks (with replacement); ``"stratified"`` and
    ``"orbit"`` draw one rank per contiguous stratum of the rank space
    — deliberately from the *same* stream, so the orbit method's
    memoised estimator is bit-identical to the stratified one. Draws go
    through :class:`random.Random` (not numpy) because profile spaces
    overflow 64 bits long before they overflow Python ints.
    """
    import random

    from ..parallel.executor import contiguous_shards
    from ..rng import derive_seed

    strat = method != "uniform"
    rng = random.Random(
        derive_seed(seed, _SAMPLED_DRAW_TAG, samples, int(strat))
    )
    if strat:
        return [
            lo + rng.randrange(hi - lo)
            for lo, hi in contiguous_shards(total, samples)
        ]
    return sorted(rng.randrange(total) for _ in range(samples))


def _sampled_census_shard(payload: tuple, ctx=None) -> "dict[str, object]":
    """One contiguous range of *sample indices* (worker function).

    Bounds are indices into the run's deterministic rank draw, **not**
    Gray ranks — which is why the sampled checkpointed path never
    engages the rank-tagged matrix-pool machinery (a numeric tag match
    there would attach the wrong profile's matrix). Each sample is one
    O(n) unranking plus a strategy diff against the previous sample's
    graph, repaired by the engine delta machinery; verdicts accumulate
    into a ``(diameter, is_eq)`` histogram that the merge turns into
    density / PoA estimates. The ``"orbit"`` method canonicalises every
    sample through the stabilizer chain first and memoises verdicts per
    orbit key, skipping the graph entirely on a hit.
    """
    (
        budgets,
        version_value,
        lo,
        hi,
        samples,
        seed,
        method,
        handle,
    ) = payload
    game = BoundedBudgetGame(list(budgets))
    version = Version.coerce(version_value)
    n = game.n
    total = profile_space_size(game)
    ranks = _sampled_ranks(total, samples, seed, method)
    resume_rec = ctx.resume_state if ctx is not None else None
    if resume_rec is not None and resume_rec.next_rank <= lo:
        resume_rec = None  # vacuous progress: run the shard fresh
    count = 0
    eq_count = 0
    warm = 0
    hist: "dict[str, int]" = {}
    start = lo
    if resume_rec is not None:
        c = resume_rec.counters
        count = int(c["count"] or 0)
        eq_count = int(c["eq_count"] or 0)
        warm = int(c.get("warm") or 0)
        for k, v in c.items():
            if k.startswith("d:"):
                hist[k] = int(v or 0)
        start = resume_rec.next_rank

    def counters() -> "dict[str, int | None]":
        out: "dict[str, int | None]" = {
            "count": count,
            "eq_count": eq_count,
            "warm": warm,
        }
        out.update(hist)
        return out

    def part() -> "dict[str, object]":
        return dict(counters())

    def save(next_index: int, *, done: bool = False) -> None:
        if ctx is None:
            return
        ctx.checkpoint(
            lo=lo, hi=hi, next_rank=next_index, counters=counters(), done=done
        )

    if start >= hi:
        if lo <= hi:
            save(hi, done=True)
        return part()
    combos, radices, rests = _profile_tables(game)
    digits = _gray_digits(ranks[start], radices, rests)
    graph = OwnedDigraph.from_strategies(
        [combos[u][digits[u]] for u in range(n)], n
    )
    # The warm-start handle (static path only) was published for the
    # graph at ranks[lo]; attach only when that is the graph we built.
    base_engine = _attach_unit_snapshot(handle, graph) if start == lo else None
    warm += int(base_engine is not None)
    if base_engine is not None:
        cache = DistanceCache(
            graph, dirty_fraction="adaptive", base_engine=base_engine
        )
    else:
        # Cold starts recycle retired matrix buffers process-locally:
        # serial batteries re-scan same-sized games back to back, and
        # the shared cache's rebind path skips their reallocations.
        from ..parallel.sweep import shared_distance_cache

        cache = shared_distance_cache(graph, dirty_fraction="adaptive")
    gdigits = list(digits)

    chain = None
    memo: "dict[tuple[int, int], tuple[int, bool]]" = {}
    if method == "orbit":
        from .isomorphism import BudgetStabilizerChain

        chain = BudgetStabilizerChain(budgets)

    def ownership_adj(pdigits: "list[int]") -> np.ndarray:
        adj = np.zeros((n, n), dtype=bool)
        for u in range(n):
            adj[u, list(combos[u][pdigits[u]])] = True
        return adj

    def evaluate(pdigits: "list[int]") -> "tuple[int, bool]":
        for j in range(n):
            if gdigits[j] != pdigits[j]:
                graph.set_strategy(j, combos[j][pdigits[j]])
                gdigits[j] = pdigits[j]
        d = int(cache.base().matrix.max()) if n > 1 else 0
        return d, bool(is_equilibrium(graph, version, cache=cache))

    interval = ctx.interval if ctx is not None else 0
    next_cp = start + interval if interval else None
    for i in range(start, hi):
        pdigits = (
            digits if i == start else _gray_digits(ranks[i], radices, rests)
        )
        verdict = None
        if chain is not None:
            min_hi, min_lo, _ = chain.minimal_images(
                ownership_adj(pdigits)[None, :, :]
            )
            ckey = (int(min_hi[0]), int(min_lo[0]))
            verdict = memo.get(ckey)
        if verdict is None:
            verdict = evaluate(pdigits)
            if chain is not None:
                memo[ckey] = verdict
        d, eq = verdict
        count += 1
        eq_count += int(eq)
        hkey = f"d:{d}:{int(eq)}"
        hist[hkey] = hist.get(hkey, 0) + 1
        if ctx is not None:
            ctx.tick(i)
            if next_cp is not None and i + 1 >= next_cp and i + 1 < hi:
                save(i + 1)
                next_cp = i + 1 + interval
    save(hi, done=True)
    return part()


def _sampled_part_from_record(record) -> "dict[str, object]":
    part: "dict[str, object]" = {
        k: int(v or 0)
        for k, v in record.counters.items()
        if k.startswith("d:") or k in ("count", "eq_count")
    }
    part.setdefault("count", 0)
    part.setdefault("eq_count", 0)
    part["warm"] = int(record.counters.get("warm") or 0)
    return part


def _merge_sampled_parts(
    parts: "list[dict]",
) -> "tuple[int, int, dict[tuple[int, int], int]]":
    """Order-independent merge: ``(count, eq_count, histogram)``.

    Histogram keys are ``(diameter, is_eq)`` pairs decoded from the
    shards' ``"d:<diameter>:<0|1>"`` counter keys.
    """
    count = 0
    eq_count = 0
    hist: "dict[tuple[int, int], int]" = {}
    for p in parts:
        count += int(p.get("count") or 0)
        eq_count += int(p.get("eq_count") or 0)
        for k, v in p.items():
            if isinstance(k, str) and k.startswith("d:"):
                _, d, eq = k.split(":")
                key = (int(d), int(eq))
                hist[key] = hist.get(key, 0) + int(v or 0)
    return count, eq_count, hist


def _wilson_interval(
    successes: int, trials: int, confidence: float
) -> "tuple[float, float]":
    """Wilson score interval for a binomial proportion.

    Unlike the Wald interval it never collapses to a point at 0 or 1
    successes — exactly the regime a rare-equilibrium census sits in.
    """
    if trials == 0:
        return (0.0, 1.0)
    from statistics import NormalDist

    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    nt = float(trials)
    k = float(successes)
    denom = nt + z * z
    center = (k + z * z / 2.0) / denom
    half = (z / denom) * math.sqrt(k * (nt - k) / nt + z * z / 4.0)
    # Exact endpoints at the degenerate counts (float noise otherwise
    # leaves a ~1e-18 residue that breaks "0 successes => bound is 0").
    lo = 0.0 if successes == 0 else max(0.0, center - half)
    hi = 1.0 if successes == trials else min(1.0, center + half)
    return (lo, hi)


def _bootstrap_poa_ci(
    hist: "dict[tuple[int, int], int]",
    trials: int,
    seed: int,
    confidence: float,
    resamples: int = 1000,
) -> "tuple[float, float] | None":
    """Percentile-bootstrap interval for the sampled PoA ratio.

    Resamples the ``(diameter, is_eq)`` histogram multinomially and
    recomputes ``worst sampled equilibrium diameter / best sampled
    diameter`` per replicate; replicates whose resample holds no
    equilibrium cell are skipped. Deterministic for a given seed
    (category order is sorted, the generator is derived). Returns
    ``None`` when no equilibrium was sampled at all.
    """
    from ..rng import derive_seed

    cats = sorted(hist.items())
    if trials == 0 or not any(eq for (_, eq), _ in cats):
        return None
    counts = np.asarray([c for _, c in cats], dtype=np.float64)
    probs = counts / counts.sum()
    diams = np.asarray([d for (d, _), _ in cats], dtype=np.int64)
    eqs = np.asarray([bool(e) for (_, e), _ in cats], dtype=bool)
    rng = np.random.default_rng(
        derive_seed(seed, _SAMPLED_BOOT_TAG, trials, resamples)
    )
    draws = rng.multinomial(trials, probs, size=resamples)
    ratios: "list[float]" = []
    for row in draws:
        present = row > 0
        if not (present & eqs).any():
            continue
        opt = int(diams[present].min())
        worst = int(diams[present & eqs].max())
        ratios.append(1.0 if opt <= 0 else worst / opt)
    if not ratios:
        return None
    ratios.sort()
    alpha = (1.0 - confidence) / 2.0
    lo_i = int(alpha * (len(ratios) - 1))
    hi_i = int(math.ceil((1.0 - alpha) * (len(ratios) - 1)))
    return (float(ratios[lo_i]), float(ratios[hi_i]))


@dataclass(frozen=True)
class SampledCensusReport:
    """Monte Carlo census estimates with their uncertainty.

    Estimator methodology
    ---------------------
    ``eq_density`` is the sample fraction of equilibrium profiles —
    unbiased for the population fraction under both the i.i.d.
    (``"uniform"``) and one-draw-per-stratum (``"stratified"`` /
    ``"orbit"``) designs. ``eq_density_ci`` is the Wilson score
    interval at ``confidence`` (computed as if i.i.d.; under the
    stratified design it is mildly conservative). ``eq_count_estimate``
    and ``eq_count_ci`` scale those by ``total_profiles``.

    ``poa_estimate`` is ``worst_equilibrium_diameter_seen /
    opt_diameter_seen`` — a ratio of sample extrema, so it is a *lower
    bound* estimate of the exact PoA (extrema can only be missed, never
    overshot). ``poa_ci`` is the percentile bootstrap over multinomial
    resamples of the ``(diameter, is_eq)`` histogram; ``None`` when no
    equilibrium was sampled. ``samples_evaluated < samples`` only when
    a checkpointed run quarantined poison shards.
    """

    version: Version
    method: str
    seed: int
    samples: int
    samples_evaluated: int
    total_profiles: int
    eq_samples: int
    confidence: float
    eq_density: float
    eq_density_ci: "tuple[float, float]"
    eq_count_estimate: float
    eq_count_ci: "tuple[float, float]"
    opt_diameter_seen: "int | None"
    best_equilibrium_diameter_seen: "int | None"
    worst_equilibrium_diameter_seen: "int | None"
    poa_estimate: "Fraction | None"
    poa_ci: "tuple[float, float] | None"
    histogram: "tuple[tuple[int, int, int], ...]"


def _sampled_report(
    *,
    version: Version,
    method: str,
    seed: int,
    samples: int,
    confidence: float,
    total: int,
    count: int,
    eq_count: int,
    hist: "dict[tuple[int, int], int]",
) -> SampledCensusReport:
    density = eq_count / count if count else 0.0
    ci = _wilson_interval(eq_count, count, confidence)
    try:
        ftotal = float(total)
    except OverflowError:
        ftotal = math.inf  # the estimate is still a density; count is not finite
    cells = sorted(hist)
    opt_seen = min((d for d, _ in cells), default=None)
    eq_diams = [d for d, e in cells if e]
    best = min(eq_diams, default=None)
    worst = max(eq_diams, default=None)
    poa = None
    if worst is not None and opt_seen is not None:
        poa = Fraction(worst, opt_seen) if opt_seen > 0 else Fraction(1)
    return SampledCensusReport(
        version=version,
        method=method,
        seed=seed,
        samples=samples,
        samples_evaluated=count,
        total_profiles=total,
        eq_samples=eq_count,
        confidence=confidence,
        eq_density=density,
        eq_density_ci=ci,
        eq_count_estimate=density * ftotal,
        eq_count_ci=(ci[0] * ftotal, ci[1] * ftotal),
        opt_diameter_seen=opt_seen,
        best_equilibrium_diameter_seen=best,
        worst_equilibrium_diameter_seen=worst,
        poa_estimate=poa,
        poa_ci=_bootstrap_poa_ci(hist, count, seed, confidence),
        histogram=tuple((d, e, hist[(d, e)]) for d, e in cells),
    )


def sampled_census_scan(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    samples: int,
    seed: int = 0,
    method: str = "uniform",
    confidence: float = 0.95,
    workers: int = 1,
    pool: "bool | None" = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    fault_plan=None,
    shard_count: "int | None" = None,
    runtime_opts: "dict | None" = None,
    pool_dir: "str | None" = None,
) -> SampledCensusReport:
    """Monte Carlo census: equilibrium density and PoA with intervals.

    Draws ``samples`` profile ranks deterministically from ``seed``
    (``method="uniform"``: i.i.d. with replacement; ``"stratified"``:
    one per contiguous rank stratum; ``"orbit"``: the stratified draw,
    with each sample canonicalised through the stabilizer chain and
    verdicts memoised per orbit — bit-identical estimates, fewer graph
    evaluations when samples collide in orbit space) and evaluates them
    through the Gray unranking + engine-repair kernel. No profile cap:
    sampling is exactly the regime past exhaustive reach. The estimate
    is invariant under ``workers`` / ``shard_count`` — shards split the
    *sample index* space and every shard re-derives the same rank draw.

    ``checkpoint_dir`` / ``resume`` / ``fault_plan`` / ``runtime_opts``
    run the scan on the fault-tolerant checkpointed runtime exactly as
    in :func:`census_scan` (manifests additionally pin ``seed`` and
    ``method``); the sampled path never attaches the rank-tagged matrix
    pool there, because its shard bounds are sample indices, not Gray
    ranks. The static path warm-starts shards from their first sampled
    rank's matrix (``pool`` / ``pool_dir`` as in :func:`census_scan`).

    See :class:`SampledCensusReport` for the estimator and confidence
    interval methodology.
    """
    from ..parallel.executor import contiguous_shards, parallel_map

    _reset_census_stats()
    version = Version.coerce(version)
    if samples < 1:
        raise GameError(f"samples must be positive, got {samples}")
    if method not in _SAMPLE_METHODS:
        raise GameError(
            f"unknown sampling method {method!r}; use one of {_SAMPLE_METHODS}"
        )
    if not 0.0 < confidence < 1.0:
        raise GameError(f"confidence must be in (0, 1), got {confidence}")
    if workers < 1:
        raise GameError(f"workers must be positive, got {workers}")
    if method == "orbit":
        _check_symmetry_cap(game.n)
    if checkpoint_dir is None and (
        resume or fault_plan is not None or shard_count is not None
    ):
        raise GameError(
            "resume/fault_plan/shard_count require checkpoint_dir (the "
            "checkpointed runtime path)"
        )
    total = profile_space_size(game)
    if method != "uniform" and samples > total:
        raise GameError(
            f"{method!r} sampling draws one rank per stratum and needs "
            f"samples <= profile space ({samples} > {total})"
        )
    budgets = tuple(int(b) for b in game.budgets)

    def payload_for(lo: int, hi: int, handle) -> tuple:
        return (budgets, version.value, lo, hi, samples, seed, method, handle)

    if checkpoint_dir is not None:
        shards_t = _resolve_runtime_shards(
            checkpoint_dir,
            resume=resume,
            kind="sampled_census",
            budgets=budgets,
            total=samples,
            shard_count=shard_count,
            workers=workers,
            version=version.value,
            seed=seed,
            sample_method=method,
        )
        parts, missing, covered = _run_census_shards(
            game,
            _sampled_census_shard,
            payload_for,
            _sampled_part_from_record,
            shards_t,
            weighted=False,
            workers=workers,
            # Sampled shard bounds are sample indices, not Gray ranks:
            # the pool's rank-tagged warm-start/resume machinery would
            # numerically "match" them and attach the wrong profile's
            # matrix, so it must never engage on this path.
            use_pool=False,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            fault_plan=fault_plan,
            runtime_opts=runtime_opts,
            store=None,
        )
        count, eq_count, hist = _merge_sampled_parts(parts)
        return _sampled_report(
            version=version,
            method=method,
            seed=seed,
            samples=samples,
            confidence=confidence,
            total=total,
            count=count,
            eq_count=eq_count,
            hist=hist,
        )

    store = None
    if pool_dir is not None:
        from .pool_store import PoolStore

        store = PoolStore(pool_dir)
    shards = contiguous_shards(samples, workers)
    use_pool = pool if pool is not None else (len(shards) > 1 or store is not None)
    matrix_pool = None
    handles: "list" = [None] * len(shards)
    if use_pool and shards:
        # Pseudo rank-ranges: each shard's warm start is the matrix of
        # its *first sampled rank* (contiguous_shards never emits empty
        # shards, so ranks[lo] always exists).
        ranks = _sampled_ranks(total, samples, seed, method)
        pseudo = [(ranks[lo], ranks[hi - 1] + 1) for lo, hi in shards]
        matrix_pool, handles = _warm_start_shards(
            game, pseudo, weighted=False, store=store
        )
    try:
        payloads = [
            payload_for(lo, hi, handle)
            for (lo, hi), handle in zip(shards, handles)
        ]
        parts = parallel_map(_sampled_census_shard, payloads, processes=workers)
    finally:
        if matrix_pool is not None:
            matrix_pool.close()
    warm = sum(p.pop("warm", 0) for p in parts)
    if matrix_pool is not None:
        LAST_CENSUS_POOL_STATS["shards"] = len(shards)
        LAST_CENSUS_POOL_STATS["warm_attached"] = warm
        _export_pool_disk_stats(matrix_pool)
    count, eq_count, hist = _merge_sampled_parts(parts)
    return _sampled_report(
        version=version,
        method=method,
        seed=seed,
        samples=samples,
        confidence=confidence,
        total=total,
        count=count,
        eq_count=eq_count,
        hist=hist,
    )


def exact_prices(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    max_profiles: int = 500_000,
    incremental: bool = True,
    symmetry: bool = False,
    workers: int = 1,
    pool: "bool | None" = None,
) -> ExactPriceReport:
    """Exact PoA / PoS of a tiny game by full enumeration.

    One pass over the profile space computes the optimal diameter and
    the best/worst equilibrium diameters simultaneously. The default
    incremental path (Gray-order walk + engine delta repair, optionally
    with ``symmetry`` orbit pruning and ``workers`` shards, warm-started
    from a shared-memory pool per ``pool``) returns a report
    bit-identical to the ``incremental=False`` rebuild-per-profile
    reference implementation.
    """
    version = Version.coerce(version)
    if incremental:
        return census_scan(
            game,
            version,
            max_profiles=max_profiles,
            symmetry=symmetry,
            workers=workers,
            pool=pool,
        ).report
    if symmetry or workers != 1:
        raise GameError("symmetry/workers require the incremental census kernel")
    _check_cap(game, max_profiles)
    opt = None
    best_eq = None
    worst_eq = None
    count = 0
    eq_count = 0
    for graph in enumerate_realizations(game, max_profiles=max_profiles):
        count += 1
        d = diameter(graph)
        if opt is None or d < opt:
            opt = d
        if is_equilibrium(graph, version, method="exact"):
            eq_count += 1
            if best_eq is None or d < best_eq:
                best_eq = d
            if worst_eq is None or d > worst_eq:
                worst_eq = d
    assert opt is not None, "profile space is never empty"
    return ExactPriceReport(
        version=version,
        num_profiles=count,
        num_equilibria=eq_count,
        opt_diameter=opt,
        best_equilibrium_diameter=best_eq,
        worst_equilibrium_diameter=worst_eq,
    )
