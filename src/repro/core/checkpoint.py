"""Crash-safe shard checkpoints for resumable census scans.

Long sharded census runs (unit ``n >= 7``, weighted batteries, future
``n = 8`` / sampled-census soaks) used to die with the process: a shard
was a contiguous Gray-rank range with no persistent state, so any
preemption threw away every profile already evaluated. This module
gives each shard a small, **engine-free**, serialisable checkpoint
record — the Gray rank cursor, the partial aggregates, and (for the
symmetry walk) the :class:`~repro.core.enumeration._OrbitKeys` probe
state — persisted into an append-only on-disk journal that survives
worker kills, torn writes and record corruption.

Journal format
--------------
One journal file per shard (``shard-NNNN.journal``) holding a sequence
of framed records::

    +-------+----------------+----------------+---------------+------+
    | magic | payload length | CRC32(payload) | JSON payload  | \\n   |
    |  4 B  |  4 B LE uint32 |  4 B LE uint32 | length bytes  | 1 B  |
    +-------+----------------+----------------+---------------+------+

* **Append-only.** A worker only ever appends (flush + fsync per
  record); it never rewrites. Appends from successive attempts of the
  same shard simply extend the file — records carry their ``attempt``
  and a monotonically advancing ``next_rank``.
* **Torn/corrupt-tail detection.** :func:`replay_journal` validates
  frames in order (magic, length bounds, CRC, JSON decode) and stops at
  the first invalid byte: a torn final write, a corrupted record, or
  trailing garbage all degrade to the *last good prefix* instead of
  failing the run. :func:`compact_journal` rewrites that good prefix
  through an atomic temp-write-plus-rename so later appends extend a
  clean file.
* **Atomic manifest.** A run-level ``MANIFEST.json`` (game, version,
  shard decomposition) is committed with temp-write + ``os.replace`` —
  readers never observe a half-written manifest — and is what ``resume``
  validates against before trusting any journal.

Resume semantics
----------------
A record with ``next_rank = r`` asserts "ranks ``[lo, r)`` of this
shard are fully aggregated into these counters". Resuming rebuilds the
walk state at rank ``r - 1`` (one O(n) Gray unranking; the matrix pool
republishes that profile's all-pairs matrix so the engine warm-starts
by attaching, never rebuilding), restores the counters and orbit probe
keys verbatim, and continues the swap stream over ``[r, hi)`` — no rank
is ever double-counted, so the merged census is bit-identical to an
uninterrupted run. ``done = True`` marks a finished shard whose final
counters stand in for re-execution entirely.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..errors import CheckpointError

__all__ = [
    "ShardCheckpoint",
    "JournalReplay",
    "RunManifest",
    "encode_record",
    "decode_record",
    "append_record",
    "append_encoded",
    "replay_journal",
    "compact_journal",
    "shard_journal_path",
    "write_manifest",
    "read_manifest",
    "MANIFEST_NAME",
]

#: Frame magic: "Repro Bounded-budget ChecKpoint".
RECORD_MAGIC: bytes = b"RBCK"

#: ``<length, crc32>`` little-endian frame header after the magic.
_HEADER = struct.Struct("<II")

#: Sanity cap on a single record payload; anything larger in a length
#: field is treated as corruption, not an allocation request.
_MAX_PAYLOAD: int = 64 * 1024 * 1024

MANIFEST_NAME: str = "MANIFEST.json"

_ProfileKey = "tuple[tuple[int, ...], ...]"


def _freeze_profiles(profiles) -> "tuple | None":
    """Nested lists (JSON) -> the census's tuple-of-tuples profile keys."""
    if profiles is None:
        return None
    return tuple(
        tuple(tuple(int(v) for v in strategy) for strategy in key)
        for key in profiles
    )


def _thaw_profiles(profiles) -> "list | None":
    """Profile keys -> JSON-serialisable nested lists."""
    if profiles is None:
        return None
    return [[list(strategy) for strategy in key] for key in profiles]


@dataclass(frozen=True)
class ShardCheckpoint:
    """One engine-free snapshot of a census shard's progress.

    ``counters`` holds the shard's partial aggregates exactly as its
    worker function returns them (JSON scalars only: ints or ``None``);
    ``eq_profiles`` the collected equilibrium profile keys so far (when
    collecting); ``orbit_vals`` the symmetry walk's probe-key vector at
    rank ``next_rank - 1`` (``None`` for unpruned/weighted walks). The
    record is self-describing — decoding never needs the game.

    ``orbit_key_format`` versions the ``orbit_vals`` encoding: format
    ``1`` is the historical one-``uint64``-per-probe row-major packing,
    format ``2`` (written by this code) interleaves the two 64-bit
    words of each 128-bit key as ``(hi, lo)`` pairs. Journals written
    before the field existed decode as format ``1``; the resuming walk
    migrates them when ``n^2 <= 64`` and fails loudly otherwise.
    """

    shard_id: int
    lo: int
    hi: int
    next_rank: int
    attempt: int = 0
    done: bool = False
    counters: "Mapping[str, int | None]" = field(default_factory=dict)
    eq_profiles: "tuple[_ProfileKey, ...] | None" = None
    orbit_vals: "tuple[int, ...] | None" = None
    orbit_key_format: int = 2

    def __post_init__(self) -> None:
        if not self.lo <= self.next_rank <= self.hi:
            raise CheckpointError(
                f"checkpoint rank {self.next_rank} outside shard "
                f"[{self.lo}, {self.hi}]"
            )


def encode_record(record: ShardCheckpoint) -> bytes:
    """Serialise one record into its framed on-disk byte form."""
    payload = json.dumps(
        {
            "shard_id": record.shard_id,
            "lo": record.lo,
            "hi": record.hi,
            "next_rank": record.next_rank,
            "attempt": record.attempt,
            "done": record.done,
            "counters": dict(record.counters),
            "eq_profiles": _thaw_profiles(record.eq_profiles),
            "orbit_vals": None
            if record.orbit_vals is None
            else [int(v) for v in record.orbit_vals],
            "orbit_key_format": int(record.orbit_key_format),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return (
        RECORD_MAGIC
        + _HEADER.pack(len(payload), zlib.crc32(payload))
        + payload
        + b"\n"
    )


def decode_record(data: bytes) -> ShardCheckpoint:
    """Inverse of :func:`encode_record` for exactly one framed record."""
    record, end = _decode_at(data, 0)
    if record is None:
        raise CheckpointError("bytes do not decode to a checkpoint record")
    if end != len(data):
        raise CheckpointError(f"{len(data) - end} trailing bytes after record")
    return record


def _decode_at(data: bytes, offset: int) -> "tuple[ShardCheckpoint | None, int]":
    """Decode the frame at ``offset``; ``(None, offset)`` when invalid.

    Every failure mode — short read, wrong magic, absurd length, CRC
    mismatch, JSON/shape errors, missing newline terminator — returns
    ``None`` rather than raising: replay treats it as the torn/corrupt
    tail boundary.
    """
    head = offset + len(RECORD_MAGIC) + _HEADER.size
    if head > len(data) or data[offset : offset + len(RECORD_MAGIC)] != RECORD_MAGIC:
        return None, offset
    length, crc = _HEADER.unpack_from(data, offset + len(RECORD_MAGIC))
    end = head + length + 1  # trailing newline
    if length > _MAX_PAYLOAD or end > len(data):
        return None, offset
    payload = data[head : head + length]
    if data[end - 1 : end] != b"\n" or zlib.crc32(payload) != crc:
        return None, offset
    try:
        obj = json.loads(payload.decode("utf-8"))
        record = ShardCheckpoint(
            shard_id=int(obj["shard_id"]),
            lo=int(obj["lo"]),
            hi=int(obj["hi"]),
            next_rank=int(obj["next_rank"]),
            attempt=int(obj["attempt"]),
            done=bool(obj["done"]),
            counters={
                str(k): (None if v is None else int(v))
                for k, v in obj["counters"].items()
            },
            eq_profiles=_freeze_profiles(obj["eq_profiles"]),
            orbit_vals=None
            if obj["orbit_vals"] is None
            else tuple(int(v) for v in obj["orbit_vals"]),
            # Journals written before the format field existed carry
            # v1 (64-bit row-major) orbit keys.
            orbit_key_format=int(obj.get("orbit_key_format", 1)),
        )
    except (ValueError, KeyError, TypeError, CheckpointError):
        return None, offset
    return record, end


@dataclass(frozen=True)
class JournalReplay:
    """Outcome of replaying one journal: the good prefix and its extent."""

    records: "tuple[ShardCheckpoint, ...]"
    good_bytes: int
    truncated: bool

    @property
    def last(self) -> "ShardCheckpoint | None":
        """The most recent intact record, if any."""
        return self.records[-1] if self.records else None


def shard_journal_path(directory: "str | os.PathLike", shard_id: int) -> Path:
    """Canonical journal path of one shard under a checkpoint directory."""
    return Path(directory) / f"shard-{int(shard_id):04d}.journal"


def append_record(path: "str | os.PathLike", record: ShardCheckpoint) -> None:
    """Append one record, flushed and fsynced before returning."""
    append_encoded(path, encode_record(record))


def append_encoded(path: "str | os.PathLike", data: bytes) -> None:
    """Append pre-encoded bytes (fault injection writes corrupt frames here)."""
    with open(path, "ab") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())


def replay_journal(path: "str | os.PathLike") -> JournalReplay:
    """Read every intact record; stop at the first torn/corrupt byte.

    A missing journal replays as empty. The returned ``good_bytes`` is
    the byte offset of the valid prefix — everything past it is the
    torn or corrupted tail that :func:`compact_journal` can drop.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return JournalReplay(records=(), good_bytes=0, truncated=False)
    records: "list[ShardCheckpoint]" = []
    offset = 0
    while offset < len(data):
        record, end = _decode_at(data, offset)
        if record is None:
            break
        records.append(record)
        offset = end
    return JournalReplay(
        records=tuple(records), good_bytes=offset, truncated=offset < len(data)
    )


def compact_journal(path: "str | os.PathLike") -> JournalReplay:
    """Drop a journal's torn/corrupt tail via atomic temp-write + rename.

    No-op (and no rewrite) for a journal that is already fully valid.
    Returns the replay of the surviving prefix. Run by the supervisor
    when it reclaims a dead worker's shard, so the retry appends to a
    journal whose every byte is trusted.
    """
    path = Path(path)
    replay = replay_journal(path)
    if not replay.truncated:
        return replay
    data = path.read_bytes()[: replay.good_bytes]
    _atomic_write(path, data)
    return JournalReplay(
        records=replay.records, good_bytes=replay.good_bytes, truncated=False
    )


def _atomic_write(path: Path, data: bytes) -> None:
    """Commit ``data`` to ``path`` via temp file + fsync + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunManifest:
    """Atomic, run-level description of one checkpointed scan.

    Pins everything a resume must agree on: the census ``kind``
    (``"census"`` / ``"weighted_census"`` / ``"sampled_census"``), the
    game, the cost version or weight vector, the total rank space, and
    the exact shard decomposition. :func:`read_manifest` + an equality
    check against the caller's expectation is the whole resume
    handshake — journals are only trusted once the manifest matches.

    ``seed`` and ``sample_method`` pin a sampled census's draw (the
    shards re-derive the sampled rank list deterministically from
    them); both stay ``None`` for exact scans, and manifests written
    before the fields existed read back as ``None``.
    """

    kind: str
    budgets: "tuple[int, ...]"
    total: int
    shards: "tuple[tuple[int, int], ...]"
    version: "str | None" = None
    weights: "tuple[int, ...] | None" = None
    symmetry: bool = False
    collect: bool = False
    seed: "int | None" = None
    sample_method: "str | None" = None


def write_manifest(directory: "str | os.PathLike", manifest: RunManifest) -> Path:
    """Atomically commit the manifest (creating the directory if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    payload = json.dumps(
        {
            "kind": manifest.kind,
            "budgets": list(manifest.budgets),
            "total": manifest.total,
            "shards": [list(s) for s in manifest.shards],
            "version": manifest.version,
            "weights": None
            if manifest.weights is None
            else list(manifest.weights),
            "symmetry": manifest.symmetry,
            "collect": manifest.collect,
            "seed": manifest.seed,
            "sample_method": manifest.sample_method,
        },
        sort_keys=True,
        indent=2,
    ).encode("utf-8")
    _atomic_write(path, payload + b"\n")
    return path


def read_manifest(directory: "str | os.PathLike") -> RunManifest:
    """Load and validate a run manifest; raises on missing/malformed."""
    path = Path(directory) / MANIFEST_NAME
    try:
        obj = json.loads(path.read_text("utf-8"))
        return RunManifest(
            kind=str(obj["kind"]),
            budgets=tuple(int(b) for b in obj["budgets"]),
            total=int(obj["total"]),
            shards=tuple((int(lo), int(hi)) for lo, hi in obj["shards"]),
            version=None if obj["version"] is None else str(obj["version"]),
            weights=None
            if obj["weights"] is None
            else tuple(int(w) for w in obj["weights"]),
            symmetry=bool(obj["symmetry"]),
            collect=bool(obj["collect"]),
            seed=None if obj.get("seed") is None else int(obj["seed"]),
            sample_method=None
            if obj.get("sample_method") is None
            else str(obj["sample_method"]),
        )
    except FileNotFoundError:
        raise CheckpointError(
            f"no run manifest at {path}; nothing to resume"
        ) from None
    except (ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed run manifest at {path}: {exc}") from exc
