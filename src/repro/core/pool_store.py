"""Persistent on-disk mmap tier of the matrix pool.

Shared-memory segments (:mod:`repro.core.matrix_pool`) die with their
owning process, so every fresh process used to pay the full all-pairs
build again before it could warm-start anything. :class:`PoolStore` is
the tier below: a directory of mmap'd matrix files that survive
restarts, so cold-start cost amortises across runs. A
:class:`~repro.core.matrix_pool.MatrixPool` constructed with
``store=`` becomes a two-level cache — shm hit, else mmap hit
(promoted back into shm), else build and publish to both tiers.

File format and integrity contract
----------------------------------
Each entry is one file ``<digest>.mat``::

    b"RPMS" | <u32 header len> | <u32 header crc32> | header JSON
           | zero pad to 64 bytes | field payloads (64-byte aligned)

The header records the field layout (name, dtype, shape, offset
relative to the aligned data start), the data-region byte count and the
CRC32 of the whole data region. :func:`attach_store_file` re-validates
*everything* — magic, header CRC, exact file size, data CRC — before
handing out zero-copy read-only ``np.memmap`` views, so a torn,
truncated or bit-flipped file can only ever produce a
:class:`~repro.errors.PoolError` (which callers treat as a miss and
answer by rebuild-and-republish), never a wrong matrix.

Publishes are atomic: the bundle is written to a pid-unique
``.tmp-<pid>-<seq>`` sibling, fsynced, and committed with
``os.replace`` — the same temp-write + replace idiom as
:mod:`repro.core.checkpoint`'s run manifest (whose ``_atomic_write``
maintains the LRU index file here too). Readers therefore only ever see
complete files; a crash mid-publish leaves a temp file that
:meth:`PoolStore.gc` reaps once its writer pid is dead.

Keys are **content digests** (:func:`store_digest` /
:func:`census_graph_digest`), not process-unique instance ids: a fresh
process hashing the same graph arcs (and weights/kind tags) finds the
matrices a previous process published.

Bounded: an ``INDEX.json`` manifest tracks per-file sizes and a logical
LRU clock; publishes beyond ``byte_budget`` evict the least recently
used files. The index is advisory — files are self-describing, so
:meth:`PoolStore.gc` can rebuild it from a directory scan — and
concurrent publishers (census workers persisting checkpoint-rank
matrices) may lose an LRU touch in a read-modify-write race without
ever corrupting an entry.
"""

from __future__ import annotations

import itertools
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import PoolError
from .checkpoint import _atomic_write

__all__ = [
    "PoolStore",
    "StoreHandle",
    "store_digest",
    "census_graph_digest",
    "attach_store_file",
    "FILE_MAGIC",
    "INDEX_NAME",
    "DEFAULT_BYTE_BUDGET",
]

#: Magic prefix of every store file ("Repro Pool Matrix Store").
FILE_MAGIC: bytes = b"RPMS"

#: Header frame after the magic: JSON length, JSON crc32.
_HEADER = struct.Struct("<II")

#: Field payloads start on (and are padded to) this alignment.
_ALIGN: int = 64

#: Name of the on-disk LRU index manifest inside a store directory.
INDEX_NAME: str = "INDEX.json"

#: Default byte budget of a store directory (matrix payload bytes).
DEFAULT_BYTE_BUDGET: int = 256 * 1024 * 1024

#: Ceiling on accepted header JSON; anything larger is corrupt.
_MAX_HEADER: int = 1024 * 1024

#: Process-local temp-file sequence (pid-unique names need a counter).
_TMP_SEQ = itertools.count()


def _round_up(x: int, align: int = _ALIGN) -> int:
    return -(-x // align) * align


def _hash_part(h, part) -> None:
    """Feed one canonical part into the digest (type-tagged, unambiguous)."""
    if isinstance(part, (tuple, list)):
        h.update(b"T%d:" % len(part))
        for item in part:
            _hash_part(h, item)
    elif isinstance(part, bool):
        h.update(b"B%d;" % int(part))
    elif isinstance(part, (int, np.integer)):
        h.update(b"I%d;" % int(part))
    elif isinstance(part, str):
        b = part.encode("utf-8")
        h.update(b"S%d:" % len(b))
        h.update(b)
    elif isinstance(part, bytes):
        h.update(b"Y%d:" % len(part))
        h.update(part)
    elif isinstance(part, np.ndarray):
        arr = np.ascontiguousarray(part)
        meta = f"A{arr.dtype.str}{arr.shape}:".encode("ascii")
        h.update(meta)
        h.update(arr.tobytes())
    elif part is None:
        h.update(b"N;")
    else:
        raise PoolError(f"undigestable key part of type {type(part).__name__}")


def store_digest(*parts) -> str:
    """Content digest of a canonical key: hex SHA-256, filename-safe.

    Accepts nested tuples/lists of ints, bools, strings, bytes, ``None``
    and numpy arrays, each hashed with an unambiguous type/length tag so
    distinct keys can never collide by concatenation.
    """
    h = sha256(b"repro-bbncg/pool-store/v1\0")
    _hash_part(h, parts)
    return h.hexdigest()


def census_graph_digest(graph, *, weighted: bool = False) -> str:
    """Digest of a census graph *state*: arcs + engine kind.

    Content-addressed — two processes (or two runs, days apart) that
    materialise the same profile compute the same digest, which is what
    lets a fresh process find the shard matrices a dead one published.
    The published matrices describe the undirected closure, but the
    digest hashes the directed arc set: a coarser key would also be
    correct, this one is simply canonical for a profile.
    """
    arcs = sorted((int(a), int(b)) for a, b in graph.arcs())
    return store_digest("census", bool(weighted), int(graph.n), tuple(arcs))


def _encode_bundle(digest: str, arrays: "Mapping[str, np.ndarray]") -> bytes:
    """Serialize an array bundle into the framed store-file format."""
    if not arrays:
        raise PoolError("cannot publish an empty array bundle")
    layout: "list[list]" = []
    prepared: "list[tuple[np.ndarray, int]]" = []
    offset = 0
    for fname, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = _round_up(offset)
        layout.append([str(fname), arr.dtype.str, list(arr.shape), offset])
        prepared.append((arr, offset))
        offset += arr.nbytes
    data = bytearray(offset)
    for arr, off in prepared:
        data[off : off + arr.nbytes] = arr.tobytes()
    header = {
        "version": 1,
        "digest": digest,
        "fields": layout,
        "nbytes": len(data),
        "data_crc": zlib.crc32(bytes(data)),
    }
    hjson = json.dumps(header, separators=(",", ":")).encode("utf-8")
    head = FILE_MAGIC + _HEADER.pack(len(hjson), zlib.crc32(hjson))
    data_start = _round_up(len(head) + len(hjson))
    pad = data_start - len(head) - len(hjson)
    return head + hjson + b"\0" * pad + bytes(data)


def _read_store_header(path: "str | os.PathLike") -> "tuple[dict, int]":
    """Validated ``(header, data_start)`` of a store file.

    Checks magic, header length bound, and header CRC; raises
    :class:`~repro.errors.PoolError` on any mismatch (including a file
    too short to hold its own header — the truncated-write case).
    """
    prefix_len = len(FILE_MAGIC) + _HEADER.size
    try:
        with open(path, "rb") as fh:
            prefix = fh.read(prefix_len)
            if len(prefix) < prefix_len or prefix[: len(FILE_MAGIC)] != FILE_MAGIC:
                raise PoolError(f"store file {path!s} has no valid magic")
            hlen, hcrc = _HEADER.unpack_from(prefix, len(FILE_MAGIC))
            if hlen > _MAX_HEADER:
                raise PoolError(f"store file {path!s} header length {hlen} is absurd")
            hjson = fh.read(hlen)
    except FileNotFoundError as exc:
        raise PoolError(f"store file {path!s} no longer exists") from exc
    except OSError as exc:
        raise PoolError(f"store file {path!s} is unreadable: {exc}") from exc
    if len(hjson) < hlen or zlib.crc32(hjson) != hcrc:
        raise PoolError(f"store file {path!s} has a corrupt header")
    try:
        header = json.loads(hjson.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PoolError(f"store file {path!s} header is not JSON") from exc
    if not isinstance(header, dict) or "fields" not in header:
        raise PoolError(f"store file {path!s} header is malformed")
    return header, _round_up(prefix_len + hlen)


def attach_store_file(
    path: "str | os.PathLike", *, expected_digest: "str | None" = None
) -> "dict[str, np.ndarray]":
    """Zero-copy read-only views of every field of a store file.

    Full integrity pass — magic, header CRC, exact size, data-region
    CRC32, digest match — then ``np.memmap`` views into the payload
    (the memmap buffer is read-only; views alias it and keep it alive).
    Any failure raises :class:`~repro.errors.PoolError`; callers treat
    that as a miss and rebuild, so corruption can never become a wrong
    answer.
    """
    header, data_start = _read_store_header(path)
    try:
        mm = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:
        raise PoolError(f"store file {path!s} cannot be mapped: {exc}") from exc
    nbytes = int(header.get("nbytes", -1))
    if expected_digest is not None and header.get("digest") != expected_digest:
        raise PoolError(
            f"store file {path!s} holds digest {header.get('digest')!r}, "
            f"expected {expected_digest!r}"
        )
    if nbytes < 0 or data_start + nbytes != mm.size:
        raise PoolError(
            f"store file {path!s} is torn: {mm.size} bytes on disk, "
            f"{data_start + nbytes} framed"
        )
    if zlib.crc32(mm[data_start:].tobytes()) != int(header.get("data_crc", -1)):
        raise PoolError(f"store file {path!s} fails its data CRC")
    views: "dict[str, np.ndarray]" = {}
    for fname, dtype, shape, offset in header["fields"]:
        view = np.ndarray(
            tuple(shape),
            dtype=np.dtype(dtype),
            buffer=mm,
            offset=data_start + int(offset),
        )
        views[str(fname)] = view
    return views


@dataclass(frozen=True)
class StoreHandle:
    """Picklable pointer to one published store file.

    The disk-tier twin of :class:`~repro.core.matrix_pool.SegmentHandle`
    — same duck type (``attach()`` returning a field-name → read-only
    array mapping), so census shard payloads can carry either. Unlike a
    segment handle it is valid across process generations: any process
    that can read ``path`` can attach, integrity-checked on every call.
    """

    path: str
    digest: str
    nbytes: int
    fields: "tuple[tuple[str, str, tuple[int, ...], int], ...]" = field(default=())

    def attach(self) -> "dict[str, np.ndarray]":
        """Verified zero-copy read-only views of the file's arrays."""
        return attach_store_file(self.path, expected_digest=self.digest)


class PoolStore:
    """Directory-backed, byte-budget-bounded store of matrix bundles.

    Parameters
    ----------
    root:
        Store directory (created if missing).
    byte_budget:
        Total payload bytes kept; publishing beyond it evicts the least
        recently used files (per the ``INDEX.json`` LRU clock).

    Unlike :class:`~repro.core.matrix_pool.MatrixPool` there is no
    owner: any process may publish (atomically) or attach (verified),
    and entries persist until evicted by budget, :meth:`evict`, or
    :meth:`gc`.
    """

    def __init__(
        self, root: "str | os.PathLike", *, byte_budget: int = DEFAULT_BYTE_BUDGET
    ) -> None:
        if byte_budget < 1:
            raise PoolError(f"byte_budget must be positive, got {byte_budget}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.byte_budget = int(byte_budget)
        self.stats = {
            "published": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "corrupt": 0,
            "store_errors": 0,
        }

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        if not digest or not all(c.isalnum() for c in digest):
            raise PoolError(f"malformed store digest {digest!r}")
        return self.root / f"{digest}.mat"

    def _quarantine(self, path: Path) -> None:
        """Unlink a failed-validation file so the republish starts clean."""
        self.stats["corrupt"] += 1
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced with another cleaner
            pass

    def _handle(self, path: Path, header: dict) -> StoreHandle:
        return StoreHandle(
            path=str(path),
            digest=str(header["digest"]),
            nbytes=int(header["nbytes"]),
            fields=tuple(
                (str(f), str(d), tuple(s), int(o)) for f, d, s, o in header["fields"]
            ),
        )

    # ------------------------------------------------------------------
    def publish(
        self, digest: str, arrays: "Mapping[str, np.ndarray]"
    ) -> StoreHandle:
        """Atomically commit an array bundle under ``digest``.

        Idempotent: an existing *valid* file is touched in the LRU index
        and returned as-is (content-addressed entries never change); an
        existing corrupt file is quarantined and rewritten. The write is
        temp-file + fsync + ``os.replace``, so a concurrent reader (or a
        crash at any point) sees either the old complete file or the new
        complete file, never a torn one.
        """
        path = self._path(digest)
        if path.exists():
            try:
                header, _ = _read_store_header(path)
                if header.get("digest") == digest:
                    handle = self._handle(path, header)
                    self._touch(digest, handle.nbytes)
                    return handle
                self._quarantine(path)
            except PoolError:
                self._quarantine(path)
        blob = _encode_bundle(digest, arrays)
        tmp = self.root / f".tmp-{os.getpid()}-{next(_TMP_SEQ)}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise PoolError(f"cannot publish {digest!r} to {self.root}: {exc}") from exc
        self.stats["published"] += 1
        header, _ = _read_store_header(path)
        handle = self._handle(path, header)
        self._touch(digest, handle.nbytes)
        self._enforce_budget(protect=digest)
        return handle

    def lookup(self, digest: str) -> "StoreHandle | None":
        """Handle for ``digest`` (header-validated, LRU-touched), else
        ``None``. Corrupt files are quarantined on sight."""
        path = self._path(digest)
        if not path.exists():
            self.stats["misses"] += 1
            return None
        try:
            header, _ = _read_store_header(path)
            if header.get("digest") != digest:
                raise PoolError(f"store file {path} holds a foreign digest")
        except PoolError:
            self._quarantine(path)
            self.stats["misses"] += 1
            return None
        handle = self._handle(path, header)
        self.stats["hits"] += 1
        self._touch(digest, handle.nbytes)
        return handle

    def attach(self, digest: str) -> "dict[str, np.ndarray] | None":
        """Verified read-only views for ``digest``, or ``None`` on miss.

        A file that passes the header check but fails the full data CRC
        (bit flip, truncation) is quarantined and reported as a miss —
        degrade to rebuild-and-republish, never a wrong matrix.
        """
        path = self._path(digest)
        if not path.exists():
            self.stats["misses"] += 1
            return None
        try:
            views = attach_store_file(path, expected_digest=digest)
        except PoolError:
            self._quarantine(path)
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        self._touch(digest, int(sum(v.nbytes for v in views.values())))
        return views

    def evict(self, digest: str) -> bool:
        """Unlink one entry by digest; ``True`` if a file was removed."""
        path = self._path(digest)
        idx = self._read_index()
        idx["entries"].pop(digest, None)
        self._write_index(idx)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self.stats["evictions"] += 1
        return True

    def entries(self) -> "dict[str, dict]":
        """The index's entry map (digest → ``{"nbytes", "used"}``)."""
        return dict(self._read_index()["entries"])

    def total_bytes(self) -> int:
        """Payload bytes currently accounted by the index."""
        return sum(int(e["nbytes"]) for e in self._read_index()["entries"].values())

    # ------------------------------------------------------------------
    def gc(self, *, byte_budget: "int | None" = None) -> "dict[str, int]":
        """Reconcile the directory: the crash-cleanup contract.

        * reaps ``.tmp-<pid>-*`` files whose writer process is dead
          (a publisher killed mid-write leaves exactly one of these);
        * quarantines every ``*.mat`` file that fails header validation;
        * rebuilds the LRU index from the surviving files (preserving
          known ``used`` stamps, so recency survives the rebuild);
        * enforces the byte budget (``byte_budget`` overrides the
          store's own for this call — ``repro-bbncg pool gc --budget``).

        Returns counters: ``files``, ``bytes``, ``removed_tmp``,
        ``removed_corrupt``, ``evicted``.
        """
        removed_tmp = 0
        removed_corrupt = 0
        old = self._read_index()["entries"]
        entries: "dict[str, dict]" = {}
        for name in sorted(os.listdir(self.root)):
            path = self.root / name
            if name.startswith(".tmp-"):
                parts = name.split("-")
                try:
                    pid = int(parts[1])
                except (IndexError, ValueError):
                    pid = -1
                if pid != os.getpid() and not _pid_alive(pid):
                    try:
                        path.unlink()
                        removed_tmp += 1
                    except OSError:  # pragma: no cover - raced
                        pass
                continue
            if not name.endswith(".mat"):
                continue
            digest = name[: -len(".mat")]
            try:
                header, _ = _read_store_header(path)
                if header.get("digest") != digest:
                    raise PoolError(f"store file {path} holds a foreign digest")
            except PoolError:
                self._quarantine(path)
                removed_corrupt += 1
                continue
            known = old.get(digest, {})
            entries[digest] = {
                "nbytes": int(header["nbytes"]),
                "used": int(known.get("used", 0)),
            }
        idx = {
            "version": 1,
            "clock": max(
                [int(e["used"]) for e in entries.values()] + [0]
            ),
            "entries": entries,
        }
        self._write_index(idx)
        evicted = self._enforce_budget(byte_budget=byte_budget)
        live = self._read_index()["entries"]
        return {
            "files": len(live),
            "bytes": sum(int(e["nbytes"]) for e in live.values()),
            "removed_tmp": removed_tmp,
            "removed_corrupt": removed_corrupt,
            "evicted": evicted,
        }

    # ------------------------------------------------------------------
    def _index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _read_index(self) -> dict:
        try:
            idx = json.loads(self._index_path().read_text())
            if not isinstance(idx.get("entries"), dict):
                raise ValueError("malformed index")
            return idx
        except (OSError, ValueError):
            return {"version": 1, "clock": 0, "entries": {}}

    def _write_index(self, idx: dict) -> None:
        try:
            _atomic_write(
                self._index_path(),
                json.dumps(idx, separators=(",", ":"), sort_keys=True).encode(),
            )
        except OSError:  # pragma: no cover - advisory index; files are truth
            pass

    def _touch(self, digest: str, nbytes: int) -> None:
        idx = self._read_index()
        idx["clock"] = int(idx.get("clock", 0)) + 1
        idx["entries"][digest] = {"nbytes": int(nbytes), "used": idx["clock"]}
        self._write_index(idx)

    def _enforce_budget(
        self, *, protect: "str | None" = None, byte_budget: "int | None" = None
    ) -> int:
        """Evict least-recently-used entries past the byte budget."""
        budget = self.byte_budget if byte_budget is None else int(byte_budget)
        idx = self._read_index()
        entries = idx["entries"]
        total = sum(int(e["nbytes"]) for e in entries.values())
        evicted = 0
        for digest in sorted(entries, key=lambda d: int(entries[d]["used"])):
            if total <= budget:
                break
            if digest == protect:
                continue
            total -= int(entries[digest]["nbytes"])
            entries.pop(digest)
            try:
                self._path(digest).unlink()
            except (OSError, PoolError):
                pass
            evicted += 1
        if evicted:
            self._write_index(idx)
            self.stats["evictions"] += evicted
        return evicted


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (permission errors = alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
