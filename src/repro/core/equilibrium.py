"""Equilibrium certificates with per-player witnesses.

A certificate records, for every player, its current cost and the best
alternative cost the verifier could find, so that "this graph is an
equilibrium" becomes an auditable artefact rather than a boolean. Used
by the tests and by the experiment harness to machine-check the paper's
constructive theorems at concrete sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.digraph import OwnedDigraph
from .best_response import BestResponseResult
from .costs import Version
from .deviations import Method, best_response_for, satisfies_lemma_2_2

__all__ = ["PlayerWitness", "EquilibriumCertificate", "certify_equilibrium"]


@dataclass(frozen=True)
class PlayerWitness:
    """Verification record for one player.

    ``via_lemma`` marks players certified by the paper's Lemma 2.2
    shortcut (local diameter <= 2, no brace) without a search.
    """

    player: int
    current_cost: int
    best_cost: int
    best_strategy: tuple[int, ...]
    evaluated: int
    via_lemma: bool

    @property
    def is_stable(self) -> bool:
        """Whether the player has no improving deviation."""
        return self.best_cost >= self.current_cost


@dataclass(frozen=True)
class EquilibriumCertificate:
    """Aggregate verification result for a whole profile."""

    version: Version
    method: Method
    witnesses: tuple[PlayerWitness, ...]

    @property
    def is_equilibrium(self) -> bool:
        """Whether every player was verified stable."""
        return all(w.is_stable for w in self.witnesses)

    @property
    def violators(self) -> tuple[int, ...]:
        """Players with an improving deviation (empty iff equilibrium)."""
        return tuple(w.player for w in self.witnesses if not w.is_stable)

    @property
    def total_evaluated(self) -> int:
        """Total candidate strategies evaluated across all players."""
        return sum(w.evaluated for w in self.witnesses)

    def max_regret(self) -> int:
        """Largest cost saving any player could realise (0 at equilibrium)."""
        return max((w.current_cost - w.best_cost for w in self.witnesses), default=0)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "NASH EQUILIBRIUM" if self.is_equilibrium else "NOT an equilibrium"
        lemma = sum(1 for w in self.witnesses if w.via_lemma)
        return (
            f"{verdict} [{self.version.value}/{self.method}] "
            f"players={len(self.witnesses)} via_lemma={lemma} "
            f"evaluated={self.total_evaluated} max_regret={self.max_regret()}"
        )


def certify_equilibrium(
    graph: OwnedDigraph,
    version: Version | str,
    method: Method = "exact",
    *,
    use_lemma: bool = True,
    players: "list[int] | None" = None,
    **kwargs,
) -> EquilibriumCertificate:
    """Build a per-player :class:`EquilibriumCertificate` for ``graph``.

    With ``method="exact"`` a positive certificate proves the profile is
    a pure Nash equilibrium; heuristic methods certify stability only
    under their restricted move sets.
    """
    version = Version.coerce(version)
    todo = range(graph.n) if players is None else players
    witnesses: list[PlayerWitness] = []
    for u in todo:
        if use_lemma and satisfies_lemma_2_2(graph, u):
            from .costs import vertex_cost

            cost = vertex_cost(graph, u, version)
            witnesses.append(
                PlayerWitness(
                    player=u,
                    current_cost=cost,
                    best_cost=cost,
                    best_strategy=tuple(int(v) for v in graph.out_neighbors(u)),
                    evaluated=0,
                    via_lemma=True,
                )
            )
            continue
        result = best_response_for(graph, u, version, method, **kwargs)
        witnesses.append(
            PlayerWitness(
                player=u,
                current_cost=result.current_cost,
                best_cost=result.cost,
                best_strategy=result.strategy,
                evaluated=result.evaluated,
                via_lemma=False,
            )
        )
    return EquilibriumCertificate(version=version, method=method, witnesses=tuple(witnesses))
