"""Improvement graphs and the finite improvement property (FIP).

Section 8 asks whether best-response dynamics always converges. For a
game small enough to enumerate, the question is *decidable*: build the
directed graph whose nodes are strategy profiles and whose edges are
improving moves, and test it for cycles.

* acyclic better-response graph ⇔ the game has the **finite
  improvement property** (every improvement path terminates) ⇔ the
  game admits a generalized ordinal potential (Monderer & Shapley);
* acyclic best-response graph ⇔ best-response dynamics can never loop,
  under any scheduling;
* the sinks of either graph are exactly the pure Nash equilibria.

This turns the paper's open problem into an exhaustively checked
statement at small n: the test suite asserts FIP for tiny instances,
and :func:`find_improvement_cycle` would exhibit a Laoutaris-style loop
if one existed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

from ..errors import GameError
from ..graphs.digraph import OwnedDigraph
from .best_response import BestResponseEnvironment
from .costs import Version
from .enumeration import enumerate_realizations, profile_space_size
from .game import BoundedBudgetGame

__all__ = [
    "MoveKind",
    "ImprovementGraph",
    "improvement_graph",
    "FIPReport",
    "check_finite_improvement",
    "find_improvement_cycle",
]

MoveKind = Literal["better", "best"]

ProfileKey = tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class ImprovementGraph:
    """The improvement digraph over the full profile space.

    ``edges[key]`` lists the profiles reachable from ``key`` by one
    improving move of one player (all strictly better strategies for
    ``kind="better"``, only cost-minimising ones for ``kind="best"``).
    """

    version: Version
    kind: MoveKind
    edges: "dict[ProfileKey, list[ProfileKey]]"

    @property
    def num_states(self) -> int:
        """Number of strategy profiles."""
        return len(self.edges)

    @property
    def num_edges(self) -> int:
        """Number of improving moves across all profiles."""
        return sum(len(v) for v in self.edges.values())

    def sinks(self) -> list[ProfileKey]:
        """Profiles with no improving move — exactly the Nash equilibria."""
        return [k for k, out in self.edges.items() if not out]


def _profile_moves(
    game: BoundedBudgetGame,
    graph: OwnedDigraph,
    version: Version,
    kind: MoveKind,
) -> Iterator[ProfileKey]:
    """All profiles reachable from ``graph`` by one improving move."""
    key = graph.profile_key()
    for u in range(game.n):
        b = game.budget(u)
        if b == 0:
            continue
        env = BestResponseEnvironment(graph, u, version)
        current = key[u]
        current_cost = env.evaluate(current)
        pool = [v for v in range(game.n) if v != u]
        candidates = np.asarray(list(itertools.combinations(pool, b)), dtype=np.int64)
        costs = env.evaluate_batch(candidates)
        if kind == "better":
            chosen = np.flatnonzero(costs < current_cost)
        else:
            best = int(costs.min())
            if best >= current_cost:
                continue
            chosen = np.flatnonzero(costs == best)
        for idx in chosen:
            strategy = tuple(int(x) for x in candidates[int(idx)])
            if strategy == current:
                continue
            new_key = key[:u] + (strategy,) + key[u + 1 :]
            yield new_key


def improvement_graph(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    kind: MoveKind = "better",
    max_profiles: int = 200_000,
) -> ImprovementGraph:
    """Build the full improvement digraph of a tiny game."""
    version = Version.coerce(version)
    if kind not in ("better", "best"):
        raise GameError(f"kind must be 'better' or 'best', got {kind!r}")
    edges: dict[ProfileKey, list[ProfileKey]] = {}
    for graph in enumerate_realizations(game, max_profiles=max_profiles):
        edges[graph.profile_key()] = list(
            dict.fromkeys(_profile_moves(game, graph, version, kind))
        )
    return ImprovementGraph(version=version, kind=kind, edges=edges)


@dataclass(frozen=True)
class FIPReport:
    """Outcome of an exhaustive improvement-cycle search."""

    version: Version
    kind: MoveKind
    num_states: int
    num_edges: int
    acyclic: bool
    num_sinks: int
    cycle: "tuple[ProfileKey, ...] | None"

    @property
    def has_fip(self) -> bool:
        """True iff every improvement path terminates (no cycle)."""
        return self.acyclic


def _find_cycle(graph: ImprovementGraph) -> "tuple[ProfileKey, ...] | None":
    """Iterative 3-colour DFS cycle detection over the profile digraph."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[ProfileKey, int] = {k: WHITE for k in graph.edges}
    parent: dict[ProfileKey, ProfileKey] = {}
    for root in graph.edges:
        if color[root] != WHITE:
            continue
        stack: list[tuple[ProfileKey, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, i = stack[-1]
            out = graph.edges[node]
            if i < len(out):
                stack[-1] = (node, i + 1)
                nxt = out[i]
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, 0))
                elif color[nxt] == GRAY:
                    # Unwind the cycle nxt -> ... -> node -> nxt.
                    cycle = [node]
                    x = node
                    while x != nxt:
                        x = parent[x]
                        cycle.append(x)
                    cycle.reverse()
                    return tuple(cycle)
            else:
                color[node] = BLACK
                stack.pop()
    return None


def check_finite_improvement(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    kind: MoveKind = "better",
    max_profiles: int = 200_000,
) -> FIPReport:
    """Exhaustively decide the finite improvement property of a tiny game.

    ``acyclic=True`` proves that *every* improvement path (under the
    chosen move kind) terminates in a Nash equilibrium — the strongest
    possible answer to the Section 8 convergence question at that size.
    """
    g = improvement_graph(game, version, kind=kind, max_profiles=max_profiles)
    cycle = _find_cycle(g)
    return FIPReport(
        version=g.version,
        kind=kind,
        num_states=g.num_states,
        num_edges=g.num_edges,
        acyclic=cycle is None,
        num_sinks=len(g.sinks()),
        cycle=cycle,
    )


def find_improvement_cycle(
    game: BoundedBudgetGame,
    version: "Version | str",
    *,
    kind: MoveKind = "better",
    max_profiles: int = 200_000,
) -> "tuple[ProfileKey, ...] | None":
    """A profile cycle of improving moves, or ``None`` if FIP holds."""
    return check_finite_improvement(
        game, version, kind=kind, max_profiles=max_profiles
    ).cycle
