"""Isomorphism of realizations (ownership-aware), for equilibrium censuses.

Two realizations are isomorphic when some player relabeling maps one
arc set onto the other — ownership included, since budgets travel with
players. The census experiments use this to report equilibrium counts
up to symmetry, which is the structurally meaningful number (the
labeled count scales with n! for symmetric budget vectors).

Brute force over permutations (with a cheap invariant pre-filter); only
meant for the tiny-n enumeration pipeline.
"""

from __future__ import annotations

import itertools
from collections import Counter

from ..errors import GameError
from ..graphs.digraph import OwnedDigraph

__all__ = ["are_isomorphic", "isomorphism_invariant", "count_isomorphism_classes"]

#: Permutation search is capped here; beyond it the census should use
#: sampling, not exact isomorphism.
_MAX_N = 9


def isomorphism_invariant(graph: OwnedDigraph) -> tuple:
    """A cheap relabeling-invariant fingerprint.

    Combines the sorted multiset of ``(out-degree, in-degree)`` pairs
    with the sorted undirected degree sequence; graphs with different
    fingerprints are certainly non-isomorphic.
    """
    pairs = sorted(
        (graph.out_degree(v), int(graph.in_neighbors(v).size)) for v in range(graph.n)
    )
    degs = sorted(graph.degree(v) for v in range(graph.n))
    return (graph.n, tuple(pairs), tuple(degs), len(graph.braces()))


def are_isomorphic(a: OwnedDigraph, b: OwnedDigraph) -> bool:
    """Ownership-aware isomorphism test by permutation search."""
    if a.n != b.n:
        return False
    if a.n > _MAX_N:
        raise GameError(f"exact isomorphism is capped at n = {_MAX_N}")
    if a.num_arcs != b.num_arcs:
        return False
    if isomorphism_invariant(a) != isomorphism_invariant(b):
        return False
    arcs_b = set(b.arcs())
    arcs_a = list(a.arcs())
    for perm in itertools.permutations(range(a.n)):
        if all((perm[u], perm[v]) in arcs_b for u, v in arcs_a):
            return True
    return False


def count_isomorphism_classes(graphs: "list[OwnedDigraph]") -> int:
    """Number of isomorphism classes among the given realizations.

    Buckets by the cheap invariant first, then resolves each bucket
    with the exact test.
    """
    buckets: dict[tuple, list[OwnedDigraph]] = {}
    for g in graphs:
        buckets.setdefault(isomorphism_invariant(g), []).append(g)
    classes = 0
    for bucket in buckets.values():
        representatives: list[OwnedDigraph] = []
        for g in bucket:
            if not any(are_isomorphic(g, r) for r in representatives):
                representatives.append(g)
        classes += len(representatives)
    return classes
