"""Isomorphism of realizations (ownership-aware), for equilibrium censuses.

Two realizations are isomorphic when some player relabeling maps one
arc set onto the other — ownership included, since budgets travel with
players. The census experiments use this to report equilibrium counts
up to symmetry, which is the structurally meaningful number (the
labeled count scales with n! for symmetric budget vectors).

The engine is an **invariant-refinement canonical form** rather than a
raw permutation scan: vertices are colored by relabeling-invariant
signatures (degree data, brace incidence, the sorted distance profile),
the coloring is sharpened by Weisfeiler–Leman-style rounds over the
out-/in-neighbour color multisets, and the canonical form is the
minimal relabeled adjacency bit-key over the color-class-preserving
relabelings only. Non-isomorphic pairs almost always reject on the
invariant alone, without touching a single permutation; the residual
search space is the product of the class factorials, not ``n!``.

Only meant for the tiny-n enumeration pipeline (capped at ``n = 9``).
"""

from __future__ import annotations

import itertools
from collections import Counter

import numpy as np

from ..errors import GameError
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import distance_matrix

__all__ = [
    "are_isomorphic",
    "budget_class_transpositions",
    "canonical_form",
    "isomorphism_invariant",
    "refined_vertex_colors",
    "count_isomorphism_classes",
]

#: Permutation search is capped here; beyond it the census should use
#: sampling, not exact isomorphism.
_MAX_N = 9

#: Relabelings are keyed in chunks this large; bounds the peak
#: ``(chunk, n, n)`` gather of the canonical-form search.
_PERM_CHUNK = 8192


def _check_size(graph: OwnedDigraph) -> None:
    if graph.n > _MAX_N:
        raise GameError(f"exact isomorphism is capped at n = {_MAX_N}")


def budget_class_transpositions(budgets) -> np.ndarray:
    """All within-class transpositions of the budget symmetry group.

    Row ``k`` is the permutation swapping one pair of equal-budget
    players and fixing everything else — always an element of
    ``∏ Sym(budget class)``. These are the cheap *probe* elements the
    census orbit pruning maintains incrementally: a profile whose key
    is not minimal under some transposition is certainly not canonical,
    and the probes reject the overwhelming majority of profiles without
    ever touching the full group. Shape ``(t, n)``; ``t`` may be zero
    (all budgets distinct).
    """
    n = len(budgets)
    classes: "dict[int, list[int]]" = {}
    for i, b in enumerate(budgets):
        classes.setdefault(int(b), []).append(i)
    perms = []
    for members in classes.values():
        for a, b in itertools.combinations(members, 2):
            perm = np.arange(n, dtype=np.int64)
            perm[a], perm[b] = b, a
            perms.append(perm)
    if not perms:
        return np.empty((0, n), dtype=np.int64)
    return np.stack(perms)


def refined_vertex_colors(graph: OwnedDigraph) -> list[int]:
    """Invariant-refinement vertex coloring (ownership-aware 1-WL).

    Initial colors combine ``(out-degree, in-degree, undirected degree,
    brace incidence, sorted distance profile)``; each round re-colors a
    vertex by its color plus the sorted multisets of its out- and
    in-neighbour colors, until the partition stabilises. Color ids are
    ranks of the sorted distinct signatures, so isomorphic graphs get
    identical colorings up to the isomorphism (same class structure,
    same ids).
    """
    n = graph.n
    dist = distance_matrix(graph)
    braces = Counter()
    for u, v in graph.braces():
        braces[u] += 1
        braces[v] += 1
    sigs: list[tuple] = [
        (
            graph.out_degree(v),
            int(graph.in_neighbors(v).size),
            graph.degree(v),
            braces[v],
            tuple(sorted(int(d) for d in dist[v])),
        )
        for v in range(n)
    ]
    colors = _rank(sigs)
    while True:
        sigs = [
            (
                colors[v],
                tuple(sorted(colors[int(w)] for w in graph.out_neighbors(v))),
                tuple(sorted(colors[int(w)] for w in graph.in_neighbors(v))),
            )
            for v in range(n)
        ]
        refined = _rank(sigs)
        if refined == colors:  # partition (and ids) stable
            return colors
        colors = refined


def _rank(signatures: "list[tuple]") -> list[int]:
    """Map each signature to the rank of its value among the distinct ones."""
    order = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
    return [order[sig] for sig in signatures]


def isomorphism_invariant(
    graph: OwnedDigraph, *, colors: "list[int] | None" = None
) -> tuple:
    """A cheap relabeling-invariant fingerprint.

    Combines the sorted multiset of ``(out-degree, in-degree)`` pairs,
    the sorted undirected degree sequence, the brace count, the sorted
    multiset of per-vertex distance profiles, and the refined color
    class-size histogram; graphs with different fingerprints are
    certainly non-isomorphic, and in practice almost every
    non-isomorphic pair already differs here.
    """
    pairs = sorted(
        (graph.out_degree(v), int(graph.in_neighbors(v).size)) for v in range(graph.n)
    )
    degs = sorted(graph.degree(v) for v in range(graph.n))
    dist = distance_matrix(graph)
    profiles = tuple(sorted(tuple(sorted(int(d) for d in row)) for row in dist))
    if colors is None:
        colors = refined_vertex_colors(graph)
    classes = tuple(sorted(Counter(colors).values()))
    return (graph.n, tuple(pairs), tuple(degs), len(graph.braces()), profiles, classes)


def canonical_form(
    graph: OwnedDigraph, *, colors: "list[int] | None" = None
) -> bytes:
    """Canonical adjacency key: equal iff the realizations are isomorphic.

    Vertices are blocked by refined color; the key is the minimum,
    over all relabelings that keep each block in its position range, of
    the relabeled ownership adjacency packed row-major into bits. Any
    isomorphism preserves the (invariant) colors, so isomorphic graphs
    range over the same relabeled-adjacency set and share the minimum;
    distinct keys conversely exhibit distinct arc sets under every
    considered relabeling, and every isomorphism is a considered
    relabeling.
    """
    _check_size(graph)
    n = graph.n
    if colors is None:
        colors = refined_vertex_colors(graph)
    blocks: "dict[int, list[int]]" = {}
    for v in range(n):
        blocks.setdefault(colors[v], []).append(v)
    ordered_blocks = [blocks[c] for c in sorted(blocks)]
    adj = np.zeros((n, n), dtype=bool)
    for u, v in graph.arcs():
        adj[u, v] = True
    best: "bytes | None" = None
    perm_iter = itertools.product(
        *(itertools.permutations(b) for b in ordered_blocks)
    )
    while True:
        chunk = list(itertools.islice(perm_iter, _PERM_CHUNK))
        if not chunk:
            break
        sigma = np.asarray(
            [list(itertools.chain.from_iterable(images)) for images in chunk],
            dtype=np.int64,
        )
        relabeled = adj[sigma[:, :, None], sigma[:, None, :]]
        packed = np.packbits(relabeled.reshape(len(chunk), -1), axis=1)
        # Lexicographic row minimum via two big-endian uint64 words
        # (n <= 9 packs into 11 bytes; trailing zero padding preserves
        # the ordering).
        padded = np.zeros((len(chunk), 16), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        words = padded.view(">u8")
        idx = int(np.lexsort((words[:, 1], words[:, 0]))[0])
        cand = bytes(packed[idx])
        if best is None or cand < best:
            best = cand
    assert best is not None
    return best


def are_isomorphic(a: OwnedDigraph, b: OwnedDigraph) -> bool:
    """Ownership-aware isomorphism test via canonical forms.

    The invariant prefilter rejects almost every non-isomorphic pair
    without enumerating any permutation; survivors are decided by the
    color-class-restricted canonical key.
    """
    if a.n != b.n:
        return False
    _check_size(a)
    if a.num_arcs != b.num_arcs:
        return False
    colors_a = refined_vertex_colors(a)
    colors_b = refined_vertex_colors(b)
    if isomorphism_invariant(a, colors=colors_a) != isomorphism_invariant(
        b, colors=colors_b
    ):
        return False
    return canonical_form(a, colors=colors_a) == canonical_form(b, colors=colors_b)


def count_isomorphism_classes(graphs: "list[OwnedDigraph]") -> int:
    """Number of isomorphism classes among the given realizations.

    Buckets by the cheap invariant first, then resolves each bucket by
    its set of canonical forms — one key computation per graph instead
    of the quadratic pairwise permutation scans.
    """
    buckets: "dict[tuple, list[tuple[OwnedDigraph, list[int]]]]" = {}
    for g in graphs:
        colors = refined_vertex_colors(g)
        buckets.setdefault(isomorphism_invariant(g, colors=colors), []).append(
            (g, colors)
        )
    classes = 0
    for bucket in buckets.values():
        classes += len({canonical_form(g, colors=colors) for g, colors in bucket})
    return classes
