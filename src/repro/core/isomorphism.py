"""Isomorphism of realizations (ownership-aware), for equilibrium censuses.

Two realizations are isomorphic when some player relabeling maps one
arc set onto the other — ownership included, since budgets travel with
players. The census experiments use this to report equilibrium counts
up to symmetry, which is the structurally meaningful number (the
labeled count scales with n! for symmetric budget vectors).

The engine is an **invariant-refinement canonical form** rather than a
raw permutation scan: vertices are colored by relabeling-invariant
signatures (degree data, brace incidence, the sorted distance profile),
the coloring is sharpened by Weisfeiler–Leman-style rounds over the
out-/in-neighbour color multisets, and the canonical form is the
minimal relabeled adjacency bit-key over the color-class-preserving
relabelings only. Non-isomorphic pairs almost always reject on the
invariant alone, without touching a single permutation; the residual
search space is the product of the class factorials, not ``n!``.

Only meant for the tiny-n enumeration pipeline (capped at ``n = 9``).
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from functools import lru_cache

import numpy as np

from ..errors import GameError
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import distance_matrix

__all__ = [
    "are_isomorphic",
    "budget_class_transpositions",
    "BudgetStabilizerChain",
    "canonical_form",
    "chain_cell_positions",
    "isomorphism_invariant",
    "refined_vertex_colors",
    "count_isomorphism_classes",
]

#: Permutation search is capped here; beyond it the census should use
#: sampling, not exact isomorphism.
_MAX_N = 9

#: Relabelings are keyed in chunks this large; bounds the peak
#: ``(chunk, n, n)`` gather of the canonical-form search.
_PERM_CHUNK = 8192


def _check_size(graph: OwnedDigraph) -> None:
    if graph.n > _MAX_N:
        raise GameError(f"exact isomorphism is capped at n = {_MAX_N}")


def budget_class_transpositions(budgets) -> np.ndarray:
    """All within-class transpositions of the budget symmetry group.

    Row ``k`` is the permutation swapping one pair of equal-budget
    players and fixing everything else — always an element of
    ``∏ Sym(budget class)``. These are the cheap *probe* elements the
    census orbit pruning maintains incrementally: a profile whose key
    is not minimal under some transposition is certainly not canonical,
    and the probes reject the overwhelming majority of profiles without
    ever touching the full group. Shape ``(t, n)``; ``t`` may be zero
    (all budgets distinct).
    """
    n = len(budgets)
    classes: "dict[int, list[int]]" = {}
    for i, b in enumerate(budgets):
        classes.setdefault(int(b), []).append(i)
    perms = []
    for members in classes.values():
        for a, b in itertools.combinations(members, 2):
            perm = np.arange(n, dtype=np.int64)
            perm[a], perm[b] = b, a
            perms.append(perm)
    if not perms:
        return np.empty((0, n), dtype=np.int64)
    return np.stack(perms)


@lru_cache(maxsize=None)
def chain_cell_positions(n: int) -> np.ndarray:
    """Chain-aligned bit significance of every adjacency cell, ``(n, n)``.

    The stabilizer-chain canonical walk fixes player images in
    *descending* base-point order ``n-1, n-2, ..., 0``; after level
    ``β`` exactly the cells ``(a, b)`` with ``min(a, b) >= β`` are
    determined. Packing cell ``(a, b)`` at bit position
    ``positions[a, b]`` — off-diagonal cells sorted by
    ``(min(a, b), a*n + b)`` *descending*, most significant first, the
    (always-zero) diagonal last — makes the revelation order of the
    chain descent monotone in significance, so branch-and-bound pruning
    on the newly determined cells is exact. Any fixed cell order yields
    a valid orbit-canonical key; this one is shared by the census probe
    keys (:class:`repro.core.enumeration._OrbitKeys`) and the chain's
    exact survivor recheck so both stages decide minimality under the
    *same* total order.

    Positions run ``0 .. n*n - 1`` with higher = more significant; the
    array is read-only (cached).
    """
    cells = [(a, b) for a in range(n) for b in range(n) if a != b]
    cells.sort(key=lambda ab: (min(ab), ab[0] * n + ab[1]), reverse=True)
    positions = np.empty((n, n), dtype=np.int64)
    p = n * n - 1
    for a, b in cells:
        positions[a, b] = p
        p -= 1
    for d in range(n):
        positions[d, d] = p
        p -= 1
    positions.setflags(write=False)
    return positions


class BudgetStabilizerChain:
    """Schreier–Sims-style stabilizer chain of ``∏ Sym(budget class)``.

    The budget symmetry group is a direct product of symmetric groups on
    the equal-budget classes, so its stabilizer chain is available in
    closed form: with base points ``n-1, n-2, ..., 0``, the basic orbit
    of ``β`` under the stabilizer of all later points is exactly the
    *not yet used* members of ``β``'s class, and the transversal
    elements are the corresponding transpositions. The chain supports
    the census's exact survivor recheck without ever materialising the
    group: :meth:`minimal_images` finds the orbit-minimal adjacency key
    (under the :func:`chain_cell_positions` bit order) by descending the
    chain level by level, carrying only the partial images that are
    still tied for the minimum — cost bounded by the automorphisms of
    the profile, not the group order.

    ``labels`` is any per-player class labelling (budgets work; so do
    the point-orbit labels the census derives from a permutation
    matrix). Players with equal labels may be exchanged; others are
    fixed.
    """

    __slots__ = ("_n", "_labels", "_classes", "_order", "cell_positions")

    def __init__(self, labels) -> None:
        labels = [int(x) for x in labels]
        n = len(labels)
        if n * n > 128:
            raise GameError(
                f"stabilizer-chain keys are two 64-bit words (n^2 <= 128); "
                f"got n = {n}"
            )
        self._n = n
        self._labels = labels
        classes: "dict[int, list[int]]" = {}
        for i, lab in enumerate(labels):
            classes.setdefault(lab, []).append(i)
        self._classes = {
            lab: np.asarray(members, dtype=np.int64)
            for lab, members in classes.items()
        }
        order = 1
        for members in classes.values():
            order *= math.factorial(len(members))
        self._order = order
        self.cell_positions = chain_cell_positions(n)

    @property
    def order(self) -> int:
        """Group order: the product of the class factorials."""
        return self._order

    def key_of(self, adj: np.ndarray) -> "tuple[int, int]":
        """``(hi, lo)`` two-word key of one adjacency under the cell order."""
        pos = self.cell_positions[np.asarray(adj, dtype=bool)]
        hi = lo = 0
        for p in pos:
            p = int(p)
            if p >= 64:
                hi |= 1 << (p - 64)
            else:
                lo |= 1 << p
        return hi, lo

    def minimal_images(
        self, adjs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Orbit-minimal keys and stabilizer orders of a key batch.

        ``adjs`` is ``(K, n, n)`` boolean ownership adjacencies. Returns
        ``(min_hi, min_lo, stab)`` — per key the minimal two-word
        relabeled-adjacency key over the whole group (under the
        :func:`chain_cell_positions` order) and the number of group
        elements achieving it (``= |Aut|``, so the orbit size is
        ``order // stab``). The whole batch descends the chain together:
        one vectorised expansion + prune pass per level over every
        key's surviving frontier, never a per-group-element gather.

        The frontier invariant: after level ``β`` each key holds the
        set of partial images (assignments of ``β..n-1``) whose
        determined cells are jointly minimal; since all frontier
        members of a key agree on previously determined cells and the
        cell order reveals strictly less significant bits at each later
        level, pruning on the newly determined cells alone is exact.
        """
        n = self._n
        adjs = np.ascontiguousarray(np.asarray(adjs, dtype=bool))
        if adjs.ndim != 3 or adjs.shape[1:] != (n, n):
            raise GameError(
                f"expected adjacency batch of shape (K, {n}, {n}), "
                f"got {adjs.shape}"
            )
        k_count = adjs.shape[0]
        if k_count == 0:
            empty = np.zeros(0, dtype=np.uint64)
            return empty, empty.copy(), np.zeros(0, dtype=np.int64)
        # Frontier: per surviving partial assignment one row of images
        # (unassigned = -1), a used-target mask, and its owning key id.
        images = np.full((k_count, n), -1, dtype=np.int64)
        used = np.zeros((k_count, n), dtype=bool)
        kid = np.arange(k_count, dtype=np.int64)
        assigned: "list[int]" = []  # base points so far, descending
        level_best: "list[tuple[int, np.ndarray]]" = []  # (width, best vals)
        for beta in range(n - 1, -1, -1):
            members = self._classes[self._labels[beta]]
            # Expand: every frontier row × every unused class member.
            # Every row expands (beta's own class always has an unused
            # member left for it), so src_kid stays sorted with every
            # key present — segmented reduceat minima below rely on it.
            cand = ~used[:, members]  # (rows, class size)
            rows_idx, tgt_idx = np.nonzero(cand)
            targets = members[tgt_idx]
            src_kid = kid[rows_idx]
            if assigned:
                # Newly determined cells, most significant first:
                # (s, beta) for s descending, then (beta, s) — exactly
                # the chain_cell_positions order within this level.
                s_desc = np.asarray(assigned, dtype=np.int64)
                pi_s = images[rows_idx[:, None], s_desc[None, :]]
                col = adjs[src_kid[:, None], pi_s, targets[:, None]]
                row = adjs[src_kid[:, None], targets[:, None], pi_s]
                bits = np.concatenate([col, row], axis=1)
                # Pack (<= 2n <= 22 bits) for one lexicographic compare.
                weights = np.uint64(1) << np.arange(bits.shape[1])[
                    ::-1
                ].astype(np.uint64)
                vals = bits.astype(np.uint64) @ weights
                starts = np.flatnonzero(
                    np.r_[True, src_kid[1:] != src_kid[:-1]]
                )
                best = np.minimum.reduceat(vals, starts)
                keep = vals == best[src_kid]
                rows_idx = rows_idx[keep]
                targets = targets[keep]
                kid = src_kid[keep]
                level_best.append((bits.shape[1], best))
            else:
                kid = src_kid
            # Materialize only the surviving rows.
            images = images[rows_idx]
            images[:, beta] = targets
            used = used[rows_idx]
            used[np.arange(targets.size), targets] = True
            assigned.append(beta)  # beta descends, so this stays sorted desc
        stab = np.bincount(kid, minlength=k_count).astype(np.int64)
        assert (stab > 0).all()
        # Under chain_cell_positions each level's newly revealed cells
        # occupy one contiguous run of the key, most significant level
        # first — so the minimal key is just the concatenation of the
        # per-level minima, no relabeled-adjacency gather needed.
        min_hi = np.zeros(k_count, dtype=np.uint64)
        min_lo = np.zeros(k_count, dtype=np.uint64)
        top = n * n  # next unplaced bit position (exclusive)
        for width, best in level_best:
            top -= width
            if top >= 64:
                min_hi |= best << np.uint64(top - 64)
            elif top + width <= 64:
                min_lo |= best << np.uint64(top)
            else:  # run straddles the word boundary
                min_lo |= best << np.uint64(top)  # high bits drop off
                min_hi |= best >> np.uint64(64 - top)
        return min_hi, min_lo, stab


def refined_vertex_colors(graph: OwnedDigraph) -> list[int]:
    """Invariant-refinement vertex coloring (ownership-aware 1-WL).

    Initial colors combine ``(out-degree, in-degree, undirected degree,
    brace incidence, sorted distance profile)``; each round re-colors a
    vertex by its color plus the sorted multisets of its out- and
    in-neighbour colors, until the partition stabilises. Color ids are
    ranks of the sorted distinct signatures, so isomorphic graphs get
    identical colorings up to the isomorphism (same class structure,
    same ids).
    """
    n = graph.n
    dist = distance_matrix(graph)
    braces = Counter()
    for u, v in graph.braces():
        braces[u] += 1
        braces[v] += 1
    sigs: list[tuple] = [
        (
            graph.out_degree(v),
            int(graph.in_neighbors(v).size),
            graph.degree(v),
            braces[v],
            tuple(sorted(int(d) for d in dist[v])),
        )
        for v in range(n)
    ]
    colors = _rank(sigs)
    while True:
        sigs = [
            (
                colors[v],
                tuple(sorted(colors[int(w)] for w in graph.out_neighbors(v))),
                tuple(sorted(colors[int(w)] for w in graph.in_neighbors(v))),
            )
            for v in range(n)
        ]
        refined = _rank(sigs)
        if refined == colors:  # partition (and ids) stable
            return colors
        colors = refined


def _rank(signatures: "list[tuple]") -> list[int]:
    """Map each signature to the rank of its value among the distinct ones."""
    order = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
    return [order[sig] for sig in signatures]


def isomorphism_invariant(
    graph: OwnedDigraph, *, colors: "list[int] | None" = None
) -> tuple:
    """A cheap relabeling-invariant fingerprint.

    Combines the sorted multiset of ``(out-degree, in-degree)`` pairs,
    the sorted undirected degree sequence, the brace count, the sorted
    multiset of per-vertex distance profiles, and the refined color
    class-size histogram; graphs with different fingerprints are
    certainly non-isomorphic, and in practice almost every
    non-isomorphic pair already differs here.
    """
    pairs = sorted(
        (graph.out_degree(v), int(graph.in_neighbors(v).size)) for v in range(graph.n)
    )
    degs = sorted(graph.degree(v) for v in range(graph.n))
    dist = distance_matrix(graph)
    profiles = tuple(sorted(tuple(sorted(int(d) for d in row)) for row in dist))
    if colors is None:
        colors = refined_vertex_colors(graph)
    classes = tuple(sorted(Counter(colors).values()))
    return (graph.n, tuple(pairs), tuple(degs), len(graph.braces()), profiles, classes)


def canonical_form(
    graph: OwnedDigraph, *, colors: "list[int] | None" = None
) -> bytes:
    """Canonical adjacency key: equal iff the realizations are isomorphic.

    Vertices are blocked by refined color; the key is the minimum,
    over all relabelings that keep each block in its position range, of
    the relabeled ownership adjacency packed row-major into bits. Any
    isomorphism preserves the (invariant) colors, so isomorphic graphs
    range over the same relabeled-adjacency set and share the minimum;
    distinct keys conversely exhibit distinct arc sets under every
    considered relabeling, and every isomorphism is a considered
    relabeling.
    """
    _check_size(graph)
    n = graph.n
    if colors is None:
        colors = refined_vertex_colors(graph)
    blocks: "dict[int, list[int]]" = {}
    for v in range(n):
        blocks.setdefault(colors[v], []).append(v)
    ordered_blocks = [blocks[c] for c in sorted(blocks)]
    adj = np.zeros((n, n), dtype=bool)
    for u, v in graph.arcs():
        adj[u, v] = True
    best: "bytes | None" = None
    perm_iter = itertools.product(
        *(itertools.permutations(b) for b in ordered_blocks)
    )
    while True:
        chunk = list(itertools.islice(perm_iter, _PERM_CHUNK))
        if not chunk:
            break
        sigma = np.asarray(
            [list(itertools.chain.from_iterable(images)) for images in chunk],
            dtype=np.int64,
        )
        relabeled = adj[sigma[:, :, None], sigma[:, None, :]]
        packed = np.packbits(relabeled.reshape(len(chunk), -1), axis=1)
        # Lexicographic row minimum via two big-endian uint64 words
        # (n <= 9 packs into 11 bytes; trailing zero padding preserves
        # the ordering).
        padded = np.zeros((len(chunk), 16), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        words = padded.view(">u8")
        idx = int(np.lexsort((words[:, 1], words[:, 0]))[0])
        cand = bytes(packed[idx])
        if best is None or cand < best:
            best = cand
    assert best is not None
    return best


def are_isomorphic(a: OwnedDigraph, b: OwnedDigraph) -> bool:
    """Ownership-aware isomorphism test via canonical forms.

    The invariant prefilter rejects almost every non-isomorphic pair
    without enumerating any permutation; survivors are decided by the
    color-class-restricted canonical key.
    """
    if a.n != b.n:
        return False
    _check_size(a)
    if a.num_arcs != b.num_arcs:
        return False
    colors_a = refined_vertex_colors(a)
    colors_b = refined_vertex_colors(b)
    if isomorphism_invariant(a, colors=colors_a) != isomorphism_invariant(
        b, colors=colors_b
    ):
        return False
    return canonical_form(a, colors=colors_a) == canonical_form(b, colors=colors_b)


def count_isomorphism_classes(graphs: "list[OwnedDigraph]") -> int:
    """Number of isomorphism classes among the given realizations.

    Buckets by the cheap invariant first, then resolves each bucket by
    its set of canonical forms — one key computation per graph instead
    of the quadratic pairwise permutation scans.
    """
    buckets: "dict[tuple, list[tuple[OwnedDigraph, list[int]]]]" = {}
    for g in graphs:
        colors = refined_vertex_colors(g)
        buckets.setdefault(isomorphism_invariant(g, colors=colors), []).append(
            (g, colors)
        )
    classes = 0
    for bucket in buckets.values():
        classes += len({canonical_form(g, colors=colors) for g, colors in bucket})
    return classes
