"""Explicit equilibrium constructions from the paper's proofs.

Each constructive theorem becomes a generator function returning a
realization that the exact best-response engine can certify as a Nash
equilibrium at concrete sizes:

* :func:`construct_equilibrium` — Theorem 2.3 (existence, all three
  cases; Case 2 is Figure 1),
* :func:`spider_equilibrium` — Theorem 3.2 (MAX trees, diameter Θ(n);
  Figure 2),
* :func:`binary_tree_equilibrium` — Theorem 3.4 (SUM trees, Θ(log n)),
* :func:`overlap_graph_equilibrium` — Lemma 5.2 / Theorem 5.3 (MAX,
  all-positive budgets, diameter Ω(√log n)).
"""

from .binary_tree import BinaryTreeInstance, binary_tree_equilibrium
from .debruijn import (
    OverlapGraphInstance,
    index_to_word,
    lemma_5_2_condition,
    overlap_graph_edges,
    overlap_graph_equilibrium,
    word_to_index,
)
from .existence import EquilibriumConstruction, classify_case, construct_equilibrium
from .spider import SpiderInstance, spider_budgets, spider_equilibrium

__all__ = [
    "BinaryTreeInstance",
    "EquilibriumConstruction",
    "OverlapGraphInstance",
    "SpiderInstance",
    "binary_tree_equilibrium",
    "classify_case",
    "construct_equilibrium",
    "index_to_word",
    "lemma_5_2_condition",
    "overlap_graph_edges",
    "overlap_graph_equilibrium",
    "spider_budgets",
    "spider_equilibrium",
    "word_to_index",
]
