"""Theorem 3.4: tree equilibria of diameter Θ(log n) in the SUM version.

The witness is the perfect binary tree on ``n = 2^(k+1) - 1`` vertices
with every internal vertex owning the arcs to its two children (budget
2) and leaves owning nothing (budget 0). Total budget ``n - 1``
(Tree-BG), diameter ``2k = Θ(log n)``.

The equilibrium argument: to stay connected an internal vertex must link
into both of its child subtrees, and the root of a subtree is the
distance-sum-minimising target inside it, so the current strategy is
already optimal.

Together with Theorem 3.3 (every SUM tree equilibrium has diameter
``O(log n)``) this pins the Trees/SUM cell of Table 1 at ``Θ(log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConstructionError
from ..graphs.digraph import OwnedDigraph

__all__ = ["BinaryTreeInstance", "binary_tree_equilibrium"]


@dataclass(frozen=True)
class BinaryTreeInstance:
    """The Theorem 3.4 perfect binary tree.

    Vertices use heap indexing: vertex ``i`` has children ``2i + 1`` and
    ``2i + 2`` (0-indexed).
    """

    graph: OwnedDigraph
    depth: int

    @property
    def n(self) -> int:
        """Number of vertices ``2^(depth+1) - 1``."""
        return self.graph.n

    @property
    def diameter_value(self) -> int:
        """The known diameter ``2 * depth`` (leaf to leaf)."""
        return 2 * self.depth

    @property
    def budgets(self) -> np.ndarray:
        """Induced budget vector: 2 for internal vertices, 0 for leaves."""
        return self.graph.out_degrees()

    @property
    def root(self) -> int:
        """The root vertex (index 0)."""
        return 0

    def leaves(self) -> np.ndarray:
        """Indices of the ``2^depth`` leaves."""
        n = self.n
        return np.arange(n // 2, n, dtype=np.int64)


def binary_tree_equilibrium(depth: int) -> BinaryTreeInstance:
    """Perfect binary tree of the given ``depth >= 1`` (heap layout).

    The returned graph is a Nash equilibrium of the induced Tree-BG
    instance in the SUM version with diameter ``2 * depth = Θ(log n)``.
    """
    if depth < 1:
        raise ConstructionError(f"binary tree needs depth >= 1, got {depth}")
    n = (1 << (depth + 1)) - 1
    g = OwnedDigraph(n)
    for i in range(n // 2):
        g.add_arc(i, 2 * i + 1)
        g.add_arc(i, 2 * i + 2)
    return BinaryTreeInstance(graph=g, depth=depth)
