"""Lemma 5.2 / Theorem 5.3: the Ω(√log n) MAX lower bound (Braess-style).

The witness graph ``U(t, k)`` has vertex set ``{0..t-1}^k`` with words
``x`` and ``y`` adjacent when ``y`` is ``x`` shifted by one position
(in either direction, with an arbitrary new symbol entering) — an
undirected de-Bruijn-like *overlap graph*. Its diameter is exactly
``k``; with ``t = 2^k`` we get ``n = t^k = 2^(k^2)`` vertices and
diameter ``k = √(log2 n)``.

Lemma 5.2 shows that whenever ``(2t)^k - 1 < t^k (2t - 1)`` (equivalent
to ``t >= 2^(k-1) + 1``), *every* orientation of ``U(t, k)`` is a Nash
equilibrium in the MAX version: a deviating vertex has at most ``2t``
new neighbours, and expansion counting (Lemma 5.1) finds a vertex at
distance ``> k - 2`` from any such neighbour set, so no deviation beats
the current local diameter ``k``.

Since orientations with all-positive out-degrees exist (min degree is at
least ``t - 1 >= 2``), this yields equilibria where *every* player has
positive budget yet the diameter is Ω(√log n) — larger than the Θ(1) of
the all-unit case: more budget can hurt (the paper's Braess analogue).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..errors import ConstructionError
from ..graphs.digraph import OwnedDigraph

__all__ = [
    "OverlapGraphInstance",
    "overlap_graph_edges",
    "overlap_graph_equilibrium",
    "lemma_5_2_condition",
    "word_to_index",
    "index_to_word",
]


def lemma_5_2_condition(t: int, k: int) -> bool:
    """Whether ``(2t)^k - 1 < t^k (2t - 1)``, Lemma 5.2's hypothesis.

    Algebraically equivalent to ``t >= 2^(k-1) + 1`` (for positive
    ``t, k``); evaluated exactly with Python bignums.
    """
    return (2 * t) ** k - 1 < t**k * (2 * t - 1)


def word_to_index(word: "tuple[int, ...] | list[int]", t: int) -> int:
    """Rank of a word of ``{0..t-1}^k`` in lexicographic order."""
    idx = 0
    for symbol in word:
        if not 0 <= symbol < t:
            raise ConstructionError(f"symbol {symbol} out of alphabet range [0, {t})")
        idx = idx * t + symbol
    return idx


def index_to_word(idx: int, t: int, k: int) -> tuple[int, ...]:
    """Inverse of :func:`word_to_index`."""
    word = []
    for _ in range(k):
        word.append(idx % t)
        idx //= t
    return tuple(reversed(word))


def overlap_graph_edges(t: int, k: int) -> list[tuple[int, int]]:
    """Undirected edge list of ``U(t, k)`` over word ranks.

    Words ``x, y`` are adjacent iff ``x_i = y_{i+1}`` for all
    ``1 <= i <= k - 1`` or ``y_i = x_{i+1}`` for all ``i`` (the paper's
    two shift conditions). Self-loops are dropped and each pair appears
    once, so the result is a simple graph.
    """
    if k < 2:
        raise ConstructionError(f"overlap graph needs k >= 2, got {k}")
    if t < 2:
        raise ConstructionError(f"overlap graph needs t >= 2, got {t}")
    edges: set[tuple[int, int]] = set()
    for word in itertools.product(range(t), repeat=k):
        x = word_to_index(word, t)
        # Shift right: y = (a, x_1, ..., x_{k-1}) satisfies x_i = y_{i+1}.
        prefix = word[:-1]
        for a in range(t):
            y = word_to_index((a,) + prefix, t)
            if y != x:
                edges.add((min(x, y), max(x, y)))
    return sorted(edges)


@dataclass(frozen=True)
class OverlapGraphInstance:
    """An oriented ``U(t, k)`` with all-positive budgets.

    ``graph`` is the orientation (a game realization); its out-degrees
    are the budget vector of the witnessed game instance.
    """

    graph: OwnedDigraph
    t: int
    k: int

    @property
    def n(self) -> int:
        """Number of vertices ``t^k``."""
        return self.graph.n

    @property
    def diameter_value(self) -> int:
        """The known diameter ``k`` (≈ ``√log n`` when ``t = 2^k``)."""
        return self.k

    @property
    def budgets(self) -> np.ndarray:
        """Induced all-positive budget vector."""
        return self.graph.out_degrees()


def overlap_graph_equilibrium(
    t: int, k: int, *, require_lemma: bool = True
) -> OverlapGraphInstance:
    """Build an oriented ``U(t, k)`` whose every orientation is a MAX
    equilibrium (Lemma 5.2), with every out-degree positive.

    Parameters
    ----------
    t, k:
        Alphabet size and word length. Lemma 5.2 needs
        ``t >= 2^(k-1) + 1``; the diameter-``k`` argument further wants
        ``t >= 2k`` (enough fresh symbols). Both are enforced unless
        ``require_lemma=False`` (useful for negative tests).

    Notes
    -----
    The orientation balances out-degrees greedily and then flips one arc
    toward any vertex left with out-degree zero, so the instance has
    all-positive budgets as Theorem 5.3 requires. No brace is ever
    created (each undirected edge is oriented exactly once).
    """
    if require_lemma:
        if not lemma_5_2_condition(t, k):
            raise ConstructionError(
                f"(t={t}, k={k}) violates Lemma 5.2: need t >= 2^(k-1)+1 = {2 ** (k - 1) + 1}"
            )
        if t < 2 * k:
            raise ConstructionError(
                f"diameter-k argument needs t >= 2k (t={t}, k={k})"
            )
    edges = overlap_graph_edges(t, k)
    n = t**k
    g = OwnedDigraph(n)
    outdeg = np.zeros(n, dtype=np.int64)
    for u, v in edges:
        if outdeg[u] <= outdeg[v]:
            g.add_arc(u, v)
            outdeg[u] += 1
        else:
            g.add_arc(v, u)
            outdeg[v] += 1
    # Repair any vertex with out-degree 0 by stealing an arc from a
    # neighbour that owns >= 2 arcs (min degree >= t - 1 >= 2 makes this
    # always possible in practice; bounded loop guards pathological cases).
    for _ in range(n):
        zeros = np.flatnonzero(outdeg == 0)
        if zeros.size == 0:
            break
        u = int(zeros[0])
        fixed = False
        for w in g.in_neighbors(u):
            w = int(w)
            if outdeg[w] >= 2:
                g.remove_arc(w, u)
                g.add_arc(u, w)
                outdeg[w] -= 1
                outdeg[u] += 1
                fixed = True
                break
        if not fixed:
            raise ConstructionError(f"could not give vertex {u} a positive out-degree")
    return OverlapGraphInstance(graph=g, t=t, k=k)
