"""Theorem 3.2: tree equilibria of diameter Θ(n) in the MAX version.

The witness is a 3-legged *spider*: a center ``w`` with three paths
(legs) of length ``k`` hanging off it, ``n = 3k + 1``. Legs are oriented
away from the center except that each leg's innermost vertex owns both
its leg arc and the arc to ``w`` (budget 2); leg ends and the center
have budget 0; everyone else budget 1. Total budget ``3k = n - 1``
(a Tree-BG instance), diameter ``2k = Θ(n)``.

The paper shows no vertex can lower its *local diameter*: interior leg
vertices must keep the graph connected, and each inner vertex ``x_1``
already links to the midpoint of the long path formed by the other two
legs (which is exactly ``w``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConstructionError
from ..graphs.digraph import OwnedDigraph

__all__ = ["SpiderInstance", "spider_equilibrium", "spider_budgets"]


@dataclass(frozen=True)
class SpiderInstance:
    """The Theorem 3.2 spider: graph, vertex roles and parameters.

    Vertex layout: ``w = 0``; leg ``j`` occupies vertices
    ``1 + j*k .. (j+1)*k`` with the innermost vertex first (``x_1`` is
    ``1 + j*k``). The paper uses 3 legs; any number >= 3 works (and 2
    legs — a path — provably does not, see the tests), so the builder
    accepts a ``legs`` parameter for ablations.
    """

    graph: OwnedDigraph
    k: int
    center: int
    legs: tuple[tuple[int, ...], ...]

    @property
    def n(self) -> int:
        """Number of vertices ``len(legs)*k + 1``."""
        return self.graph.n

    @property
    def diameter_value(self) -> int:
        """The known diameter ``2k`` (leg end to leg end)."""
        return 2 * self.k

    @property
    def budgets(self) -> np.ndarray:
        """The induced budget vector (out-degrees)."""
        return self.graph.out_degrees()


def spider_budgets(k: int) -> np.ndarray:
    """Budget vector of the spider instance on ``n = 3k + 1`` players."""
    return spider_equilibrium(k).budgets


def spider_equilibrium(k: int, *, legs: int = 3) -> SpiderInstance:
    """Build the Theorem 3.2 spider for a given leg length ``k >= 1``.

    Returns a :class:`SpiderInstance` whose graph is a Nash equilibrium
    of the induced Tree-BG instance in the MAX version, with diameter
    ``2k`` — the Ω(n) price-of-anarchy witness for MAX trees.

    ``legs`` must be at least 3: each inner vertex ``x_1`` links to the
    midpoint of the long path formed by the *other* legs, which is the
    center ``w`` only when at least two other legs exist. With 2 legs
    (a path) the midpoint argument fails and the graph is not an
    equilibrium — the test suite demonstrates this.
    """
    if k < 1:
        raise ConstructionError(f"spider needs k >= 1, got {k}")
    if legs < 3:
        raise ConstructionError(
            f"spider needs at least 3 legs for the equilibrium argument, got {legs}"
        )
    n = legs * k + 1
    g = OwnedDigraph(n)
    center = 0
    leg_list: list[tuple[int, ...]] = []
    for j in range(legs):
        base = 1 + j * k
        leg = tuple(range(base, base + k))
        leg_list.append(leg)
        # x_1 owns the arc to the center (and, below, to x_2).
        g.add_arc(leg[0], center)
        for i in range(k - 1):
            g.add_arc(leg[i], leg[i + 1])
    return SpiderInstance(graph=g, k=k, center=center, legs=tuple(leg_list))
