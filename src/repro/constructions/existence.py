"""Theorem 2.3: explicit Nash equilibria for every budget vector.

The paper proves existence constructively, in three cases keyed on the
budget vector sorted in nondecreasing order (``z`` = number of
zero-budget players, ``sigma`` = total budget):

* **Case 1** (``sigma >= n - 1`` and ``b_n >= z``): a hub construction —
  the richest player covers all zero-budget players; diameter 2.
* **Case 2** (``sigma >= n - 1`` and ``b_n < z``): the four-phase
  construction of Figure 1; diameter at most 4.
* **Case 3** (``sigma < n - 1``): the rich suffix forms an equilibrium
  among itself (recursing into Case 1/2), the zero-budget prefix stays
  isolated; every realization is disconnected, so PoS is 1.

All constructions are built here exactly as in the paper — including the
brace-repair loop of Case 1 — on the *sorted* budget vector, and then
mapped back through the caller's original player order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConstructionError
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import local_diameter

__all__ = ["EquilibriumConstruction", "construct_equilibrium", "classify_case"]


@dataclass(frozen=True)
class EquilibriumConstruction:
    """A constructed equilibrium together with provenance metadata.

    Attributes
    ----------
    graph:
        The equilibrium realization (players in the caller's order).
    case:
        Which case of Theorem 2.3 produced it (1, 2 or 3).
    sorted_order:
        ``sorted_order[rank]`` is the original player occupying sorted
        position ``rank`` (nondecreasing budget).
    """

    graph: OwnedDigraph
    case: int
    sorted_order: tuple[int, ...]


def classify_case(budgets: "np.ndarray | list[int]") -> int:
    """Which case of Theorem 2.3 applies to this budget vector."""
    b = np.sort(np.asarray(budgets, dtype=np.int64))
    n = b.size
    sigma = int(b.sum())
    z = int((b == 0).sum())
    if n == 1:
        return 1  # the singleton graph is trivially an equilibrium
    if sigma < n - 1:
        return 3
    return 1 if int(b[-1]) >= z else 2


def construct_equilibrium(budgets: "np.ndarray | list[int]") -> EquilibriumConstruction:
    """Build the Theorem 2.3 equilibrium for an arbitrary budget vector.

    The returned graph is a Nash equilibrium of ``(budgets)``-BG in
    *both* the SUM and MAX versions, with diameter at most 4 when
    ``sigma >= n - 1`` (this is the paper's price-of-stability O(1)
    witness).
    """
    b_orig = np.asarray(budgets, dtype=np.int64)
    n = b_orig.size
    if n == 0:
        raise ConstructionError("budget vector may not be empty")
    if (b_orig < 0).any() or (b_orig >= n).any():
        raise ConstructionError(f"budgets must satisfy 0 <= b_i < n; got {b_orig.tolist()}")
    order = np.argsort(b_orig, kind="stable")  # sorted_order[rank] = original player
    b = b_orig[order]
    case = classify_case(b)
    if case == 1:
        sorted_graph = _case1(b)
    elif case == 2:
        sorted_graph = _case2(b)
    else:
        sorted_graph = _case3(b)
    # Map sorted-position vertices back to original player ids.
    g = OwnedDigraph(n)
    for u, v in sorted_graph.arcs():
        g.add_arc(int(order[u]), int(order[v]))
    return EquilibriumConstruction(graph=g, case=case, sorted_order=tuple(int(x) for x in order))


# ----------------------------------------------------------------------
# Case 1: sigma >= n - 1 and b_n >= z
# ----------------------------------------------------------------------
def _case1(b: np.ndarray) -> OwnedDigraph:
    """Hub construction: ``v_{n-1}`` (0-indexed richest) covers everyone.

    Phase 1 wires the hub; phase 2 spends leftover budgets arbitrarily;
    phase 3 repairs braces so every vertex meets Lemma 2.2.
    """
    n = b.size
    g = OwnedDigraph(n)
    if n == 1:
        return g
    hub = n - 1
    bn = int(b[hub])
    # Hub links to the bn smallest-budget vertices (covering all
    # zero-budget vertices since bn >= z)...
    for v in range(bn):
        g.add_arc(hub, v)
    # ... and every other vertex links to the hub.
    for v in range(bn, n - 1):
        g.add_arc(v, hub)
    # Spend remaining budget on arbitrary extra arcs (diameter stays 2).
    for u in range(n - 1):
        _fill_budget(g, u, int(b[u]))
    _repair_braces(g)
    return g


def _fill_budget(g: OwnedDigraph, u: int, budget: int) -> None:
    """Add arcs from ``u`` to arbitrary new targets until budget is met."""
    need = budget - g.out_degree(u)
    if need <= 0:
        return
    taken = set(int(x) for x in g.out_neighbors(u))
    for v in range(g.n):
        if need == 0:
            break
        if v == u or v in taken:
            continue
        g.add_arc(u, v)
        need -= 1
    if need:
        raise ConstructionError(f"player {u} cannot place {need} more arcs")


def _repair_braces(g: OwnedDigraph) -> None:
    """Paper's brace repair: while some brace endpoint has local diameter
    2 and a non-neighbour, re-point its arc at that non-neighbour.

    Each replacement strictly decreases the number of braces, so the
    loop terminates; afterwards every vertex satisfies Lemma 2.2.
    """
    while True:
        fixed_any = False
        for u, v in g.braces():
            for a, c in ((u, v), (v, u)):
                if local_diameter(g, a) != 2:
                    continue
                nbrs = set(int(x) for x in g.neighbors(a))
                nbrs.add(a)
                target = next((w for w in range(g.n) if w not in nbrs), None)
                if target is None:
                    continue
                g.remove_arc(a, c)
                g.add_arc(a, target)
                fixed_any = True
                break
            if fixed_any:
                break  # brace list changed; rescan
        if not fixed_any:
            return


# ----------------------------------------------------------------------
# Case 2: sigma >= n - 1 and b_n < z  (Figure 1)
# ----------------------------------------------------------------------
def _case2(b: np.ndarray) -> OwnedDigraph:
    """The four-phase construction of Theorem 2.3, Case 2 (Figure 1).

    With 0-indexed sorted budgets, ``A = {0..z-1}`` are the zero-budget
    vertices, ``t`` is the (0-indexed) pivot such that the rich suffix
    ``{t..n-1}`` can cover ``A`` plus the chain to the hub ``n-1``,
    ``B = {z..t-1}`` and ``C = {t+1..n-2}``.
    """
    n = b.size
    z = int((b == 0).sum())
    hub = n - 1
    bn = int(b[hub])
    if bn >= z:
        raise ConstructionError("case 2 requires b_n < z")
    # Largest 1-based index t with b_n + ... + b_t >= z + n - t. In
    # 0-indexed terms: largest t0 with suffix_sum(t0) >= z + n - (t0 + 1).
    suffix = np.cumsum(b[::-1])[::-1]  # suffix[i] = b[i] + ... + b[n-1]
    t0 = -1
    for i in range(n - 1, -1, -1):
        if int(suffix[i]) >= z + n - (i + 1):
            t0 = i
            break
    if t0 <= z - 1 or t0 >= n - 1:
        raise ConstructionError(
            f"pivot t={t0} out of the (z-1, n-1) range; sigma >= n-1 violated?"
        )
    g = OwnedDigraph(n)
    B = list(range(z, t0))
    C = list(range(t0 + 1, n - 1))
    # Phase 1: every vertex of B ∪ C ∪ {t0} links to the hub.
    for v in B + [t0] + C:
        g.add_arc(v, hub)
    # Phase 2: {hub} ∪ C ∪ {t0} cover A, hub first with bn arcs, then
    # v_{n-2}, v_{n-3}, ... each with (budget - 1) arcs, then t0 takes
    # the remainder s.
    cursor = 0
    for v in range(bn):
        g.add_arc(hub, v)
        cursor += 1
    for c in sorted(C, reverse=True):
        for _ in range(int(b[c]) - 1):
            if cursor >= z:
                raise ConstructionError("phase 2 overcovered A")
            g.add_arc(c, cursor)
            cursor += 1
    s = z - cursor
    if s <= 0:
        raise ConstructionError(f"phase 2 leftover s={s} must be positive")
    if s + 1 > int(b[t0]):
        raise ConstructionError(f"pivot budget {int(b[t0])} cannot take s={s} arcs")
    for _ in range(s):
        g.add_arc(t0, cursor)
        cursor += 1
    assert cursor == z, "A must be covered exactly once"
    # Phase 3: B (and a possibly-leftover pivot) link to C ∪ {t0} in
    # reverse order until their budget is met or targets run out.
    targets_desc = sorted(C, reverse=True) + [t0]
    for u in B + [t0]:
        need = int(b[u]) - g.out_degree(u)
        for w in targets_desc:
            if need == 0:
                break
            if w == u or g.has_arc(u, w):
                continue
            g.add_arc(u, w)
            need -= 1
    # Phase 4: any remaining budget in B (which, in the paper's notation,
    # includes the pivot v_t) goes to A in increasing order.
    for u in B + [t0]:
        need = int(b[u]) - g.out_degree(u)
        for v in range(z):
            if need == 0:
                break
            if not g.has_arc(u, v):
                g.add_arc(u, v)
                need -= 1
        if need:
            raise ConstructionError(f"player {u} still has {need} unspent arcs after phase 4")
    return g


# ----------------------------------------------------------------------
# Case 3: sigma < n - 1
# ----------------------------------------------------------------------
def _case3(b: np.ndarray) -> OwnedDigraph:
    """Disconnected equilibrium: the rich suffix plays a sub-equilibrium.

    ``m`` is the smallest (0-indexed) cut such that the suffix budgets
    can connect the suffix; everything before ``m`` is zero-budget and
    stays isolated.
    """
    n = b.size
    suffix = np.cumsum(b[::-1])[::-1]
    m = None
    for i in range(n):
        if int(suffix[i]) >= n - i - 1:
            m = i
            break
    if m is None or m == 0:
        raise ConstructionError("case 3 requires sigma < n - 1 (m must be positive)")
    if (b[:m] != 0).any():
        raise ConstructionError("prefix before the cut must be all-zero budgets")
    sub = b[m:]
    sub_case = classify_case(sub)
    if sub_case == 3:  # pragma: no cover - m's minimality prevents this
        raise ConstructionError("sub-instance unexpectedly fell into case 3")
    sub_graph = _case1(sub) if sub_case == 1 else _case2(sub)
    g = OwnedDigraph(n)
    for u, v in sub_graph.arcs():
        g.add_arc(u + m, v + m)
    return g
