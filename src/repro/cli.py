"""Command-line interface: ``repro-bbncg`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show every registered experiment id with its description.
``run <id> [<id> ...] [--workers N] [--symmetry/--no-symmetry] [--extended] [--weighted] [--pool/--no-pool] [--checkpoint-dir DIR] [--resume]``
    Regenerate specific Table 1 cells / figures and print the reports.
    ``--workers`` shards supporting experiments (e.g. the exact census)
    across processes; ``--symmetry`` toggles census orbit pruning;
    ``--extended`` is deprecated and has no effect (the formerly
    extended census instances — unit n=6, mixed n=5 — are part of the
    default battery now; passing it warns); ``--weighted`` appends the
    Section 6
    weighted weak-equilibrium census battery; ``--pool/--no-pool``
    forces shared-memory shard warm starts on or off (default: pooled
    exactly when sharded; bit-identical either way);
    ``--checkpoint-dir DIR`` journals census shard progress through the
    fault-tolerant work-stealing runtime and ``--resume`` continues an
    interrupted run from those journals; ``--pool-dir DIR`` persists
    warm-start matrices to an on-disk mmap store so reruns — even in
    fresh processes — attach instead of rebuilding; ``--sample N``
    (with ``--seed S`` and ``--confidence C``) appends a Monte Carlo
    sampled census per census instance — equilibrium-count and PoA
    estimates with Wilson / bootstrap confidence intervals.
    Flags are forwarded only to experiments whose signature takes them.
``all``
    Regenerate everything (the full paper reproduction).
``pool gc --dir DIR [--budget BYTES]``
    Maintain a ``--pool-dir`` store: reap temp files of dead writers,
    quarantine corrupt matrix files, rebuild the LRU index, and enforce
    the byte budget.
``export <spec> --json out.json [--dot out.dot]``
    Build one of the paper's constructions and save it. Specs:
    ``fig1``, ``spider:<k>``, ``binary-tree:<depth>``,
    ``overlap:<t>,<k>``, or ``thm2.3:<b1,b2,...>``.
``serve [--port N | --stdio] [--instance NAME=SPEC ...] [--pool-dir DIR]``
    Long-lived equilibrium query service (newline-delimited JSON over
    TCP or stdio; see :mod:`repro.serve`). Serves distance /
    social-cost / deviation-verdict / best-response / weighted-swap /
    PoA queries over shared instances built from ``export``-style
    specs (default: one ``fig1`` instance). Concurrent same-instance
    requests coalesce for ``--batch-window-ms`` into one batched
    multi-source sweep; every answer is bit-identical to the direct
    library call. ``--pool-dir`` cold-starts instances by attaching
    persisted distance matrices (zero rebuilds) when present.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
import warnings

from .errors import ExperimentError
from .experiments.runner import REGISTRY, list_experiments, run_experiment

__all__ = ["main", "build_parser", "build_construction"]


def build_construction(spec: str):
    """Resolve an ``export`` spec string to a realization graph."""
    from .constructions import (
        binary_tree_equilibrium,
        construct_equilibrium,
        overlap_graph_equilibrium,
        spider_equilibrium,
    )
    from .experiments.figures import FIGURE1_BUDGETS

    name, _, args = spec.partition(":")
    try:
        if name == "fig1":
            return construct_equilibrium(list(FIGURE1_BUDGETS)).graph
        if name == "spider":
            return spider_equilibrium(int(args)).graph
        if name == "binary-tree":
            return binary_tree_equilibrium(int(args)).graph
        if name == "overlap":
            t, k = (int(x) for x in args.split(","))
            return overlap_graph_equilibrium(t, k).graph
        if name == "thm2.3":
            budgets = [int(x) for x in args.split(",")]
            return construct_equilibrium(budgets).graph
    except (ValueError, TypeError) as exc:
        raise ExperimentError(f"bad construction arguments in {spec!r}: {exc}") from exc
    raise ExperimentError(
        f"unknown construction {name!r}; use fig1 / spider:<k> / "
        "binary-tree:<depth> / overlap:<t>,<k> / thm2.3:<b1,b2,...>"
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bbncg",
        description="Reproduce 'On a Bounded Budget Network Creation Game' (SPAA 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one or more experiments by id")
    run_p.add_argument("ids", nargs="+", metavar="ID", help="experiment ids (see 'list')")
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process shards for experiments that support them (census kernel)",
    )
    run_p.add_argument(
        "--symmetry",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="census orbit pruning (bit-identical results either way)",
    )
    run_p.add_argument(
        "--extended",
        action="store_true",
        default=None,
        help="deprecated, no effect: the formerly extended census "
        "instances (unit n=6, mixed n=5) run in the default battery; "
        "passing this flag emits a DeprecationWarning",
    )
    run_p.add_argument(
        "--weighted",
        action="store_true",
        default=None,
        help="census: append the Section 6 weighted weak-equilibrium battery",
    )
    run_p.add_argument(
        "--pool",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="shared-memory warm starts for census shards (default: on "
        "exactly when sharded; bit-identical results either way)",
    )
    run_p.add_argument(
        "--checkpoint-dir",
        dest="checkpoint_dir",
        default=None,
        metavar="DIR",
        help="census: journal shard progress under DIR (fault-tolerant "
        "work-stealing runtime; one subdirectory per scan) so an "
        "interrupted run can be continued with --resume",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        default=None,
        help="census: continue an interrupted --checkpoint-dir run from "
        "its journals (bit-identical to an uninterrupted run)",
    )
    run_p.add_argument(
        "--pool-dir",
        dest="pool_dir",
        default=None,
        metavar="DIR",
        help="census: persist warm-start matrices to an on-disk mmap "
        "store under DIR; reruns (even fresh processes) attach from "
        "disk instead of rebuilding (bit-identical results)",
    )
    run_p.add_argument(
        "--sample",
        dest="samples",
        type=int,
        default=None,
        metavar="N",
        help="census: append a Monte Carlo sampled census of N profiles "
        "per instance/version (stratified rank draws; equilibrium-count "
        "and PoA estimates with confidence intervals)",
    )
    run_p.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="seed of the --sample rank draws and bootstrap resamples "
        "(default 0; same seed => bit-identical estimates at any "
        "worker count)",
    )
    run_p.add_argument(
        "--confidence",
        type=float,
        default=None,
        metavar="C",
        help="confidence level of the --sample intervals (default 0.95)",
    )
    sub.add_parser("all", help="run every experiment")
    pool_p = sub.add_parser("pool", help="maintain an on-disk matrix pool store")
    pool_sub = pool_p.add_subparsers(dest="pool_command", required=True)
    gc_p = pool_sub.add_parser(
        "gc",
        help="reap dead writers' temp files, quarantine corrupt matrix "
        "files, rebuild the index, enforce the byte budget",
    )
    gc_p.add_argument(
        "--dir",
        dest="pool_dir",
        required=True,
        metavar="DIR",
        help="the pool store directory (as passed to run --pool-dir)",
    )
    gc_p.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget to enforce (default: the store's default budget)",
    )
    serve_p = sub.add_parser(
        "serve",
        help="serve equilibrium queries over shared instances (NDJSON over "
        "TCP or stdio; batched, bit-identical to direct library calls)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 picks an ephemeral port and prints it (default 0)",
    )
    serve_p.add_argument(
        "--stdio",
        action="store_true",
        help="serve newline-delimited JSON over stdin/stdout instead of TCP",
    )
    serve_p.add_argument(
        "--instance",
        dest="instances",
        action="append",
        default=None,
        metavar="NAME=SPEC",
        help="serve this construction under NAME (export-style SPEC; "
        "repeatable; a bare SPEC names itself; default: fig1)",
    )
    serve_p.add_argument(
        "--pool-dir",
        dest="pool_dir",
        default=None,
        metavar="DIR",
        help="cold-start instances by attaching persisted distance matrices "
        "from this on-disk pool store when present (zero rebuilds)",
    )
    serve_p.add_argument(
        "--batch-window-ms",
        dest="batch_window_ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="micro-batching window: concurrent same-instance requests "
        "arriving within MS coalesce into one batched sweep (default 2.0)",
    )
    serve_p.add_argument(
        "--max-batch",
        dest="max_batch",
        type=int,
        default=64,
        metavar="K",
        help="cap on requests coalesced into one batch (default 64)",
    )
    serve_p.add_argument(
        "--version",
        choices=("sum", "max"),
        default="sum",
        help="default cost version for deviation/best-response queries "
        "(per-request 'version' field overrides; default sum)",
    )
    exp_p = sub.add_parser("export", help="build a construction and save it")
    exp_p.add_argument("spec", help="fig1 | spider:<k> | binary-tree:<d> | overlap:<t>,<k> | thm2.3:<b,...>")
    exp_p.add_argument("--json", dest="json_path", help="write the realization as JSON")
    exp_p.add_argument("--dot", dest="dot_path", help="write Graphviz DOT")
    return parser


def _run_and_print(experiment_id: str, **overrides) -> int:
    start = time.perf_counter()
    try:
        report = run_experiment(experiment_id, **overrides)
    except Exception as exc:  # surface the failure but keep going in batches
        # The full traceback, not just str(exc): batch runs (`run a b c`,
        # `all`) keep going after a failure, and a bare message masks
        # which layer actually raised.
        traceback.print_exc(file=sys.stderr)
        print(f"!! {experiment_id} failed: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    print(report.format())
    print(f"(elapsed: {elapsed:.1f}s)")
    print()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for key, desc in list_experiments():
            print(f"{key:18s} {desc}")
        return 0
    if args.command == "run":
        if args.extended:
            warnings.warn(
                "--extended is deprecated and has no effect: the formerly "
                "extended census instances (unit n=6, mixed n=5) are part of "
                "the default battery; drop the flag",
                DeprecationWarning,
                stacklevel=2,
            )
        if args.resume and not args.checkpoint_dir:
            print("!! --resume requires --checkpoint-dir", file=sys.stderr)
            return 2
        return max(
            _run_and_print(
                i,
                workers=args.workers,
                symmetry=args.symmetry,
                extended=args.extended,
                weighted=args.weighted,
                pool=args.pool,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                pool_dir=args.pool_dir,
                samples=args.samples,
                seed=args.seed,
                confidence=args.confidence,
            )
            for i in args.ids
        )
    if args.command == "all":
        return max(_run_and_print(key) for key in REGISTRY)
    if args.command == "pool":
        import os

        from .core.pool_store import PoolStore
        from .errors import PoolError

        if not os.path.isdir(args.pool_dir):
            # PoolStore would happily create the directory, turning a
            # typo'd --dir into a "successful" gc of an empty store.
            print(
                f"!! pool gc failed: no store directory at {args.pool_dir!r}",
                file=sys.stderr,
            )
            return 1
        try:
            store = (
                PoolStore(args.pool_dir)
                if args.budget is None
                else PoolStore(args.pool_dir, byte_budget=args.budget)
            )
            stats = store.gc(byte_budget=args.budget)
        except (PoolError, OSError) as exc:
            print(f"!! pool gc failed: {exc}", file=sys.stderr)
            return 1
        print(
            f"pool {args.pool_dir}: {stats['files']} files, "
            f"{stats['bytes']} bytes after gc "
            f"(reaped {stats['removed_tmp']} temp, "
            f"quarantined {stats['removed_corrupt']} corrupt, "
            f"evicted {stats['evicted']})"
        )
        return 0
    if args.command == "serve":
        from .serve import run_cli as serve_run_cli

        return serve_run_cli(args)
    if args.command == "export":
        try:
            graph = build_construction(args.spec)
        except Exception as exc:
            print(f"!! export failed: {exc}", file=sys.stderr)
            return 1
        from .graphs.render import degree_summary, to_dot
        from .io import save_realization

        print(degree_summary(graph))
        if args.json_path:
            save_realization(graph, args.json_path)
            print(f"wrote {args.json_path}")
        if args.dot_path:
            import pathlib

            pathlib.Path(args.dot_path).write_text(to_dot(graph) + "\n")
            print(f"wrote {args.dot_path}")
        if not args.json_path and not args.dot_path:
            from .graphs.render import adjacency_table

            if graph.n <= 40:
                print(adjacency_table(graph))
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
