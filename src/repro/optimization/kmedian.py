"""k-median solvers (the SUM-version hardness substrate, Theorem 2.1).

The *k-median* problem asks for a ``k``-subset ``S`` minimising
``sum_v dist(v, S)``. Theorem 2.1 reduces it to the best response of a
fresh budget-``k`` player in the SUM version. Ships an exact
enumerative solver and the classical single-swap local search (a
constant-factor approximation in metrics).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError

__all__ = [
    "KMedianSolution",
    "exact_k_median",
    "local_search_k_median",
    "k_median_value",
]


@dataclass(frozen=True)
class KMedianSolution:
    """A median set with its objective value.

    ``objective = sum_v dist(v, medians)`` under the supplied metric.
    """

    medians: tuple[int, ...]
    objective: int
    evaluated: int
    exact: bool


def _check_inputs(dist: np.ndarray, k: int) -> np.ndarray:
    d = np.asarray(dist)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise OptimizationError(f"distance matrix must be square, got shape {d.shape}")
    n = d.shape[0]
    if not 1 <= k <= n:
        raise OptimizationError(f"k must be in [1, {n}], got {k}")
    return d


def k_median_value(dist: np.ndarray, medians: "tuple[int, ...] | list[int]") -> int:
    """Objective value ``sum_v min_{c in medians} dist[v, c]``."""
    d = np.asarray(dist)
    idx = np.asarray(medians, dtype=np.int64)
    if idx.size == 0:
        raise OptimizationError("medians may not be empty")
    return int(d[:, idx].min(axis=1).sum())


def exact_k_median(
    dist: np.ndarray, k: int, *, max_candidates: int | None = 5_000_000
) -> KMedianSolution:
    """Exhaustive k-median optimum by vectorised subset enumeration."""
    d = _check_inputs(dist, k)
    n = d.shape[0]
    total = math.comb(n, k)
    if max_candidates is not None and total > max_candidates:
        raise OptimizationError(
            f"exact k-median would enumerate {total} subsets (> {max_candidates})"
        )
    chunk_rows = max(1, (1 << 22) // (k * n))
    best_val: int | None = None
    best: tuple[int, ...] = ()
    evaluated = 0
    combos = itertools.combinations(range(n), k)
    while True:
        block = list(itertools.islice(combos, chunk_rows))
        if not block:
            break
        arr = np.asarray(block, dtype=np.int64)
        vals = d[:, arr].min(axis=2).sum(axis=0)
        i = int(vals.argmin())
        evaluated += arr.shape[0]
        if best_val is None or vals[i] < best_val:
            best_val = int(vals[i])
            best = tuple(arr[i].tolist())
    assert best_val is not None
    return KMedianSolution(medians=best, objective=best_val, evaluated=evaluated, exact=True)


def local_search_k_median(
    dist: np.ndarray,
    k: int,
    *,
    initial: "tuple[int, ...] | None" = None,
    max_iterations: int = 10_000,
) -> KMedianSolution:
    """Single-swap local search (Arya et al.: 5-approximation in metrics).

    Repeatedly replaces one median by one non-median while the objective
    strictly improves; each pass evaluates all ``k (n - k)`` swaps with a
    vectorised first/second-minimum trick (the same exclusion device as
    the game engine's swap search).
    """
    d = _check_inputs(dist, k)
    n = d.shape[0]
    if initial is not None:
        current = sorted(int(c) for c in initial)
        if len(set(current)) != k or any(not 0 <= c < n for c in current):
            raise OptimizationError(f"initial medians invalid: {initial}")
    else:
        current = list(range(k))
    evaluated = 0
    value = k_median_value(d, current)
    for _ in range(max_iterations):
        cols = d[:, np.asarray(current, dtype=np.int64)]  # (n, k)
        order = np.argsort(cols, axis=1, kind="stable")
        m1 = np.take_along_axis(cols, order[:, :1], axis=1)[:, 0]
        arg1 = order[:, 0]
        m2 = (
            np.take_along_axis(cols, order[:, 1:2], axis=1)[:, 0]
            if k > 1
            else np.full(n, np.iinfo(np.int64).max // 4, dtype=cols.dtype)
        )
        outside = np.asarray(
            [v for v in range(n) if v not in set(current)], dtype=np.int64
        )
        best_gain = 0
        best_swap: tuple[int, int] | None = None
        for i in range(k):
            # Distance to medians with median i removed.
            excl = np.where(arg1 == i, m2, m1)
            # For every candidate replacement w: sum_v min(excl, d[v, w]).
            vals = np.minimum(excl[:, None], d[:, outside]).sum(axis=0)
            evaluated += outside.size
            j = int(vals.argmin())
            gain = value - int(vals[j])
            if gain > best_gain:
                best_gain = gain
                best_swap = (i, int(outside[j]))
        if best_swap is None:
            break
        i, w = best_swap
        current[i] = w
        current.sort()
        value -= best_gain
    return KMedianSolution(
        medians=tuple(current), objective=value, evaluated=evaluated, exact=False
    )
