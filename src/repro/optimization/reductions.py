"""Theorem 2.1: best response ⇌ k-center / k-median (both directions).

*Hardness direction* (paper): to solve k-center on a graph ``H`` with
``n`` vertices, orient ``H`` arbitrarily into a realization, add one
fresh player with budget ``k`` and no incoming arcs, and ask for its
best response in the MAX version; the optimal strategy *is* an optimal
center set, and its cost is ``1 + OPT_center``. The identical embedding
with the SUM version solves k-median with cost ``n + OPT_median``.

*Algorithmic direction*: a player whose removal leaves the rest of the
graph connected and who has no incoming arcs can compute its exact best
response by handing ``dist(G - u)`` to a k-center / k-median solver.

Both directions are executable here, and the test suite checks they
agree with independent implementations — a machine check of the
reduction's correctness (not of NP-hardness itself, which is inherited
from the classical problems).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError
from ..graphs.bfs import UNREACHABLE, all_pairs_distances
from ..graphs.csr import CSRAdjacency, build_csr
from ..graphs.digraph import OwnedDigraph
from ..core.best_response import BestResponseEnvironment, exact_best_response
from ..core.costs import Version
from .kcenter import KCenterSolution, exact_k_center
from .kmedian import KMedianSolution, exact_k_median

__all__ = [
    "ReductionInstance",
    "embed_graph_with_new_player",
    "k_center_via_best_response",
    "k_median_via_best_response",
    "best_response_via_k_center",
    "best_response_via_k_median",
]


@dataclass(frozen=True)
class ReductionInstance:
    """The game instance produced by the Theorem 2.1 embedding.

    ``new_player`` is the added vertex whose best response solves the
    location problem on the original ``n``-vertex graph ``H`` (vertices
    ``0..n-1`` of ``game_graph``).
    """

    game_graph: OwnedDigraph
    new_player: int
    budget: int


def _edges_to_csr(h: "CSRAdjacency | list[tuple[int, int]]", n: int | None) -> CSRAdjacency:
    if isinstance(h, CSRAdjacency):
        return h
    edges = list(h)
    if n is None:
        n = 1 + max(max(u, v) for u, v in edges) if edges else 1
    heads = np.asarray([u for u, _ in edges], dtype=np.int64)
    tails = np.asarray([v for _, v in edges], dtype=np.int64)
    return build_csr(n, heads, tails)


def embed_graph_with_new_player(
    h: "CSRAdjacency | list[tuple[int, int]]", k: int, *, n: int | None = None
) -> ReductionInstance:
    """Build the Theorem 2.1 instance: orient ``H``, add a budget-``k``
    player.

    Each edge of ``H`` is oriented from its smaller endpoint (any
    orientation works — only ``U(G)`` matters for costs). The new player
    initially links to vertices ``0..k-1`` (any valid strategy; the
    reduction asks for its *best* response).
    """
    csr = _edges_to_csr(h, n)
    n_h = csr.n
    if not 1 <= k <= n_h:
        raise OptimizationError(f"budget k must be in [1, {n_h}], got {k}")
    g = OwnedDigraph(n_h + 1)
    for u in range(n_h):
        for v in csr.neighbors(u):
            if u < int(v):
                g.add_arc(u, int(v))
    new_player = n_h
    for v in range(k):
        g.add_arc(new_player, v)
    return ReductionInstance(game_graph=g, new_player=new_player, budget=k)


def k_center_via_best_response(
    h: "CSRAdjacency | list[tuple[int, int]]",
    k: int,
    *,
    n: int | None = None,
    max_candidates: int | None = None,
) -> KCenterSolution:
    """Solve k-center on ``H`` through the game (hardness direction).

    The optimal strategy of the embedded player equals an optimal center
    set, with MAX cost ``1 + OPT`` (``H`` must be connected for the
    textbook k-center semantics).
    """
    inst = embed_graph_with_new_player(h, k, n=n)
    result = exact_best_response(
        inst.game_graph, inst.new_player, Version.MAX, max_candidates=max_candidates
    )
    return KCenterSolution(
        centers=result.strategy,
        objective=result.cost - 1,
        evaluated=result.evaluated,
        exact=True,
    )


def k_median_via_best_response(
    h: "CSRAdjacency | list[tuple[int, int]]",
    k: int,
    *,
    n: int | None = None,
    max_candidates: int | None = None,
) -> KMedianSolution:
    """Solve k-median on ``H`` through the game (hardness direction).

    The optimal strategy of the embedded player equals an optimal median
    set, with SUM cost ``n_H + OPT``.
    """
    inst = embed_graph_with_new_player(h, k, n=n)
    n_h = inst.game_graph.n - 1
    result = exact_best_response(
        inst.game_graph, inst.new_player, Version.SUM, max_candidates=max_candidates
    )
    return KMedianSolution(
        medians=result.strategy,
        objective=result.cost - n_h,
        evaluated=result.evaluated,
        exact=True,
    )


def _reduction_distance_matrix(graph: OwnedDigraph, u: int) -> tuple[np.ndarray, np.ndarray]:
    """Distance matrix of ``G - u`` restricted to the other vertices.

    Preconditions of the algorithmic direction: ``u`` owns every arc at
    itself (no incoming arcs) and ``G - u`` is connected on the others.
    """
    if graph.in_neighbors(u).size:
        raise OptimizationError(
            f"player {u} has incoming arcs; the location-problem reduction "
            "only models players whose links are all their own"
        )
    csr = graph.undirected_csr_without(u)
    full = all_pairs_distances(csr)
    others = np.asarray([v for v in range(graph.n) if v != u], dtype=np.int64)
    sub = full[np.ix_(others, others)]
    if (sub == UNREACHABLE).any():
        raise OptimizationError(
            f"G - {u} is disconnected; the textbook k-center/k-median "
            "semantics no longer match the game's Cinf convention"
        )
    return sub, others


def best_response_via_k_center(
    graph: OwnedDigraph, u: int, *, max_candidates: int | None = None
) -> tuple[int, tuple[int, ...]]:
    """Exact MAX best response of ``u`` obtained from a k-center solver.

    Returns ``(cost, strategy)``; equals
    :func:`~repro.core.best_response.exact_best_response` on instances
    satisfying the reduction's preconditions.
    """
    sub, others = _reduction_distance_matrix(graph, u)
    k = graph.out_degree(u)
    sol = exact_k_center(sub, k, max_candidates=max_candidates)
    strategy = tuple(int(others[c]) for c in sol.centers)
    return 1 + sol.objective, tuple(sorted(strategy))


def best_response_via_k_median(
    graph: OwnedDigraph, u: int, *, max_candidates: int | None = None
) -> tuple[int, tuple[int, ...]]:
    """Exact SUM best response of ``u`` obtained from a k-median solver.

    Returns ``(cost, strategy)``; cost is ``(n - 1) + OPT_median``.
    """
    sub, others = _reduction_distance_matrix(graph, u)
    k = graph.out_degree(u)
    sol = exact_k_median(sub, k, max_candidates=max_candidates)
    strategy = tuple(int(others[c]) for c in sol.medians)
    return (graph.n - 1) + sol.objective, tuple(sorted(strategy))
