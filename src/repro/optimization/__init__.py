"""Location-problem substrate for the NP-hardness reduction (Thm 2.1)."""

from .kcenter import KCenterSolution, exact_k_center, greedy_k_center, k_center_value
from .kmedian import (
    KMedianSolution,
    exact_k_median,
    k_median_value,
    local_search_k_median,
)
from .reductions import (
    ReductionInstance,
    best_response_via_k_center,
    best_response_via_k_median,
    embed_graph_with_new_player,
    k_center_via_best_response,
    k_median_via_best_response,
)

__all__ = [
    "KCenterSolution",
    "KMedianSolution",
    "ReductionInstance",
    "best_response_via_k_center",
    "best_response_via_k_median",
    "embed_graph_with_new_player",
    "exact_k_center",
    "exact_k_median",
    "greedy_k_center",
    "k_center_value",
    "k_center_via_best_response",
    "k_median_value",
    "k_median_via_best_response",
    "local_search_k_median",
]
