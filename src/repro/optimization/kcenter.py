"""k-center solvers (the MAX-version hardness substrate, Theorem 2.1).

Given a graph ``H`` and an integer ``k``, the *k-center* problem asks
for a ``k``-subset ``S`` of vertices minimising
``max_v dist(v, S)``. Theorem 2.1 reduces it to the best response of a
fresh budget-``k`` player in the MAX version, so the library ships both
an exact solver (for the equivalence tests and small instances) and the
classical Gonzalez greedy 2-approximation (the polynomial fallback that
mirrors :meth:`~repro.core.best_response.BestResponseEnvironment.greedy`).

All solvers operate on a precomputed distance matrix, so they accept any
metric, not just graph distances.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError

__all__ = ["KCenterSolution", "exact_k_center", "greedy_k_center", "k_center_value"]


@dataclass(frozen=True)
class KCenterSolution:
    """A center set with its objective value.

    ``objective = max_v dist(v, centers)`` under the supplied metric.
    """

    centers: tuple[int, ...]
    objective: int
    evaluated: int
    exact: bool


def _check_inputs(dist: np.ndarray, k: int) -> np.ndarray:
    d = np.asarray(dist)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise OptimizationError(f"distance matrix must be square, got shape {d.shape}")
    n = d.shape[0]
    if not 1 <= k <= n:
        raise OptimizationError(f"k must be in [1, {n}], got {k}")
    return d


def k_center_value(dist: np.ndarray, centers: "tuple[int, ...] | list[int]") -> int:
    """Objective value ``max_v min_{c in centers} dist[v, c]``."""
    d = np.asarray(dist)
    idx = np.asarray(centers, dtype=np.int64)
    if idx.size == 0:
        raise OptimizationError("centers may not be empty")
    return int(d[:, idx].min(axis=1).max())


def exact_k_center(
    dist: np.ndarray, k: int, *, max_candidates: int | None = 5_000_000
) -> KCenterSolution:
    """Exhaustive k-center optimum by vectorised subset enumeration.

    Chunked exactly like the exact best-response engine: candidate
    subsets are gathered into a ``(chunk, k)`` index array and the
    objective is a single ``min``/``max`` reduction per chunk.
    """
    d = _check_inputs(dist, k)
    n = d.shape[0]
    total = math.comb(n, k)
    if max_candidates is not None and total > max_candidates:
        raise OptimizationError(
            f"exact k-center would enumerate {total} subsets (> {max_candidates})"
        )
    chunk_rows = max(1, (1 << 22) // (k * n))
    best_val: int | None = None
    best: tuple[int, ...] = ()
    evaluated = 0
    combos = itertools.combinations(range(n), k)
    while True:
        block = list(itertools.islice(combos, chunk_rows))
        if not block:
            break
        arr = np.asarray(block, dtype=np.int64)
        # vals[i] = max_v min_{c in row i} dist[v, c]
        vals = d[:, arr].min(axis=2).max(axis=0)
        i = int(vals.argmin())
        evaluated += arr.shape[0]
        if best_val is None or vals[i] < best_val:
            best_val = int(vals[i])
            best = tuple(arr[i].tolist())
    assert best_val is not None
    return KCenterSolution(centers=best, objective=best_val, evaluated=evaluated, exact=True)


def greedy_k_center(dist: np.ndarray, k: int, *, first: int = 0) -> KCenterSolution:
    """Gonzalez farthest-point greedy: a 2-approximation in any metric.

    Starts from vertex ``first``, then repeatedly adds the vertex
    farthest from the current center set. ``O(k n)`` time given the
    distance matrix.
    """
    d = _check_inputs(dist, k)
    n = d.shape[0]
    if not 0 <= first < n:
        raise OptimizationError(f"first center {first} out of range [0, {n})")
    centers = [first]
    closest = d[:, first].copy()
    for _ in range(k - 1):
        nxt = int(closest.argmax())
        centers.append(nxt)
        np.minimum(closest, d[:, nxt], out=closest)
    return KCenterSolution(
        centers=tuple(sorted(centers)),
        objective=int(closest.max()),
        evaluated=k,
        exact=False,
    )
