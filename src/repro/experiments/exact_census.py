"""Exact equilibrium census of tiny games.

Complements the asymptotic Table 1 experiments with *exact* prices of
anarchy and stability at sizes where the complete profile space is
enumerable: every equilibrium is found, every structure theorem is
checked over the whole space rather than sampled. This is the
strongest form of machine verification the paper admits.
"""

from __future__ import annotations

from repro.analysis.structure import check_unit_structure

from ..core.enumeration import exact_prices, profile_space_size
from ..core.game import BoundedBudgetGame
from .table1 import ExperimentReport

__all__ = ["exact_census_experiment"]

#: Tiny instances spanning the paper's regimes: unit budgets, a tree
#: game, a zero-budget mix, and a disconnected game.
DEFAULT_INSTANCES: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("unit n=3", (1, 1, 1)),
    ("unit n=4", (1, 1, 1, 1)),
    ("unit n=5", (1, 1, 1, 1, 1)),
    ("tree n=4", (2, 1, 0, 0)),
    ("mixed n=4", (2, 1, 1, 0)),
    ("disconnected n=4", (0, 0, 1, 0)),
)


def exact_census_experiment(
    instances: "tuple[tuple[str, tuple[int, ...]], ...]" = DEFAULT_INSTANCES,
    *,
    max_profiles: int = 600_000,
) -> ExperimentReport:
    """Exhaustive equilibrium census over a battery of tiny games.

    For each instance and version reports the number of equilibria, the
    exact PoA and PoS, and (for unit-budget games) confirms the Section
    4 structure theorems on *every* equilibrium.
    """
    report = ExperimentReport(
        experiment_id="EXACT-tiny",
        title="Exact equilibrium census of tiny games (full enumeration)",
        paper_claim="Thm 2.3: equilibria always exist; Thms 4.1/4.2 structure "
        "holds for every unit-budget equilibrium; PoS small",
    )
    for label, budgets in instances:
        game = BoundedBudgetGame(list(budgets))
        space = profile_space_size(game)
        for version in ("sum", "max"):
            census = exact_prices(game, version, max_profiles=max_profiles)
            structure_ok = "-"
            classes = "-"
            from ..core.enumeration import enumerate_equilibria
            from ..core.isomorphism import count_isomorphism_classes

            eqs = enumerate_equilibria(game, version, max_profiles=max_profiles)
            if game.n <= 6:
                classes = count_isomorphism_classes(eqs)
            if game.is_unit_game:
                structure_ok = all(
                    check_unit_structure(g).satisfies(version) for g in eqs
                )
            report.rows.append(
                {
                    "instance": label,
                    "version": version,
                    "profiles": space,
                    "equilibria": census.num_equilibria,
                    "eq_classes": classes,
                    "opt_diam": census.opt_diameter,
                    "PoA": str(census.poa),
                    "PoS": str(census.pos),
                    "structure_thms": structure_ok,
                }
            )
            if census.num_equilibria == 0:
                report.notes.append(f"{label}/{version}: NO equilibrium — violates Thm 2.3!")
    return report
