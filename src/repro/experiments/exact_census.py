"""Exact equilibrium census of tiny games.

Complements the asymptotic Table 1 experiments with *exact* prices of
anarchy and stability at sizes where the complete profile space is
enumerable: every equilibrium is found, every structure theorem is
checked over the whole space rather than sampled. This is the
strongest form of machine verification the paper admits.

Runs on the incremental Gray-order census kernel
(:func:`repro.core.enumeration.census_scan`): one engine-repaired pass
per (instance, version) computes the prices *and* collects the
equilibria, with symmetry orbit pruning on by default and optional
sharded workers — the numbers are bit-identical to the rebuild-per-
profile brute force, just fast enough to put unit ``n = 6`` in reach.

``weighted=True`` (CLI: ``--weighted``) additionally runs the Section 6
battery: for each weighted instance the same Gray walk counts the
profiles that are *weighted weak equilibria* (stable under weighted
single-arc swaps) via :func:`repro.core.enumeration.weighted_census_scan`,
with every distance query riding the weighted engine's delta repairs.
"""

from __future__ import annotations

from repro.analysis.structure import check_unit_structure

from ..errors import ExperimentError
from ..core.enumeration import (
    census_scan,
    profile_space_size,
    sampled_census_scan,
    weighted_census_scan,
)
from ..core.game import BoundedBudgetGame
from ..core.isomorphism import count_isomorphism_classes
from .table1 import ExperimentReport

__all__ = [
    "exact_census_experiment",
    "DEFAULT_INSTANCES",
    "EXTENDED_INSTANCES",
    "GOLDEN_INSTANCES",
    "WEIGHTED_INSTANCES",
]

#: Tiny instances spanning the paper's regimes: unit budgets, a tree
#: game, a zero-budget mix, and a disconnected game. Small enough that
#: the rebuild-per-profile brute force is still affordable — which is
#: why the bit-identity golden suites sweep exactly this battery.
GOLDEN_INSTANCES: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("unit n=3", (1, 1, 1)),
    ("unit n=4", (1, 1, 1, 1)),
    ("unit n=5", (1, 1, 1, 1, 1)),
    ("tree n=4", (2, 1, 0, 0)),
    ("mixed n=4", (2, 1, 1, 0)),
    ("disconnected n=4", (0, 0, 1, 0)),
)

#: The default ``EXACT-tiny`` battery: the golden instances plus the
#: games the incremental kernel unlocked — unit ``n = 6`` (15625
#: profiles, infeasible on the rebuild-per-profile path, ~0.2 s with
#: symmetry pruning and warm-started shards) and a richer mixed-budget
#: game. Promoted from the former ``--extended`` opt-in once shard warm
#: starts landed and the CI census-lane budget was re-measured (~2 s
#: for the whole battery).
DEFAULT_INSTANCES: tuple[tuple[str, tuple[int, ...]], ...] = GOLDEN_INSTANCES + (
    ("unit n=6", (1, 1, 1, 1, 1, 1)),
    ("mixed n=5", (2, 2, 1, 1, 0)),
)

#: Backwards-compatible alias: the extended battery *is* the default
#: battery now (``--extended`` keeps working as a no-op).
EXTENDED_INSTANCES: tuple[tuple[str, tuple[int, ...]], ...] = DEFAULT_INSTANCES

#: Section 6 battery: ``(label, budgets, vertex weights)`` triples for
#: the weighted weak-equilibrium census. Spans a heavy hub, a weighted
#: mixed-budget game, a weight-0 ghost, and a full unit-budget space
#: with pairwise-distinct weights (no two profiles symmetric).
WEIGHTED_INSTANCES: tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...] = (
    ("w-unit n=4 hub", (1, 1, 1, 1), (5, 1, 1, 1)),
    ("w-mixed n=4", (2, 1, 1, 0), (3, 1, 1, 1)),
    ("w-ghost n=4", (1, 1, 1, 0), (2, 1, 1, 0)),
    ("w-unit n=5 ramp", (1, 1, 1, 1, 1), (1, 2, 3, 4, 5)),
)


def _scan_slug(label: str, version: str) -> str:
    """Filesystem-safe checkpoint subdirectory name of one scan."""
    safe = "".join(c if c.isalnum() or c in "-." else "-" for c in label)
    return f"{safe}-{version}"


def exact_census_experiment(
    instances: "tuple[tuple[str, tuple[int, ...]], ...]" = DEFAULT_INSTANCES,
    *,
    max_profiles: int = 600_000,
    workers: int = 1,
    symmetry: bool = True,
    extended: bool = False,
    weighted: bool = False,
    pool: "bool | None" = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    pool_dir: "str | None" = None,
    samples: "int | None" = None,
    seed: int = 0,
    sample_method: str = "stratified",
    confidence: float = 0.95,
) -> ExperimentReport:
    """Exhaustive equilibrium census over a battery of tiny games.

    For each instance and version reports the number of equilibria, the
    exact PoA and PoS, and (for unit-budget games) confirms the Section
    4 structure theorems on *every* equilibrium. ``workers`` shards the
    profile rank space across processes; ``symmetry`` prunes to orbit
    representatives — neither knob changes a single reported number.
    The default battery includes the formerly ``--extended`` games
    (unit n=6, mixed n=5); ``extended=True`` (CLI: ``--extended``) is
    kept as a backwards-compatible no-op selecting the same battery.
    ``weighted=True`` (CLI: ``--weighted``) appends the Section 6
    weighted weak-equilibrium census over :data:`WEIGHTED_INSTANCES`.
    ``pool`` (CLI: ``--pool/--no-pool``) forces shared-memory shard
    warm starts on or off; the default (``None``) pools exactly when
    the scan is sharded, and no setting changes a reported number.

    ``checkpoint_dir`` (CLI: ``--checkpoint-dir``) runs every scan on
    the fault-tolerant checkpointed runtime, journaling each
    (instance, version) scan into its own subdirectory so an
    interrupted battery can be rerun with ``resume=True`` (CLI:
    ``--resume``): finished scans replay from their ``done`` records,
    the interrupted one continues mid-shard, and the reported numbers
    are bit-identical to an uninterrupted run.

    ``pool_dir`` (CLI: ``--pool-dir``) adds the persistent mmap matrix
    tier: all scans share one content-addressed store directory (keys
    digest graph content, so scans can never collide), and a rerun of
    the battery — even in a fresh process — attaches its shard warm
    starts from disk instead of rebuilding them.

    ``samples`` (CLI: ``--sample N``) appends a **Monte Carlo sampled
    census** row per (instance, version): ``N`` profiles drawn per
    ``sample_method`` from ``seed`` (CLI: ``--seed``), reporting the
    estimated equilibrium count and PoA with ``confidence``-level
    (CLI: ``--confidence``) Wilson / bootstrap intervals — the regime
    past exhaustive reach, cross-checkable against the exact rows here.
    """
    import os

    from ..core.checkpoint import MANIFEST_NAME

    def _scan_kwargs(label: str, version: str) -> dict:
        if checkpoint_dir is None:
            return {}
        subdir = os.path.join(checkpoint_dir, _scan_slug(label, version))
        # A battery interrupted before reaching this scan has no
        # manifest here yet: resume it as a fresh run instead of
        # refusing the whole battery.
        return {
            "checkpoint_dir": subdir,
            "resume": resume and os.path.exists(os.path.join(subdir, MANIFEST_NAME)),
        }

    if extended:
        if tuple(instances) != DEFAULT_INSTANCES:
            raise ExperimentError(
                "pass either a custom `instances` battery or `extended=True`, "
                "not both"
            )
        instances = EXTENDED_INSTANCES
    report = ExperimentReport(
        experiment_id="EXACT-tiny",
        title="Exact equilibrium census of tiny games (full enumeration)",
        paper_claim="Thm 2.3: equilibria always exist; Thms 4.1/4.2 structure "
        "holds for every unit-budget equilibrium; PoS small",
    )
    for label, budgets in instances:
        game = BoundedBudgetGame(list(budgets))
        space = profile_space_size(game)
        for version in ("sum", "max"):
            result = census_scan(
                game,
                version,
                max_profiles=max_profiles,
                workers=workers,
                symmetry=symmetry,
                collect_equilibria=True,
                pool=pool,
                pool_dir=pool_dir,
                **_scan_kwargs(label, version),
            )
            census = result.report
            eqs = result.equilibrium_graphs()
            structure_ok = "-"
            classes = "-"
            if game.n <= 6:
                classes = count_isomorphism_classes(eqs)
            if game.is_unit_game:
                structure_ok = all(
                    check_unit_structure(g).satisfies(version) for g in eqs
                )
            report.rows.append(
                {
                    "instance": label,
                    "version": version,
                    "profiles": space,
                    "equilibria": census.num_equilibria,
                    "eq_classes": classes,
                    "opt_diam": census.opt_diameter,
                    "PoA": str(census.poa),
                    "PoS": str(census.pos),
                    "structure_thms": structure_ok,
                }
            )
            if census.num_equilibria == 0:
                report.notes.append(f"{label}/{version}: NO equilibrium — violates Thm 2.3!")
            if samples:
                # Stratified draws take one rank per stratum, so tiny
                # instances cap the draw at their whole profile space
                # (where the "estimate" is simply exact).
                eff_samples = (
                    min(samples, space) if sample_method != "uniform" else samples
                )
                sampled = sampled_census_scan(
                    game,
                    version,
                    samples=eff_samples,
                    seed=seed,
                    method=sample_method,
                    confidence=confidence,
                    workers=workers,
                    pool=pool,
                    pool_dir=pool_dir,
                    **_scan_kwargs(label, f"{version}-sampled"),
                )
                lo_ci, hi_ci = sampled.eq_count_ci
                report.rows.append(
                    {
                        "instance": label,
                        "version": f"{version}/sampled",
                        "profiles": f"{eff_samples} of {sampled.total_profiles}",
                        "equilibria": f"~{sampled.eq_count_estimate:.0f} "
                        f"[{lo_ci:.0f}, {hi_ci:.0f}]",
                        "eq_classes": "-",
                        "opt_diam": sampled.opt_diameter_seen,
                        "PoA": f">={sampled.poa_estimate}"
                        if sampled.poa_estimate is not None
                        else "-",
                        "PoS": "-",
                        "structure_thms": "-",
                    }
                )
                if not (lo_ci <= census.num_equilibria <= hi_ci):
                    report.notes.append(
                        f"{label}/{version}: sampled census CI "
                        f"[{lo_ci:.1f}, {hi_ci:.1f}] misses the exact "
                        f"count {census.num_equilibria}"
                    )
    if weighted:
        for label, budgets, w in WEIGHTED_INSTANCES:
            game = BoundedBudgetGame(list(budgets))
            wc, _ = weighted_census_scan(
                game,
                w,
                max_profiles=max_profiles,
                workers=workers,
                pool=pool,
                pool_dir=pool_dir,
                **_scan_kwargs(label, "weak"),
            )
            report.rows.append(
                {
                    "instance": f"{label} w={list(w)}",
                    "version": "sum/weak",
                    "profiles": wc.num_profiles,
                    "equilibria": wc.num_weak_equilibria,
                    "eq_classes": "-",
                    "opt_diam": wc.opt_diameter,
                    "PoA": str(wc.poa),
                    "PoS": str(wc.pos),
                    "structure_thms": "-",
                }
            )
            if wc.num_weak_equilibria == 0:
                report.notes.append(
                    f"{label}: no weighted weak equilibrium in the profile space"
                )
    return report
