"""Regeneration of the paper's Figures 1-3.

* **Figure 1** — the Case 2 construction of Theorem 2.3 at the paper's
  exact parameters (n = 22, z = 16, t = 19): built, certified as a Nash
  equilibrium in both versions, and rendered as an arc table.
* **Figure 2** — the Theorem 3.2 spider: rendered as ASCII legs, its
  MAX equilibrium certified, diameter 2k confirmed.
* **Figure 3** — the longest-path decomposition of Theorem 3.3: the
  ``A_i`` / ``a(i)`` table of a SUM equilibrium tree with the proof's
  doubling inequality verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..analysis.tree_decomposition import (
    longest_path_decomposition,
    verify_sum_equilibrium_inequality,
)
from ..constructions.binary_tree import binary_tree_equilibrium
from ..constructions.existence import construct_equilibrium
from ..constructions.spider import spider_equilibrium
from ..core.equilibrium import certify_equilibrium
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import diameter
from .table1 import ExperimentReport

__all__ = [
    "FIGURE1_BUDGETS",
    "figure1_experiment",
    "figure2_experiment",
    "figure3_experiment",
    "render_arcs",
    "render_spider",
]

#: The paper's Figure 1 parameters: n = 22 players, z = 16 zero-budget,
#: the rich suffix owning budgets (2, 5, 5, 5, 5, 5) (1-based players
#: v17..v22). sigma = 27 >= n - 1 and b_n = 5 < z = 16 => Case 2.
FIGURE1_BUDGETS: tuple[int, ...] = (0,) * 16 + (2, 5, 5, 5, 5, 5)


def render_arcs(graph: OwnedDigraph, *, per_line: int = 6) -> str:
    """Render the owned arcs of a realization as a compact table."""
    lines = []
    for u in range(graph.n):
        targets = graph.out_neighbors(u)
        if targets.size == 0:
            continue
        arrows = ", ".join(f"v{u + 1}->v{int(v) + 1}" for v in targets)
        lines.append(f"  v{u + 1}: {arrows}")
    return "\n".join(lines)


def render_spider(k: int) -> str:
    """ASCII rendering of the Figure 2 spider (three legs around w)."""
    inst = spider_equilibrium(k)
    leg = lambda j: " - ".join(f"{name}{i + 1}" for i, name in enumerate([("x", "y", "z")[j]] * k))
    return "\n".join(
        [
            f"        {leg(0)}",
            "       /",
            f"      w - {leg(1)}",
            "       \\",
            f"        {leg(2)}",
            f"(n = {inst.n}, diameter = {2 * k})",
        ]
    )


def figure1_experiment() -> ExperimentReport:
    """Rebuild Figure 1 (Theorem 2.3, Case 2, n = 22) and certify it."""
    report = ExperimentReport(
        experiment_id="FIG-1",
        title="Figure 1: Case 2 construction at n=22, z=16, t=19",
        paper_claim="the four-phase construction is a Nash equilibrium in both "
        "versions with diameter <= 4",
    )
    construction = construct_equilibrium(list(FIGURE1_BUDGETS))
    g = construction.graph
    d = diameter(g)
    for version in ("sum", "max"):
        cert = certify_equilibrium(g, version, method="exact")
        report.rows.append(
            {
                "version": version,
                "n": g.n,
                "case": construction.case,
                "diameter": d,
                "is_equilibrium": cert.is_equilibrium,
                "max_regret": cert.max_regret(),
                "candidates_evaluated": cert.total_evaluated,
            }
        )
        if not cert.is_equilibrium:
            report.notes.append(f"{version}: certification FAILED")
    report.notes.append("arc table:\n" + render_arcs(g))
    return report


def figure2_experiment(ks: "tuple[int, ...]" = (2, 4, 7)) -> ExperimentReport:
    """Rebuild Figure 2 (the spider) at several sizes and certify."""
    report = ExperimentReport(
        experiment_id="FIG-2",
        title="Figure 2: the Theorem 3.2 spider",
        paper_claim="a Tree-BG MAX equilibrium with diameter 2k = Θ(n)",
    )
    for k in ks:
        inst = spider_equilibrium(k)
        cert = certify_equilibrium(inst.graph, "max", method="exact")
        report.rows.append(
            {
                "k": k,
                "n": inst.n,
                "diameter": diameter(inst.graph),
                "expected": 2 * k,
                "is_equilibrium": cert.is_equilibrium,
            }
        )
    report.notes.append("rendering (k=%d):\n%s" % (ks[0], render_spider(ks[0])))
    return report


def figure3_experiment(depth: int = 4) -> ExperimentReport:
    """Rebuild Figure 3: the A_i decomposition of a SUM equilibrium tree.

    Uses the certified binary-tree equilibrium; prints the a(i) sequence
    along the longest path and checks the proof's inequality chain.
    """
    report = ExperimentReport(
        experiment_id="FIG-3",
        title="Figure 3: longest-path decomposition of a SUM tree equilibrium",
        paper_claim="a(i_j + 1) >= sum_{k > i_j+1} a(k) along the majority arc "
        "direction, forcing d = O(log n)",
    )
    inst = binary_tree_equilibrium(depth)
    decomp = longest_path_decomposition(inst.graph)
    check = verify_sum_equilibrium_inequality(inst.graph, decomp)
    for i, size in enumerate(decomp.sizes.tolist()):
        report.rows.append(
            {
                "i": i,
                "path_vertex": f"v{decomp.path[i]}",
                "a(i)": size,
                "suffix_sum": int(decomp.sizes[i:].sum()),
            }
        )
    report.notes.append(
        f"n={inst.n}, d={decomp.diameter_value}, inequality holds: {check.holds} "
        f"(checked {len(check.indices)} same-direction arcs)"
    )
    return report
