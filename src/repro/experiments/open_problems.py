"""Section 8: the paper's open problems, explored empirically.

The paper closes with three questions this module turns into
experiments:

* **Convergence** — "if the game starts from an arbitrary position and
  the players keep improving, does it converge, and how fast?"
  (Laoutaris et al. exhibited a best-response loop in their directed
  variant.) :func:`convergence_experiment` measures convergence rates,
  round counts, and hunts for cycles across schedules and versions.
* **Uniform budgets B > 1** — "other special cases that might be
  interesting, for example all players have the same budget B > 1".
  :func:`uniform_budget_experiment` sweeps B and n in both versions.
* **General / MAX = Θ(n)** — the remaining Table 1 cell:
  :func:`general_max_experiment` combines the spider lower bound
  (trees are general instances) with a dynamics upper-bound sweep.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..analysis.scaling import fit_scaling
from ..constructions.spider import spider_equilibrium
from ..core.dynamics import best_response_dynamics
from ..core.game import BoundedBudgetGame
from ..graphs.distances import diameter
from ..graphs.generators import random_budgets_with_sum, uniform_budgets, unit_budgets
from ..parallel.sweep import SweepSpec, SweepTask, run_sweep
from .common import stabilize
from .table1 import ExperimentReport

__all__ = [
    "general_max_experiment",
    "uniform_budget_experiment",
    "convergence_experiment",
]


# ----------------------------------------------------------------------
# Table 1 / General / MAX = Θ(n)
# ----------------------------------------------------------------------
def _general_max_worker(task: SweepTask) -> dict[str, Any]:
    """One random-budget instance driven to stability in the MAX version."""
    n = int(task.params["n"])
    total = max(n - 1, int(round(1.2 * n)))
    budgets = random_budgets_with_sum(n, total, seed=task.seed)
    game = BoundedBudgetGame(budgets)
    graph = game.random_realization(seed=task.seed, connected=True)
    outcome = stabilize(game, graph, "max", seed=task.seed)
    return {
        "diameter": diameter(outcome.graph),
        "converged": outcome.converged,
        "stability": outcome.method,
    }


def general_max_experiment(
    ns: "tuple[int, ...]" = (10, 20, 40),
    ks: "tuple[int, ...]" = (4, 8, 16, 32),
    *,
    replications: int = 3,
    base_seed: int = 5,
    processes: "int | None" = 1,
) -> ExperimentReport:
    """Table 1 (General, MAX): Θ(n).

    Lower bound: the spider (a Tree-BG instance, hence a general
    instance) certifies diameter 2k = Θ(n). Upper bound: random
    instances stabilised in MAX — diameters can sit well above the SUM
    case but are trivially ≤ n; the Θ(n) cell is driven by the lower
    bound, exactly as in the paper.
    """
    report = ExperimentReport(
        experiment_id="T1-MAX-general",
        title="General budgets, MAX version: spider lower bound + dynamics",
        paper_claim="PoA = Θ(n): the Tree-BG spider already realises Ω(n); "
        "diameter <= n - 1 is trivial",
    )
    ns_fit, ds_fit = [], []
    for k in ks:
        inst = spider_equilibrium(k)
        d = diameter(inst.graph)
        ns_fit.append(inst.n)
        ds_fit.append(d)
        report.rows.append(
            {"source": "spider", "n": inst.n, "worst_diameter": d, "stability": "exact"}
        )
    spec = SweepSpec(axes={"n": list(ns)}, replications=replications, base_seed=base_seed)
    records = run_sweep(_general_max_worker, spec, processes=processes)
    for n in ns:
        group = [r for r in records if r["n"] == n]
        report.rows.append(
            {
                "source": "dynamics",
                "n": n,
                "worst_diameter": max(r["diameter"] for r in group),
                "stability": f"{sum(r['converged'] for r in group)}/{len(group)} "
                f"{group[0]['stability']}",
            }
        )
    report.fit = fit_scaling(ns_fit, ds_fit, "linear")
    return report


# ----------------------------------------------------------------------
# Open problem: uniform budgets B > 1
# ----------------------------------------------------------------------
def _uniform_worker(task: SweepTask) -> dict[str, Any]:
    n = int(task.params["n"])
    B = int(task.params["B"])
    version = str(task.params["version"])
    game = BoundedBudgetGame(uniform_budgets(n, B))
    graph = game.random_realization(seed=task.seed, connected=True)
    outcome = stabilize(game, graph, version, seed=task.seed)
    return {
        "diameter": diameter(outcome.graph),
        "converged": outcome.converged,
        "stability": outcome.method,
    }


def uniform_budget_experiment(
    ns: "tuple[int, ...]" = (8, 16, 32),
    Bs: "tuple[int, ...]" = (2, 3),
    *,
    replications: int = 3,
    base_seed: int = 8,
    processes: "int | None" = 1,
) -> ExperimentReport:
    """Section 8 open case: all players share a budget ``B > 1``.

    Empirically the equilibria are tiny-diameter in both versions at
    these sizes — consistent with Theorem 7.2's dichotomy (diameter ≤ 3
    or B-connected) and suggesting the all-positive MAX pathology of §5
    needs non-uniform structure (the overlap graphs are *not* reachable
    from random starts here).
    """
    report = ExperimentReport(
        experiment_id="OPEN-uniform-B",
        title="Open problem (Section 8): uniform budgets B > 1",
        paper_claim="open: the paper proves no bound specific to uniform B > 1; "
        "Thm 7.2 gives 'diameter <= 3 or B-connected' in SUM",
    )
    spec = SweepSpec(
        axes={"n": list(ns), "B": list(Bs), "version": ["sum", "max"]},
        replications=replications,
        base_seed=base_seed,
    )
    records = run_sweep(_uniform_worker, spec, processes=processes)
    for version in ("sum", "max"):
        for B in Bs:
            for n in ns:
                group = [
                    r
                    for r in records
                    if r["n"] == n and r["B"] == B and r["version"] == version
                ]
                report.rows.append(
                    {
                        "version": version,
                        "B": B,
                        "n": n,
                        "worst_diameter": max(r["diameter"] for r in group),
                        "stable": f"{sum(r['converged'] for r in group)}/{len(group)}",
                    }
                )
    worst = max(r["worst_diameter"] for r in report.rows)
    report.notes.append(
        f"worst diameter over the whole grid: {worst} — no growth with n observed"
    )
    return report


# ----------------------------------------------------------------------
# Open problem: convergence of best-response dynamics
# ----------------------------------------------------------------------
def convergence_experiment(
    ns: "tuple[int, ...]" = (10, 20, 40),
    *,
    seeds_per_cell: int = 10,
    max_rounds: int = 150,
) -> ExperimentReport:
    """Section 8 open problem: does the dynamics converge, and how fast?

    Runs exact best-response dynamics on unit-budget games (where exact
    search is cheap) across schedules and versions, counting
    convergence, rounds, and — crucially — profile revisits (cycles).
    """
    report = ExperimentReport(
        experiment_id="OPEN-convergence",
        title="Open problem (Section 8): convergence of best-response dynamics",
        paper_claim="open: convergence not proven; Laoutaris et al.'s directed "
        "variant admits best-response loops",
    )
    for version in ("sum", "max"):
        for schedule in ("round_robin", "random"):
            for n in ns:
                converged = 0
                cycled = 0
                rounds: list[int] = []
                game = BoundedBudgetGame(unit_budgets(n))
                for seed in range(seeds_per_cell):
                    res = best_response_dynamics(
                        game,
                        game.random_realization(seed=seed),
                        version,
                        schedule=schedule,  # type: ignore[arg-type]
                        max_rounds=max_rounds,
                        seed=seed,
                    )
                    converged += res.converged
                    cycled += res.cycled
                    if res.converged:
                        rounds.append(res.rounds)
                report.rows.append(
                    {
                        "version": version,
                        "schedule": schedule,
                        "n": n,
                        "converged": f"{converged}/{seeds_per_cell}",
                        "cycles_found": cycled,
                        "mean_rounds": f"{np.mean(rounds):.1f}" if rounds else "-",
                        "max_rounds_seen": max(rounds) if rounds else "-",
                    }
                )
    total_cycles = sum(int(r["cycles_found"]) for r in report.rows)
    report.notes.append(
        f"best-response cycles observed: {total_cycles} (in this undirected "
        "model, unlike the directed model of Laoutaris et al.)"
    )
    # Exhaustive decision at tiny sizes: the finite improvement property.
    from ..core.potential import check_finite_improvement

    for n in (3, 4):
        game = BoundedBudgetGame(unit_budgets(n))
        for version in ("sum", "max"):
            fip = check_finite_improvement(game, version, kind="better")
            report.rows.append(
                {
                    "version": version,
                    "schedule": "(exhaustive FIP)",
                    "n": n,
                    "converged": "proved" if fip.has_fip else "CYCLE",
                    "cycles_found": 0 if fip.has_fip else 1,
                    "mean_rounds": "-",
                    "max_rounds_seen": f"{fip.num_states} states / {fip.num_edges} moves",
                }
            )
            if not fip.has_fip:
                report.notes.append(
                    f"improvement CYCLE found at n={n} ({version}): {fip.cycle}"
                )
    return report
