"""Experiment registry: every Table 1 cell and Figure by id.

``run_experiment("T1-MAX-trees")`` (or the CLI ``repro-bbncg run ...``)
regenerates one artefact; ``run_all`` regenerates the paper. Each entry
maps to a zero-argument callable returning an
:class:`~repro.experiments.table1.ExperimentReport`; heavy parameters
have defaults chosen so the full suite completes in minutes on a
laptop.
"""

from __future__ import annotations

import inspect
from typing import Callable

from ..errors import ExperimentError
from .ablations import best_response_quality_experiment, lemma_shortcut_experiment
from .exact_census import exact_census_experiment
from .figures import figure1_experiment, figure2_experiment, figure3_experiment
from .open_problems import (
    convergence_experiment,
    general_max_experiment,
    uniform_budget_experiment,
)
from .table1 import (
    ExperimentReport,
    general_sum_experiment,
    positive_max_experiment,
    trees_max_experiment,
    trees_sum_experiment,
    unit_budgets_experiment,
)

__all__ = ["REGISTRY", "run_experiment", "run_all", "list_experiments"]

REGISTRY: dict[str, tuple[str, Callable[[], ExperimentReport]]] = {
    "T1-MAX-trees": ("Table 1 / Trees / MAX = Θ(n)", trees_max_experiment),
    "T1-SUM-trees": ("Table 1 / Trees / SUM = Θ(log n)", trees_sum_experiment),
    "T1-unit": ("Table 1 / All-unit budgets = Θ(1)", unit_budgets_experiment),
    "T1-MAX-positive": ("Table 1 / All-positive / MAX = Ω(√log n)", positive_max_experiment),
    "T1-SUM-general": ("Table 1 / General / SUM = 2^O(√log n)", general_sum_experiment),
    "T1-MAX-general": ("Table 1 / General / MAX = Θ(n)", general_max_experiment),
    "FIG-1": ("Figure 1 (Thm 2.3 Case 2, n=22)", figure1_experiment),
    "FIG-2": ("Figure 2 (spider)", figure2_experiment),
    "FIG-3": ("Figure 3 (longest-path decomposition)", figure3_experiment),
    "OPEN-uniform-B": ("Section 8 open case: uniform budgets B > 1", uniform_budget_experiment),
    "OPEN-convergence": ("Section 8 open problem: dynamics convergence", convergence_experiment),
    "EXACT-tiny": ("Exact equilibrium census of tiny games", exact_census_experiment),
    "ABL-BR": ("Ablation: best-response method quality", best_response_quality_experiment),
    "ABL-lemma22": ("Ablation: Lemma 2.2 certification shortcut", lemma_shortcut_experiment),
}


def list_experiments() -> list[tuple[str, str]]:
    """``(id, description)`` pairs for every registered experiment."""
    return [(key, desc) for key, (desc, _) in REGISTRY.items()]


def run_experiment(experiment_id: str, **overrides) -> ExperimentReport:
    """Run one experiment by id.

    ``overrides`` (e.g. ``workers=4``, ``symmetry=False`` from the CLI)
    are forwarded to the experiment callable when its signature accepts
    them and silently dropped otherwise, so one flag can steer every
    experiment that supports the knob; ``None`` values always mean
    "experiment default".
    """
    try:
        _, fn = REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ExperimentError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    params = inspect.signature(fn).parameters
    kwargs = {
        k: v for k, v in overrides.items() if v is not None and k in params
    }
    return fn(**kwargs)


def run_all() -> list[ExperimentReport]:
    """Run every registered experiment in registry order."""
    return [fn() for _, fn in REGISTRY.values()]
