"""Regeneration of Table 1: price-of-anarchy bounds by instance class.

One experiment per cell of the paper's Table 1:

=====================  ==========  ==============
Instance class         MAX         SUM
=====================  ==========  ==============
Trees (sigma = n-1)    Θ(n)        Θ(log n)
All-unit budgets       Θ(1)        Θ(1)
All-positive budgets   Ω(√log n)   2^O(√log n)
General                Θ(n)        2^O(√log n)
=====================  ==========  ==============

Each runner returns an :class:`ExperimentReport` containing per-size
records (worst diameter found, certification status) and a scaling fit
that is compared against the paper's asymptotic claim. Lower-bound
cells are regenerated from the paper's constructions (certified
equilibria), upper-bound cells from best-response dynamics over many
random instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..analysis.poa import optimal_diameter_bounds
from ..analysis.scaling import FitResult, fit_scaling
from ..analysis.structure import check_unit_structure
from ..analysis.tree_decomposition import (
    theorem_3_3_bound,
    verify_sum_equilibrium_inequality,
)
from ..constructions.binary_tree import binary_tree_equilibrium
from ..constructions.debruijn import overlap_graph_equilibrium
from ..constructions.spider import spider_equilibrium
from ..core.game import BoundedBudgetGame
from ..graphs.distances import diameter
from ..graphs.generators import random_budgets_with_sum, random_tree_realization, unit_budgets
from ..graphs.properties import is_tree
from ..parallel.sweep import SweepSpec, SweepTask, run_sweep
from .common import stabilize, try_certify

__all__ = [
    "ExperimentReport",
    "trees_max_experiment",
    "trees_sum_experiment",
    "unit_budgets_experiment",
    "positive_max_experiment",
    "general_sum_experiment",
]


@dataclass
class ExperimentReport:
    """Per-experiment record bundle for EXPERIMENTS.md and the CLI.

    ``rows`` carry the raw measurements; ``fit`` the scaling law matched
    against ``paper_claim``; ``notes`` any caveats (e.g. certification
    method downgrades).
    """

    experiment_id: str
    title: str
    paper_claim: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    fit: "FitResult | None" = None
    notes: list[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Render rows as a fixed-width text table."""
        if not self.rows:
            return "(no rows)"
        cols = list(self.rows[0].keys())
        widths = {
            c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in self.rows)) for c in cols
        }
        header = "  ".join(str(c).ljust(widths[c]) for c in cols)
        sep = "  ".join("-" * widths[c] for c in cols)
        lines = [header, sep]
        for r in self.rows:
            lines.append("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))
        return "\n".join(lines)

    def format(self) -> str:
        """Full human-readable report."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim : {self.paper_claim}",
        ]
        if self.fit is not None:
            parts.append(f"measured    : {self.fit.describe()}")
        for note in self.notes:
            parts.append(f"note        : {note}")
        parts.append(self.format_table())
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Trees / MAX: Θ(n) via the spider construction (Theorem 3.2)
# ----------------------------------------------------------------------
def trees_max_experiment(
    ks: "tuple[int, ...]" = (2, 4, 8, 16, 32), *, certify_up_to_n: int = 40
) -> ExperimentReport:
    """Table 1 (Trees, MAX): equilibrium trees with diameter Θ(n).

    Builds the Theorem 3.2 spider for each leg length, certifies it as a
    MAX Nash equilibrium (exactly up to ``certify_up_to_n`` players,
    swap-stability beyond), and fits diameter against n.
    """
    report = ExperimentReport(
        experiment_id="T1-MAX-trees",
        title="Tree-BG, MAX version: spider equilibria",
        paper_claim="PoA = Θ(n): equilibrium trees with diameter 2k on n = 3k+1 vertices",
    )
    ns, ds = [], []
    for k in ks:
        inst = spider_equilibrium(k)
        d = diameter(inst.graph)
        opt = optimal_diameter_bounds(inst.budgets)
        if inst.n <= certify_up_to_n:
            method, cert = "exact", None
            from ..core.equilibrium import certify_equilibrium

            cert = certify_equilibrium(inst.graph, "max", method="exact")
            certified = cert.is_equilibrium
        else:
            method, cert = try_certify(inst.graph, "max")
            certified = cert.is_equilibrium
        ns.append(inst.n)
        ds.append(d)
        report.rows.append(
            {
                "k": k,
                "n": inst.n,
                "diameter": d,
                "expected": 2 * k,
                "opt_diam": f"[{opt.lower},{opt.upper}]",
                "poa_lower": f"{d}/{opt.upper}",
                "certified": f"{certified} ({method})",
            }
        )
        if not certified:
            report.notes.append(f"k={k}: certification FAILED — investigate")
    if len(ns) >= 2:
        report.fit = fit_scaling(ns, ds, "linear")
    return report


# ----------------------------------------------------------------------
# Trees / SUM: Θ(log n)
# ----------------------------------------------------------------------
def _trees_sum_worker(task: SweepTask) -> dict[str, Any]:
    """One random Tree-BG instance driven to stability in the SUM version."""
    n = int(task.params["n"])
    graph, budgets = random_tree_realization(n, seed=task.seed)
    game = BoundedBudgetGame(budgets)
    outcome = stabilize(game, graph, "sum", seed=task.seed)
    g = outcome.graph
    tree = is_tree(g)
    ineq_ok = verify_sum_equilibrium_inequality(g).holds if tree else False
    return {
        "diameter": diameter(g),
        "is_tree": tree,
        "inequality_holds": ineq_ok,
        "converged": outcome.converged,
        "stability": outcome.method,
        "bound_3_3": theorem_3_3_bound(n),
    }


def trees_sum_experiment(
    ns: "tuple[int, ...]" = (15, 31, 63, 127),
    *,
    replications: int = 5,
    base_seed: int = 2011,
    processes: "int | None" = 1,
    depths: "tuple[int, ...]" = (2, 3, 4, 5, 6),
) -> ExperimentReport:
    """Table 1 (Trees, SUM): diameter Θ(log n).

    Lower bound: the perfect binary tree (Theorem 3.4) is certified and
    contributes diameter ``2 log2((n+1)/2)``. Upper bound: random
    Tree-BG instances are stabilised and checked against the concrete
    Theorem 3.3 bound ``2 (floor(log2(n+1)) + 1)`` plus the inequality
    chain of the proof.
    """
    report = ExperimentReport(
        experiment_id="T1-SUM-trees",
        title="Tree-BG, SUM version: binary-tree lower bound + dynamics upper bound",
        paper_claim="PoA = Θ(log n): every SUM tree equilibrium has diameter O(log n); "
        "perfect binary trees achieve Ω(log n)",
    )
    ns_fit, ds_fit = [], []
    for depth in depths:
        inst = binary_tree_equilibrium(depth)
        method, cert = try_certify(inst.graph, "sum")
        d = diameter(inst.graph)
        ns_fit.append(inst.n)
        ds_fit.append(d)
        report.rows.append(
            {
                "source": "binary-tree",
                "n": inst.n,
                "diameter": d,
                "bound_3_3": theorem_3_3_bound(inst.n),
                "within_bound": d <= theorem_3_3_bound(inst.n),
                "certified": f"{cert.is_equilibrium} ({method})",
            }
        )
    spec = SweepSpec(axes={"n": list(ns)}, replications=replications, base_seed=base_seed)
    records = run_sweep(_trees_sum_worker, spec, processes=processes)
    for n in ns:
        group = [r for r in records if r["n"] == n]
        worst = max(r["diameter"] for r in group)
        report.rows.append(
            {
                "source": "dynamics",
                "n": n,
                "diameter": worst,
                "bound_3_3": group[0]["bound_3_3"],
                "within_bound": all(r["diameter"] <= r["bound_3_3"] for r in group),
                "certified": f"{sum(r['converged'] for r in group)}/{len(group)} stable "
                f"({group[0]['stability']})",
            }
        )
        ns_fit.append(n)
        ds_fit.append(worst)
    bad_ineq = [r for r in records if r["is_tree"] and not r["inequality_holds"]]
    if bad_ineq:
        report.notes.append(
            f"{len(bad_ineq)} stabilised trees violate inequality (1) — only true "
            "equilibria must satisfy it; these runs stabilised under weaker moves"
        )
    report.fit = fit_scaling(ns_fit, ds_fit, "log")
    return report


# ----------------------------------------------------------------------
# All-unit budgets: Θ(1) in both versions (Theorems 4.1 / 4.2)
# ----------------------------------------------------------------------
def _unit_worker(task: SweepTask) -> dict[str, Any]:
    """One (1,...,1)-BG instance driven to a certified equilibrium."""
    n = int(task.params["n"])
    version = str(task.params["version"])
    game = BoundedBudgetGame(unit_budgets(n))
    graph = game.random_realization(seed=task.seed)
    outcome = stabilize(game, graph, version, seed=task.seed)
    rep = check_unit_structure(outcome.graph)
    return {
        "diameter": rep.diameter_value,
        "cycle_length": rep.cycle_length,
        "dist_to_cycle": rep.max_distance_to_cycle,
        "structure_ok": rep.satisfies(version),
        "converged": outcome.converged,
    }


def unit_budgets_experiment(
    ns: "tuple[int, ...]" = (6, 12, 24, 48, 96),
    *,
    replications: int = 5,
    base_seed: int = 41,
    processes: "int | None" = 1,
) -> ExperimentReport:
    """Table 1 (All-unit budgets): Θ(1) in both versions.

    Runs exact best-response dynamics on random unit-budget instances
    and audits every reached equilibrium against the Section 4 structure
    theorems (unicyclic, short cycle, shallow attachment, diameter < 5
    resp. < 8).
    """
    report = ExperimentReport(
        experiment_id="T1-unit",
        title="(1,...,1)-BG, both versions: constant diameter",
        paper_claim="PoA = Θ(1): SUM diameter < 5 (cycle <= 5, dist <= 1); "
        "MAX diameter < 8 (cycle <= 7, dist <= 2)",
    )
    spec = SweepSpec(
        axes={"n": list(ns), "version": ["sum", "max"]},
        replications=replications,
        base_seed=base_seed,
    )
    records = run_sweep(_unit_worker, spec, processes=processes)
    ns_fit, ds_fit = [], []
    for version in ("sum", "max"):
        for n in ns:
            group = [r for r in records if r["n"] == n and r["version"] == version]
            worst = max(r["diameter"] for r in group)
            report.rows.append(
                {
                    "version": version,
                    "n": n,
                    "worst_diameter": worst,
                    "max_cycle": max(r["cycle_length"] for r in group),
                    "max_dist_to_cycle": max(r["dist_to_cycle"] for r in group),
                    "structure_ok": all(r["structure_ok"] for r in group),
                    "converged": f"{sum(r['converged'] for r in group)}/{len(group)}",
                }
            )
            if version == "sum":
                ns_fit.append(n)
                ds_fit.append(worst)
    report.fit = fit_scaling(ns_fit, ds_fit, "constant")
    return report


# ----------------------------------------------------------------------
# All-positive budgets / MAX: Ω(√log n) (Theorem 5.3)
# ----------------------------------------------------------------------
def positive_max_experiment(
    tk_pairs: "tuple[tuple[int, int], ...]" = ((4, 2), (5, 2), (6, 2), (6, 3), (7, 3)),
    *,
    exact_cap_n: int = 40,
) -> ExperimentReport:
    """Table 1 (All-positive budgets, MAX): Ω(√log n) via overlap graphs.

    Builds oriented ``U(t, k)`` instances (certified equilibria by
    Lemma 5.2), whose diameter ``k`` tracks ``√log n`` — despite every
    player having a positive budget. This is the Braess-style lower
    bound; the all-unit experiment provides the Θ(1) contrast.
    """
    report = ExperimentReport(
        experiment_id="T1-MAX-positive",
        title="All-positive budgets, MAX: oriented overlap graphs U(t, k)",
        paper_claim="PoA = Ω(√log n): equilibria with diameter k = √log2(n) when t = 2^k",
    )
    ns, ds = [], []
    for t, k in tk_pairs:
        inst = overlap_graph_equilibrium(t, k)
        d = diameter(inst.graph)
        method, cert = try_certify(inst.graph, "max")
        sqrt_log = float(np.sqrt(np.log2(inst.n)))
        ns.append(inst.n)
        ds.append(d)
        report.rows.append(
            {
                "t": t,
                "k": k,
                "n": inst.n,
                "diameter": d,
                "sqrt_log2_n": f"{sqrt_log:.2f}",
                "min_budget": int(inst.budgets.min()),
                "certified": f"{cert.is_equilibrium} ({method})",
            }
        )
        if not cert.is_equilibrium:
            report.notes.append(f"(t={t}, k={k}): certification FAILED")
    if len(ns) >= 2:
        report.fit = fit_scaling(ns, ds, "sqrtlog")
    return report


# ----------------------------------------------------------------------
# General / SUM: 2^O(√log n) upper bound (Theorem 6.9)
# ----------------------------------------------------------------------
def _general_sum_worker(task: SweepTask) -> dict[str, Any]:
    """One random-budget instance driven to stability in the SUM version."""
    n = int(task.params["n"])
    density = float(task.params["density"])
    total = max(n - 1, int(round(density * n)))
    budgets = random_budgets_with_sum(n, total, seed=task.seed)
    game = BoundedBudgetGame(budgets)
    graph = game.random_realization(seed=task.seed, connected=True)
    outcome = stabilize(game, graph, "sum", seed=task.seed)
    return {
        "diameter": diameter(outcome.graph),
        "converged": outcome.converged,
        "stability": outcome.method,
        "total_budget": total,
    }


def general_sum_experiment(
    ns: "tuple[int, ...]" = (10, 20, 40, 80),
    *,
    densities: "tuple[float, ...]" = (1.0, 1.5),
    replications: int = 4,
    base_seed: int = 69,
    processes: "int | None" = 1,
) -> ExperimentReport:
    """Table 1 (General, SUM): diameters within the 2^O(√log n) envelope.

    Stabilises random-budget instances across sizes and densities and
    compares the worst diameters against the paper's sub-polynomial
    envelope (the bound is loose at laptop sizes — the point is that
    diameters stay far below linear growth).
    """
    report = ExperimentReport(
        experiment_id="T1-SUM-general",
        title="General budgets, SUM version: dynamics upper bound",
        paper_claim="PoA = 2^O(√log n): every SUM equilibrium diameter is sub-polynomial",
    )
    spec = SweepSpec(
        axes={"n": list(ns), "density": list(densities)},
        replications=replications,
        base_seed=base_seed,
    )
    records = run_sweep(_general_sum_worker, spec, processes=processes)
    ns_fit, ds_fit = [], []
    for n in ns:
        group = [r for r in records if r["n"] == n]
        worst = max(r["diameter"] for r in group)
        envelope = float(2 ** np.sqrt(np.log2(n)))
        report.rows.append(
            {
                "n": n,
                "worst_diameter": worst,
                "envelope_2^sqrt(log n)": f"{envelope:.1f}",
                "stable": f"{sum(r['converged'] for r in group)}/{len(group)}",
                "stability": group[0]["stability"],
            }
        )
        ns_fit.append(n)
        ds_fit.append(worst)
    report.fit = fit_scaling(ns_fit, ds_fit, "expsqrtlog")
    return report
