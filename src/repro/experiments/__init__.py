"""Experiment harness regenerating the paper's Table 1 and Figures 1-3."""

from .common import StabilizeOutcome, exact_is_feasible, stabilize, try_certify
from .figures import (
    FIGURE1_BUDGETS,
    figure1_experiment,
    figure2_experiment,
    figure3_experiment,
    render_arcs,
    render_spider,
)
from .ablations import best_response_quality_experiment, lemma_shortcut_experiment
from .exact_census import exact_census_experiment
from .open_problems import (
    convergence_experiment,
    general_max_experiment,
    uniform_budget_experiment,
)
from .runner import REGISTRY, list_experiments, run_all, run_experiment
from .table1 import (
    ExperimentReport,
    general_sum_experiment,
    positive_max_experiment,
    trees_max_experiment,
    trees_sum_experiment,
    unit_budgets_experiment,
)

__all__ = [
    "FIGURE1_BUDGETS",
    "REGISTRY",
    "ExperimentReport",
    "StabilizeOutcome",
    "exact_is_feasible",
    "figure1_experiment",
    "figure2_experiment",
    "figure3_experiment",
    "best_response_quality_experiment",
    "convergence_experiment",
    "exact_census_experiment",
    "lemma_shortcut_experiment",
    "general_max_experiment",
    "general_sum_experiment",
    "uniform_budget_experiment",
    "list_experiments",
    "positive_max_experiment",
    "render_arcs",
    "render_spider",
    "run_all",
    "run_experiment",
    "stabilize",
    "trees_max_experiment",
    "trees_sum_experiment",
    "try_certify",
    "unit_budgets_experiment",
]
