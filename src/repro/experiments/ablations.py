"""Ablations of the engine's design choices.

DESIGN.md calls out two choices worth quantifying:

* **best-response method** — how much optimality do the polynomial
  heuristics give up, and what do they cost? (Theorem 2.1 forces the
  trade-off; this measures it.)
* **Lemma 2.2 shortcut** — how much certification work does the
  paper's sufficient condition save in practice?
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from ..core.best_response import (
    exact_best_response,
    greedy_best_response,
    swap_best_response,
)
from ..core.equilibrium import certify_equilibrium
from ..core.game import BoundedBudgetGame
from ..constructions.existence import construct_equilibrium
from ..graphs.generators import random_budgets_with_sum, random_connected_realization
from .table1 import ExperimentReport

__all__ = ["best_response_quality_experiment", "lemma_shortcut_experiment"]


def best_response_quality_experiment(
    ns: "tuple[int, ...]" = (15, 25),
    budgets_of_interest: "tuple[int, ...]" = (2, 3),
    *,
    trials: int = 5,
    base_seed: int = 13,
) -> ExperimentReport:
    """Exact vs greedy vs swap: optimality gap and candidate counts.

    For random connected instances, computes all three responses for a
    designated player and reports the mean relative cost gap (heuristic
    / exact, SUM version) and evaluation counts.
    """
    report = ExperimentReport(
        experiment_id="ABL-BR",
        title="Ablation: best-response method quality vs cost",
        paper_claim="Thm 2.1: exact is exponential in the budget; heuristics "
        "are polynomial but approximate",
    )
    for n in ns:
        for b in budgets_of_interest:
            gaps_greedy, gaps_swap = [], []
            evals = {"exact": 0, "greedy": 0, "swap": 0}
            for t in range(trials):
                budgets = random_budgets_with_sum(
                    n, int(1.3 * n), seed=base_seed + t, min_budget=1
                )
                budgets[0] = b
                g = random_connected_realization(budgets, seed=base_seed + t)
                ex = exact_best_response(g, 0, "sum")
                gr = greedy_best_response(g, 0, "sum")
                sw = swap_best_response(g, 0, "sum")
                gaps_greedy.append(gr.cost / ex.cost)
                gaps_swap.append(sw.cost / ex.cost)
                evals["exact"] += ex.evaluated
                evals["greedy"] += gr.evaluated
                evals["swap"] += sw.evaluated
            report.rows.append(
                {
                    "n": n,
                    "budget": b,
                    "greedy/exact cost": f"{np.mean(gaps_greedy):.4f}",
                    "swap/exact cost": f"{np.mean(gaps_swap):.4f}",
                    "exact evals": evals["exact"] // trials,
                    "greedy evals": evals["greedy"] // trials,
                    "swap evals": evals["swap"] // trials,
                }
            )
    report.notes.append(
        "gap 1.0000 = heuristic found an optimal response; exact evals grow "
        "as C(n-1, b) while heuristics stay near b*n"
    )
    return report


def lemma_shortcut_experiment(
    sizes: "tuple[int, ...]" = (15, 25, 40),
) -> ExperimentReport:
    """How much certification work Lemma 2.2 saves on the Thm 2.3
    equilibria (whose vertices are designed to satisfy it)."""
    report = ExperimentReport(
        experiment_id="ABL-lemma22",
        title="Ablation: Lemma 2.2 certification shortcut",
        paper_claim="Lemma 2.2: local diameter <= 2 and no brace implies best "
        "response — certification without search",
    )
    rng = np.random.default_rng(3)
    for n in sizes:
        # Budgets capped at 3 so the no-shortcut baseline stays exactly
        # enumerable (C(n-1, 3) subsets per player).
        budgets = rng.integers(0, min(n - 1, 4), size=n)
        graph = construct_equilibrium(budgets).graph
        t0 = time.perf_counter()
        with_lemma = certify_equilibrium(graph, "sum", method="exact", use_lemma=True)
        t1 = time.perf_counter()
        without = certify_equilibrium(graph, "sum", method="exact", use_lemma=False)
        t2 = time.perf_counter()
        assert with_lemma.is_equilibrium == without.is_equilibrium
        via = sum(1 for w in with_lemma.witnesses if w.via_lemma)
        report.rows.append(
            {
                "n": n,
                "players_via_lemma": f"{via}/{n}",
                "evals_with_lemma": with_lemma.total_evaluated,
                "evals_without": without.total_evaluated,
                "time_with_s": f"{t1 - t0:.3f}",
                "time_without_s": f"{t2 - t1:.3f}",
            }
        )
    return report
