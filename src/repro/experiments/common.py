"""Shared machinery for the experiment harness.

Experiments need two recurring operations with honest accounting:

* :func:`stabilize` — drive a realization to a stable profile, using
  exact best responses whenever every player's subset space is small
  enough and falling back to alternating greedy/swap passes otherwise
  (Theorem 2.1 makes exact search exponential in the budget);
* :func:`try_certify` — certify the result, recording *which* notion of
  stability was verified (``"exact"`` = Nash, ``"swap"`` = weak
  equilibrium, per Section 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.costs import Version
from ..core.dynamics import DynamicsResult, best_response_dynamics
from ..core.equilibrium import EquilibriumCertificate, certify_equilibrium
from ..core.game import BoundedBudgetGame
from ..graphs.digraph import OwnedDigraph

__all__ = ["StabilizeOutcome", "exact_is_feasible", "stabilize", "try_certify"]

#: Default cap on per-player candidate subsets for exact search.
DEFAULT_EXACT_CAP = 100_000


def exact_is_feasible(game: BoundedBudgetGame, cap: int = DEFAULT_EXACT_CAP) -> bool:
    """Whether exact best response is affordable for *every* player."""
    n = game.n
    return all(math.comb(n - 1, int(b)) <= cap for b in game.budgets)


@dataclass
class StabilizeOutcome:
    """Result of :func:`stabilize`.

    ``method`` records the strongest move set under which the final
    profile is stable ("exact" or "swap"); ``converged`` is False when
    dynamics hit the round cap or cycled.
    """

    graph: OwnedDigraph
    converged: bool
    cycled: bool
    rounds: int
    method: str


def stabilize(
    game: BoundedBudgetGame,
    graph: OwnedDigraph,
    version: "Version | str",
    *,
    seed: int = 0,
    max_rounds: int = 300,
    exact_cap: int = DEFAULT_EXACT_CAP,
) -> StabilizeOutcome:
    """Run dynamics to a stable profile, strongest affordable move set.

    With small budgets: plain exact best-response dynamics (fixed point
    = certified Nash equilibrium). Otherwise: alternate greedy and swap
    passes until neither finds an improving move (fixed point = weak
    equilibrium that greedy cannot refute).
    """
    version = Version.coerce(version)
    # Process-local distance cache keyed by this graph's instance id:
    # engines and their matrices survive across the alternating passes
    # below, and retired caches' buffers are recycled (or pool-published
    # matrices attached) across sweep tasks of the same size.
    from ..parallel.sweep import shared_distance_cache

    cache = shared_distance_cache(graph)
    if exact_is_feasible(game, exact_cap):
        res = best_response_dynamics(
            game, graph, version, method="exact", max_rounds=max_rounds, seed=seed,
            cache=cache,
        )
        return StabilizeOutcome(
            graph=res.graph,
            converged=res.converged,
            cycled=res.cycled,
            rounds=res.rounds,
            method="exact",
        )
    current = graph
    rounds = 0
    cycled = False
    for _ in range(8):  # alternate passes; each pass is itself iterated
        greedy = best_response_dynamics(
            game, current, version, method="greedy", max_rounds=max_rounds, seed=seed,
            cache=cache,
        )
        rounds += greedy.rounds
        swap = best_response_dynamics(
            game, greedy.graph, version, method="swap", max_rounds=max_rounds, seed=seed,
            cache=cache,
        )
        rounds += swap.rounds
        cycled = cycled or greedy.cycled or swap.cycled
        current = swap.graph
        if greedy.num_moves == 0 and swap.converged and swap.num_moves == 0:
            return StabilizeOutcome(
                graph=current, converged=True, cycled=cycled, rounds=rounds, method="swap"
            )
    return StabilizeOutcome(
        graph=current, converged=False, cycled=cycled, rounds=rounds, method="swap"
    )


def try_certify(
    graph: OwnedDigraph,
    version: "Version | str",
    *,
    exact_cap: int = DEFAULT_EXACT_CAP,
) -> tuple[str, EquilibriumCertificate]:
    """Certify stability with the strongest affordable method.

    Returns ``(method, certificate)`` where ``method`` is ``"exact"``
    (full Nash certification) or ``"swap"`` (weak-equilibrium
    certification) depending on the players' budget sizes.
    """
    game = BoundedBudgetGame(graph.out_degrees())
    if exact_is_feasible(game, exact_cap):
        return "exact", certify_equilibrium(graph, version, method="exact")
    return "swap", certify_equilibrium(graph, version, method="swap")
