"""Graph substrate: ownership-aware digraphs and vectorised algorithms.

Everything the game engine needs from graph theory lives here, built
from scratch on numpy: the :class:`~repro.graphs.digraph.OwnedDigraph`
realization type, CSR adjacencies, frontier-vectorised BFS, distance
aggregates under the paper's ``Cinf`` convention, exact vertex
connectivity, and instance generators.
"""

from .bfs import (
    UNREACHABLE,
    all_pairs_distances,
    bfs_distances,
    bfs_layers,
    bfs_parents,
    distances_from_sources,
    multi_source_bfs,
)
from .connectivity import (
    articulation_points,
    connected_components,
    is_connected,
    is_k_connected,
    local_vertex_connectivity,
    menger_paths,
    num_components,
    vertex_connectivity,
)
from .csr import CSRAdjacency, build_csr, csr_without_vertex
from .digraph import OwnedDigraph
from .engine import DistanceEngine, LazyRowGather
from .query import (
    QueryStats,
    batched_pair_distances,
    multi_source_distances,
    point_to_point,
    single_source_distances,
)
from .weighted_engine import (
    EdgeWeightMap,
    WeightedCSR,
    WeightedDistanceEngine,
    build_weighted_csr,
    weighted_csr_from_csr,
    weighted_csr_without_vertex,
)
from .distances import (
    cinf,
    diameter,
    distance_matrix,
    distance_to_set,
    eccentricities,
    local_diameter,
    pairwise_distance,
    radius,
    sum_distances,
)
from .generators import (
    cycle_realization,
    path_realization,
    random_budgets_with_sum,
    random_connected_realization,
    random_positive_budgets,
    random_realization,
    random_tree_realization,
    star_realization,
    uniform_budgets,
    unit_budgets,
)
from .render import adjacency_table, degree_summary, to_dot
from .properties import (
    distance_to_cycle,
    find_cycle,
    functional_cycle,
    is_forest,
    is_tree,
    is_unicyclic,
    tree_center,
    tree_longest_path,
    unique_cycle,
)

__all__ = [
    "UNREACHABLE",
    "CSRAdjacency",
    "DistanceEngine",
    "EdgeWeightMap",
    "LazyRowGather",
    "OwnedDigraph",
    "QueryStats",
    "WeightedCSR",
    "WeightedDistanceEngine",
    "build_weighted_csr",
    "weighted_csr_from_csr",
    "weighted_csr_without_vertex",
    "adjacency_table",
    "all_pairs_distances",
    "articulation_points",
    "degree_summary",
    "to_dot",
    "bfs_distances",
    "bfs_layers",
    "bfs_parents",
    "build_csr",
    "cinf",
    "connected_components",
    "csr_without_vertex",
    "cycle_realization",
    "diameter",
    "distance_matrix",
    "distance_to_cycle",
    "distance_to_set",
    "distances_from_sources",
    "eccentricities",
    "find_cycle",
    "functional_cycle",
    "is_connected",
    "is_forest",
    "is_k_connected",
    "is_tree",
    "is_unicyclic",
    "local_diameter",
    "local_vertex_connectivity",
    "menger_paths",
    "multi_source_bfs",
    "multi_source_distances",
    "num_components",
    "pairwise_distance",
    "batched_pair_distances",
    "point_to_point",
    "single_source_distances",
    "path_realization",
    "radius",
    "random_budgets_with_sum",
    "random_connected_realization",
    "random_positive_budgets",
    "random_realization",
    "random_tree_realization",
    "star_realization",
    "sum_distances",
    "tree_center",
    "tree_longest_path",
    "uniform_budgets",
    "unique_cycle",
    "unit_budgets",
    "vertex_connectivity",
]
