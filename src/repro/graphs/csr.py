"""Compressed-sparse-row adjacency structures built with numpy.

The whole distance machinery of the library (BFS, eccentricities, the
best-response engine) operates on a plain CSR pair ``(indptr, indices)``
rather than on an object graph: hot loops then reduce to numpy gathers
and reductions, per the vectorisation guidance of the HPC guides.

A CSR adjacency for an *undirected* view stores, for every vertex ``v``,
the sorted, de-duplicated list of neighbours
``indices[indptr[v]:indptr[v + 1]]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError

__all__ = ["CSRAdjacency", "build_csr", "csr_without_vertex", "csr_degree"]


@dataclass(frozen=True)
class CSRAdjacency:
    """Immutable CSR adjacency of an undirected graph on ``n`` vertices.

    Attributes
    ----------
    n:
        Number of vertices.
    indptr:
        ``int64`` array of length ``n + 1``; row ``v`` spans
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of neighbour ids, sorted within each row.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Number of distinct neighbours of ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Vector of distinct-neighbour counts for all vertices."""
        return np.diff(self.indptr)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.indices.size) // 2

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)


def build_csr(n: int, heads: np.ndarray, tails: np.ndarray) -> CSRAdjacency:
    """Build an undirected CSR adjacency from arc endpoint arrays.

    Each pair ``(heads[i], tails[i])`` contributes the undirected edge
    ``{heads[i], tails[i]}``. Parallel arcs (braces) collapse to a single
    undirected edge — for shortest-path purposes a brace behaves exactly
    like a single edge of length 1, matching the paper's distance
    semantics on ``U(G)``.

    Parameters
    ----------
    n:
        Number of vertices.
    heads, tails:
        Equal-length integer arrays of arc endpoints in ``[0, n)``.
    """
    heads = np.asarray(heads, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    if heads.shape != tails.shape or heads.ndim != 1:
        raise GraphError("heads and tails must be 1-D arrays of equal length")
    if heads.size:
        lo = min(heads.min(), tails.min())
        hi = max(heads.max(), tails.max())
        if lo < 0 or hi >= n:
            raise GraphError(f"arc endpoint out of range [0, {n}): saw [{lo}, {hi}]")
        if np.any(heads == tails):
            raise GraphError("self-loops are not allowed in a realization")
    # Symmetrise, then sort by (row, col) and de-duplicate.
    rows = np.concatenate([heads, tails])
    cols = np.concatenate([tails, heads])
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    if rows.size:
        keep = np.empty(rows.size, dtype=bool)
        keep[0] = True
        np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=keep[1:])
        rows = rows[keep]
        cols = cols[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRAdjacency(n=n, indptr=indptr, indices=cols)


def csr_without_vertex(csr: CSRAdjacency, u: int) -> CSRAdjacency:
    """CSR of the same vertex set with ``u`` isolated (all its edges gone).

    Keeping the index space unchanged (rather than renumbering ``n - 1``
    vertices) lets the best-response engine address distance rows by the
    original vertex ids.
    """
    if not 0 <= u < csr.n:
        raise GraphError(f"vertex {u} out of range [0, {csr.n})")
    mask = csr.indices != u
    # Also empty u's own row.
    row_of = np.repeat(np.arange(csr.n, dtype=np.int64), np.diff(csr.indptr))
    mask &= row_of != u
    new_indices = csr.indices[mask]
    counts = np.zeros(csr.n + 1, dtype=np.int64)
    np.add.at(counts, row_of[mask] + 1, 1)
    np.cumsum(counts, out=counts)
    return CSRAdjacency(n=csr.n, indptr=counts, indices=new_indices)


def csr_degree(csr: CSRAdjacency) -> np.ndarray:
    """Alias for :meth:`CSRAdjacency.degrees` kept for API symmetry."""
    return csr.degrees()
