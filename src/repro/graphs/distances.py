"""Distance aggregates with the paper's ``Cinf = n^2`` convention.

The paper replaces infinite distances between components with the large
finite constant ``Cinf = n^2`` so that players are incentivised to
reconnect the network; the MAX version adds a further ``(kappa - 1) n^2``
penalty. This module is the single place where that convention is
applied; the raw BFS kernels report ``UNREACHABLE`` sentinels.
"""

from __future__ import annotations

import numpy as np

from ..errors import VertexError
from .bfs import UNREACHABLE, all_pairs_distances
from .csr import CSRAdjacency
from .digraph import OwnedDigraph
from .query import multi_source_distances, point_to_point, single_source_distances

__all__ = [
    "cinf",
    "distance_matrix",
    "eccentricities",
    "diameter",
    "radius",
    "sum_distances",
    "distance_to_set",
    "pairwise_distance",
    "local_diameter",
]


def cinf(n: int) -> int:
    """The paper's disconnection constant ``Cinf = n^2``."""
    return n * n


def _as_csr(graph: OwnedDigraph | CSRAdjacency) -> CSRAdjacency:
    if isinstance(graph, OwnedDigraph):
        return graph.undirected_csr()
    return graph


def distance_matrix(
    graph: OwnedDigraph | CSRAdjacency, *, apply_cinf: bool = True
) -> np.ndarray:
    """All-pairs distance matrix of ``U(G)``.

    With ``apply_cinf=True`` (the default) unreachable pairs get the
    paper's ``Cinf = n^2``; otherwise they keep the ``UNREACHABLE``
    sentinel (−1).
    """
    csr = _as_csr(graph)
    dist = all_pairs_distances(csr)
    if apply_cinf:
        dist[dist == UNREACHABLE] = cinf(csr.n)
    return dist


def eccentricities(graph: OwnedDigraph | CSRAdjacency) -> np.ndarray:
    """Per-vertex eccentricity (the paper's *local diameter*).

    In a disconnected graph every vertex has local diameter ``Cinf``,
    exactly as the paper stipulates.
    """
    dist = distance_matrix(graph, apply_cinf=True)
    if dist.shape[0] == 1:
        return np.zeros(1, dtype=np.int64)
    return dist.max(axis=1)


def local_diameter(graph: OwnedDigraph | CSRAdjacency, u: int) -> int:
    """Eccentricity of a single vertex ``u`` under the ``Cinf`` convention."""
    csr = _as_csr(graph)
    if not 0 <= u < csr.n:
        raise VertexError(u, csr.n)
    if csr.n == 1:
        # Early-return *before* the sweep, so all three single-call
        # helpers share one ordering (validate, trivial case, sweep,
        # remap) and none pays a BFS it will discard.
        return 0
    d = single_source_distances(csr, u, inf=cinf(csr.n))
    return int(d.max())


def diameter(graph: OwnedDigraph | CSRAdjacency) -> int:
    """Diameter of ``U(G)``: ``Cinf`` if disconnected, else the usual max.

    This is the paper's *social cost* of a strategy profile.
    """
    ecc = eccentricities(graph)
    return int(ecc.max()) if ecc.size else 0


def radius(graph: OwnedDigraph | CSRAdjacency) -> int:
    """Radius of ``U(G)`` (min eccentricity, ``Cinf`` if disconnected)."""
    ecc = eccentricities(graph)
    return int(ecc.min()) if ecc.size else 0


def sum_distances(graph: OwnedDigraph | CSRAdjacency) -> np.ndarray:
    """Per-vertex sum of distances to all other vertices (SUM cost core).

    Cross-component pairs contribute ``Cinf`` each.
    """
    dist = distance_matrix(graph, apply_cinf=True)
    return dist.sum(axis=1)


def pairwise_distance(graph: OwnedDigraph | CSRAdjacency, u: int, v: int) -> int:
    """Distance between ``u`` and ``v`` (``Cinf`` across components).

    Answered by one bounded bidirectional search — a single pair never
    pays for a full single-source sweep.
    """
    csr = _as_csr(graph)
    return point_to_point(csr, u, v, inf=cinf(csr.n))


def distance_to_set(
    graph: OwnedDigraph | CSRAdjacency, targets: np.ndarray | list[int]
) -> np.ndarray:
    """``dist(v, A) = min_{a in A} dist(v, a)`` for every vertex ``v``.

    Matches the paper's ``dist(u, A)`` notation; unreachable vertices get
    ``Cinf``.
    """
    csr = _as_csr(graph)
    return multi_source_distances(csr, targets, inf=cinf(csr.n))
