"""Structural predicates and extractors used by the structure theorems.

Section 4 of the paper proves that all-unit-budget equilibria are
*unicyclic* (connected, exactly one cycle) with short cycles and shallow
attachments; Section 3 works with equilibrium *trees*. This module
provides the predicates and witnesses those checks need: tree/forest
tests, unique-cycle extraction, distance-to-cycle statistics, and the
longest path of a tree.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .bfs import UNREACHABLE, bfs_distances, bfs_parents, multi_source_bfs
from .connectivity import connected_components, is_connected
from .csr import CSRAdjacency
from .digraph import OwnedDigraph

__all__ = [
    "is_tree",
    "is_forest",
    "is_unicyclic",
    "find_cycle",
    "unique_cycle",
    "distance_to_cycle",
    "tree_longest_path",
    "tree_center",
    "functional_cycle",
]


def _as_csr(graph: OwnedDigraph | CSRAdjacency) -> CSRAdjacency:
    if isinstance(graph, OwnedDigraph):
        return graph.undirected_csr()
    return graph


def _num_undirected_edges(graph: OwnedDigraph | CSRAdjacency) -> int:
    """Number of edges of ``U(G)``, counting a brace as *two* edges.

    The paper views a brace as a 2-vertex cycle of the underlying
    multigraph, which matters for the tree/unicyclic predicates: a graph
    consisting of one brace is unicyclic, not a tree.
    """
    if isinstance(graph, OwnedDigraph):
        return graph.num_arcs
    return graph.num_edges


def is_forest(graph: OwnedDigraph | CSRAdjacency) -> bool:
    """Whether ``U(G)`` (as a multigraph: braces = 2-cycles) is acyclic."""
    csr = _as_csr(graph)
    labels, k = connected_components(csr)
    return _num_undirected_edges(graph) == csr.n - k


def is_tree(graph: OwnedDigraph | CSRAdjacency) -> bool:
    """Whether ``U(G)`` is a tree (connected and acyclic, no braces)."""
    return is_connected(graph) and is_forest(graph)


def is_unicyclic(graph: OwnedDigraph | CSRAdjacency) -> bool:
    """Connected with exactly one cycle: ``m = n`` in multigraph count."""
    return is_connected(graph) and _num_undirected_edges(graph) == _as_csr(graph).n


def functional_cycle(graph: OwnedDigraph) -> list[int]:
    """The unique directed cycle of a functional graph (all out-degrees 1).

    Every ``(1, ..., 1)``-BG realization is a functional graph; each of
    its weakly-connected components contains exactly one directed cycle.
    Returns the cycle of the component of vertex 0... — no: returns the
    directed cycle reached from vertex 0 by following owned arcs.
    """
    if (graph.out_degrees() != 1).any():
        raise GraphError("functional_cycle requires every out-degree to be exactly 1")
    seen: dict[int, int] = {}
    v = 0
    step = 0
    while v not in seen:
        seen[v] = step
        v = int(graph.out_neighbors(v)[0])
        step += 1
    start = seen[v]
    cycle = [u for u, s in seen.items() if s >= start]
    cycle.sort(key=lambda u: seen[u])
    return cycle


def find_cycle(graph: OwnedDigraph | CSRAdjacency) -> list[int] | None:
    """Some cycle of the underlying multigraph, or ``None`` if a forest.

    Braces are reported as 2-cycles ``[u, v]``. For simple cycles the
    vertex list is in traversal order (closing edge implied).
    """
    if isinstance(graph, OwnedDigraph):
        braces = graph.braces()
        if braces:
            return list(braces[0])
    csr = _as_csr(graph)
    n = csr.n
    color = np.zeros(n, dtype=np.int8)  # 0 white, 1 on stack, 2 done
    parent = np.full(n, -1, dtype=np.int64)
    for root in range(n):
        if color[root]:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            v, i = stack[-1]
            row = csr.neighbors(v)
            if i < row.size:
                stack[-1] = (v, i + 1)
                w = int(row[i])
                if w == parent[v]:
                    # Skip the tree edge back to the parent. Parallel edges
                    # were deduplicated in the CSR, and the brace case was
                    # handled above, so this edge is traversed exactly once.
                    continue
                if color[w] == 1:
                    # Back edge: unwind the cycle v -> ... -> w.
                    cycle = [v]
                    x = v
                    while x != w:
                        x = int(parent[x])
                        cycle.append(x)
                    cycle.reverse()
                    return cycle
                if color[w] == 0:
                    parent[w] = v
                    color[w] = 1
                    stack.append((w, 0))
            else:
                color[v] = 2
                stack.pop()
    return None


def unique_cycle(graph: OwnedDigraph | CSRAdjacency) -> list[int]:
    """The unique cycle of a unicyclic graph (error if not unicyclic)."""
    if not is_unicyclic(graph):
        raise GraphError("graph is not unicyclic")
    cyc = find_cycle(graph)
    assert cyc is not None  # unicyclic graphs have a cycle
    return cyc


def distance_to_cycle(graph: OwnedDigraph | CSRAdjacency) -> np.ndarray:
    """Per-vertex distance to the unique cycle of a unicyclic graph.

    Theorem 4.1 (SUM) bounds this by 1 and Theorem 4.2 (MAX) by 2 for
    all-unit-budget equilibria.
    """
    csr = _as_csr(graph)
    cyc = np.asarray(unique_cycle(graph), dtype=np.int64)
    d = multi_source_bfs(csr, cyc)
    if (d == UNREACHABLE).any():  # pragma: no cover - unicyclic => connected
        raise GraphError("unicyclic graph must be connected")
    return d


def tree_longest_path(graph: OwnedDigraph | CSRAdjacency) -> list[int]:
    """A longest path (diameter path) of a tree, by double BFS.

    Returns the vertex sequence ``v_0 v_1 ... v_d``. The classic two-sweep
    argument is exact on trees.
    """
    if not is_tree(graph):
        raise GraphError("tree_longest_path requires a tree")
    csr = _as_csr(graph)
    d0 = bfs_distances(csr, 0)
    a = int(d0.argmax())
    dist, parent = bfs_parents(csr, a)
    b = int(dist.argmax())
    path = [b]
    while path[-1] != a:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path


def tree_center(graph: OwnedDigraph | CSRAdjacency) -> list[int]:
    """The 1- or 2-vertex center of a tree (middle of a diameter path)."""
    path = tree_longest_path(graph)
    d = len(path) - 1
    if d % 2 == 0:
        return [path[d // 2]]
    return [path[d // 2], path[d // 2 + 1]]
