"""Ownership-aware directed graphs (realizations of the game).

A realization of a bounded budget network creation game is a directed
graph ``G`` on players ``0 .. n-1`` in which the arc ``u -> v`` means
"player ``u`` spent one unit of budget on a link to ``v``". Distances,
and therefore all costs, are measured in the *undirected underlying
graph* ``U(G)``; a pair of anti-parallel arcs (a **brace**) is a
2-vertex cycle of ``U(G)`` but is metrically equivalent to a single
edge.

:class:`OwnedDigraph` stores the out-set of every vertex and lazily
materialises (and caches) the undirected CSR adjacency used by the BFS
kernels. Mutations invalidate the cache.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ArcError, GraphError, VertexError
from .csr import CSRAdjacency, build_csr, csr_without_vertex

__all__ = ["OwnedDigraph"]


class OwnedDigraph:
    """Directed graph with arc ownership, the realization of a game.

    Parameters
    ----------
    n:
        Number of vertices (players).

    Notes
    -----
    * Self-loops are forbidden (a player may not link to itself).
    * At most one arc ``u -> v`` may exist for a given ordered pair; the
      reverse arc ``v -> u`` may coexist, forming a *brace*.
    """

    __slots__ = (
        "_n",
        "_out",
        "_csr_cache",
        "_csr_without_cache",
        "_revision",
        "_instance_id",
    )

    #: Process-wide monotonic source of :attr:`instance_id` values. Ids
    #: are never reused (unlike ``id()``, which the allocator recycles),
    #: so an id observed once always denotes the same graph object.
    _INSTANCE_COUNTER = itertools.count()

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise GraphError(f"graph needs at least one vertex, got n={n}")
        self._n = int(n)
        self._out: list[set[int]] = [set() for _ in range(self._n)]
        self._csr_cache: CSRAdjacency | None = None
        self._csr_without_cache: dict[int, CSRAdjacency] = {}
        self._revision = 0
        self._instance_id = next(OwnedDigraph._INSTANCE_COUNTER)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_strategies(
        cls, strategies: Sequence[Iterable[int]], n: int | None = None
    ) -> "OwnedDigraph":
        """Build a realization from per-player out-neighbour sets."""
        if n is None:
            n = len(strategies)
        if len(strategies) != n:
            raise GraphError(f"expected {n} strategies, got {len(strategies)}")
        g = cls(n)
        for u, targets in enumerate(strategies):
            for v in targets:
                g.add_arc(u, int(v))
        return g

    @classmethod
    def from_arcs(cls, n: int, arcs: Iterable[tuple[int, int]]) -> "OwnedDigraph":
        """Build a realization from an iterable of ``(owner, target)`` arcs."""
        g = cls(n)
        for u, v in arcs:
            g.add_arc(int(u), int(v))
        return g

    def copy(self) -> "OwnedDigraph":
        """Deep copy (cache is not carried over)."""
        g = OwnedDigraph(self._n)
        g._out = [set(s) for s in self._out]
        return g

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def revision(self) -> int:
        """Mutation counter, bumped on every arc/strategy change.

        Distance caches key their coherence checks on this: equal
        revisions guarantee the graph is unchanged since the cache last
        synced, so the (cheap but not free) CSR diff can be skipped.
        """
        return self._revision

    @property
    def instance_id(self) -> int:
        """Process-unique identity of this graph object, never reused.

        ``(instance_id, revision)`` identifies one graph *state*:
        distance pools and per-process caches key on it so two distinct
        same-size instances can never alias each other's engines, while
        a graph mutated and rolled back still reads as the same state.
        A :meth:`copy` is a new instance and gets a fresh id.
        """
        return self._instance_id

    @property
    def num_arcs(self) -> int:
        """Total number of owned arcs (= sum of player budgets in use)."""
        return sum(len(s) for s in self._out)

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise VertexError(v, self._n)

    def has_arc(self, u: int, v: int) -> bool:
        """Whether the owned arc ``u -> v`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._out[u]

    def out_neighbors(self, u: int) -> np.ndarray:
        """Sorted array of targets of arcs owned by ``u``."""
        self._check_vertex(u)
        return np.fromiter(sorted(self._out[u]), dtype=np.int64, count=len(self._out[u]))

    def strategy(self, u: int) -> frozenset[int]:
        """The strategy of player ``u`` as an immutable set."""
        self._check_vertex(u)
        return frozenset(self._out[u])

    def strategies(self) -> list[frozenset[int]]:
        """All player strategies."""
        return [frozenset(s) for s in self._out]

    def out_degree(self, u: int) -> int:
        """Number of arcs owned by ``u`` (its budget in use)."""
        self._check_vertex(u)
        return len(self._out[u])

    def out_degrees(self) -> np.ndarray:
        """Vector of owned-arc counts (the effective budget vector)."""
        return np.fromiter((len(s) for s in self._out), dtype=np.int64, count=self._n)

    def in_neighbors(self, u: int) -> np.ndarray:
        """Sorted array of owners of arcs pointing *to* ``u``.

        O(n + m); the best-response engine calls this once per player and
        the cost is dwarfed by the all-pairs BFS it accompanies.
        """
        self._check_vertex(u)
        owners = [w for w in range(self._n) if u in self._out[w]]
        return np.asarray(owners, dtype=np.int64)

    def in_neighbor_lists(self) -> "list[np.ndarray]":
        """In-neighbour arrays for *all* vertices in one O(n + m) pass.

        ``result[u]`` equals :meth:`in_neighbors(u) <in_neighbors>`;
        sweep-style consumers (one environment per player per round)
        use this to avoid the per-player O(n) owner scan.
        """
        owners: "list[list[int]]" = [[] for _ in range(self._n)]
        for w in range(self._n):
            for v in self._out[w]:
                owners[v].append(w)
        return [np.asarray(lst, dtype=np.int64) for lst in owners]

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted array of undirected neighbours of ``u`` in ``U(G)``."""
        self._check_vertex(u)
        both = set(self._out[u])
        both.update(int(w) for w in self.in_neighbors(u))
        return np.fromiter(sorted(both), dtype=np.int64, count=len(both))

    def degree(self, u: int) -> int:
        """Undirected degree of ``u`` in ``U(G)`` (braces count once)."""
        return int(self.neighbors(u).size)

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Iterate over owned arcs as ``(owner, target)`` pairs."""
        for u, targets in enumerate(self._out):
            for v in sorted(targets):
                yield (u, v)

    def braces(self) -> list[tuple[int, int]]:
        """All braces (anti-parallel arc pairs) as ``(u, v)`` with ``u < v``."""
        found = []
        for u, targets in enumerate(self._out):
            for v in targets:
                if v > u and u in self._out[v]:
                    found.append((u, v))
        return found

    def underlying_edges(self) -> list[tuple[int, int]]:
        """Distinct undirected edges of ``U(G)`` as ``(min, max)`` pairs."""
        edges = set()
        for u, targets in enumerate(self._out):
            for v in targets:
                edges.add((min(u, v), max(u, v)))
        return sorted(edges)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._csr_cache = None
        self._csr_without_cache.clear()
        self._revision += 1

    def add_arc(self, u: int, v: int) -> None:
        """Add the owned arc ``u -> v``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ArcError(f"self-loop {u} -> {v} is not allowed")
        if v in self._out[u]:
            raise ArcError(f"arc {u} -> {v} already exists")
        self._out[u].add(v)
        self._invalidate()

    def remove_arc(self, u: int, v: int) -> None:
        """Remove the owned arc ``u -> v``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._out[u]:
            raise ArcError(f"arc {u} -> {v} does not exist")
        self._out[u].discard(v)
        self._invalidate()

    def set_strategy(self, u: int, targets: Iterable[int]) -> None:
        """Replace the whole out-set of player ``u``."""
        self._check_vertex(u)
        new = set()
        for v in targets:
            v = int(v)
            self._check_vertex(v)
            if v == u:
                raise ArcError(f"self-loop {u} -> {v} is not allowed")
            if v in new:
                raise ArcError(f"duplicate target {v} in strategy of {u}")
            new.add(v)
        self._out[u] = new
        self._invalidate()

    # ------------------------------------------------------------------
    # Undirected views
    # ------------------------------------------------------------------
    def _arc_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        heads = []
        tails = []
        for u, targets in enumerate(self._out):
            heads.extend([u] * len(targets))
            tails.extend(targets)
        return (
            np.asarray(heads, dtype=np.int64),
            np.asarray(tails, dtype=np.int64),
        )

    def undirected_csr(self) -> CSRAdjacency:
        """Cached CSR adjacency of the underlying undirected graph."""
        if self._csr_cache is None:
            heads, tails = self._arc_arrays()
            self._csr_cache = build_csr(self._n, heads, tails)
        return self._csr_cache

    def undirected_csr_without(self, u: int) -> CSRAdjacency:
        """Cached CSR of ``U(G)`` with vertex ``u`` isolated.

        This is the fixed substrate against which all candidate
        strategies of player ``u`` are evaluated (a shortest path from
        ``u`` never revisits ``u``).
        """
        self._check_vertex(u)
        cached = self._csr_without_cache.get(u)
        if cached is None:
            cached = csr_without_vertex(self.undirected_csr(), u)
            self._csr_without_cache[u] = cached
        return cached

    # ------------------------------------------------------------------
    # Interop and misc
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to ``networkx.DiGraph`` (test oracle / visualisation)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.arcs())
        return g

    def profile_key(self) -> tuple[tuple[int, ...], ...]:
        """Hashable canonical form of the strategy profile.

        Used by the dynamics engine to detect best-response cycles.
        """
        return tuple(tuple(sorted(s)) for s in self._out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OwnedDigraph):
            return NotImplemented
        return self._n == other._n and self._out == other._out

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key in hot paths
        return hash(self.profile_key())

    def __repr__(self) -> str:
        return f"OwnedDigraph(n={self._n}, arcs={self.num_arcs})"
