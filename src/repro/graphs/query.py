"""Forward-backward bidirectional point-to-point distance queries.

The engines in :mod:`repro.graphs.engine` and
:mod:`repro.graphs.weighted_engine` answer reads from a maintained
all-pairs matrix — the right shape for batch best-response sweeps, but
a single ``(u, v)`` verdict (a swap check, a Lemma 2.2 screen, one PoA
probe) does not need ``n`` rows of state. This module is the query tier
beneath them: a Wilson–Zwick style forward-backward search that grows a
ball around ``u`` and a ball around ``v`` in alternation and stops with
the standard meet-in-the-middle rule, settling a small fraction of the
graph on sparse instances instead of sweeping all of it.

Two paths share the public entry point :func:`point_to_point`:

* a **unit-BFS fast path** — level-synchronous frontier expansion on
  each side, always expanding the smaller frontier; and
* a **Dial-bucket weighted path** — bidirectional Dijkstra with the
  same heap-free bucket queues as the weighted engine's batched kernel,
  taken only when some edge length exceeds 1 (an all-unit
  :class:`~repro.graphs.weighted_engine.WeightedCSR` degenerates to the
  BFS path bit-identically).

Answers follow the engines' sentinel convention exactly: reachable
pairs return the true distance, unreachable pairs return ``inf`` (the
paper's ``Cinf = n^2`` by default), so a kernel answer is bit-identical
to the corresponding full-matrix entry.

Correctness of the stopping rule: per side, labels are exact when
assigned (BFS levels / settled Dijkstra labels), and a meet candidate
``d_f(x) + d_b(x)`` is recorded whenever a vertex acquires (or
improves) its second label — an upper bound realised by an actual
``u``-``x``-``v`` walk. Once the explored radii satisfy ``r_f + r_b >=
best``, some vertex on a true shortest path is doubly labelled, so
``best`` already equals the true distance and the search stops.

:func:`single_source_distances` / :func:`multi_source_distances` wrap
the full one-sided sweeps under the same sentinel convention — the
single place the aggregate helpers in :mod:`repro.graphs.distances`
route through, so the ``Cinf`` remap ordering is uniform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError, VertexError
from .bfs import UNREACHABLE, bfs_distances, multi_source_bfs
from .csr import CSRAdjacency

__all__ = [
    "QueryStats",
    "point_to_point",
    "batched_pair_distances",
    "single_source_distances",
    "multi_source_distances",
]


@dataclass
class QueryStats:
    """Work counters of one bidirectional query (for benchmarks/tests).

    ``settled`` counts the labels assigned across both search balls; on
    a graph of ``n`` vertices ``settled / n`` is the fraction of the
    graph the query had to explore (it can exceed 1 only in the rare
    case that both balls label almost every vertex).
    """

    settled: int = 0

    def fraction_settled(self, n: int) -> float:
        """``settled`` as a fraction of ``n`` labels (one ball's worth)."""
        return self.settled / max(1, n)


def _default_inf(substrate) -> int:
    """The engines' default sentinel for this substrate.

    ``Cinf = n^2`` for unit adjacencies; weighted substrates widen it to
    exceed the largest finite distance ``(n - 1) * w_max``, exactly like
    :class:`~repro.graphs.weighted_engine.WeightedDistanceEngine`.
    """
    n = substrate.n
    weights = getattr(substrate, "weights", None)
    if weights is None:
        return n * n
    w_max = substrate.max_weight()
    return max(n * n, (n - 1) * w_max + 1)


def _frontier_neighbors(
    indptr: np.ndarray, indices: np.ndarray, verts: np.ndarray
) -> np.ndarray:
    """Concatenated neighbour ids of every vertex in ``verts``."""
    starts = indptr[verts]
    counts = indptr[verts + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    offsets = np.repeat(starts - (cum - counts), counts) + np.arange(
        total, dtype=np.int64
    )
    return indices[offsets]


def _bidirectional_unit(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    u: int,
    v: int,
    inf: int,
    stats: "QueryStats | None",
) -> int:
    """Alternating bidirectional BFS; returns the distance or ``inf``."""
    dist_f = np.full(n, -1, dtype=np.int64)
    dist_b = np.full(n, -1, dtype=np.int64)
    dist_f[u] = 0
    dist_b[v] = 0
    frontier_f = np.asarray([u], dtype=np.int64)
    frontier_b = np.asarray([v], dtype=np.int64)
    radius_f = 0
    radius_b = 0
    best = int(inf)
    if stats is not None:
        stats.settled += 2
    while frontier_f.size and frontier_b.size and radius_f + radius_b < best:
        # Expand the smaller ball: balanced radii settle ~2 * b^(L/2)
        # labels where one-sided BFS settles b^L.
        forward = frontier_f.size <= frontier_b.size
        dist, other = (dist_f, dist_b) if forward else (dist_b, dist_f)
        frontier = frontier_f if forward else frontier_b
        nbrs = _frontier_neighbors(indptr, indices, frontier)
        fresh = nbrs[dist[nbrs] < 0]
        if fresh.size > 1:
            fresh = np.unique(fresh)
        if forward:
            radius_f += 1
            level = radius_f
        else:
            radius_b += 1
            level = radius_b
        dist[fresh] = level
        if stats is not None:
            stats.settled += int(fresh.size)
        met = fresh[other[fresh] >= 0]
        if met.size:
            cand = level + int(other[met].min())
            if cand < best:
                best = cand
        if forward:
            frontier_f = fresh
        else:
            frontier_b = fresh
    return best


def _pop_bucket(
    buckets: "dict[int, list[np.ndarray]]",
    label: int,
    dist: np.ndarray,
    settled: np.ndarray,
) -> np.ndarray:
    """Live (still-current, unsettled) vertices of bucket ``label``."""
    idx = np.concatenate(buckets.pop(label))
    idx = idx[(dist[idx] == label) & ~settled[idx]]
    if idx.size > 1:
        idx = np.unique(idx)
    return idx


def _bidirectional_weighted(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    n: int,
    u: int,
    v: int,
    inf: int,
    stats: "QueryStats | None",
) -> int:
    """Bidirectional Dial-bucket Dijkstra; returns the distance or ``inf``."""
    dist_f = np.full(n, inf, dtype=np.int64)
    dist_b = np.full(n, inf, dtype=np.int64)
    settled_f = np.zeros(n, dtype=bool)
    settled_b = np.zeros(n, dtype=bool)
    dist_f[u] = 0
    dist_b[v] = 0
    buckets_f: "dict[int, list[np.ndarray]]" = {0: [np.asarray([u], dtype=np.int64)]}
    buckets_b: "dict[int, list[np.ndarray]]" = {0: [np.asarray([v], dtype=np.int64)]}
    best = int(inf)
    while buckets_f and buckets_b:
        top_f = min(buckets_f)
        top_b = min(buckets_b)
        # Stale queue entries can only make a top an under-estimate,
        # which delays the stop by one empty pop — never a wrong answer.
        if top_f + top_b >= best:
            break
        forward = top_f <= top_b
        if forward:
            label, dist, other = top_f, dist_f, dist_b
            settled, buckets = settled_f, buckets_f
        else:
            label, dist, other = top_b, dist_b, dist_f
            settled, buckets = settled_b, buckets_b
        front = _pop_bucket(buckets, label, dist, settled)
        if front.size == 0:
            continue
        settled[front] = True
        if stats is not None:
            stats.settled += int(front.size)
        starts = indptr[front]
        counts = indptr[front + 1] - starts
        total = int(counts.sum())
        if total == 0:
            continue
        cum = np.cumsum(counts)
        offsets = np.repeat(starts - (cum - counts), counts) + np.arange(
            total, dtype=np.int64
        )
        nbrs = indices[offsets]
        nd = label + weights[offsets].astype(np.int64)
        improve = (nd < dist[nbrs]) & ~settled[nbrs]
        nbrs = nbrs[improve]
        if nbrs.size == 0:
            continue
        np.minimum.at(dist, nbrs, nd[improve])
        if nbrs.size > 1:
            nbrs = np.unique(nbrs)
        labels = dist[nbrs]
        order = np.argsort(labels, kind="stable")
        labels = labels[order]
        pushed = nbrs[order]
        cuts = np.flatnonzero(labels[1:] != labels[:-1]) + 1
        vals = labels[np.concatenate([[0], cuts])] if cuts.size else labels[:1]
        for val, seg in zip(vals, np.split(pushed, cuts)):
            buckets.setdefault(int(val), []).append(seg)
        # Meet rule: a vertex that just acquired (or improved) its
        # second label witnesses a real u-x-v walk.
        met = nbrs[other[nbrs] < inf]
        if met.size:
            cand = int((dist[met] + other[met]).min())
            if cand < best:
                best = cand
    return best


def point_to_point(
    substrate: "CSRAdjacency | object",
    u: int,
    v: int,
    *,
    inf: "int | None" = None,
    stats: "QueryStats | None" = None,
) -> int:
    """Distance ``u`` to ``v`` by bidirectional search; ``inf`` if apart.

    ``substrate`` is a :class:`~repro.graphs.csr.CSRAdjacency` or a
    :class:`~repro.graphs.weighted_engine.WeightedCSR`, assumed
    *symmetric* (an undirected ``U(G)``, as everywhere in this stack) —
    the backward ball expands over the same arcs. All-unit weighted
    substrates take the BFS fast path and are bit-identical to the Dial
    path. The return value matches the corresponding engine
    matrix entry exactly (``inf``-sentinel convention, defaulting to the
    engine defaults for the substrate). Pass a :class:`QueryStats` to
    observe how much of the graph the query settled.
    """
    n = substrate.n
    if not 0 <= u < n:
        raise VertexError(u, n)
    if not 0 <= v < n:
        raise VertexError(v, n)
    if inf is None:
        inf = _default_inf(substrate)
    if u == v:
        return 0
    weights = getattr(substrate, "weights", None)
    if weights is None or substrate.max_weight() == 1:
        return _bidirectional_unit(
            substrate.indptr, substrate.indices, n, u, v, int(inf), stats
        )
    return _bidirectional_weighted(
        substrate.indptr, substrate.indices, weights, n, u, v, int(inf), stats
    )


def batched_pair_distances(
    substrate: "CSRAdjacency | object",
    pairs: "np.ndarray | Sequence[tuple[int, int]]",
    *,
    inf: "int | None" = None,
    stats: "QueryStats | None" = None,
) -> np.ndarray:
    """Distances for many ``(u, v)`` pairs — one batched sweep, not k.

    The multi-pair sibling of :func:`point_to_point`, built for the
    serve layer's micro-batching dispatcher: a singleton batch routes
    through the bidirectional point kernel, while ``k >= 2`` pairs are
    grouped by their smaller endpoint side and answered by **one**
    flat-frontier multi-source sweep (the engines' batched BFS kernel)
    over the distinct sources — the per-level numpy gathers are shared
    across every source in flight, so ten concurrent verdicts cost one
    sweep, not ten searches. Weighted substrates batch through the
    Dial-bucket kernel instead.

    Returns an ``int64`` array with ``out[i] = dist(pairs[i])`` under
    the same ``inf``-sentinel convention as :func:`point_to_point` —
    every entry is bit-identical to the corresponding single-pair call
    (and hence to the full-matrix entry). ``stats.settled`` counts the
    labels the sweep assigned (``n`` per distinct source).
    """
    p = np.asarray(pairs, dtype=np.int64)
    if p.ndim != 2 or p.shape[1] != 2:
        raise GraphError(
            f"pairs must be a (k, 2) array of (u, v) endpoints, "
            f"got shape {p.shape}"
        )
    n = substrate.n
    if p.size and (p.min() < 0 or p.max() >= n):
        bad = int(p.min()) if p.min() < 0 else int(p.max())
        raise VertexError(bad, n)
    if inf is None:
        inf = _default_inf(substrate)
    k = p.shape[0]
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if k == 1:
        return np.asarray(
            [point_to_point(substrate, int(p[0, 0]), int(p[0, 1]), inf=inf, stats=stats)],
            dtype=np.int64,
        )
    # The substrate is symmetric, so sweep from whichever endpoint side
    # has fewer distinct vertices (dist(u, v) == dist(v, u)).
    src_u, inv_u = np.unique(p[:, 0], return_inverse=True)
    src_v, inv_v = np.unique(p[:, 1], return_inverse=True)
    if src_v.size < src_u.size:
        sources, inv, targets = src_v, inv_v, p[:, 0]
    else:
        sources, inv, targets = src_u, inv_u, p[:, 1]
    weights = getattr(substrate, "weights", None)
    if weights is None or substrate.max_weight() == 1:
        from .engine import _bfs_flat_frontier

        rows = np.full((sources.size, n), int(inf), dtype=np.int64)
        _bfs_flat_frontier(
            substrate.indptr,
            substrate.indices,
            n,
            int(inf),
            rows.reshape(-1),
            np.arange(sources.size, dtype=np.int64),
            sources,
        )
    else:
        from .weighted_engine import WeightedDistanceEngine

        engine = WeightedDistanceEngine(substrate, rows="lazy")
        rows = engine.distances_from(sources).astype(np.int64)
        if engine.inf != inf:
            rows[rows >= engine.inf] = int(inf)
    if stats is not None:
        stats.settled += int(sources.size) * n
    return rows[inv, targets]


def single_source_distances(
    csr: CSRAdjacency, s: int, *, inf: "int | None" = None
) -> np.ndarray:
    """One full BFS sweep from ``s`` under the ``inf``-sentinel convention.

    The one-sided degeneration of the kernel, shared by the aggregate
    helpers so unreachable entries are remapped in exactly one place.
    """
    if not 0 <= s < csr.n:
        raise VertexError(s, csr.n)
    d = bfs_distances(csr, s)
    d[d == UNREACHABLE] = csr.n * csr.n if inf is None else int(inf)
    return d


def multi_source_distances(
    csr: CSRAdjacency,
    targets: "np.ndarray | list[int]",
    *,
    inf: "int | None" = None,
) -> np.ndarray:
    """``min_a dist(v, a)`` for every ``v``, ``inf``-sentinel convention.

    The backward (multi-source) half of the bidirectional kernel run to
    exhaustion — what a set-target query degenerates to when every
    vertex needs an answer.
    """
    t = np.asarray(targets, dtype=np.int64)
    if t.size == 0:
        raise GraphError("distance_to_set requires a nonempty target set")
    d = multi_source_bfs(csr, t)
    d[d == UNREACHABLE] = csr.n * csr.n if inf is None else int(inf)
    return d
