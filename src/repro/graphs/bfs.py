"""Vectorised breadth-first search on CSR adjacencies.

The frontier-expansion step is expressed entirely with numpy gathers
(``np.repeat`` + fancy indexing) so that each BFS level costs one pass
over the frontier's adjacency lists with no per-vertex Python work. This
is the hot kernel of the whole library: the best-response engine calls
all-pairs BFS once per player per dynamics step.

Unreachable vertices are reported with distance ``UNREACHABLE`` (−1);
callers that need the paper's ``Cinf = n^2`` convention substitute it via
:mod:`repro.graphs.distances`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import GraphError, VertexError
from .csr import CSRAdjacency

__all__ = [
    "UNREACHABLE",
    "bfs_distances",
    "multi_source_bfs",
    "bfs_parents",
    "all_pairs_distances",
    "distances_from_sources",
    "bfs_layers",
]

#: Sentinel distance for vertices not reachable from the source set.
UNREACHABLE: int = -1


def _gather_frontier_neighbors(csr: CSRAdjacency, frontier: np.ndarray) -> np.ndarray:
    """All neighbour ids of the frontier, concatenated (with duplicates)."""
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # offsets[j] enumerates starts[i] .. starts[i]+counts[i]-1 for each
    # frontier vertex i, laid out contiguously.
    cum = np.cumsum(counts)
    offsets = np.repeat(starts - (cum - counts), counts) + np.arange(total, dtype=np.int64)
    return csr.indices[offsets]


def multi_source_bfs(csr: CSRAdjacency, sources: Sequence[int] | np.ndarray) -> np.ndarray:
    """Distances from the *set* ``sources`` to every vertex.

    Returns an ``int64`` array ``d`` with ``d[v] = min_s dist(s, v)`` and
    ``UNREACHABLE`` for vertices in other components. Runs in
    ``O(n + m)`` time with vectorised level expansion.
    """
    src = np.asarray(sources, dtype=np.int64).ravel()
    if src.size == 0:
        return np.full(csr.n, UNREACHABLE, dtype=np.int64)
    if src.min() < 0 or src.max() >= csr.n:
        raise VertexError(int(src.min() if src.min() < 0 else src.max()), csr.n)
    dist = np.full(csr.n, UNREACHABLE, dtype=np.int64)
    frontier = np.unique(src)
    dist[frontier] = 0
    level = 0
    while frontier.size:
        level += 1
        nbrs = _gather_frontier_neighbors(csr, frontier)
        if nbrs.size == 0:
            break
        fresh = nbrs[dist[nbrs] == UNREACHABLE]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = level
    return dist


def bfs_distances(csr: CSRAdjacency, source: int) -> np.ndarray:
    """Single-source BFS distances from ``source``."""
    if not 0 <= source < csr.n:
        raise VertexError(source, csr.n)
    return multi_source_bfs(csr, np.array([source], dtype=np.int64))


def bfs_parents(csr: CSRAdjacency, source: int) -> tuple[np.ndarray, np.ndarray]:
    """BFS distances and a parent array rooted at ``source``.

    ``parent[source] = source``; unreachable vertices get parent ``-1``.
    The parent array encodes one shortest-path tree, used by the Menger
    witness extraction and the figure renderers.
    """
    if not 0 <= source < csr.n:
        raise VertexError(source, csr.n)
    dist = np.full(csr.n, UNREACHABLE, dtype=np.int64)
    parent = np.full(csr.n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts = csr.indptr[frontier]
        counts = csr.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        cum = np.cumsum(counts)
        offsets = np.repeat(starts - (cum - counts), counts) + np.arange(total, dtype=np.int64)
        nbrs = csr.indices[offsets]
        origins = np.repeat(frontier, counts)
        fresh_mask = dist[nbrs] == UNREACHABLE
        if not fresh_mask.any():
            break
        fresh = nbrs[fresh_mask]
        fresh_origin = origins[fresh_mask]
        # Keep the first occurrence of each newly discovered vertex so the
        # parent assignment is deterministic (lowest-index discovery order).
        uniq, first = np.unique(fresh, return_index=True)
        dist[uniq] = level
        parent[uniq] = fresh_origin[first]
        frontier = uniq
    return dist, parent


def bfs_layers(csr: CSRAdjacency, source: int) -> list[np.ndarray]:
    """Vertices of each BFS level from ``source`` (level 0 = the source)."""
    dist = bfs_distances(csr, source)
    reach = dist[dist != UNREACHABLE]
    if reach.size == 0:
        return []
    layers = []
    for level in range(int(reach.max()) + 1):
        layers.append(np.flatnonzero(dist == level).astype(np.int64))
    return layers


def distances_from_sources(
    csr: CSRAdjacency, sources: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Matrix of BFS distances: row ``i`` is distances from ``sources[i]``.

    Shape ``(len(sources), n)``; unreachable entries are ``UNREACHABLE``.
    """
    src = np.asarray(sources, dtype=np.int64).ravel()
    out = np.empty((src.size, csr.n), dtype=np.int64)
    for i, s in enumerate(src):
        out[i] = bfs_distances(csr, int(s))
    return out


def all_pairs_distances(csr: CSRAdjacency) -> np.ndarray:
    """All-pairs BFS distance matrix, shape ``(n, n)``.

    ``O(n (n + m))`` total: one vectorised BFS per source. Unreachable
    pairs are ``UNREACHABLE``.
    """
    return distances_from_sources(csr, np.arange(csr.n, dtype=np.int64))
