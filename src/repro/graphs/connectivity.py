"""Connectivity machinery: components, vertex connectivity, Menger paths.

Theorem 7.2 of the paper states that a SUM equilibrium whose players all
have budget at least ``k`` is either ``k``-connected or has diameter at
most 3. Verifying that empirically needs exact vertex connectivity,
which we compute from scratch with unit-capacity max-flow (Dinic) on the
standard vertex-split network, following Even's algorithm for global
connectivity. ``networkx`` is used only as a cross-check oracle in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError, VertexError
from .bfs import UNREACHABLE, multi_source_bfs
from .csr import CSRAdjacency
from .digraph import OwnedDigraph

__all__ = [
    "connected_components",
    "num_components",
    "is_connected",
    "local_vertex_connectivity",
    "vertex_connectivity",
    "is_k_connected",
    "articulation_points",
    "menger_paths",
]


def _as_csr(graph: OwnedDigraph | CSRAdjacency) -> CSRAdjacency:
    if isinstance(graph, OwnedDigraph):
        return graph.undirected_csr()
    return graph


# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------
def connected_components(graph: OwnedDigraph | CSRAdjacency) -> tuple[np.ndarray, int]:
    """Component labels (``int64`` array) and the component count ``kappa``.

    Labels are assigned in increasing order of each component's smallest
    vertex, so the labelling is canonical.
    """
    csr = _as_csr(graph)
    labels = np.full(csr.n, -1, dtype=np.int64)
    current = 0
    for v in range(csr.n):
        if labels[v] != -1:
            continue
        reach = multi_source_bfs(csr, np.array([v], dtype=np.int64))
        labels[reach != UNREACHABLE] = current
        current += 1
    return labels, current


def num_components(graph: OwnedDigraph | CSRAdjacency) -> int:
    """Number of connected components ``kappa`` of ``U(G)``."""
    return connected_components(graph)[1]


def is_connected(graph: OwnedDigraph | CSRAdjacency) -> bool:
    """Whether ``U(G)`` is connected."""
    csr = _as_csr(graph)
    if csr.n == 1:
        return True
    d = multi_source_bfs(csr, np.array([0], dtype=np.int64))
    return bool((d != UNREACHABLE).all())


# ----------------------------------------------------------------------
# Dinic max-flow on the vertex-split network
# ----------------------------------------------------------------------
class _Dinic:
    """Unit/integer-capacity max-flow with adjacency stored in flat arrays."""

    def __init__(self, num_nodes: int) -> None:
        self.n = num_nodes
        self.head: list[int] = []
        self.cap: list[int] = []
        self.adj: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: int) -> None:
        self.adj[u].append(len(self.head))
        self.head.append(v)
        self.cap.append(capacity)
        self.adj[v].append(len(self.head))
        self.head.append(u)
        self.cap.append(0)

    def max_flow(self, s: int, t: int, limit: int | None = None) -> int:
        """Max flow from ``s`` to ``t``; stops early once ``limit`` reached."""
        flow = 0
        cap = self.cap
        head = self.head
        adj = self.adj
        INF = float("inf")
        bound = INF if limit is None else limit
        while flow < bound:
            # BFS level graph.
            level = [-1] * self.n
            level[s] = 0
            queue = [s]
            qi = 0
            while qi < len(queue):
                u = queue[qi]
                qi += 1
                for eid in adj[u]:
                    v = head[eid]
                    if cap[eid] > 0 and level[v] == -1:
                        level[v] = level[u] + 1
                        queue.append(v)
            if level[t] == -1:
                break
            # DFS blocking flow with iteration pointers.
            it = [0] * self.n

            def dfs(u: int, pushed: float) -> int:
                if u == t:
                    return int(pushed)
                while it[u] < len(adj[u]):
                    eid = adj[u][it[u]]
                    v = head[eid]
                    if cap[eid] > 0 and level[v] == level[u] + 1:
                        got = dfs(v, min(pushed, cap[eid]))
                        if got > 0:
                            cap[eid] -= got
                            cap[eid ^ 1] += got
                            return got
                    it[u] += 1
                return 0

            while flow < bound:
                pushed = dfs(s, INF)
                if pushed == 0:
                    break
                flow += pushed
        return flow


def _split_network(csr: CSRAdjacency, s: int, t: int) -> tuple[_Dinic, int, int]:
    """Vertex-split flow network for internally-disjoint ``s``–``t`` paths.

    Vertex ``v`` becomes ``v_in = 2v`` and ``v_out = 2v + 1`` joined by a
    capacity-1 edge (capacity ``n`` for the terminals, which may not be
    cut). Each undirected edge ``{u, v}`` becomes ``u_out -> v_in`` and
    ``v_out -> u_in`` with large capacity.
    """
    n = csr.n
    big = n  # any value >= max possible flow works as "uncuttable"
    net = _Dinic(2 * n)
    for v in range(n):
        net.add_edge(2 * v, 2 * v + 1, big if v in (s, t) else 1)
    for u in range(n):
        for v in csr.neighbors(u):
            net.add_edge(2 * u + 1, 2 * int(v), big)
    return net, 2 * s + 1, 2 * t


def local_vertex_connectivity(
    graph: OwnedDigraph | CSRAdjacency, s: int, t: int, *, limit: int | None = None
) -> int:
    """Maximum number of internally vertex-disjoint ``s``–``t`` paths.

    Requires ``s`` and ``t`` to be distinct and non-adjacent (for adjacent
    pairs the quantity is unbounded in Menger's formulation; callers
    handle that case). Early-exits at ``limit`` when provided.
    """
    csr = _as_csr(graph)
    if s == t:
        raise GraphError("local connectivity needs distinct endpoints")
    if not 0 <= s < csr.n:
        raise VertexError(s, csr.n)
    if not 0 <= t < csr.n:
        raise VertexError(t, csr.n)
    if csr.has_edge(s, t):
        raise GraphError(f"vertices {s} and {t} are adjacent; local cut undefined")
    net, src, dst = _split_network(csr, s, t)
    return net.max_flow(src, dst, limit=limit)


def vertex_connectivity(graph: OwnedDigraph | CSRAdjacency, *, limit: int | None = None) -> int:
    """Global vertex connectivity ``kappa(G)`` of ``U(G)``.

    Even's scheme: fix a minimum-degree vertex ``v``; the answer is the
    minimum of (a) local connectivity from ``v`` to every non-neighbour
    and (b) local connectivity between every pair of non-adjacent
    neighbours of ``v``, capped by ``deg(v)``. Complete graphs have
    connectivity ``n - 1`` by convention. ``limit`` allows early exit for
    "is at least k" queries.
    """
    csr = _as_csr(graph)
    n = csr.n
    if n == 1:
        return 0
    if not is_connected(csr):
        return 0
    degrees = csr.degrees()
    if int(degrees.min()) == n - 1:
        return n - 1
    v = int(degrees.argmin())
    best = int(degrees[v])
    if limit is not None:
        best = min(best, limit)
    neigh = set(int(x) for x in csr.neighbors(v))
    for u in range(n):
        if u == v or u in neigh:
            continue
        best = min(best, local_vertex_connectivity(csr, v, u, limit=best))
        if best == 0:
            return 0
    nb = sorted(neigh)
    for i in range(len(nb)):
        for j in range(i + 1, len(nb)):
            x, y = nb[i], nb[j]
            if csr.has_edge(x, y):
                continue
            best = min(best, local_vertex_connectivity(csr, x, y, limit=best))
            if best == 0:
                return 0
    return best


def is_k_connected(graph: OwnedDigraph | CSRAdjacency, k: int) -> bool:
    """Whether ``U(G)`` is ``k``-connected.

    A graph on ``n`` vertices can be at most ``(n - 1)``-connected, and a
    ``k``-connected graph needs more than ``k`` vertices.
    """
    csr = _as_csr(graph)
    if k <= 0:
        return True
    if csr.n <= k:
        return False
    return vertex_connectivity(csr, limit=k) >= k


def articulation_points(graph: OwnedDigraph | CSRAdjacency) -> np.ndarray:
    """Cut vertices of ``U(G)`` (iterative Tarjan lowpoint DFS)."""
    csr = _as_csr(graph)
    n = csr.n
    disc = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    is_cut = np.zeros(n, dtype=bool)
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        root_children = 0
        # Stack holds (vertex, iterator index into its adjacency row).
        stack: list[tuple[int, int]] = [(root, 0)]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            v, i = stack[-1]
            row = csr.neighbors(v)
            if i < row.size:
                stack[-1] = (v, i + 1)
                w = int(row[i])
                if disc[w] == -1:
                    parent[w] = v
                    if v == root:
                        root_children += 1
                    disc[w] = low[w] = timer
                    timer += 1
                    stack.append((w, 0))
                elif w != parent[v]:
                    low[v] = min(low[v], disc[w])
            else:
                stack.pop()
                p = parent[v]
                if p != -1:
                    low[p] = min(low[p], low[v])
                    if p != root and low[v] >= disc[p]:
                        is_cut[p] = True
        if root_children >= 2:
            is_cut[root] = True
    return np.flatnonzero(is_cut).astype(np.int64)


@dataclass(frozen=True)
class _FlowPathExtraction:
    paths: list[list[int]]


def menger_paths(graph: OwnedDigraph | CSRAdjacency, s: int, t: int) -> list[list[int]]:
    """A maximum family of internally vertex-disjoint ``s``–``t`` paths.

    Witnesses Menger's theorem (the paper invokes it after Theorem 7.2).
    ``s`` and ``t`` must be non-adjacent. Paths are returned as vertex
    lists beginning with ``s`` and ending with ``t``.
    """
    csr = _as_csr(graph)
    if csr.has_edge(s, t):
        raise GraphError("menger_paths requires non-adjacent endpoints")
    net, src, dst = _split_network(csr, s, t)
    value = net.max_flow(src, dst)
    if value == 0:
        return []
    # Decompose the flow: follow saturated forward edges out of src.
    # Forward edges are the even indices; an edge eid carries flow
    # cap[eid ^ 1] > 0 (residual pushed back on its reverse).
    n = csr.n
    used_edge = [False] * len(net.head)
    paths: list[list[int]] = []
    for _ in range(value):
        node = src
        path_nodes = [s]
        while node != dst:
            advanced = False
            for eid in net.adj[node]:
                if eid % 2 == 0 and not used_edge[eid] and net.cap[eid ^ 1] > 0:
                    used_edge[eid] = True
                    node = net.head[eid]
                    if node % 2 == 0:  # arrived at some v_in
                        v = node // 2
                        if v != path_nodes[-1]:
                            path_nodes.append(v)
                    advanced = True
                    break
            if not advanced:  # pragma: no cover - flow conservation guarantees progress
                raise GraphError("flow decomposition failed to advance")
        paths.append(path_nodes)
    return paths
