"""Incremental all-pairs *weighted* distance engine (heap-free SSSP).

:class:`WeightedDistanceEngine` is the integer-weight sibling of
:class:`~repro.graphs.engine.DistanceEngine`: it owns one
:class:`WeightedCSR` substrate (an undirected CSR adjacency whose edges
carry small positive integer lengths) and the full ``(n, n)``
shortest-path matrix over it, and keeps that matrix correct as the
substrate evolves a few edges — or a few edge *weights* — at a time.

Batched SSSP kernel
-------------------
The kernel is a vectorised **Dial-style bucket relaxation**: tentative
labels live in the preallocated output matrix, and a bucket queue
indexed by distance value replaces the binary heap. Settling bucket
``d`` relaxes every out-edge of every ``(source row, vertex)`` pair
whose label is still ``d`` in one batch of numpy gathers — all sources
in flight share each bucket step, exactly like the flat-frontier BFS of
the unit engine, which this kernel degenerates to (bit-identically)
when every weight is 1. No heap, no per-vertex Python work; total work
is ``O((n + m) * maxdist / ...)`` gathers per batch with ``maxdist <=
(n - 1) * w_max`` buckets.

Repair / fallback policy
------------------------
``update(new_wcsr)`` diffs edge sets *and* edge weights and picks
``"noop"`` / ``"delta"`` / ``"rebuild"`` like the unit engine:

* **Deletions** (and weight increases) only lengthen distances. Single
  removals walk the same **repair hierarchy** as the unit engine
  (see :mod:`repro.graphs.engine`): a **pendant fast path** (a removal
  that isolates a degree-1 endpoint — the Section 6 fold primitive —
  repairs as one column/row write), then the weight-aware exact
  support criterion — removing ``{x, y}`` of length ``w`` affects
  source ``s`` only if the downhill endpoint (say ``d(s, y) =
  d(s, x) + w``) loses its *only* tight parent, since a surviving
  neighbour ``z`` of ``y`` with ``d(s, z) + w(z, y) = d(s, y)``
  reroutes every shortest path at equal length — feeding the shared
  **affected-region repair** (grow the region of vertices whose every
  tight-parent chain crosses the removed edge, re-relax only those
  positions in a masked Dijkstra seeded from the unaffected boundary),
  then a fresh batched SSSP of the dirty rows when the region outgrows
  its budget.
* **Insertions** (and weight decreases) only shorten distances: pivot
  rows (a greedy vertex cover of the touched edges) are recomputed
  exactly, then every other row repairs in one vectorised decrease-only
  min-plus pass ``d(s, v) = min(d(s, v), min_p d(p, s) + d(p, v))`` —
  unchanged from the unit engine, since any strictly shorter path
  passes through a touched edge and hence through a pivot.
* Weight *changes* on surviving edges are composed as removal (tight
  w.r.t. the old weight) plus insertion (pivot cover), which is sound
  for increases and decreases alike.

Every path that may change distances bumps the ``epoch``; stale views
raise :class:`~repro.errors.StaleDistanceError` via
:meth:`ensure_epoch`, mirroring the unit engine's contract.

Unreachable pairs carry a finite sentinel ``inf`` — at least the
paper's ``Cinf = n^2`` and always larger than any finite weighted
distance — so the min-plus repair needs no special cases and the
Section 6 cost convention (``Cinf`` for cross-component terms) reads
straight off the matrix when weights are unit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import GraphError, StaleDistanceError, VertexError
from .bfs import UNREACHABLE
from .csr import CSRAdjacency
from .distances import cinf
from .engine import (
    _affected_positions,
    _bfs_flat_frontier,
    _deletion_roots,
    _minplus_through_pivots,
    _pivot_cover,
    _region_relax,
)

__all__ = [
    "WeightedCSR",
    "EdgeWeightMap",
    "build_weighted_csr",
    "weighted_csr_from_csr",
    "weighted_csr_without_vertex",
    "WeightedDistanceEngine",
]

#: Default fallback threshold (fraction of rows a delta repair may
#: recompute before the engine falls back to a full rebuild).
DEFAULT_DIRTY_FRACTION: float = 0.5

#: Deletion batches up to this size use the exact per-edge support
#: criterion; larger batches use the coarser composed tightness filter.
_SEQUENTIAL_DELETION_CAP: int = 32


# ----------------------------------------------------------------------
# Weighted CSR substrate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WeightedCSR:
    """Immutable CSR adjacency with positive integer edge lengths.

    ``weights[k]`` is the length of the (undirected) edge leading to
    ``indices[k]``; both directions of an edge carry the same length.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Edge lengths aligned with :meth:`neighbors` (a view)."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Number of distinct neighbours of ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.indices.size) // 2

    def edge_weight(self, x: int, y: int) -> int:
        """Length of the undirected edge ``{x, y}``; raises if absent."""
        row = self.neighbors(x)
        pos = int(np.searchsorted(row, y))
        if pos >= row.size or row[pos] != y:
            raise GraphError(f"edge {{{x}, {y}}} not present in substrate")
        return int(self.neighbor_weights(x)[pos])

    def max_weight(self) -> int:
        """Largest edge length (1 for an edgeless substrate); memoised."""
        cached = getattr(self, "_max_w_cache", None)
        if cached is None:
            cached = int(self.weights.max()) if self.weights.size else 1
            object.__setattr__(self, "_max_w_cache", cached)
        return cached


def build_weighted_csr(
    n: int,
    heads: np.ndarray,
    tails: np.ndarray,
    weights: np.ndarray,
) -> WeightedCSR:
    """Build a weighted undirected CSR from arc endpoint/length arrays.

    Each ``(heads[i], tails[i])`` contributes the undirected edge
    ``{heads[i], tails[i]}`` of length ``weights[i]``. Parallel arcs
    (braces) collapse to a single edge of the *minimum* supplied length
    — for shortest-path purposes parallel edges are exactly their
    shortest representative.
    """
    heads = np.asarray(heads, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if heads.shape != tails.shape or heads.shape != weights.shape or heads.ndim != 1:
        raise GraphError("heads, tails and weights must be equal-length 1-D arrays")
    if weights.size and weights.min() < 1:
        raise GraphError("edge weights must be positive integers")
    if heads.size:
        lo = min(heads.min(), tails.min())
        hi = max(heads.max(), tails.max())
        if lo < 0 or hi >= n:
            raise GraphError(f"arc endpoint out of range [0, {n}): saw [{lo}, {hi}]")
        if np.any(heads == tails):
            raise GraphError("self-loops are not allowed in a realization")
    rows = np.concatenate([heads, tails])
    cols = np.concatenate([tails, heads])
    wts = np.concatenate([weights, weights])
    # Sort by (row, col, weight) and keep the first (= lightest) copy of
    # every directed slot.
    order = np.lexsort((wts, cols, rows))
    rows, cols, wts = rows[order], cols[order], wts[order]
    if rows.size:
        keep = np.empty(rows.size, dtype=bool)
        keep[0] = True
        np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=keep[1:])
        rows, cols, wts = rows[keep], cols[keep], wts[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return WeightedCSR(n=n, indptr=indptr, indices=cols, weights=wts)


def weighted_csr_from_csr(
    csr: CSRAdjacency, weights: "EdgeWeightMap | None" = None
) -> WeightedCSR:
    """Wrap a unit CSR adjacency with edge lengths from ``weights``.

    With ``weights=None`` every edge has length 1 (the BFS regime the
    weighted kernel degenerates to).
    """
    if weights is None:
        w = np.ones(csr.indices.size, dtype=np.int64)
    else:
        w = weights.array_for(csr)
    return WeightedCSR(n=csr.n, indptr=csr.indptr, indices=csr.indices, weights=w)


def weighted_csr_without_vertex(wcsr: WeightedCSR, u: int) -> WeightedCSR:
    """Same vertex set with ``u`` isolated (all its edges gone)."""
    if not 0 <= u < wcsr.n:
        raise GraphError(f"vertex {u} out of range [0, {wcsr.n})")
    mask = wcsr.indices != u
    row_of = np.repeat(np.arange(wcsr.n, dtype=np.int64), np.diff(wcsr.indptr))
    mask &= row_of != u
    counts = np.zeros(wcsr.n + 1, dtype=np.int64)
    np.add.at(counts, row_of[mask] + 1, 1)
    np.cumsum(counts, out=counts)
    return WeightedCSR(
        n=wcsr.n,
        indptr=counts,
        indices=wcsr.indices[mask],
        weights=wcsr.weights[mask],
    )


class EdgeWeightMap:
    """Mutable symmetric integer edge-length assignment with a revision.

    Distance caches key their weighted-engine coherence on
    :attr:`revision`: every :meth:`set_weight` bumps it, so a cache that
    recorded the revision at sync time detects out-of-band weight edits
    exactly like graph mutations. Edges not explicitly set carry
    ``default``.
    """

    __slots__ = ("_default", "_overrides", "_revision")

    def __init__(
        self, default: int = 1, overrides: "dict[tuple[int, int], int] | None" = None
    ) -> None:
        if default < 1:
            raise GraphError(f"edge weights must be positive, got default={default}")
        self._default = int(default)
        self._overrides: dict[tuple[int, int], int] = {}
        self._revision = 0
        if overrides:
            for (x, y), w in overrides.items():
                self.set_weight(x, y, w)

    @property
    def revision(self) -> int:
        """Counter bumped on every weight assignment."""
        return self._revision

    @property
    def default(self) -> int:
        """Length of edges without an explicit assignment."""
        return self._default

    def weight(self, x: int, y: int) -> int:
        """Length of the (undirected) edge ``{x, y}``."""
        return self._overrides.get((min(x, y), max(x, y)), self._default)

    def set_weight(self, x: int, y: int, w: int) -> None:
        """Assign length ``w`` to edge ``{x, y}`` and bump the revision."""
        if x == y:
            raise GraphError(f"self-loop {{{x}, {y}}} cannot carry a weight")
        if int(w) < 1:
            raise GraphError(f"edge weights must be positive, got {w}")
        self._overrides[(min(x, y), max(x, y))] = int(w)
        self._revision += 1

    def max_weight(self) -> int:
        """Upper bound on any assigned edge length."""
        if not self._overrides:
            return self._default
        return max(self._default, max(self._overrides.values()))

    def is_unit(self) -> bool:
        """Whether every edge (assigned or defaulted) has length 1."""
        return self.max_weight() == 1

    def array_for(self, csr: CSRAdjacency) -> np.ndarray:
        """Edge lengths aligned with ``csr.indices`` (both directions)."""
        w = np.full(csr.indices.size, self._default, dtype=np.int64)
        for (x, y), val in self._overrides.items():
            for a, b in ((x, y), (y, x)):
                lo, hi = int(csr.indptr[a]), int(csr.indptr[a + 1])
                pos = lo + int(np.searchsorted(csr.indices[lo:hi], b))
                if pos < hi and csr.indices[pos] == b:
                    w[pos] = val
        return w


# ----------------------------------------------------------------------
# Diff helper
# ----------------------------------------------------------------------
def _edge_ids_weights(wcsr: WeightedCSR) -> tuple[np.ndarray, np.ndarray]:
    """Sorted unique edge ids ``x * n + y`` (``x < y``) and their lengths.

    Memoised on the (immutable) substrate: an engine diffs each
    substrate twice over its lifetime — once as the new side, once as
    the old — so caching halves the dominant per-update analysis cost.
    """
    cached = getattr(wcsr, "_edge_ids_cache", None)
    if cached is not None:
        return cached
    row_of = np.repeat(np.arange(wcsr.n, dtype=np.int64), np.diff(wcsr.indptr))
    mask = row_of < wcsr.indices
    ids = row_of[mask] * wcsr.n + wcsr.indices[mask]
    wts = wcsr.weights[mask]
    order = np.argsort(ids, kind="stable")
    out = (ids[order], wts[order])
    object.__setattr__(wcsr, "_edge_ids_cache", out)
    return out


class WeightedDistanceEngine:
    """All-pairs weighted distances over one substrate, with delta repair.

    Parameters
    ----------
    wcsr:
        The initial weighted substrate.
    inf:
        Finite sentinel for unreachable pairs. Defaults to
        ``max(Cinf, (n - 1) * w_max + 1)`` where ``w_max`` accounts for
        both the substrate's current weights and the ``max_weight``
        headroom hint, so unit-weight engines share the paper's
        ``Cinf = n^2`` convention bit-for-bit with the BFS engine.
    max_weight:
        Headroom hint: the largest edge length any future
        :meth:`update` may carry. Updates whose weights overflow the
        sentinel raise instead of silently corrupting the matrix.
    dirty_fraction:
        Delta-vs-rebuild cutoff as a fraction of rows (``0.0`` disables
        delta repair, ``1.0`` always tries it).
    rows:
        ``"full"`` (default) materialises the all-pairs matrix up
        front; ``"lazy"`` starts unmaterialised with row-on-demand
        reads — see *Three-tier read path* in
        :mod:`repro.graphs.engine`.
    """

    __slots__ = (
        "_wcsr",
        "_n",
        "_inf",
        "_max_weight",
        "_dtype",
        "_D",
        "_cow",
        "_epoch",
        "_dirty_fraction",
        "_lazy",
        "_hot",
        "stats",
    )

    def __init__(
        self,
        wcsr: WeightedCSR,
        *,
        inf: "int | None" = None,
        max_weight: "int | None" = None,
        dirty_fraction: float = DEFAULT_DIRTY_FRACTION,
        rows: str = "full",
    ) -> None:
        self._configure(wcsr, inf, max_weight, dirty_fraction)
        self._D = np.empty((self._n, self._n), dtype=self._dtype)
        self._cow = False
        self._epoch = 0
        self.stats = self._fresh_stats()
        if rows not in ("full", "lazy"):
            raise GraphError(f'rows must be "full" or "lazy", got {rows!r}')
        if rows == "lazy":
            self._lazy = True
            self._hot = np.zeros(self._n, dtype=bool)
        else:
            self.rebuild()

    @staticmethod
    def _fresh_stats() -> "dict[str, int]":
        return {
            "rebuilds": 0,
            "deltas": 0,
            "noops": 0,
            "rows_recomputed": 0,
            "pendant_fixes": 0,
            "region_repairs": 0,
            "region_vertices": 0,
            "cow_copies": 0,
            "lazy_rows": 0,
            "lazy_invalidations": 0,
            "promotions": 0,
            "point_queries": 0,
        }

    def _configure(
        self,
        wcsr: WeightedCSR,
        inf: "int | None",
        max_weight: "int | None",
        dirty_fraction: float,
    ) -> None:
        """Shared constructor core (substrate checks, sentinel, dtype)."""
        if not isinstance(wcsr, WeightedCSR):
            raise GraphError("WeightedDistanceEngine needs a WeightedCSR substrate")
        if not 0.0 <= dirty_fraction <= 1.0:
            raise GraphError(
                f"dirty_fraction must be in [0, 1], got {dirty_fraction}"
            )
        if wcsr.weights.size and wcsr.weights.min() < 1:
            raise GraphError("edge weights must be positive integers")
        self._n = wcsr.n
        self._max_weight = max(
            wcsr.max_weight(), 1 if max_weight is None else int(max_weight)
        )
        bound = (self._n - 1) * self._max_weight  # largest finite distance
        self._inf = (
            max(cinf(self._n), bound + 1) if inf is None else int(inf)
        )
        if self._inf <= bound:
            raise GraphError(
                f"inf sentinel {self._inf} too small for n={self._n}, "
                f"w_max={self._max_weight}; need inf > (n-1) * w_max"
            )
        self._dtype = np.int32 if 2 * self._inf < 2**31 else np.int64
        self._dirty_fraction = float(dirty_fraction)
        self._wcsr = wcsr
        # Lazy row-on-demand state; __init__(rows="lazy") flips these.
        self._lazy = False
        self._hot: "np.ndarray | None" = None

    @classmethod
    def from_snapshot(
        cls,
        wcsr: WeightedCSR,
        matrix: np.ndarray,
        *,
        inf: "int | None" = None,
        max_weight: "int | None" = None,
        dirty_fraction: float = DEFAULT_DIRTY_FRACTION,
        copy: bool = False,
    ) -> "WeightedDistanceEngine":
        """Engine adopting a precomputed distance matrix — no initial SSSP.

        The weighted sibling of
        :meth:`DistanceEngine.from_snapshot
        <repro.graphs.engine.DistanceEngine.from_snapshot>`: with
        ``copy=False`` the matrix buffer is aliased copy-on-write, so an
        adopted shared-memory segment is never written — the first
        mutating repair copies into a private buffer.
        """
        engine = cls.__new__(cls)
        engine._configure(wcsr, inf, max_weight, dirty_fraction)
        matrix = np.asarray(matrix)
        if matrix.shape != (engine._n, engine._n):
            raise GraphError(
                f"snapshot matrix shape {matrix.shape} != "
                f"{(engine._n, engine._n)}"
            )
        if matrix.dtype != engine._dtype:
            raise GraphError(
                f"snapshot matrix dtype {matrix.dtype} != expected "
                f"{np.dtype(engine._dtype).name} (inf={engine._inf})"
            )
        if not matrix.flags.c_contiguous:
            raise GraphError("snapshot matrix must be C-contiguous")
        engine._D = matrix.copy() if copy else matrix
        engine._cow = not copy
        engine._epoch = 0
        engine.stats = cls._fresh_stats()
        return engine

    @property
    def copy_on_write(self) -> bool:
        """Whether the matrix still aliases an adopted (shared) buffer."""
        return self._cow

    def _prepare_write(self, preserve: bool = True) -> None:
        """Detach from an adopted buffer before the first in-place write."""
        if self._cow:
            self._D = np.array(self._D) if preserve else np.empty_like(self._D)
            self._cow = False
            self.stats["cow_copies"] += 1

    # ------------------------------------------------------------------
    # Read API (mirrors DistanceEngine)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices of the substrate."""
        return self._n

    @property
    def wcsr(self) -> WeightedCSR:
        """The weighted substrate the current matrix describes."""
        return self._wcsr

    @property
    def inf(self) -> int:
        """Finite sentinel stored for unreachable pairs."""
        return self._inf

    @property
    def max_weight(self) -> int:
        """Largest edge length the sentinel has headroom for."""
        return self._max_weight

    @property
    def epoch(self) -> int:
        """Counter bumped whenever the distance content may have changed."""
        return self._epoch

    @property
    def lazy(self) -> bool:
        """Whether the engine is still in row-on-demand mode."""
        return self._lazy

    def hot_rows(self) -> np.ndarray:
        """Sources whose rows are materialised (every source when full)."""
        if not self._lazy:
            return np.arange(self._n, dtype=np.int64)
        return np.flatnonzero(self._hot)

    def row_budget(self) -> float:
        """Rows a delta repair may recompute before falling back to rebuild.

        Fixed-fraction cost model (the weighted engine has no adaptive
        EMAs): ``dirty_fraction * n``.
        """
        return self._dirty_fraction * self._n

    def promotion_threshold(self) -> float:
        """Hot-row count at which a lazy engine promotes to full mode."""
        return max(1.0, self.row_budget())

    def promote(self) -> None:
        """Materialise the remaining cold rows and leave lazy mode.

        No epoch bump: hot rows are kept and cold rows were never
        handed out, so no observable distance changes.
        """
        if not self._lazy:
            return
        cold = np.flatnonzero(~self._hot)
        if cold.size:
            self._sssp_rows(self._wcsr, cold, self._D, cold)
        self._lazy = False
        self._hot = None
        self.stats["promotions"] += 1

    def ensure_rows(self, sources: "Sequence[int] | np.ndarray") -> None:
        """Materialise (and mark hot) any still-cold rows in ``sources``.

        No-op in full mode. Promotes to full mode afterwards when the
        hot count reaches :meth:`promotion_threshold`.
        """
        if not self._lazy:
            return
        src = np.unique(np.asarray(sources, dtype=np.int64).ravel())
        if src.size and (src[0] < 0 or src[-1] >= self._n):
            bad = int(src[0]) if src[0] < 0 else int(src[-1])
            raise VertexError(bad, self._n)
        cold = src[~self._hot[src]]
        if cold.size:
            self._sssp_rows(self._wcsr, cold, self._D, cold)
            self._hot[cold] = True
            self.stats["lazy_rows"] += int(cold.size)
        if int(self._hot.sum()) >= self.promotion_threshold():
            self.promote()

    def query(self, u: int, v: int) -> int:
        """Single ``(u, v)`` distance under the ``inf`` convention.

        Tier-1 read: answered from the matrix when either row is hot
        (the substrate is undirected), otherwise by one bounded
        bidirectional Dial search, materialising nothing. Bit-identical
        to ``matrix[u, v]``.
        """
        if not 0 <= u < self._n:
            raise VertexError(u, self._n)
        if not 0 <= v < self._n:
            raise VertexError(v, self._n)
        self.stats["point_queries"] += 1
        if not self._lazy:
            return int(self._D[u, v])
        if self._hot[u]:
            return int(self._D[u, v])
        if self._hot[v]:
            return int(self._D[v, u])
        from .query import point_to_point

        return point_to_point(self._wcsr, u, v, inf=self._inf)

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n, n)`` distance view (``inf`` for unreachable).

        Aliases the engine's buffer; guard reuse across mutations with
        :meth:`ensure_epoch`. A lazy engine promotes to full mode first
        (prefer :meth:`query` / :meth:`row` to stay lazy).
        """
        if self._lazy:
            self.promote()
        view = self._D.view()
        view.flags.writeable = False
        return view

    def row(self, s: int) -> np.ndarray:
        """Read-only distance row from source ``s`` (``inf`` convention).

        Tier-2 read: a lazy engine materialises just this row (marking
        it hot) rather than promoting.
        """
        if not 0 <= s < self._n:
            raise VertexError(s, self._n)
        if self._lazy:
            self.ensure_rows([s])
        view = self._D[s].view()
        view.flags.writeable = False
        return view

    def distance(self, s: int, v: int) -> int:
        """Distance ``s -> v``; ``UNREACHABLE`` across components."""
        if not 0 <= s < self._n:
            raise VertexError(s, self._n)
        if not 0 <= v < self._n:
            raise VertexError(v, self._n)
        d = self.query(s, v)
        return UNREACHABLE if d >= self._inf else d

    def distances(self, *, sentinel: int = UNREACHABLE) -> np.ndarray:
        """``int64`` copy of the full matrix, unreachable pairs remapped."""
        if self._lazy:
            self.promote()
        out = self._D.astype(np.int64)
        if sentinel != self._inf:
            out[out >= self._inf] = sentinel
        return out

    def ensure_epoch(self, epoch: int) -> None:
        """Raise :class:`StaleDistanceError` unless ``epoch`` is current."""
        if epoch != self._epoch:
            raise StaleDistanceError(
                f"distance view from epoch {epoch} is stale; engine is at "
                f"epoch {self._epoch}"
            )

    # ------------------------------------------------------------------
    # Batched Dial-bucket SSSP kernel
    # ------------------------------------------------------------------
    def _sssp_rows(
        self,
        wcsr: WeightedCSR,
        sources: np.ndarray,
        out: np.ndarray,
        out_rows: np.ndarray,
    ) -> None:
        """Batched SSSP: ``out[out_rows[i]] = dist(sources[i], .)`` in-place.

        Dial bucket relaxation over flat ``(output row, vertex)`` labels:
        bucket ``d`` settles every pair whose tentative label is still
        ``d`` and relaxes all their edges in one batch of gathers.
        Positive weights make the walk monotone (pushes always target
        strictly larger buckets), so a label is final the first time its
        bucket is popped; stale queue entries are skipped by comparing
        against the live label. With all-unit weights each bucket is
        exactly one BFS level and the kernel reproduces the unit
        engine's matrices bit-for-bit.
        """
        n = self._n
        k = sources.size
        if k == 0:
            return
        if not out.flags.c_contiguous or out.shape[1] != n:
            raise GraphError("batched SSSP needs a C-contiguous (k, n) buffer")
        inf = self._inf
        out[out_rows] = inf
        flat = out.reshape(-1)
        if wcsr.max_weight() == 1:
            # Unit-weight degeneration: every Dial bucket is exactly one
            # BFS level, so run the shared flat-frontier BFS kernel (no
            # bucket queue, no scatter-min) — identical output, ~4x
            # faster on the Section 6 regime where all lengths are 1.
            _bfs_flat_frontier(
                wcsr.indptr,
                wcsr.indices,
                n,
                inf,
                flat,
                np.asarray(out_rows, dtype=np.int64),
                np.asarray(sources, dtype=np.int64),
            )
            self.stats["rows_recomputed"] += k
            return
        slots = out_rows.astype(np.int64, copy=True)
        verts = sources.astype(np.int64, copy=True)
        start = slots * n + verts
        flat[start] = 0
        buckets: list[list[np.ndarray]] = [[start]]
        max_d = 0
        d = 0
        while d <= max_d:
            if d >= len(buckets) or not buckets[d]:
                d += 1
                continue
            idx = np.concatenate(buckets[d])
            buckets[d] = []
            idx = idx[flat[idx] == d]  # drop superseded queue entries
            if idx.size == 0:
                d += 1
                continue
            if idx.size > 1:
                idx = np.unique(idx)
            verts = idx % n
            starts = wcsr.indptr[verts]
            counts = wcsr.indptr[verts + 1] - starts
            total = int(counts.sum())
            if total == 0:
                d += 1
                continue
            cum = np.cumsum(counts)
            offsets = np.repeat(starts - (cum - counts), counts) + np.arange(
                total, dtype=np.int64
            )
            nbrs = wcsr.indices[offsets]
            wts = wcsr.weights[offsets]
            tidx = np.repeat(idx - verts, counts) + nbrs  # (slot * n) + nbr
            nd = (d + wts).astype(self._dtype)
            better = nd < flat[tidx]
            tidx = tidx[better]
            nd = nd[better]
            if tidx.size:
                np.minimum.at(flat, tidx, nd)
                if tidx.size > 1:
                    tidx = np.unique(tidx)
                cur = flat[tidx]
                hi = int(cur.max())
                while len(buckets) <= hi:
                    buckets.append([])
                if hi > max_d:
                    max_d = hi
                if tidx.size == 1:
                    buckets[int(cur[0])].append(tidx)
                else:
                    # Group pushes by tentative label: one sort, one split.
                    order = np.argsort(cur, kind="stable")
                    cur = cur[order]
                    tidx = tidx[order]
                    cuts = np.flatnonzero(cur[1:] != cur[:-1]) + 1
                    segs = np.split(tidx, cuts)
                    vals = cur[np.concatenate([[0], cuts])]
                    for val, seg in zip(vals, segs):
                        buckets[int(val)].append(seg)
            d += 1
        self.stats["rows_recomputed"] += k

    def distances_from(
        self, sources: "Sequence[int] | np.ndarray", out: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Batched multi-source SSSP on the current substrate.

        Row ``i`` of the result holds weighted distances from
        ``sources[i]`` under the engine's ``inf`` convention.
        """
        src = np.asarray(sources, dtype=np.int64).ravel()
        if src.size and (src.min() < 0 or src.max() >= self._n):
            bad = int(src.min()) if src.min() < 0 else int(src.max())
            raise VertexError(bad, self._n)
        if out is None:
            out = np.empty((src.size, self._n), dtype=self._dtype)
        elif out.shape != (src.size, self._n) or out.dtype != self._dtype:
            raise GraphError(
                f"out buffer must be {np.dtype(self._dtype).name} of shape "
                f"{(src.size, self._n)}"
            )
        self._sssp_rows(self._wcsr, src, out, np.arange(src.size, dtype=np.int64))
        return out

    # ------------------------------------------------------------------
    # Mutation API
    # ------------------------------------------------------------------
    def _check_weights(self, wcsr: WeightedCSR) -> None:
        if wcsr.weights.size == 0:
            return
        if wcsr.weights.min() < 1:
            raise GraphError("edge weights must be positive integers")
        if (self._n - 1) * wcsr.max_weight() >= self._inf:
            raise GraphError(
                f"edge weight {wcsr.max_weight()} overflows the inf sentinel "
                f"{self._inf}; build the engine with max_weight >= "
                f"{wcsr.max_weight()}"
            )

    def rebuild(self, new_wcsr: "WeightedCSR | None" = None) -> None:
        """Full batched SSSP (optionally onto a new substrate).

        A lazy engine exits row-on-demand mode here — after a rebuild
        every row is exact.
        """
        if new_wcsr is not None:
            if new_wcsr.n != self._n:
                raise GraphError(
                    f"substrate size changed ({new_wcsr.n} != {self._n}); "
                    f"build a fresh engine instead"
                )
            self._check_weights(new_wcsr)
            self._wcsr = new_wcsr
        self._lazy = False
        self._hot = None
        self._prepare_write(preserve=False)
        all_rows = np.arange(self._n, dtype=np.int64)
        self._sssp_rows(self._wcsr, all_rows, self._D, all_rows)
        self._epoch += 1
        self.stats["rebuilds"] += 1

    def _isolated_endpoint_fix(self, endpoints: "list[int]") -> None:
        """Column/row repair for endpoints isolated by a pendant removal.

        A vertex of degree 1 lies on no shortest path between *other*
        vertices (any walk through it backtracks over its single edge),
        so deleting its last edge changes only its own row and column:
        both become unreachable, except the zero diagonal.
        """
        self._prepare_write()
        for y in endpoints:
            self._D[:, y] = self._inf
            self._D[y, :] = self._inf
            self._D[y, y] = 0
        self.stats["pendant_fixes"] += len(endpoints)

    def _deletion_dirty_rows(
        self,
        x: int,
        y: int,
        w_edge: int,
        after_wcsr: WeightedCSR,
        candidates: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Sources whose row may change when edge ``{x, y}`` is removed.

        Weight-aware exact support criterion against the current matrix:
        a source is affected only if the downhill endpoint has no
        surviving tight parent in ``after_wcsr``. ``candidates``
        restricts the filter to those source rows (a lazy engine's hot
        set); the returned ids are still absolute sources.
        """
        D = self._D if candidates is None else self._D[candidates]
        dirty = np.zeros(D.shape[0], dtype=bool)
        dx = D[:, x].astype(np.int64)
        dy = D[:, y].astype(np.int64)
        for hi, dlo in ((y, dx), (x, dy)):
            supported = D[:, hi] == dlo + w_edge
            if not supported.any():
                continue
            alt_nbrs = after_wcsr.neighbors(hi)
            if alt_nbrs.size:
                alt_wts = after_wcsr.neighbor_weights(hi).astype(np.int64)
                alt = (
                    D[:, alt_nbrs].astype(np.int64) + alt_wts[None, :]
                    == D[:, hi].astype(np.int64)[:, None]
                ).any(axis=1)
                dirty |= supported & ~alt
            else:
                dirty |= supported
        hits = np.flatnonzero(dirty)
        return hits if candidates is None else candidates[hits]

    def _lazy_deletion_repair(
        self, x: int, y: int, w_edge: int, after_wcsr: WeightedCSR
    ) -> None:
        """Deletion repair restricted to the hot rows of a lazy engine.

        Same tier walk as :meth:`_single_deletion_repair` minus the
        budget bookkeeping — with only hot rows to maintain the worst
        case is one SSSP per hot row, there is no rebuild to prefer.
        """
        hot = np.flatnonzero(self._hot)
        if hot.size == 0:
            return
        isolated = [v for v in (x, y) if after_wcsr.degree(v) == 0]
        if isolated:
            self._isolated_endpoint_fix(isolated)
            for v in isolated:
                self._hot[v] = True
            return
        dirty = self._deletion_dirty_rows(x, y, w_edge, after_wcsr, candidates=hot)
        if dirty.size == 0:
            return
        roots = _deletion_roots(self._D, x, y, w_edge, dirty)
        cap = dirty.size * self._n / 2.0
        positions = _affected_positions(
            self._D,
            self._inf,
            after_wcsr.indptr,
            after_wcsr.indices,
            after_wcsr.weights,
            dirty,
            roots,
            cap,
        )
        if positions is not None:
            _region_relax(
                self._D,
                self._inf,
                after_wcsr.indptr,
                after_wcsr.indices,
                after_wcsr.weights,
                positions,
            )
            self.stats["region_repairs"] += 1
            self.stats["region_vertices"] += int(positions.size)
            return
        self._sssp_rows(after_wcsr, dirty, self._D, dirty)

    def _remove_edge(self, wcsr: WeightedCSR, x: int, y: int) -> WeightedCSR:
        """Copy of ``wcsr`` with the undirected edge ``{x, y}`` removed."""
        keep = np.ones(wcsr.indices.size, dtype=bool)
        for a, b in ((x, y), (y, x)):
            lo, hi = int(wcsr.indptr[a]), int(wcsr.indptr[a + 1])
            pos = lo + int(np.searchsorted(wcsr.indices[lo:hi], b))
            if pos >= hi or wcsr.indices[pos] != b:
                raise GraphError(f"edge {{{x}, {y}}} not present in substrate")
            keep[pos] = False
        counts = np.diff(wcsr.indptr).copy()
        counts[x] -= 1
        counts[y] -= 1
        indptr = np.zeros(wcsr.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return WeightedCSR(
            n=wcsr.n,
            indptr=indptr,
            indices=wcsr.indices[keep],
            weights=wcsr.weights[keep],
        )

    def _single_deletion_repair(
        self,
        x: int,
        y: int,
        w_edge: int,
        after_wcsr: WeightedCSR,
        *,
        row_budget: float,
        rows_spent: float = 0.0,
    ) -> "float | None":
        """Walk the deletion repair hierarchy for one removed edge.

        The weighted sibling of :meth:`DistanceEngine._single_deletion_repair
        <repro.graphs.engine.DistanceEngine._single_deletion_repair>`:
        pendant fix -> affected-region repair (shared machinery, weight
        aware) -> dirty-row SSSP. Returns the rows-equivalent budget
        spent, or ``None`` when the caller should rebuild.
        """
        isolated = [v for v in (x, y) if after_wcsr.degree(v) == 0]
        if isolated:
            self._isolated_endpoint_fix(isolated)
            return rows_spent
        dirty_rows = self._deletion_dirty_rows(x, y, w_edge, after_wcsr)
        if dirty_rows.size == 0:
            return rows_spent
        roots = _deletion_roots(self._D, x, y, w_edge, dirty_rows)
        cap = dirty_rows.size * self._n / 2.0
        positions = _affected_positions(
            self._D,
            self._inf,
            after_wcsr.indptr,
            after_wcsr.indices,
            after_wcsr.weights,
            dirty_rows,
            roots,
            cap,
        )
        if positions is not None:
            self._prepare_write()
            _region_relax(
                self._D,
                self._inf,
                after_wcsr.indptr,
                after_wcsr.indices,
                after_wcsr.weights,
                positions,
            )
            self.stats["region_repairs"] += 1
            self.stats["region_vertices"] += int(positions.size)
            return rows_spent + positions.size / self._n
        rows_spent += dirty_rows.size
        if rows_spent > row_budget:
            return None
        self._prepare_write()
        self._sssp_rows(after_wcsr, dirty_rows, self._D, dirty_rows)
        return rows_spent

    def remove_edge(self, x: int, y: int) -> str:
        """Sync the matrix to the substrate minus edge ``{x, y}``.

        The diff-free single-deletion entry point: callers that already
        know the delta (e.g. a cache forwarding one fold to a whole
        engine pool) skip the edge-set diff of :meth:`update` entirely
        and run the deletion repair hierarchy directly — pendant column
        fix when the removal isolates an endpoint, affected-region
        repair when the region stays small, bounded dirty-row recompute,
        rebuild fallback.
        """
        if not 0 <= x < self._n or not 0 <= y < self._n:
            raise GraphError(
                f"edge endpoint out of range [0, {self._n}): {{{x}, {y}}}"
            )
        w_edge = self._wcsr.edge_weight(x, y)  # raises if absent
        new_wcsr = self._remove_edge(self._wcsr, x, y)
        if self._lazy:
            self._lazy_deletion_repair(x, y, w_edge, new_wcsr)
            self._wcsr = new_wcsr
            self._epoch += 1
            self.stats["deltas"] += 1
            return "delta"
        if self._dirty_fraction > 0.0:
            spent = self._single_deletion_repair(
                x, y, w_edge, new_wcsr, row_budget=self.row_budget()
            )
            if spent is not None:
                self._wcsr = new_wcsr
                self._epoch += 1
                self.stats["deltas"] += 1
                return "delta"
        self.rebuild(new_wcsr)
        return "rebuild"

    def _insert_edge(self, wcsr: WeightedCSR, x: int, y: int, w: int) -> WeightedCSR:
        """Copy of ``wcsr`` with the undirected edge ``{x, y}`` (length
        ``w``) spliced in; raises if the edge is already present."""
        entries = []
        for a, b in ((x, y), (y, x)):
            lo, hi = int(wcsr.indptr[a]), int(wcsr.indptr[a + 1])
            pos = lo + int(np.searchsorted(wcsr.indices[lo:hi], b))
            if pos < hi and wcsr.indices[pos] == b:
                raise GraphError(f"edge {{{x}, {y}}} already present in substrate")
            entries.append((pos, a, b))
        # Ties in position (adjacent empty rows) must keep row order so
        # each value lands in its owner's CSR segment.
        entries.sort()
        positions = [p for p, _, _ in entries]
        values = [b for _, _, b in entries]
        counts = np.diff(wcsr.indptr).copy()
        counts[x] += 1
        counts[y] += 1
        indptr = np.zeros(wcsr.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return WeightedCSR(
            n=wcsr.n,
            indptr=indptr,
            indices=np.insert(wcsr.indices, positions, values),
            weights=np.insert(wcsr.weights, positions, w),
        )

    def add_edge(self, x: int, y: int, w: int = 1) -> str:
        """Sync the matrix to the substrate plus edge ``{x, y}``.

        The diff-free single-insertion entry point, mirroring
        :meth:`remove_edge`: callers that already know the delta (a
        cache forwarding one Gray-walk arc swap to a whole engine pool)
        skip the edge-set diff of :meth:`update` entirely. Insertions
        only shorten distances, so the repair is one pivot-row SSSP
        plus the vectorised decrease-only min-plus pass — the same
        machinery :meth:`update` uses for its insertion batches.
        """
        if not 0 <= x < self._n or not 0 <= y < self._n:
            raise GraphError(
                f"edge endpoint out of range [0, {self._n}): {{{x}, {y}}}"
            )
        if x == y:
            raise GraphError(f"self-loop {{{x}, {y}}} cannot be inserted")
        w = int(w)
        if w < 1:
            raise GraphError(f"edge weights must be positive integers, got {w}")
        if (self._n - 1) * w >= self._inf:
            raise GraphError(
                f"edge weight {w} overflows the inf sentinel {self._inf}; "
                f"build the engine with max_weight >= {w}"
            )
        new_wcsr = self._insert_edge(self._wcsr, x, y, w)
        if self._lazy:
            self._wcsr = new_wcsr
            hot = np.flatnonzero(self._hot)
            if hot.size:
                pivot = min(x, y)
                rows = np.asarray([pivot], dtype=np.int64)
                self._sssp_rows(new_wcsr, rows, self._D, rows)
                self._hot[pivot] = True
                _minplus_through_pivots(
                    self._D, rows, rows, rows=np.flatnonzero(self._hot)
                )
            self._epoch += 1
            self.stats["deltas"] += 1
            return "delta"
        if self._dirty_fraction > 0.0 and self._dirty_fraction * self._n >= 1.0:
            pivot = min(x, y)
            self._prepare_write()
            self._wcsr = new_wcsr
            rows = np.asarray([pivot], dtype=np.int64)
            self._sssp_rows(new_wcsr, rows, self._D, rows)
            _minplus_through_pivots(self._D, rows, rows)
            self._epoch += 1
            self.stats["deltas"] += 1
            return "delta"
        self.rebuild(new_wcsr)
        return "rebuild"

    def _lazy_update(
        self,
        new_wcsr: WeightedCSR,
        removed_ids: np.ndarray,
        removed_w: np.ndarray,
        added_ids: np.ndarray,
        changed_ids: np.ndarray,
    ) -> str:
        """:meth:`update` for a lazy engine: maintain only the hot rows.

        Light churn repairs hot rows in place (sequential deletions
        through the hot-row hierarchy, pivot rows + the hot-subset
        min-plus pass for insertions). Heavy churn — or any in-place
        weight change, which composes both directions at once — just
        invalidates the hot set (the zero-cost lazy analogue of a
        rebuild); rows re-materialise on demand against the new
        substrate.
        """
        n = self._n
        hot = np.flatnonzero(self._hot)
        churn = removed_ids.size + added_ids.size + changed_ids.size
        heavy = (
            changed_ids.size > 0
            or removed_ids.size > _SEQUENTIAL_DELETION_CAP
            or churn > max(16.0, n / 8)
        )
        if hot.size and not heavy:
            work = self._wcsr
            for eid, w_edge in zip(removed_ids, removed_w):
                x = int(eid // n)
                y = int(eid - x * n)
                work = self._remove_edge(work, x, y)
                self._lazy_deletion_repair(x, y, int(w_edge), work)
            self._wcsr = new_wcsr
            if added_ids.size:
                ax = added_ids // n
                ay = added_ids - ax * n
                pivots = _pivot_cover(np.stack([ax, ay], axis=1))
                self._sssp_rows(new_wcsr, pivots, self._D, pivots)
                self._hot[pivots] = True
                _minplus_through_pivots(
                    self._D, pivots, pivots, rows=np.flatnonzero(self._hot)
                )
            self._epoch += 1
            self.stats["deltas"] += 1
            return "delta"
        if hot.size:
            self._hot[:] = False
            self.stats["lazy_invalidations"] += 1
        self._wcsr = new_wcsr
        self._epoch += 1
        self.stats["deltas"] += 1
        return "delta" if not hot.size else "rebuild"

    def update(self, new_wcsr: WeightedCSR) -> str:
        """Sync the matrix to ``new_wcsr``; returns the path taken.

        ``"noop"`` | ``"delta"`` | ``"rebuild"`` — see the module
        docstring for the policy. The epoch is bumped unless the edge
        sets and weights are identical.
        """
        if new_wcsr is self._wcsr:
            self.stats["noops"] += 1
            return "noop"
        if new_wcsr.n != self._n:
            raise GraphError(
                f"substrate size changed ({new_wcsr.n} != {self._n}); "
                f"build a fresh engine instead"
            )
        self._check_weights(new_wcsr)
        old_ids, old_w = _edge_ids_weights(self._wcsr)
        new_ids, new_w = _edge_ids_weights(new_wcsr)
        if old_ids.size + new_ids.size <= 512:
            # Tiny substrates (the census / folding regime): python-set
            # symmetric difference beats intersect1d's sort machinery by
            # a wide margin. Same sorted outputs either way.
            if self._wcsr.max_weight() == 1 and new_wcsr.max_weight() == 1:
                # All-unit regime: weights cannot differ on surviving
                # edges, so the changed-weight scan is skipped and the
                # id sets alone drive the diff.
                old_set = set(old_ids.tolist())
                new_set = set(new_ids.tolist())
                removed_ids = np.asarray(sorted(old_set - new_set), dtype=np.int64)
                removed_w = np.ones(removed_ids.size, dtype=np.int64)
                added_ids = np.asarray(sorted(new_set - old_set), dtype=np.int64)
                changed_ids = np.empty(0, dtype=np.int64)
                changed_old_w = np.empty(0, dtype=np.int64)
            else:
                old_map = dict(zip(old_ids.tolist(), old_w.tolist()))
                new_map = dict(zip(new_ids.tolist(), new_w.tolist()))
                removed = sorted(old_map.keys() - new_map.keys())
                added = sorted(new_map.keys() - old_map.keys())
                changed = sorted(
                    k for k in old_map.keys() & new_map.keys()
                    if old_map[k] != new_map[k]
                )
                removed_ids = np.asarray(removed, dtype=np.int64)
                removed_w = np.asarray([old_map[k] for k in removed], dtype=np.int64)
                added_ids = np.asarray(added, dtype=np.int64)
                changed_ids = np.asarray(changed, dtype=np.int64)
                changed_old_w = np.asarray([old_map[k] for k in changed], dtype=np.int64)
        else:
            common, oi, ni = np.intersect1d(
                old_ids, new_ids, assume_unique=True, return_indices=True
            )
            changed_mask = old_w[oi] != new_w[ni]
            changed_ids = common[changed_mask]
            changed_old_w = old_w[oi][changed_mask]
            removed_mask = np.ones(old_ids.size, dtype=bool)
            removed_mask[oi] = False
            removed_ids = old_ids[removed_mask]
            removed_w = old_w[removed_mask]
            added_mask = np.ones(new_ids.size, dtype=bool)
            added_mask[ni] = False
            added_ids = new_ids[added_mask]
        if removed_ids.size == 0 and added_ids.size == 0 and changed_ids.size == 0:
            self._wcsr = new_wcsr
            self.stats["noops"] += 1
            return "noop"
        if self._lazy:
            return self._lazy_update(
                new_wcsr, removed_ids, removed_w, added_ids, changed_ids
            )

        n = self._n
        row_budget = self._dirty_fraction * n

        if (
            removed_ids.size == 1
            and added_ids.size == 0
            and changed_ids.size == 0
            and self._dirty_fraction > 0.0
        ):
            # Single-deletion fast path (one fold, one dropped arc): the
            # new substrate *is* the post-removal intermediate, so the
            # repair hierarchy runs on it directly — no edge-removal
            # copy, no pivot machinery.
            eid = int(removed_ids[0])
            x = eid // n
            y = eid - x * n
            spent = self._single_deletion_repair(
                x, y, int(removed_w[0]), new_wcsr, row_budget=row_budget
            )
            if spent is not None:
                self._wcsr = new_wcsr
                self._epoch += 1
                self.stats["deltas"] += 1
                return "delta"
            self.rebuild(new_wcsr)
            return "rebuild"

        churn = removed_ids.size + added_ids.size + changed_ids.size
        analysis_cap = min(row_budget, max(16.0, n / 8))
        sequential = removed_ids.size <= _SEQUENTIAL_DELETION_CAP and changed_ids.size == 0
        if self._dirty_fraction == 0.0 or (not sequential and churn > analysis_cap):
            self.rebuild(new_wcsr)
            return "rebuild"

        # Weight changes compose as removal (tight w.r.t. the old
        # weight) + insertion (pivot cover): sound for both directions.
        lengthen_ids = np.concatenate([removed_ids, changed_ids])
        lengthen_w = np.concatenate([removed_w, changed_old_w])
        shorten_ids = np.concatenate([added_ids, changed_ids])

        pivots = np.empty(0, dtype=np.int64)
        if shorten_ids.size:
            if shorten_ids.size > analysis_cap:
                self.rebuild(new_wcsr)
                return "rebuild"
            ax = shorten_ids // n
            ay = shorten_ids - ax * n
            pivots = _pivot_cover(np.stack([ax, ay], axis=1))

        rows_spent = pivots.size
        if rows_spent > row_budget:
            self.rebuild(new_wcsr)
            return "rebuild"
        if sequential and removed_ids.size:
            # One edge at a time through the deletion repair hierarchy
            # (pendant -> affected region -> dirty rows); matrix and
            # working substrate advance together so every step's filter
            # runs against exact distances.
            self._prepare_write()
            work = self._wcsr
            spent = float(rows_spent)
            for eid, w_edge in zip(removed_ids, removed_w):
                x = int(eid // n)
                y = int(eid - x * n)
                work = self._remove_edge(work, x, y)
                spent = self._single_deletion_repair(
                    x, y, int(w_edge), work, row_budget=row_budget, rows_spent=spent
                )
                if spent is None:
                    self.rebuild(new_wcsr)
                    return "rebuild"
            rows_spent = spent
            exempt = pivots
        elif lengthen_ids.size:
            # Composed batch: an edge can only lengthen a row's
            # distances if it was tight w.r.t. the pre-batch matrix
            # (|d(s,x) - d(s,y)| == w on some original shortest path),
            # so the coarse filter is sound for the whole batch at once.
            x = lengthen_ids // n
            y = lengthen_ids - x * n
            Dx = self._D[:, x].astype(np.int64)
            Dy = self._D[:, y].astype(np.int64)
            dirty = (np.abs(Dx - Dy) == lengthen_w[None, :]).any(axis=1)
            recompute = np.union1d(np.flatnonzero(dirty), pivots)
            rows_spent += recompute.size - pivots.size
            if rows_spent > row_budget:
                self.rebuild(new_wcsr)
                return "rebuild"
            self._prepare_write()
            self._sssp_rows(new_wcsr, recompute, self._D, recompute)
            exempt = recompute
        else:
            exempt = pivots

        self._wcsr = new_wcsr
        if pivots.size:
            self._prepare_write()
            if exempt is pivots:
                self._sssp_rows(new_wcsr, pivots, self._D, pivots)
            _minplus_through_pivots(self._D, pivots, exempt)
        self._epoch += 1
        self.stats["deltas"] += 1
        return "delta"
