"""Generators of realizations and budget vectors.

Random starting points for best-response dynamics, structured instances
(paths, cycles, stars, random trees), and the budget-vector families the
paper's Table 1 is organised around (Tree-BG, all-unit, all-positive,
minimum-``k``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import BudgetError, GraphError
from ..rng import as_generator, random_partition
from .digraph import OwnedDigraph

__all__ = [
    "random_realization",
    "random_connected_realization",
    "random_tree_realization",
    "path_realization",
    "cycle_realization",
    "star_realization",
    "random_budgets_with_sum",
    "unit_budgets",
    "uniform_budgets",
    "random_positive_budgets",
]


# ----------------------------------------------------------------------
# Budget vectors
# ----------------------------------------------------------------------
def _validate_budgets(budgets: Sequence[int] | np.ndarray) -> np.ndarray:
    b = np.asarray(budgets, dtype=np.int64)
    n = b.size
    if n == 0:
        raise BudgetError("budget vector may not be empty")
    if (b < 0).any() or (b >= n).any():
        raise BudgetError(f"budgets must satisfy 0 <= b_i < n = {n}; got {b.tolist()}")
    return b


def unit_budgets(n: int) -> np.ndarray:
    """The all-unit budget vector ``(1, 1, ..., 1)`` of Section 4."""
    if n < 2:
        raise BudgetError("unit budgets need n >= 2 (a player cannot link to itself)")
    return np.ones(n, dtype=np.int64)


def uniform_budgets(n: int, b: int) -> np.ndarray:
    """Every player gets budget ``b``."""
    out = np.full(n, b, dtype=np.int64)
    return _validate_budgets(out)


def random_budgets_with_sum(
    n: int,
    total: int,
    seed: int | np.random.Generator | None = None,
    *,
    min_budget: int = 0,
) -> np.ndarray:
    """Random budget vector with ``sum(b) = total`` and ``b_i >= min_budget``.

    ``total = n - 1`` with ``min_budget = 0`` samples Tree-BG instances
    (Section 3); ``min_budget = 1`` samples all-positive instances
    (Section 5).
    """
    rng = as_generator(seed)
    base = n * min_budget
    if total < base:
        raise BudgetError(f"total {total} below the minimum {base} = n * min_budget")
    # Rejection-sample the stars-and-bars partition until the < n cap holds;
    # for the parameter ranges used in experiments rejections are rare.
    for _ in range(10_000):
        extra = random_partition(rng, total - base, n)
        b = extra + min_budget
        if (b < n).all():
            return b.astype(np.int64)
    raise BudgetError(
        f"could not sample budgets with sum {total} and min {min_budget} under cap n-1={n - 1}"
    )


def random_positive_budgets(
    n: int, total: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Random all-positive budget vector with the given ``total`` (>= n)."""
    return random_budgets_with_sum(n, total, seed, min_budget=1)


# ----------------------------------------------------------------------
# Realizations
# ----------------------------------------------------------------------
def random_realization(
    budgets: Sequence[int] | np.ndarray,
    seed: int | np.random.Generator | None = None,
) -> OwnedDigraph:
    """Uniformly random realization: player ``i`` links to a random
    ``b_i``-subset of the other players."""
    b = _validate_budgets(budgets)
    n = b.size
    rng = as_generator(seed)
    g = OwnedDigraph(n)
    others = np.arange(n, dtype=np.int64)
    for u in range(n):
        if b[u] == 0:
            continue
        pool = np.delete(others, u)
        targets = rng.choice(pool, size=int(b[u]), replace=False)
        for v in targets:
            g.add_arc(u, int(v))
    return g


def random_connected_realization(
    budgets: Sequence[int] | np.ndarray,
    seed: int | np.random.Generator | None = None,
    *,
    max_tries: int = 200,
) -> OwnedDigraph:
    """Random realization whose underlying graph is connected.

    Requires ``sum(b) >= n - 1``. First wires a random spanning tree using
    available budget (so connectivity is guaranteed, not rejection-based),
    then spends the remaining budget on uniformly random arcs.
    """
    from .connectivity import is_connected

    b = _validate_budgets(budgets)
    n = b.size
    if int(b.sum()) < n - 1:
        raise BudgetError(f"connected realization needs sum(b) >= n - 1, got {int(b.sum())}")
    rng = as_generator(seed)
    for _ in range(max_tries):
        g = _tree_backbone_realization(b, rng)
        if g is None:
            continue
        _spend_remaining_budget(g, b, rng)
        if is_connected(g):
            return g
    raise GraphError("failed to build a connected realization (budget too concentrated?)")


def _tree_backbone_realization(
    b: np.ndarray, rng: np.random.Generator
) -> OwnedDigraph | None:
    """Try to wire a random spanning tree respecting the budget vector.

    Grows a random tree one vertex at a time; each new vertex is attached
    by an arc owned by whichever endpoint still has budget (preferring a
    random choice when both do). Returns ``None`` when a step finds no
    owner with spare budget — caller retries with fresh randomness.
    """
    n = b.size
    g = OwnedDigraph(n)
    remaining = b.copy()
    order = rng.permutation(n)
    in_tree = [int(order[0])]
    for idx in range(1, n):
        v = int(order[idx])
        anchors = rng.permutation(len(in_tree))
        attached = False
        for ai in anchors:
            a = in_tree[int(ai)]
            owners = []
            if remaining[v] > 0:
                owners.append((v, a))
            if remaining[a] > 0:
                owners.append((a, v))
            if owners:
                src, dst = owners[int(rng.integers(len(owners)))]
                g.add_arc(src, dst)
                remaining[src] -= 1
                attached = True
                break
        if not attached:
            return None
        in_tree.append(v)
    return g


def _spend_remaining_budget(g: OwnedDigraph, b: np.ndarray, rng: np.random.Generator) -> None:
    """Spend any leftover budget on random non-duplicate arcs."""
    n = b.size
    for u in range(n):
        need = int(b[u]) - g.out_degree(u)
        if need <= 0:
            continue
        forbidden = set(int(x) for x in g.out_neighbors(u))
        forbidden.add(u)
        pool = np.array([v for v in range(n) if v not in forbidden], dtype=np.int64)
        if pool.size < need:
            raise GraphError(f"player {u} cannot spend its budget: pool exhausted")
        for v in rng.choice(pool, size=need, replace=False):
            g.add_arc(u, int(v))


def random_tree_realization(
    n: int, seed: int | np.random.Generator | None = None
) -> tuple[OwnedDigraph, np.ndarray]:
    """Random labelled tree (via Prüfer sequence) with random arc ownership.

    Returns ``(graph, budgets)`` where ``budgets`` are the induced
    out-degrees — a valid Tree-BG instance (``sum = n - 1``).
    """
    if n < 1:
        raise GraphError("need n >= 1")
    rng = as_generator(seed)
    g = OwnedDigraph(n)
    if n == 1:
        return g, np.zeros(1, dtype=np.int64)
    if n == 2:
        owner = int(rng.integers(2))
        g.add_arc(owner, 1 - owner)
        return g, g.out_degrees()
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in prufer:
        degree[x] += 1
    # Standard Prüfer decoding with a sorted leaf pool.
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        # Random ownership of the tree edge.
        if rng.integers(2) == 0:
            g.add_arc(leaf, int(x))
        else:
            g.add_arc(int(x), leaf)
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    if rng.integers(2) == 0:
        g.add_arc(u, v)
    else:
        g.add_arc(v, u)
    return g, g.out_degrees()


def path_realization(n: int, *, forward: bool = True) -> OwnedDigraph:
    """Path ``0 - 1 - ... - n-1`` with every arc owned by the smaller
    (``forward=True``) or larger endpoint."""
    g = OwnedDigraph(n)
    for i in range(n - 1):
        if forward:
            g.add_arc(i, i + 1)
        else:
            g.add_arc(i + 1, i)
    return g


def cycle_realization(n: int) -> OwnedDigraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (all budgets 1)."""
    if n < 2:
        raise GraphError("cycle needs n >= 2")
    g = OwnedDigraph(n)
    for i in range(n):
        g.add_arc(i, (i + 1) % n)
    return g


def star_realization(n: int, center: int = 0, *, center_owns: bool = True) -> OwnedDigraph:
    """Star with the given center; arcs owned by the center or the leaves."""
    if not 0 <= center < n:
        raise GraphError(f"center {center} out of range")
    g = OwnedDigraph(n)
    for v in range(n):
        if v == center:
            continue
        if center_owns:
            g.add_arc(center, v)
        else:
            g.add_arc(v, center)
    return g
