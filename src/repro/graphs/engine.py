"""Incremental all-pairs distance engine for best-response workloads.

A :class:`DistanceEngine` owns one CSR substrate and the full ``(n, n)``
BFS distance matrix over it, and keeps that matrix correct as the
substrate evolves one strategy swap at a time. Best-response dynamics
rewires only the handful of undirected edges incident to the deviating
player per step, so repairing the matrix is far cheaper than the
from-scratch all-pairs BFS the engine replaces.

Repair / fallback policy
------------------------
``update(new_csr)`` diffs the old and new CSR edge sets and picks one of
three paths, returned as a status string:

* ``"noop"`` — the edge sets are identical; distances and the epoch are
  untouched (a strategy change that was rolled back, or a swap between a
  brace and its surviving single edge).
* ``"delta"`` — incremental repair:

  - **Deletions** can only *increase* distances. Small batches (at most
    ``_SEQUENTIAL_DELETION_CAP`` edges) are processed one edge at a
    time with the exact support criterion: removing ``{x, y}`` affects
    source ``s`` only if the downhill endpoint (say ``d(s, y) =
    d(s, x) + 1``) loses its *only* tight parent — if another neighbour
    ``z`` of ``y`` with ``d(s, z) = d(s, y) - 1`` survives, every
    shortest path through the edge reroutes through ``z`` at equal
    length and row ``s`` is untouched. Affected rows get a bounded
    recompute: a fresh batched BFS of just those sources on the
    intermediate substrate. Larger batches use the coarser (sound but
    pessimistic) tightness filter ``|d(s, x) - d(s, y)| == 1`` in one
    composed pass.
  - **Insertions** can only *decrease* distances. Every inserted edge is
    covered by a small *pivot* vertex set (greedy vertex cover of the
    inserted edges — for a best-response step this is exactly the
    deviating player). Pivot rows are recomputed exactly on the final
    substrate, after which every other row repairs in one vectorised
    decrease-only pass: ``d(s, v) = min(d(s, v), min_p d(p, s) +
    d(p, v))`` — any path through an inserted edge passes through a
    pivot ``p``.

* ``"rebuild"`` — full batched all-pairs BFS into the preallocated
  matrix, taken whenever the rows needing a fresh BFS exceed the row
  budget (repairing most rows costs more than starting over), whenever
  the changed-edge count alone exceeds the analysis budget (heavy
  churn), and always available via :meth:`rebuild`.

The row budget is ``dirty_fraction * n`` by default. Passing
``dirty_fraction="adaptive"`` instead derives the budget from the
engine's own cost counters: exponential moving averages of the
wall-clock cost of a full rebuild and of the per-row cost of a delta
repair (analysis included) set the break-even row count, so sparse
tree-like substrates — where per-row repair is comparatively expensive
because deletions dirty whole rows — fall back to rebuilds earlier,
and dense substrates repair more aggressively. Both paths produce
identical matrices; the knob only trades time.

Every path that may change distances bumps the ``epoch`` counter;
consumers snapshot the epoch at read time and revalidate with
:meth:`ensure_epoch`, so a stale view raises
:class:`~repro.errors.StaleDistanceError` instead of silently serving
distances of a substrate that no longer exists.

Unreachable pairs are stored as the finite sentinel ``inf`` (the paper's
``Cinf = n^2`` by default) so that the min-plus repair needs no special
cases; :meth:`distances` converts back to the BFS module's
``UNREACHABLE`` convention on request. Matrices are stored as ``int32``
whenever the sentinel arithmetic fits (it does for every realistic
``n``), halving the memory traffic of a pool of per-player engines;
consumers that aggregate rows should accumulate into ``int64``.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..errors import GraphError, StaleDistanceError, VertexError
from .bfs import UNREACHABLE
from .csr import CSRAdjacency, csr_without_vertex
from .distances import cinf

__all__ = ["DistanceEngine"]

#: Default fallback threshold: delta-repair only while the rows needing a
#: fresh BFS stay below this fraction of all rows.
DEFAULT_DIRTY_FRACTION: float = 0.5

#: Deletion batches up to this size are repaired edge-by-edge with the
#: exact support criterion; larger batches use the composed tightness
#: filter (cheaper to evaluate, far more pessimistic).
_SEQUENTIAL_DELETION_CAP: int = 32

#: Smoothing factor of the adaptive-threshold cost EMAs: new samples
#: carry this weight, so the budget tracks a drifting workload within a
#: handful of updates without thrashing on one noisy measurement.
_EMA_ALPHA: float = 0.25


def _edge_ids(csr: CSRAdjacency) -> np.ndarray:
    """Sorted unique ids ``x * n + y`` (``x < y``) of the undirected edges."""
    row_of = np.repeat(np.arange(csr.n, dtype=np.int64), np.diff(csr.indptr))
    mask = row_of < csr.indices
    return row_of[mask] * csr.n + csr.indices[mask]


def _csr_remove_edge(csr: CSRAdjacency, x: int, y: int) -> CSRAdjacency:
    """Copy of ``csr`` with the undirected edge ``{x, y}`` removed."""
    keep = np.ones(csr.indices.size, dtype=bool)
    for a, b in ((x, y), (y, x)):
        lo, hi = int(csr.indptr[a]), int(csr.indptr[a + 1])
        pos = lo + int(np.searchsorted(csr.indices[lo:hi], b))
        if pos >= hi or csr.indices[pos] != b:
            raise GraphError(f"edge {{{x}, {y}}} not present in substrate")
        keep[pos] = False
    counts = np.diff(csr.indptr).copy()
    counts[x] -= 1
    counts[y] -= 1
    indptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(n=csr.n, indptr=indptr, indices=csr.indices[keep])


def _bfs_flat_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    inf: int,
    flat: np.ndarray,
    slots: np.ndarray,
    verts: np.ndarray,
) -> None:
    """Level-synchronous flat-frontier BFS over ``(slot, vertex)`` labels.

    Writes levels into ``flat`` (the flattened ``(k, n)`` output buffer,
    pre-filled with ``inf``) starting from ``flat[slots * n + verts] =
    0``. Shared by the unit engine's kernel and the weighted engine's
    unit-weight fast path — one implementation, two callers. The
    ``slots``/``verts`` arrays are never written to (the loop rebinds
    fresh arrays), so callers may pass views.
    """
    flat[slots * n + verts] = 0
    level = 0
    while verts.size:
        level += 1
        starts = indptr[verts]
        counts = indptr[verts + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        cum = np.cumsum(counts)
        offsets = np.repeat(starts - (cum - counts), counts) + np.arange(
            total, dtype=np.int64
        )
        nbrs = indices[offsets]
        idx = np.repeat(slots, counts) * n + nbrs
        idx = idx[flat[idx] == inf]
        if idx.size == 0:
            break
        # Dedupe via sort + run mask (same result as np.unique, much
        # cheaper than its hash path on these small int ranges).
        idx.sort(kind="stable")
        keep = np.empty(idx.size, dtype=bool)
        keep[0] = True
        np.not_equal(idx[1:], idx[:-1], out=keep[1:])
        idx = idx[keep]
        flat[idx] = level
        slots = idx // n
        verts = idx - slots * n


def _pivot_cover(edges: np.ndarray) -> np.ndarray:
    """Small vertex set covering every edge (greedy max-degree, deterministic).

    For the edges inserted by one player's strategy change this returns
    exactly that player; the greedy rule keeps the cover near-minimal
    when several pending moves are composed into one delta.
    """
    remaining = [(int(x), int(y)) for x, y in edges]
    pivots: list[int] = []
    while remaining:
        counts: dict[int, int] = {}
        for x, y in remaining:
            counts[x] = counts.get(x, 0) + 1
            counts[y] = counts.get(y, 0) + 1
        # Highest cover count wins; ties break to the smallest vertex id
        # so replays are deterministic.
        best = min(counts, key=lambda v: (-counts[v], v))
        pivots.append(best)
        remaining = [e for e in remaining if best not in e]
    return np.asarray(sorted(pivots), dtype=np.int64)


class DistanceEngine:
    """All-pairs BFS distances over one CSR substrate, with delta repair.

    Parameters
    ----------
    csr:
        The initial substrate (an undirected CSR adjacency).
    inf:
        Finite sentinel stored for unreachable pairs. Defaults to the
        paper's ``Cinf = n^2``, which the best-response environment
        consumes directly; any value ``> 2 * (n - 1)`` is safe for the
        min-plus repair.
    dirty_fraction:
        Fallback knob: see the module docstring. ``0.0`` disables delta
        repair entirely (every change rebuilds), ``1.0`` forces delta
        repair whenever the analysis budget allows it, and the string
        ``"adaptive"`` tunes the cutoff from the engine's own repair
        cost vs rebuild cost EMAs.
    """

    __slots__ = (
        "_csr",
        "_n",
        "_inf",
        "_dtype",
        "_D",
        "_cow",
        "_epoch",
        "_dirty_fraction",
        "_adaptive",
        "_ema_rebuild_cost",
        "_ema_delta_row_cost",
        "stats",
    )

    def __init__(
        self,
        csr: CSRAdjacency,
        *,
        inf: int | None = None,
        dirty_fraction: "float | str" = DEFAULT_DIRTY_FRACTION,
    ) -> None:
        self._configure(csr, inf, dirty_fraction)
        self._D = np.empty((self._n, self._n), dtype=self._dtype)
        self._cow = False
        self._epoch = 0
        self.stats = {
            "rebuilds": 0,
            "deltas": 0,
            "noops": 0,
            "rows_recomputed": 0,
            "cow_copies": 0,
        }
        self.rebuild()

    def _configure(
        self, csr: CSRAdjacency, inf: "int | None", dirty_fraction: "float | str"
    ) -> None:
        """Shared constructor core (substrate checks, sentinel, dtype)."""
        if not isinstance(csr, CSRAdjacency):
            raise GraphError("DistanceEngine needs a CSRAdjacency substrate")
        if isinstance(dirty_fraction, str):
            if dirty_fraction != "adaptive":
                raise GraphError(
                    f'dirty_fraction must be a float in [0, 1] or "adaptive", '
                    f"got {dirty_fraction!r}"
                )
            self._adaptive = True
            dirty_fraction = DEFAULT_DIRTY_FRACTION
        else:
            self._adaptive = False
            if not 0.0 <= dirty_fraction <= 1.0:
                raise GraphError(
                    f"dirty_fraction must be in [0, 1], got {dirty_fraction}"
                )
        self._ema_rebuild_cost: "float | None" = None
        self._ema_delta_row_cost: "float | None" = None
        self._n = csr.n
        self._inf = cinf(csr.n) if inf is None else int(inf)
        if self._inf <= 2 * (self._n - 1):
            raise GraphError(
                f"inf sentinel {self._inf} too small for n={self._n}; "
                f"need inf > 2(n-1) for the min-plus repair"
            )
        # int32 halves the footprint of an engine pool; all stored values
        # are bounded by inf and the min-plus repair peaks at 2 * inf.
        self._dtype = np.int32 if 2 * self._inf < 2**31 else np.int64
        self._dirty_fraction = float(dirty_fraction)
        self._csr = csr

    @classmethod
    def from_snapshot(
        cls,
        csr: CSRAdjacency,
        matrix: np.ndarray,
        *,
        inf: int | None = None,
        dirty_fraction: "float | str" = DEFAULT_DIRTY_FRACTION,
        copy: bool = False,
    ) -> "DistanceEngine":
        """Engine adopting a precomputed distance matrix — no initial BFS.

        ``matrix`` must be the exact all-pairs matrix of ``csr`` under
        the engine's ``inf``/dtype conventions (e.g. a view attached
        from a :class:`~repro.core.matrix_pool.MatrixPool` segment, or
        another engine's matrix). With ``copy=False`` the engine aliases
        the buffer **copy-on-write**: reads are zero-copy, and the first
        mutation (any delta repair or rebuild) copies into a private
        buffer first, so the adopted segment is never written — the
        guard that lets many workers attach one shared segment safely.
        """
        engine = cls.__new__(cls)
        engine._configure(csr, inf, dirty_fraction)
        matrix = np.asarray(matrix)
        if matrix.shape != (engine._n, engine._n):
            raise GraphError(
                f"snapshot matrix shape {matrix.shape} != "
                f"{(engine._n, engine._n)}"
            )
        if matrix.dtype != engine._dtype:
            raise GraphError(
                f"snapshot matrix dtype {matrix.dtype} != expected "
                f"{np.dtype(engine._dtype).name} (inf={engine._inf})"
            )
        if not matrix.flags.c_contiguous:
            raise GraphError("snapshot matrix must be C-contiguous")
        engine._D = matrix.copy() if copy else matrix
        engine._cow = not copy
        engine._epoch = 0
        engine.stats = {
            "rebuilds": 0,
            "deltas": 0,
            "noops": 0,
            "rows_recomputed": 0,
            "cow_copies": 0,
        }
        return engine

    @property
    def copy_on_write(self) -> bool:
        """Whether the matrix still aliases an adopted (shared) buffer."""
        return self._cow

    def _prepare_write(self, preserve: bool = True) -> None:
        """Detach from an adopted buffer before the first in-place write.

        ``preserve=False`` skips copying the content for full overwrites
        (a rebuild); either way the adopted segment is left untouched.
        """
        if self._cow:
            self._D = np.array(self._D) if preserve else np.empty_like(self._D)
            self._cow = False
            self.stats["cow_copies"] += 1

    @classmethod
    def from_graph(
        cls, graph, *, isolate: int | None = None, **kwargs
    ) -> "DistanceEngine":
        """Engine over ``U(G)``, optionally with one vertex isolated.

        ``isolate=u`` builds the best-response substrate ``U(G - u)``
        (same index space, ``u`` edgeless).
        """
        csr = graph.undirected_csr()
        if isolate is not None:
            csr = csr_without_vertex(csr, isolate)
        return cls(csr, **kwargs)

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices of the substrate."""
        return self._n

    @property
    def csr(self) -> CSRAdjacency:
        """The substrate the current matrix describes."""
        return self._csr

    @property
    def inf(self) -> int:
        """Finite sentinel stored for unreachable pairs."""
        return self._inf

    @property
    def epoch(self) -> int:
        """Counter bumped whenever the distance content may have changed."""
        return self._epoch

    @property
    def adaptive(self) -> bool:
        """Whether the delta-vs-rebuild cutoff is tuned from cost EMAs."""
        return self._adaptive

    def row_budget(self) -> float:
        """Rows a delta repair may recompute before falling back to rebuild.

        Fixed mode returns ``dirty_fraction * n``. Adaptive mode returns
        the measured break-even point ``rebuild_cost / delta_row_cost``
        (clamped to ``[1, n]``) once both EMAs are seeded, and the fixed
        default until then.
        """
        if (
            self._adaptive
            and self._ema_rebuild_cost is not None
            and self._ema_delta_row_cost is not None
            and self._ema_delta_row_cost > 0.0
        ):
            est = self._ema_rebuild_cost / self._ema_delta_row_cost
            return float(min(float(self._n), max(1.0, est)))
        return self._dirty_fraction * self._n

    def _observe(self, which: str, seconds: float, rows: int) -> None:
        """Fold one timed repair/rebuild into the adaptive cost EMAs."""
        if not self._adaptive:
            return
        if which == "rebuild":
            prev = self._ema_rebuild_cost
            self._ema_rebuild_cost = (
                seconds if prev is None else (1 - _EMA_ALPHA) * prev + _EMA_ALPHA * seconds
            )
        else:
            per_row = seconds / max(1, rows)
            prev = self._ema_delta_row_cost
            self._ema_delta_row_cost = (
                per_row if prev is None else (1 - _EMA_ALPHA) * prev + _EMA_ALPHA * per_row
            )

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n, n)`` distance view (``inf`` for unreachable).

        The view aliases the engine's buffer: it is only valid for the
        epoch at which it was taken. Guard reuse with
        :meth:`ensure_epoch`.
        """
        view = self._D.view()
        view.flags.writeable = False
        return view

    def row(self, s: int) -> np.ndarray:
        """Read-only distance row from source ``s`` (``inf`` convention)."""
        if not 0 <= s < self._n:
            raise VertexError(s, self._n)
        return self.matrix[s]

    def distance(self, s: int, v: int) -> int:
        """Distance ``s -> v``; ``UNREACHABLE`` across components."""
        if not 0 <= s < self._n:
            raise VertexError(s, self._n)
        if not 0 <= v < self._n:
            raise VertexError(v, self._n)
        d = int(self._D[s, v])
        return UNREACHABLE if d >= self._inf else d

    def distances(self, *, sentinel: int = UNREACHABLE) -> np.ndarray:
        """``int64`` copy of the full matrix, unreachable pairs remapped."""
        out = self._D.astype(np.int64)
        if sentinel != self._inf:
            out[out >= self._inf] = sentinel
        return out

    def ensure_epoch(self, epoch: int) -> None:
        """Raise :class:`StaleDistanceError` unless ``epoch`` is current."""
        if epoch != self._epoch:
            raise StaleDistanceError(
                f"distance view from epoch {epoch} is stale; engine is at "
                f"epoch {self._epoch}"
            )

    # ------------------------------------------------------------------
    # Batched BFS kernel
    # ------------------------------------------------------------------
    def _bfs_rows(
        self,
        csr: CSRAdjacency,
        sources: np.ndarray,
        out: np.ndarray,
        out_rows: np.ndarray,
    ) -> None:
        """Batched BFS: ``out[out_rows[i]] = dist(sources[i], .)`` in-place.

        All sources expand level-synchronously in one flat frontier of
        ``(output row, vertex)`` pairs, so each level costs a handful of
        numpy gathers regardless of how many sources are in flight. The
        output buffer is written through its flat view — no per-source
        allocation.
        """
        n = self._n
        k = sources.size
        if k == 0:
            return
        if not out.flags.c_contiguous or out.shape[1] != n:
            raise GraphError("batched BFS needs a C-contiguous (k, n) buffer")
        inf = self._inf
        out[out_rows] = inf
        flat = out.reshape(-1)
        _bfs_flat_frontier(
            csr.indptr,
            csr.indices,
            n,
            inf,
            flat,
            np.asarray(out_rows, dtype=np.int64),
            np.asarray(sources, dtype=np.int64),
        )
        self.stats["rows_recomputed"] += k

    def distances_from(
        self, sources: Sequence[int] | np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched multi-source BFS on the current substrate.

        Row ``i`` of the result holds distances from ``sources[i]``
        under the engine's ``inf`` convention. Pass a preallocated
        C-contiguous ``(len(sources), n)`` buffer of the engine's dtype
        as ``out`` to avoid the allocation on hot paths.
        """
        src = np.asarray(sources, dtype=np.int64).ravel()
        if src.size and (src.min() < 0 or src.max() >= self._n):
            bad = int(src.min()) if src.min() < 0 else int(src.max())
            raise VertexError(bad, self._n)
        if out is None:
            out = np.empty((src.size, self._n), dtype=self._dtype)
        elif out.shape != (src.size, self._n) or out.dtype != self._dtype:
            raise GraphError(
                f"out buffer must be {np.dtype(self._dtype).name} of shape "
                f"{(src.size, self._n)}"
            )
        self._bfs_rows(self._csr, src, out, np.arange(src.size, dtype=np.int64))
        return out

    # ------------------------------------------------------------------
    # Mutation API
    # ------------------------------------------------------------------
    def rebuild(self, new_csr: CSRAdjacency | None = None) -> None:
        """Full batched all-pairs BFS (optionally onto a new substrate)."""
        if new_csr is not None:
            if new_csr.n != self._n:
                raise GraphError(
                    f"substrate size changed ({new_csr.n} != {self._n}); "
                    f"build a fresh engine instead"
                )
            self._csr = new_csr
        self._prepare_write(preserve=False)
        all_rows = np.arange(self._n, dtype=np.int64)
        t0 = time.perf_counter()
        self._bfs_rows(self._csr, all_rows, self._D, all_rows)
        self._observe("rebuild", time.perf_counter() - t0, self._n)
        self._epoch += 1
        self.stats["rebuilds"] += 1

    def _deletion_dirty_rows(
        self, x: int, y: int, after_csr: CSRAdjacency
    ) -> np.ndarray:
        """Sources whose row may change when edge ``{x, y}`` is removed.

        Exact support criterion against the current matrix: a source is
        affected only if the downhill endpoint has no surviving tight
        parent in ``after_csr`` (the substrate with the edge already
        removed, and without any not-yet-applied insertions).
        """
        dirty = np.zeros(self._n, dtype=bool)
        dx = self._D[:, x]
        dy = self._D[:, y]
        for hi, dlo in ((y, dx), (x, dy)):
            supported = self._D[:, hi] == dlo + 1
            if not supported.any():
                continue
            alt_nbrs = after_csr.neighbors(hi)
            if alt_nbrs.size:
                alt = (self._D[:, alt_nbrs] == dlo[:, None]).any(axis=1)
                dirty |= supported & ~alt
            else:
                dirty |= supported
        return np.flatnonzero(dirty)

    def update(self, new_csr: CSRAdjacency) -> str:
        """Sync the matrix to ``new_csr``; returns the path taken.

        ``"noop"`` | ``"delta"`` | ``"rebuild"`` — see the module
        docstring for the policy. The epoch is bumped unless the edge
        sets are identical.
        """
        if new_csr is self._csr:
            self.stats["noops"] += 1
            return "noop"
        if new_csr.n != self._n:
            raise GraphError(
                f"substrate size changed ({new_csr.n} != {self._n}); "
                f"build a fresh engine instead"
            )
        old_ids = _edge_ids(self._csr)
        new_ids = _edge_ids(new_csr)
        if old_ids.size + new_ids.size <= 512:
            # Tiny substrates (the census regime): python-set symmetric
            # difference beats setdiff1d's isin/unique machinery by an
            # order of magnitude. Same sorted outputs either way.
            old_set = set(old_ids.tolist())
            new_set = set(new_ids.tolist())
            removed_ids = np.asarray(sorted(old_set - new_set), dtype=np.int64)
            added_ids = np.asarray(sorted(new_set - old_set), dtype=np.int64)
        else:
            removed_ids = np.setdiff1d(old_ids, new_ids, assume_unique=True)
            added_ids = np.setdiff1d(new_ids, old_ids, assume_unique=True)
        if removed_ids.size == 0 and added_ids.size == 0:
            self._csr = new_csr
            self.stats["noops"] += 1
            return "noop"

        n = self._n
        row_budget = self.row_budget()
        analysis_cap = min(row_budget, max(16.0, n / 8))
        sequential = removed_ids.size <= _SEQUENTIAL_DELETION_CAP
        if (not self._adaptive and self._dirty_fraction == 0.0) or (
            not sequential and removed_ids.size + added_ids.size > analysis_cap
        ):
            # Heavy churn: the per-edge analysis below would cost more
            # than the batched rebuild it is trying to avoid.
            self.rebuild(new_csr)
            return "rebuild"

        self._prepare_write()  # delta repairs write in place: detach first
        t_delta = time.perf_counter()
        pivots = np.empty(0, dtype=np.int64)
        if added_ids.size:
            if added_ids.size > analysis_cap:
                self.rebuild(new_csr)
                return "rebuild"
            ax = added_ids // n
            ay = added_ids - ax * n
            pivots = _pivot_cover(np.stack([ax, ay], axis=1))

        rows_spent = pivots.size
        if rows_spent > row_budget:
            self.rebuild(new_csr)
            return "rebuild"
        if sequential and removed_ids.size:
            # One edge at a time with the exact support filter; the
            # matrix and a working substrate advance together, so each
            # step's filter and repair are against exact distances.
            work_csr = self._csr
            for eid in removed_ids:
                x = int(eid // n)
                y = int(eid - x * n)
                work_csr = _csr_remove_edge(work_csr, x, y)
                dirty_rows = self._deletion_dirty_rows(x, y, work_csr)
                rows_spent += dirty_rows.size
                if rows_spent > row_budget:
                    self.rebuild(new_csr)
                    return "rebuild"
                self._bfs_rows(work_csr, dirty_rows, self._D, dirty_rows)
            exempt = pivots
        elif removed_ids.size:
            # Composed batch: the coarse tightness filter, one pass.
            x = removed_ids // n
            y = removed_ids - x * n
            Dx = self._D[:, x].astype(np.int64)
            Dy = self._D[:, y].astype(np.int64)
            dirty = (np.abs(Dx - Dy) == 1).any(axis=1)
            recompute = np.union1d(np.flatnonzero(dirty), pivots)
            rows_spent += recompute.size - pivots.size
            if rows_spent > row_budget:
                self.rebuild(new_csr)
                return "rebuild"
            # Recomputed on the final substrate, so these rows are
            # already exact and skip the insertion repair below.
            self._bfs_rows(new_csr, recompute, self._D, recompute)
            exempt = recompute
        else:
            exempt = pivots

        self._csr = new_csr
        if pivots.size:
            if exempt is pivots:
                # Not yet recomputed (the composed path folds the pivot
                # rows into `recompute` on the final substrate already).
                self._bfs_rows(new_csr, pivots, self._D, pivots)
            survivors = np.ones(n, dtype=bool)
            survivors[exempt] = False
            rows = np.flatnonzero(survivors)
            if rows.size:
                # Decrease-only repair: any path using an inserted edge
                # passes through a pivot, whose row is now exact.
                block = self._D[rows]
                for p in pivots:
                    dp = self._D[p]
                    np.minimum(block, dp[rows, None] + dp[None, :], out=block)
                self._D[rows] = block
        self._observe("delta", time.perf_counter() - t_delta, rows_spent)
        self._epoch += 1
        self.stats["deltas"] += 1
        return "delta"
