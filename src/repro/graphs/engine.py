"""Incremental all-pairs distance engine for best-response workloads.

A :class:`DistanceEngine` owns one CSR substrate and the full ``(n, n)``
BFS distance matrix over it, and keeps that matrix correct as the
substrate evolves one strategy swap at a time. Best-response dynamics
rewires only the handful of undirected edges incident to the deviating
player per step, so repairing the matrix is far cheaper than the
from-scratch all-pairs BFS the engine replaces.

Repair / fallback policy
------------------------
``update(new_csr)`` diffs the old and new CSR edge sets and picks one of
three paths, returned as a status string:

* ``"noop"`` — the edge sets are identical; distances and the epoch are
  untouched (a strategy change that was rolled back, or a swap between a
  brace and its surviving single edge).
* ``"delta"`` — incremental repair:

  - **Deletions** can only *increase* distances. Small batches (at most
    ``_SEQUENTIAL_DELETION_CAP`` edges) are processed one edge at a
    time through the **deletion repair hierarchy** (cheapest tier that
    applies wins; see below). Larger batches use the coarser (sound but
    pessimistic) tightness filter ``|d(s, x) - d(s, y)| == 1`` in one
    composed whole-row pass.
  - **Insertions** can only *decrease* distances. Every inserted edge is
    covered by a small *pivot* vertex set (greedy vertex cover of the
    inserted edges — for a best-response step this is exactly the
    deviating player). Pivot rows are recomputed exactly on the final
    substrate, after which every other row repairs in one vectorised
    decrease-only pass: ``d(s, v) = min(d(s, v), min_p d(p, s) +
    d(p, v))`` — any path through an inserted edge passes through a
    pivot ``p``.

* ``"rebuild"`` — full batched all-pairs BFS into the preallocated
  matrix, taken whenever the rows needing a fresh BFS exceed the row
  budget (repairing most rows costs more than starting over), whenever
  the changed-edge count alone exceeds the analysis budget (heavy
  churn), and always available via :meth:`rebuild`.

Deletion repair hierarchy
-------------------------
Removing one edge ``{x, y}`` walks a four-tier hierarchy, each tier an
order of magnitude cheaper than the next when it applies:

1. **Pendant fix** — the removal isolates a degree-1 endpoint. No
   shortest path between *other* vertices ever crossed it, so the
   repair is one column/row write (the Section 6 fold primitive).
2. **Affected-region repair** (Ramalingam–Reps style) — the exact
   support criterion names the dirty sources: ``s`` is affected only if
   the downhill endpoint (say ``d(s, y) = d(s, x) + 1``) loses its
   *only* tight parent — if another neighbour ``z`` of ``y`` with
   ``d(s, z) = d(s, y) - 1`` survives, every shortest path through the
   edge reroutes through ``z`` at equal length and row ``s`` is
   untouched. For each dirty source the *affected region* — the
   vertices every one of whose tight-parent chains runs through the
   removed edge — is grown from the downhill endpoint in old-distance
   order, then re-relaxed in one masked multi-source Dijkstra seeded
   from the unaffected boundary (positions outside the region keep
   their exact old distances). On tree-like substrates a deletion
   dirties many whole rows but only a small region per row, which is
   exactly the gap this tier closes.
3. **Dirty-row recompute** — a fresh batched BFS of the dirty sources
   on the post-removal substrate, bounded by the row budget.
4. **Rebuild** — full all-pairs BFS.

The row budget is ``dirty_fraction * n`` by default. Passing
``dirty_fraction="adaptive"`` instead derives the budget from the
engine's own cost counters: exponential moving averages of the
wall-clock cost of a full rebuild, of the per-row cost of a dirty-row
repair, and of the per-position cost of a region repair set the
break-even points between tiers 2/3/4, so each substrate settles into
the tier mix that is measurably cheapest for its own shape. All tiers
produce identical matrices; the knobs only trade time.

:meth:`remove_edge` / :meth:`add_edge` are diff-free single-edge entry
points for callers that already know the delta (a distance cache
forwarding one Gray-step arc swap to a whole engine pool); they skip
the edge-set diff of :meth:`update` and run the same repair machinery.

Three-tier read path
--------------------
Reads escalate through three tiers, each materialising more state:

1. **Bidirectional query** — :meth:`query` answers a single ``(u, v)``
   distance. On a lazy engine with both rows cold it runs one bounded
   forward-backward search (:mod:`repro.graphs.query`) on the current
   substrate and materialises nothing.
2. **Lazy rows** — constructing with ``rows="lazy"`` starts the matrix
   unmaterialised; :meth:`row` / :meth:`distance` (and the explicit
   :meth:`ensure_rows`) compute single rows on first touch and mark
   them *hot*. Delta/region repairs then maintain only the hot rows,
   so a mutation costs what the consumer's working set costs, not
   ``n`` rows.
3. **Full matrix** — :attr:`matrix` (or enough hot rows) promotes the
   engine to the classic fully-materialised mode. The promotion
   threshold reuses the repair cost model: once the hot-row count
   reaches :meth:`row_budget` — EMA-derived under
   ``dirty_fraction="adaptive"``, ``dirty_fraction * n`` otherwise —
   maintaining rows one by one is measurably no cheaper than owning
   the whole matrix, so the engine computes the cold remainder and
   leaves lazy mode for good.

All three tiers produce bit-identical answers (including the ``inf``
sentinel for unreachable pairs); they only trade how much state is
built and kept repaired.

Every path that may change distances bumps the ``epoch`` counter;
consumers snapshot the epoch at read time and revalidate with
:meth:`ensure_epoch`, so a stale view raises
:class:`~repro.errors.StaleDistanceError` instead of silently serving
distances of a substrate that no longer exists.

Unreachable pairs are stored as the finite sentinel ``inf`` (the paper's
``Cinf = n^2`` by default) so that the min-plus repair needs no special
cases; :meth:`distances` converts back to the BFS module's
``UNREACHABLE`` convention on request. Matrices are stored as ``int32``
whenever the sentinel arithmetic fits (it does for every realistic
``n``), halving the memory traffic of a pool of per-player engines;
consumers that aggregate rows should accumulate into ``int64``.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..errors import GraphError, StaleDistanceError, VertexError
from .bfs import UNREACHABLE
from .csr import CSRAdjacency, csr_without_vertex
from .distances import cinf

__all__ = ["DistanceEngine", "LazyRowGather"]

#: Default fallback threshold: delta-repair only while the rows needing a
#: fresh BFS stay below this fraction of all rows.
DEFAULT_DIRTY_FRACTION: float = 0.5

#: Deletion batches up to this size are repaired edge-by-edge with the
#: exact support criterion; larger batches use the composed tightness
#: filter (cheaper to evaluate, far more pessimistic).
_SEQUENTIAL_DELETION_CAP: int = 32

#: Smoothing factor of the adaptive-threshold cost EMAs: new samples
#: carry this weight, so the budget tracks a drifting workload within a
#: handful of updates without thrashing on one noisy measurement.
_EMA_ALPHA: float = 0.25


def _edge_ids(csr: CSRAdjacency) -> np.ndarray:
    """Sorted unique ids ``x * n + y`` (``x < y``) of the undirected edges."""
    row_of = np.repeat(np.arange(csr.n, dtype=np.int64), np.diff(csr.indptr))
    mask = row_of < csr.indices
    return row_of[mask] * csr.n + csr.indices[mask]


def _csr_remove_edge(csr: CSRAdjacency, x: int, y: int) -> CSRAdjacency:
    """Copy of ``csr`` with the undirected edge ``{x, y}`` removed."""
    keep = np.ones(csr.indices.size, dtype=bool)
    for a, b in ((x, y), (y, x)):
        lo, hi = int(csr.indptr[a]), int(csr.indptr[a + 1])
        pos = lo + int(np.searchsorted(csr.indices[lo:hi], b))
        if pos >= hi or csr.indices[pos] != b:
            raise GraphError(f"edge {{{x}, {y}}} not present in substrate")
        keep[pos] = False
    counts = np.diff(csr.indptr).copy()
    counts[x] -= 1
    counts[y] -= 1
    indptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(n=csr.n, indptr=indptr, indices=csr.indices[keep])


def _csr_insert_edge(csr: CSRAdjacency, x: int, y: int) -> CSRAdjacency:
    """Copy of ``csr`` with the undirected edge ``{x, y}`` spliced in."""
    entries = []
    for a, b in ((x, y), (y, x)):
        lo, hi = int(csr.indptr[a]), int(csr.indptr[a + 1])
        pos = lo + int(np.searchsorted(csr.indices[lo:hi], b))
        if pos < hi and csr.indices[pos] == b:
            raise GraphError(f"edge {{{x}, {y}}} already present in substrate")
        entries.append((pos, a, b))
    # Ties in position (adjacent empty rows) must keep row order so each
    # value lands in its owner's CSR segment.
    entries.sort()
    counts = np.diff(csr.indptr).copy()
    counts[x] += 1
    counts[y] += 1
    indptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(
        n=csr.n,
        indptr=indptr,
        indices=np.insert(
            csr.indices, [p for p, _, _ in entries], [b for _, _, b in entries]
        ),
    )


def _bfs_flat_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    inf: int,
    flat: np.ndarray,
    slots: np.ndarray,
    verts: np.ndarray,
) -> None:
    """Level-synchronous flat-frontier BFS over ``(slot, vertex)`` labels.

    Writes levels into ``flat`` (the flattened ``(k, n)`` output buffer,
    pre-filled with ``inf``) starting from ``flat[slots * n + verts] =
    0``. Shared by the unit engine's kernel and the weighted engine's
    unit-weight fast path — one implementation, two callers. The
    ``slots``/``verts`` arrays are never written to (the loop rebinds
    fresh arrays), so callers may pass views.
    """
    flat[slots * n + verts] = 0
    level = 0
    while verts.size:
        level += 1
        starts = indptr[verts]
        counts = indptr[verts + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        cum = np.cumsum(counts)
        offsets = np.repeat(starts - (cum - counts), counts) + np.arange(
            total, dtype=np.int64
        )
        nbrs = indices[offsets]
        idx = np.repeat(slots, counts) * n + nbrs
        idx = idx[flat[idx] == inf]
        if idx.size == 0:
            break
        # Dedupe via sort + run mask (same result as np.unique, much
        # cheaper than its hash path on these small int ranges).
        idx.sort(kind="stable")
        keep = np.empty(idx.size, dtype=bool)
        keep[0] = True
        np.not_equal(idx[1:], idx[:-1], out=keep[1:])
        idx = idx[keep]
        flat[idx] = level
        slots = idx // n
        verts = idx - slots * n


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, verts: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """CSR offsets of every edge leaving ``verts``, plus the owner index.

    ``offsets[e]`` indexes ``indices`` (and an aligned weights array);
    ``owner[e]`` is the position in ``verts`` the edge leaves from.
    """
    starts = indptr[verts]
    counts = indptr[verts + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    offsets = np.repeat(starts - (cum - counts), counts) + np.arange(
        total, dtype=np.int64
    )
    owner = np.repeat(np.arange(verts.size, dtype=np.int64), counts)
    return offsets, owner


def _deletion_roots(
    D: np.ndarray, x: int, y: int, w: int, sources: np.ndarray
) -> np.ndarray:
    """Downhill endpoint of the removed edge ``{x, y}`` per dirty source.

    For a source ``s`` dirtied by the deletion, exactly one endpoint is
    downhill (``d(s, y) = d(s, x) + w`` or vice versa); that endpoint
    lost its only tight parent and seeds the affected region.
    """
    dx = D[sources, x].astype(np.int64)
    dy = D[sources, y].astype(np.int64)
    return np.where(dy == dx + w, y, x).astype(np.int64)


def _affected_positions(
    D: np.ndarray,
    inf: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: "np.ndarray | None",
    sources: np.ndarray,
    roots: np.ndarray,
    cap: float,
) -> "np.ndarray | None":
    """Flat ``s * n + v`` positions whose distance may grow, or ``None``.

    Ramalingam–Reps affected-set computation, batched over all dirty
    sources at once: ``roots[i]`` (the downhill endpoint that lost its
    only tight parent for ``sources[i]``) seeds the region, and a vertex
    joins iff *every* tight parent — a surviving neighbour ``u`` with
    ``d(s, u) + w(u, v) = d(s, v)`` w.r.t. the pre-removal matrix ``D``
    — is already in the region (one unaffected tight parent preserves a
    shortest path of unchanged length, so the vertex and its whole
    downstream cone keep their distances). Candidates are processed in
    increasing old-distance buckets, so parents are always classified
    before children; the set is a (safe) over-approximation of the
    vertices whose distances actually change.

    ``weights=None`` means the unit regime (every edge length 1).
    Returns ``None`` as soon as the region outgrows ``cap`` — the signal
    to fall back to the dirty-row tier.
    """
    n = D.shape[1]
    flatD = D.reshape(-1)
    affected = np.zeros(D.size, dtype=bool)
    seeds = sources * n + roots
    affected[seeds] = True
    total = seeds.size
    if total > cap:
        return None
    marked = [seeds]
    buckets: "dict[int, list[np.ndarray]]" = {}

    def push_children(pos: np.ndarray) -> None:
        """Queue the strictly-downhill neighbours of newly marked positions."""
        v = pos % n
        offsets, owner = _gather_neighbors(indptr, indices, v)
        if offsets.size == 0:
            return
        tpos = (pos - v)[owner] + indices[offsets]
        tvals = flatD[tpos]
        keep = (tvals > flatD[pos][owner]) & (tvals < inf) & ~affected[tpos]
        tpos = tpos[keep]
        if tpos.size == 0:
            return
        tvals = tvals[keep].astype(np.int64)
        order = np.argsort(tvals, kind="stable")
        tvals = tvals[order]
        tpos = tpos[order]
        cuts = np.flatnonzero(tvals[1:] != tvals[:-1]) + 1
        segs = np.split(tpos, cuts)
        vals = tvals[np.concatenate([[0], cuts])] if cuts.size else tvals[:1]
        for val, seg in zip(vals, segs):
            buckets.setdefault(int(val), []).append(seg)

    push_children(seeds)
    while buckets:
        level = min(buckets)
        cand = np.unique(np.concatenate(buckets.pop(level)))
        cand = cand[~affected[cand]]
        if cand.size == 0:
            continue
        v = cand % n
        offsets, owner = _gather_neighbors(indptr, indices, v)
        ppos = (cand - v)[owner] + indices[offsets]
        w_e = 1 if weights is None else weights[offsets].astype(np.int64)
        tight = flatD[ppos].astype(np.int64) + w_e == level
        escape = tight & ~affected[ppos]
        has_escape = np.zeros(cand.size, dtype=bool)
        np.logical_or.at(has_escape, owner, escape)
        newly = cand[~has_escape]
        if newly.size == 0:
            continue
        affected[newly] = True
        total += newly.size
        if total > cap:
            return None
        marked.append(newly)
        push_children(newly)
    return np.concatenate(marked)


def _region_relax(
    D: np.ndarray,
    inf: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: "np.ndarray | None",
    positions: np.ndarray,
) -> None:
    """Exact in-place recompute of the affected positions.

    Masked multi-source Dijkstra restricted to the region: affected
    labels reset to ``inf``, are seeded from their unaffected neighbours
    (whose distances are final — a deletion never changes them), then
    settle in one global nondecreasing-label loop. Edges never cross
    source slots, so merging all sources into one schedule is still
    Dijkstra per source; positions left at ``inf`` are genuinely
    unreachable. Works for unit (``weights=None``) and weighted
    substrates alike.
    """
    n = D.shape[1]
    flatD = D.reshape(-1)
    aff = np.zeros(D.size, dtype=bool)
    aff[positions] = True
    flatD[positions] = inf
    v = positions % n
    offsets, owner = _gather_neighbors(indptr, indices, v)
    if offsets.size:
        w_e = 1 if weights is None else weights[offsets].astype(np.int64)
        cand = flatD[(positions - v)[owner] + indices[offsets]].astype(np.int64) + w_e
        np.minimum(cand, int(inf), out=cand)
        labels = np.full(positions.size, int(inf), dtype=np.int64)
        np.minimum.at(labels, owner, cand)
        flatD[positions] = labels.astype(flatD.dtype)
    remaining = positions
    while remaining.size:
        vals = flatD[remaining].astype(np.int64)
        finite = vals < inf
        if not finite.any():
            break
        m = int(vals[finite].min())
        front_mask = vals == m
        front = remaining[front_mask]
        remaining = remaining[~front_mask]
        fv = front % n
        offsets, owner = _gather_neighbors(indptr, indices, fv)
        if offsets.size == 0:
            continue
        w_e = 1 if weights is None else weights[offsets].astype(np.int64)
        nd = np.asarray(m + w_e, dtype=np.int64)
        if nd.ndim == 0:
            nd = np.full(offsets.size, int(nd), dtype=np.int64)
        tpos = (front - fv)[owner] + indices[offsets]
        improve = aff[tpos] & (flatD[tpos].astype(np.int64) > nd)
        if improve.any():
            np.minimum.at(flatD, tpos[improve], nd[improve].astype(flatD.dtype))


def _minplus_through_pivots(
    D: np.ndarray,
    pivots: np.ndarray,
    exempt: np.ndarray,
    rows: "np.ndarray | None" = None,
) -> None:
    """Decrease-only min-plus repair through already-exact pivot rows.

    Every row not in ``exempt`` improves in place via ``d(s, v) =
    min(d(s, v), d(p, s) + d(p, v))`` over the pivots — sound because
    any strictly shorter new path crosses an inserted/shortened edge
    and hence a pivot, whose row is exact. Shared by the insertion
    paths of both engines (``add_edge`` and ``update``). ``rows``
    restricts the repair to a subset of rows (a lazy engine's hot set);
    ``None`` means every row.
    """
    n = D.shape[1]
    if rows is None:
        survivors = np.ones(n, dtype=bool)
    else:
        survivors = np.zeros(n, dtype=bool)
        survivors[rows] = True
    survivors[exempt] = False
    rows = np.flatnonzero(survivors)
    if rows.size == 0:
        return
    block = D[rows]
    for p in pivots:
        dp = D[p]
        np.minimum(block, dp[rows, None] + dp[None, :], out=block)
    D[rows] = block


def _pivot_cover(edges: np.ndarray) -> np.ndarray:
    """Small vertex set covering every edge (greedy max-degree, deterministic).

    For the edges inserted by one player's strategy change this returns
    exactly that player; the greedy rule keeps the cover near-minimal
    when several pending moves are composed into one delta.
    """
    remaining = [(int(x), int(y)) for x, y in edges]
    pivots: list[int] = []
    while remaining:
        counts: dict[int, int] = {}
        for x, y in remaining:
            counts[x] = counts.get(x, 0) + 1
            counts[y] = counts.get(y, 0) + 1
        # Highest cover count wins; ties break to the smallest vertex id
        # so replays are deterministic.
        best = min(counts, key=lambda v: (-counts[v], v))
        pivots.append(best)
        remaining = [e for e in remaining if best not in e]
    return np.asarray(sorted(pivots), dtype=np.int64)


class DistanceEngine:
    """All-pairs BFS distances over one CSR substrate, with delta repair.

    Parameters
    ----------
    csr:
        The initial substrate (an undirected CSR adjacency).
    inf:
        Finite sentinel stored for unreachable pairs. Defaults to the
        paper's ``Cinf = n^2``, which the best-response environment
        consumes directly; any value ``> 2 * (n - 1)`` is safe for the
        min-plus repair.
    dirty_fraction:
        Fallback knob: see the module docstring. ``0.0`` disables delta
        repair entirely (every change rebuilds), ``1.0`` forces delta
        repair whenever the analysis budget allows it, and the string
        ``"adaptive"`` tunes the cutoff from the engine's own repair
        cost vs rebuild cost EMAs.
    rows:
        ``"full"`` (default) materialises the all-pairs matrix up
        front. ``"lazy"`` starts unmaterialised: rows are computed and
        marked hot on first touch, repairs maintain only the hot rows,
        and the engine promotes itself to full mode once the hot count
        reaches :meth:`row_budget` — see *Three-tier read path* in the
        module docstring.
    """

    __slots__ = (
        "_csr",
        "_n",
        "_inf",
        "_dtype",
        "_D",
        "_cow",
        "_epoch",
        "_dirty_fraction",
        "_adaptive",
        "_ema_rebuild_cost",
        "_ema_delta_row_cost",
        "_ema_region_pos_cost",
        "_lazy",
        "_hot",
        "stats",
    )

    def __init__(
        self,
        csr: CSRAdjacency,
        *,
        inf: int | None = None,
        dirty_fraction: "float | str" = DEFAULT_DIRTY_FRACTION,
        rows: str = "full",
    ) -> None:
        self._configure(csr, inf, dirty_fraction)
        self._D = np.empty((self._n, self._n), dtype=self._dtype)
        self._cow = False
        self._epoch = 0
        self.stats = self._fresh_stats()
        if rows not in ("full", "lazy"):
            raise GraphError(f'rows must be "full" or "lazy", got {rows!r}')
        if rows == "lazy":
            self._lazy = True
            self._hot = np.zeros(self._n, dtype=bool)
        else:
            self.rebuild()

    @staticmethod
    def _fresh_stats() -> "dict[str, int]":
        return {
            "rebuilds": 0,
            "deltas": 0,
            "noops": 0,
            "rows_recomputed": 0,
            "pendant_fixes": 0,
            "region_repairs": 0,
            "region_vertices": 0,
            "cow_copies": 0,
            "lazy_rows": 0,
            "lazy_invalidations": 0,
            "promotions": 0,
            "point_queries": 0,
        }

    def _configure(
        self, csr: CSRAdjacency, inf: "int | None", dirty_fraction: "float | str"
    ) -> None:
        """Shared constructor core (substrate checks, sentinel, dtype)."""
        if not isinstance(csr, CSRAdjacency):
            raise GraphError("DistanceEngine needs a CSRAdjacency substrate")
        if isinstance(dirty_fraction, str):
            if dirty_fraction != "adaptive":
                raise GraphError(
                    f'dirty_fraction must be a float in [0, 1] or "adaptive", '
                    f"got {dirty_fraction!r}"
                )
            self._adaptive = True
            dirty_fraction = DEFAULT_DIRTY_FRACTION
        else:
            self._adaptive = False
            if not 0.0 <= dirty_fraction <= 1.0:
                raise GraphError(
                    f"dirty_fraction must be in [0, 1], got {dirty_fraction}"
                )
        self._ema_rebuild_cost: "float | None" = None
        self._ema_delta_row_cost: "float | None" = None
        self._ema_region_pos_cost: "float | None" = None
        self._n = csr.n
        self._inf = cinf(csr.n) if inf is None else int(inf)
        if self._inf <= 2 * (self._n - 1):
            raise GraphError(
                f"inf sentinel {self._inf} too small for n={self._n}; "
                f"need inf > 2(n-1) for the min-plus repair"
            )
        # int32 halves the footprint of an engine pool; all stored values
        # are bounded by inf and the min-plus repair peaks at 2 * inf.
        self._dtype = np.int32 if 2 * self._inf < 2**31 else np.int64
        self._dirty_fraction = float(dirty_fraction)
        self._csr = csr
        # Lazy row-on-demand state; __init__(rows="lazy") flips these.
        self._lazy = False
        self._hot: "np.ndarray | None" = None

    @classmethod
    def from_snapshot(
        cls,
        csr: CSRAdjacency,
        matrix: np.ndarray,
        *,
        inf: int | None = None,
        dirty_fraction: "float | str" = DEFAULT_DIRTY_FRACTION,
        copy: bool = False,
    ) -> "DistanceEngine":
        """Engine adopting a precomputed distance matrix — no initial BFS.

        ``matrix`` must be the exact all-pairs matrix of ``csr`` under
        the engine's ``inf``/dtype conventions (e.g. a view attached
        from a :class:`~repro.core.matrix_pool.MatrixPool` segment, or
        another engine's matrix). With ``copy=False`` the engine aliases
        the buffer **copy-on-write**: reads are zero-copy, and the first
        mutation (any delta repair or rebuild) copies into a private
        buffer first, so the adopted segment is never written — the
        guard that lets many workers attach one shared segment safely.
        """
        engine = cls.__new__(cls)
        engine._configure(csr, inf, dirty_fraction)
        matrix = np.asarray(matrix)
        if matrix.shape != (engine._n, engine._n):
            raise GraphError(
                f"snapshot matrix shape {matrix.shape} != "
                f"{(engine._n, engine._n)}"
            )
        if matrix.dtype != engine._dtype:
            raise GraphError(
                f"snapshot matrix dtype {matrix.dtype} != expected "
                f"{np.dtype(engine._dtype).name} (inf={engine._inf})"
            )
        if not matrix.flags.c_contiguous:
            raise GraphError("snapshot matrix must be C-contiguous")
        engine._D = matrix.copy() if copy else matrix
        engine._cow = not copy
        engine._epoch = 0
        engine.stats = cls._fresh_stats()
        return engine

    @property
    def copy_on_write(self) -> bool:
        """Whether the matrix still aliases an adopted (shared) buffer."""
        return self._cow

    def _prepare_write(self, preserve: bool = True) -> None:
        """Detach from an adopted buffer before the first in-place write.

        ``preserve=False`` skips copying the content for full overwrites
        (a rebuild); either way the adopted segment is left untouched.
        """
        if self._cow:
            self._D = np.array(self._D) if preserve else np.empty_like(self._D)
            self._cow = False
            self.stats["cow_copies"] += 1

    @classmethod
    def from_graph(
        cls, graph, *, isolate: int | None = None, **kwargs
    ) -> "DistanceEngine":
        """Engine over ``U(G)``, optionally with one vertex isolated.

        ``isolate=u`` builds the best-response substrate ``U(G - u)``
        (same index space, ``u`` edgeless).
        """
        csr = graph.undirected_csr()
        if isolate is not None:
            csr = csr_without_vertex(csr, isolate)
        return cls(csr, **kwargs)

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices of the substrate."""
        return self._n

    @property
    def csr(self) -> CSRAdjacency:
        """The substrate the current matrix describes."""
        return self._csr

    @property
    def inf(self) -> int:
        """Finite sentinel stored for unreachable pairs."""
        return self._inf

    @property
    def epoch(self) -> int:
        """Counter bumped whenever the distance content may have changed."""
        return self._epoch

    @property
    def adaptive(self) -> bool:
        """Whether the delta-vs-rebuild cutoff is tuned from cost EMAs."""
        return self._adaptive

    @property
    def lazy(self) -> bool:
        """Whether the engine is still in row-on-demand mode."""
        return self._lazy

    def hot_rows(self) -> np.ndarray:
        """Sources whose rows are materialised (every source when full)."""
        if not self._lazy:
            return np.arange(self._n, dtype=np.int64)
        return np.flatnonzero(self._hot)

    def promotion_threshold(self) -> float:
        """Hot-row count at which a lazy engine promotes to full mode.

        The break-even point of the cost model: once :meth:`row_budget`
        rows are hot, maintaining them one by one is estimated to cost
        as much as the batched rebuild that a full matrix amortises.
        """
        return max(1.0, self.row_budget())

    def promote(self) -> None:
        """Materialise the remaining cold rows and leave lazy mode.

        Distance content does not change for any row a reader could
        have observed (hot rows are kept, cold rows were never handed
        out), so the epoch does not advance.
        """
        if not self._lazy:
            return
        cold = np.flatnonzero(~self._hot)
        if cold.size:
            t0 = time.perf_counter()
            self._bfs_rows(self._csr, cold, self._D, cold)
            self._observe("rebuild", time.perf_counter() - t0, self._n)
        self._lazy = False
        self._hot = None
        self.stats["promotions"] += 1

    def ensure_rows(self, sources: "Sequence[int] | np.ndarray") -> None:
        """Materialise (and mark hot) any still-cold rows in ``sources``.

        No-op in full mode. Promotes to full mode afterwards when the
        hot count reaches :meth:`promotion_threshold`.
        """
        if not self._lazy:
            return
        src = np.unique(np.asarray(sources, dtype=np.int64).ravel())
        if src.size and (src[0] < 0 or src[-1] >= self._n):
            bad = int(src[0]) if src[0] < 0 else int(src[-1])
            raise VertexError(bad, self._n)
        cold = src[~self._hot[src]]
        if cold.size:
            t0 = time.perf_counter()
            self._bfs_rows(self._csr, cold, self._D, cold)
            self._observe("delta", time.perf_counter() - t0, cold.size)
            self._hot[cold] = True
            self.stats["lazy_rows"] += int(cold.size)
        if int(self._hot.sum()) >= self.promotion_threshold():
            self.promote()

    def query(self, u: int, v: int) -> int:
        """Single ``(u, v)`` distance under the ``inf`` convention.

        Tier-1 read: answered from the matrix when the relevant row is
        materialised (either direction — the substrate is undirected),
        otherwise by one bounded bidirectional search on the substrate,
        materialising nothing. Bit-identical to ``matrix[u, v]``.
        """
        if not 0 <= u < self._n:
            raise VertexError(u, self._n)
        if not 0 <= v < self._n:
            raise VertexError(v, self._n)
        self.stats["point_queries"] += 1
        if not self._lazy:
            return int(self._D[u, v])
        if self._hot[u]:
            return int(self._D[u, v])
        if self._hot[v]:
            return int(self._D[v, u])
        from .query import point_to_point

        return point_to_point(self._csr, u, v, inf=self._inf)

    def row_budget(self) -> float:
        """Rows a delta repair may recompute before falling back to rebuild.

        Fixed mode returns ``dirty_fraction * n``. Adaptive mode returns
        the measured break-even point ``rebuild_cost / delta_row_cost``
        (clamped to ``[1, n]``) once both EMAs are seeded, and the fixed
        default until then.
        """
        if (
            self._adaptive
            and self._ema_rebuild_cost is not None
            and self._ema_delta_row_cost is not None
            and self._ema_delta_row_cost > 0.0
        ):
            est = self._ema_rebuild_cost / self._ema_delta_row_cost
            return float(min(float(self._n), max(1.0, est)))
        return self._dirty_fraction * self._n

    def _observe(self, which: str, seconds: float, rows: float) -> None:
        """Fold one timed repair/rebuild into the adaptive cost EMAs."""
        if not self._adaptive:
            return
        if which == "rebuild":
            prev = self._ema_rebuild_cost
            self._ema_rebuild_cost = (
                seconds if prev is None else (1 - _EMA_ALPHA) * prev + _EMA_ALPHA * seconds
            )
        elif which == "region":
            per_pos = seconds / max(1.0, rows)
            prev = self._ema_region_pos_cost
            self._ema_region_pos_cost = (
                per_pos if prev is None else (1 - _EMA_ALPHA) * prev + _EMA_ALPHA * per_pos
            )
        else:
            per_row = seconds / max(1.0, rows)
            prev = self._ema_delta_row_cost
            self._ema_delta_row_cost = (
                per_row if prev is None else (1 - _EMA_ALPHA) * prev + _EMA_ALPHA * per_row
            )

    def _region_cap(self, ndirty: int) -> float:
        """Affected positions the region tier may grow before the
        dirty-row tier is estimated to be cheaper.

        Adaptive mode compares the measured per-position region cost
        against the per-row recompute cost (``ndirty`` rows would be
        recomputed otherwise); until both EMAs are seeded — and always
        in fixed mode — a structural default of half the dirty-row work
        (``ndirty * n / 2`` positions) keeps the tier honest.
        """
        structural = ndirty * self._n / 2.0
        if (
            self._adaptive
            and self._ema_region_pos_cost is not None
            and self._ema_delta_row_cost is not None
            and self._ema_region_pos_cost > 0.0
        ):
            est = ndirty * self._ema_delta_row_cost / self._ema_region_pos_cost
            return float(min(est, float(ndirty * self._n)))
        return structural

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n, n)`` distance view (``inf`` for unreachable).

        The view aliases the engine's buffer: it is only valid for the
        epoch at which it was taken. Guard reuse with
        :meth:`ensure_epoch`. A lazy engine promotes to full mode first
        (prefer :meth:`query` / :meth:`row` to stay lazy).
        """
        if self._lazy:
            self.promote()
        view = self._D.view()
        view.flags.writeable = False
        return view

    def row(self, s: int) -> np.ndarray:
        """Read-only distance row from source ``s`` (``inf`` convention).

        Tier-2 read: a lazy engine materialises just this row (marking
        it hot) rather than promoting.
        """
        if not 0 <= s < self._n:
            raise VertexError(s, self._n)
        if self._lazy:
            self.ensure_rows([s])
        view = self._D[s].view()
        view.flags.writeable = False
        return view

    def distance(self, s: int, v: int) -> int:
        """Distance ``s -> v``; ``UNREACHABLE`` across components."""
        if not 0 <= s < self._n:
            raise VertexError(s, self._n)
        if not 0 <= v < self._n:
            raise VertexError(v, self._n)
        d = self.query(s, v)
        return UNREACHABLE if d >= self._inf else d

    def distances(self, *, sentinel: int = UNREACHABLE) -> np.ndarray:
        """``int64`` copy of the full matrix, unreachable pairs remapped."""
        if self._lazy:
            self.promote()
        out = self._D.astype(np.int64)
        if sentinel != self._inf:
            out[out >= self._inf] = sentinel
        return out

    def ensure_epoch(self, epoch: int) -> None:
        """Raise :class:`StaleDistanceError` unless ``epoch`` is current."""
        if epoch != self._epoch:
            raise StaleDistanceError(
                f"distance view from epoch {epoch} is stale; engine is at "
                f"epoch {self._epoch}"
            )

    # ------------------------------------------------------------------
    # Batched BFS kernel
    # ------------------------------------------------------------------
    def _bfs_rows(
        self,
        csr: CSRAdjacency,
        sources: np.ndarray,
        out: np.ndarray,
        out_rows: np.ndarray,
    ) -> None:
        """Batched BFS: ``out[out_rows[i]] = dist(sources[i], .)`` in-place.

        All sources expand level-synchronously in one flat frontier of
        ``(output row, vertex)`` pairs, so each level costs a handful of
        numpy gathers regardless of how many sources are in flight. The
        output buffer is written through its flat view — no per-source
        allocation.
        """
        n = self._n
        k = sources.size
        if k == 0:
            return
        if not out.flags.c_contiguous or out.shape[1] != n:
            raise GraphError("batched BFS needs a C-contiguous (k, n) buffer")
        inf = self._inf
        out[out_rows] = inf
        flat = out.reshape(-1)
        _bfs_flat_frontier(
            csr.indptr,
            csr.indices,
            n,
            inf,
            flat,
            np.asarray(out_rows, dtype=np.int64),
            np.asarray(sources, dtype=np.int64),
        )
        self.stats["rows_recomputed"] += k

    def distances_from(
        self, sources: Sequence[int] | np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched multi-source BFS on the current substrate.

        Row ``i`` of the result holds distances from ``sources[i]``
        under the engine's ``inf`` convention. Pass a preallocated
        C-contiguous ``(len(sources), n)`` buffer of the engine's dtype
        as ``out`` to avoid the allocation on hot paths.
        """
        src = np.asarray(sources, dtype=np.int64).ravel()
        if src.size and (src.min() < 0 or src.max() >= self._n):
            bad = int(src.min()) if src.min() < 0 else int(src.max())
            raise VertexError(bad, self._n)
        if out is None:
            out = np.empty((src.size, self._n), dtype=self._dtype)
        elif out.shape != (src.size, self._n) or out.dtype != self._dtype:
            raise GraphError(
                f"out buffer must be {np.dtype(self._dtype).name} of shape "
                f"{(src.size, self._n)}"
            )
        self._bfs_rows(self._csr, src, out, np.arange(src.size, dtype=np.int64))
        return out

    # ------------------------------------------------------------------
    # Mutation API
    # ------------------------------------------------------------------
    def rebuild(self, new_csr: CSRAdjacency | None = None) -> None:
        """Full batched all-pairs BFS (optionally onto a new substrate).

        A lazy engine exits row-on-demand mode here — after a rebuild
        every row is exact, so staying lazy would only re-pay the
        bookkeeping.
        """
        if new_csr is not None:
            if new_csr.n != self._n:
                raise GraphError(
                    f"substrate size changed ({new_csr.n} != {self._n}); "
                    f"build a fresh engine instead"
                )
            self._csr = new_csr
        self._lazy = False
        self._hot = None
        self._prepare_write(preserve=False)
        all_rows = np.arange(self._n, dtype=np.int64)
        t0 = time.perf_counter()
        self._bfs_rows(self._csr, all_rows, self._D, all_rows)
        self._observe("rebuild", time.perf_counter() - t0, self._n)
        self._epoch += 1
        self.stats["rebuilds"] += 1

    def _isolated_endpoint_fix(self, endpoints: "list[int]") -> None:
        """Column/row repair for endpoints isolated by a pendant removal.

        A vertex of degree 1 lies on no shortest path between *other*
        vertices (any walk through it backtracks over its single edge),
        so deleting its last edge changes only its own row and column:
        both become unreachable, except the zero diagonal.
        """
        self._prepare_write()
        for y in endpoints:
            self._D[:, y] = self._inf
            self._D[y, :] = self._inf
            self._D[y, y] = 0
        self.stats["pendant_fixes"] += len(endpoints)

    def _single_deletion_repair(
        self,
        x: int,
        y: int,
        after_csr: CSRAdjacency,
        *,
        row_budget: float,
        rows_spent: float = 0.0,
    ) -> "float | None":
        """Walk the deletion repair hierarchy for one removed edge.

        ``after_csr`` is the substrate with ``{x, y}`` already removed;
        the matrix must be exact for the substrate *with* the edge. On
        success the matrix is exact for ``after_csr`` and the
        rows-equivalent budget spent so far is returned; ``None`` means
        every tier was over budget and the caller should rebuild.
        Tiers: pendant fix -> affected-region repair -> dirty rows.
        """
        isolated = [v for v in (x, y) if after_csr.degree(v) == 0]
        if isolated:
            self._isolated_endpoint_fix(isolated)
            return rows_spent
        dirty_rows = self._deletion_dirty_rows(x, y, after_csr)
        if dirty_rows.size == 0:
            return rows_spent
        t0 = time.perf_counter()
        roots = _deletion_roots(self._D, x, y, 1, dirty_rows)
        cap = self._region_cap(dirty_rows.size)
        positions = _affected_positions(
            self._D,
            self._inf,
            after_csr.indptr,
            after_csr.indices,
            None,
            dirty_rows,
            roots,
            cap,
        )
        if positions is not None:
            self._prepare_write()
            _region_relax(
                self._D,
                self._inf,
                after_csr.indptr,
                after_csr.indices,
                None,
                positions,
            )
            self._observe("region", time.perf_counter() - t0, positions.size)
            self.stats["region_repairs"] += 1
            self.stats["region_vertices"] += int(positions.size)
            return rows_spent + positions.size / self._n
        rows_spent += dirty_rows.size
        if rows_spent > row_budget:
            return None
        self._prepare_write()
        # Timed separately from t0: an aborted region attempt must not
        # inflate the per-row EMA (that would raise the region cap and
        # shrink the rebuild budget in a feedback loop).
        t_rows = time.perf_counter()
        self._bfs_rows(after_csr, dirty_rows, self._D, dirty_rows)
        self._observe("delta", time.perf_counter() - t_rows, dirty_rows.size)
        return rows_spent

    def remove_edge(self, x: int, y: int) -> str:
        """Sync the matrix to the substrate minus edge ``{x, y}``.

        The diff-free single-deletion entry point: callers that already
        know the delta (e.g. a cache forwarding one Gray-step op to a
        whole engine pool) skip the edge-set diff of :meth:`update`
        entirely and run the deletion repair hierarchy directly.
        """
        if not 0 <= x < self._n or not 0 <= y < self._n:
            raise GraphError(
                f"edge endpoint out of range [0, {self._n}): {{{x}, {y}}}"
            )
        after_csr = _csr_remove_edge(self._csr, x, y)  # raises if absent
        if self._lazy:
            self._lazy_deletion_repair(x, y, after_csr)
            self._csr = after_csr
            self._epoch += 1
            self.stats["deltas"] += 1
            return "delta"
        if self._adaptive or self._dirty_fraction > 0.0:
            spent = self._single_deletion_repair(
                x, y, after_csr, row_budget=self.row_budget()
            )
            if spent is not None:
                self._csr = after_csr
                self._epoch += 1
                self.stats["deltas"] += 1
                return "delta"
        self.rebuild(after_csr)
        return "rebuild"

    def add_edge(self, x: int, y: int) -> str:
        """Sync the matrix to the substrate plus edge ``{x, y}``.

        The diff-free single-insertion entry point, mirroring
        :meth:`remove_edge`. Insertions only shorten distances, so the
        repair is one pivot-row BFS plus the vectorised decrease-only
        min-plus pass — the same machinery :meth:`update` uses for its
        insertion batches.
        """
        if not 0 <= x < self._n or not 0 <= y < self._n:
            raise GraphError(
                f"edge endpoint out of range [0, {self._n}): {{{x}, {y}}}"
            )
        if x == y:
            raise GraphError(f"self-loop {{{x}, {y}}} cannot be inserted")
        new_csr = _csr_insert_edge(self._csr, x, y)  # raises if present
        if self._lazy:
            self._csr = new_csr
            hot = np.flatnonzero(self._hot)
            if hot.size:
                pivot = min(x, y)
                rows = np.asarray([pivot], dtype=np.int64)
                self._bfs_rows(new_csr, rows, self._D, rows)
                self._hot[pivot] = True
                _minplus_through_pivots(
                    self._D, rows, rows, rows=np.flatnonzero(self._hot)
                )
            self._epoch += 1
            self.stats["deltas"] += 1
            return "delta"
        if (self._adaptive or self._dirty_fraction > 0.0) and self.row_budget() >= 1.0:
            pivot = min(x, y)
            self._prepare_write()
            self._csr = new_csr
            rows = np.asarray([pivot], dtype=np.int64)
            self._bfs_rows(new_csr, rows, self._D, rows)
            _minplus_through_pivots(self._D, rows, rows)
            self._epoch += 1
            self.stats["deltas"] += 1
            return "delta"
        self.rebuild(new_csr)
        return "rebuild"

    def _deletion_dirty_rows(
        self,
        x: int,
        y: int,
        after_csr: CSRAdjacency,
        candidates: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Sources whose row may change when edge ``{x, y}`` is removed.

        Exact support criterion against the current matrix: a source is
        affected only if the downhill endpoint has no surviving tight
        parent in ``after_csr`` (the substrate with the edge already
        removed, and without any not-yet-applied insertions).
        ``candidates`` restricts the filter to those source rows (the
        lazy engines' hot set — cold rows hold garbage and must not be
        read); the returned ids are still absolute sources.
        """
        D = self._D if candidates is None else self._D[candidates]
        dirty = np.zeros(D.shape[0], dtype=bool)
        dx = D[:, x]
        dy = D[:, y]
        for hi, dlo in ((y, dx), (x, dy)):
            supported = D[:, hi] == dlo + 1
            if not supported.any():
                continue
            alt_nbrs = after_csr.neighbors(hi)
            if alt_nbrs.size:
                alt = (D[:, alt_nbrs] == dlo[:, None]).any(axis=1)
                dirty |= supported & ~alt
            else:
                dirty |= supported
        hits = np.flatnonzero(dirty)
        return hits if candidates is None else candidates[hits]

    def _lazy_deletion_repair(self, x: int, y: int, after_csr: CSRAdjacency) -> None:
        """Deletion repair restricted to the hot rows of a lazy engine.

        Same tier walk as :meth:`_single_deletion_repair` minus the
        budget bookkeeping — with only hot rows to maintain there is no
        rebuild to fall back to, the worst case is re-running BFS for
        each hot row. Cold rows are garbage before and after; the
        pendant fix's row/column writes are correct on hot rows and
        harmless on cold ones.
        """
        hot = np.flatnonzero(self._hot)
        if hot.size == 0:
            return
        isolated = [v for v in (x, y) if after_csr.degree(v) == 0]
        if isolated:
            self._isolated_endpoint_fix(isolated)
            # The fixed endpoint's own row is now exact whether or not
            # it was hot before.
            for v in isolated:
                self._hot[v] = True
            return
        dirty = self._deletion_dirty_rows(x, y, after_csr, candidates=hot)
        if dirty.size == 0:
            return
        t0 = time.perf_counter()
        roots = _deletion_roots(self._D, x, y, 1, dirty)
        cap = self._region_cap(dirty.size)
        positions = _affected_positions(
            self._D,
            self._inf,
            after_csr.indptr,
            after_csr.indices,
            None,
            dirty,
            roots,
            cap,
        )
        if positions is not None:
            _region_relax(
                self._D,
                self._inf,
                after_csr.indptr,
                after_csr.indices,
                None,
                positions,
            )
            self._observe("region", time.perf_counter() - t0, positions.size)
            self.stats["region_repairs"] += 1
            self.stats["region_vertices"] += int(positions.size)
            return
        t_rows = time.perf_counter()
        self._bfs_rows(after_csr, dirty, self._D, dirty)
        self._observe("delta", time.perf_counter() - t_rows, dirty.size)

    def _lazy_update(
        self, new_csr: CSRAdjacency, removed_ids: np.ndarray, added_ids: np.ndarray
    ) -> str:
        """:meth:`update` for a lazy engine: maintain only the hot rows.

        Light churn repairs hot rows in place (sequential deletions
        through the hot-row hierarchy, then pivot rows + the hot-subset
        min-plus pass for insertions). Heavy churn simply invalidates
        the hot set — the lazy analogue of a rebuild, at zero cost —
        and rows re-materialise on demand against the new substrate.
        """
        n = self._n
        hot = np.flatnonzero(self._hot)
        churn = removed_ids.size + added_ids.size
        heavy = removed_ids.size > _SEQUENTIAL_DELETION_CAP or churn > max(
            16.0, n / 8
        )
        if hot.size and not heavy:
            work_csr = self._csr
            for eid in removed_ids:
                x = int(eid // n)
                y = int(eid - x * n)
                work_csr = _csr_remove_edge(work_csr, x, y)
                self._lazy_deletion_repair(x, y, work_csr)
            self._csr = new_csr
            if added_ids.size:
                ax = added_ids // n
                ay = added_ids - ax * n
                pivots = _pivot_cover(np.stack([ax, ay], axis=1))
                self._bfs_rows(new_csr, pivots, self._D, pivots)
                self._hot[pivots] = True
                _minplus_through_pivots(
                    self._D, pivots, pivots, rows=np.flatnonzero(self._hot)
                )
            self._epoch += 1
            self.stats["deltas"] += 1
            return "delta"
        if hot.size:
            self._hot[:] = False
            self.stats["lazy_invalidations"] += 1
        self._csr = new_csr
        self._epoch += 1
        self.stats["deltas"] += 1
        return "delta" if not hot.size else "rebuild"

    def update(self, new_csr: CSRAdjacency) -> str:
        """Sync the matrix to ``new_csr``; returns the path taken.

        ``"noop"`` | ``"delta"`` | ``"rebuild"`` — see the module
        docstring for the policy. The epoch is bumped unless the edge
        sets are identical.
        """
        if new_csr is self._csr:
            self.stats["noops"] += 1
            return "noop"
        if new_csr.n != self._n:
            raise GraphError(
                f"substrate size changed ({new_csr.n} != {self._n}); "
                f"build a fresh engine instead"
            )
        old_ids = _edge_ids(self._csr)
        new_ids = _edge_ids(new_csr)
        if old_ids.size + new_ids.size <= 512:
            # Tiny substrates (the census regime): python-set symmetric
            # difference beats setdiff1d's isin/unique machinery by an
            # order of magnitude. Same sorted outputs either way.
            old_set = set(old_ids.tolist())
            new_set = set(new_ids.tolist())
            removed_ids = np.asarray(sorted(old_set - new_set), dtype=np.int64)
            added_ids = np.asarray(sorted(new_set - old_set), dtype=np.int64)
        else:
            removed_ids = np.setdiff1d(old_ids, new_ids, assume_unique=True)
            added_ids = np.setdiff1d(new_ids, old_ids, assume_unique=True)
        if removed_ids.size == 0 and added_ids.size == 0:
            self._csr = new_csr
            self.stats["noops"] += 1
            return "noop"
        if self._lazy:
            return self._lazy_update(new_csr, removed_ids, added_ids)

        n = self._n
        row_budget = self.row_budget()
        analysis_cap = min(row_budget, max(16.0, n / 8))
        sequential = removed_ids.size <= _SEQUENTIAL_DELETION_CAP
        if (not self._adaptive and self._dirty_fraction == 0.0) or (
            not sequential and removed_ids.size + added_ids.size > analysis_cap
        ):
            # Heavy churn: the per-edge analysis below would cost more
            # than the batched rebuild it is trying to avoid.
            self.rebuild(new_csr)
            return "rebuild"

        self._prepare_write()  # delta repairs write in place: detach first
        t_delta = time.perf_counter()
        observe_spent: "float | None" = None  # rows to credit the final observe
        pivots = np.empty(0, dtype=np.int64)
        if added_ids.size:
            if added_ids.size > analysis_cap:
                self.rebuild(new_csr)
                return "rebuild"
            ax = added_ids // n
            ay = added_ids - ax * n
            pivots = _pivot_cover(np.stack([ax, ay], axis=1))

        rows_spent = float(pivots.size)
        if rows_spent > row_budget:
            self.rebuild(new_csr)
            return "rebuild"
        if sequential and removed_ids.size:
            # One edge at a time through the deletion repair hierarchy
            # (pendant -> affected region -> dirty rows); the matrix and
            # a working substrate advance together, so each step's
            # filter and repair are against exact distances. The tiers
            # observe their own costs, so the final observe only covers
            # the insertion portion below.
            work_csr = self._csr
            for eid in removed_ids:
                x = int(eid // n)
                y = int(eid - x * n)
                work_csr = _csr_remove_edge(work_csr, x, y)
                spent = self._single_deletion_repair(
                    x, y, work_csr, row_budget=row_budget, rows_spent=rows_spent
                )
                if spent is None:
                    self.rebuild(new_csr)
                    return "rebuild"
                rows_spent = spent
            exempt = pivots
            t_delta = time.perf_counter()
            observe_spent = float(pivots.size)
        elif removed_ids.size:
            # Composed batch: the coarse tightness filter, one pass.
            x = removed_ids // n
            y = removed_ids - x * n
            Dx = self._D[:, x].astype(np.int64)
            Dy = self._D[:, y].astype(np.int64)
            dirty = (np.abs(Dx - Dy) == 1).any(axis=1)
            recompute = np.union1d(np.flatnonzero(dirty), pivots)
            rows_spent += recompute.size - pivots.size
            if rows_spent > row_budget:
                self.rebuild(new_csr)
                return "rebuild"
            # Recomputed on the final substrate, so these rows are
            # already exact and skip the insertion repair below.
            self._bfs_rows(new_csr, recompute, self._D, recompute)
            exempt = recompute
        else:
            exempt = pivots

        self._csr = new_csr
        if pivots.size:
            if exempt is pivots:
                # Not yet recomputed (the composed path folds the pivot
                # rows into `recompute` on the final substrate already).
                self._bfs_rows(new_csr, pivots, self._D, pivots)
            _minplus_through_pivots(self._D, pivots, exempt)
        credit = rows_spent if observe_spent is None else observe_spent
        if observe_spent is None or observe_spent > 0:
            self._observe("delta", time.perf_counter() - t_delta, credit)
        self._epoch += 1
        self.stats["deltas"] += 1
        return "delta"


class LazyRowGather:
    """Numpy-indexable facade over an engine that materialises rows on
    demand.

    The batch environments read distances with fancy indexing
    (``self.D[rows, cols]``, ``self.D[mask]``); handing them
    ``engine.matrix`` would promote a lazy engine immediately. This
    facade forwards ``__getitem__`` after ensuring the touched *rows*
    are hot, so ``D[cur, v]``-style reads stay row-on-demand and the
    environments' indexing code is unchanged. A full-row slice in the
    row position (``D[:, v]``) genuinely needs every row and promotes.

    Works over both engine flavours (anything with ``n``,
    ``ensure_rows``, ``promote``, ``lazy`` and a ``_D`` buffer).
    """

    __slots__ = ("_engine",)

    def __init__(self, engine) -> None:
        self._engine = engine

    @property
    def shape(self) -> "tuple[int, int]":
        return (self._engine.n, self._engine.n)

    def __getitem__(self, key):
        eng = self._engine
        if eng.lazy:
            rows = key[0] if isinstance(key, tuple) else key
            if isinstance(rows, slice):
                eng.promote()
            else:
                r = np.asarray(rows)
                if r.dtype == bool:
                    r = np.flatnonzero(r)
                eng.ensure_rows(np.unique(r.ravel()))
        out = eng._D[key]
        if isinstance(out, np.ndarray) and out.base is not None:
            out = out.view()
            out.flags.writeable = False
        return out
