"""Text renderings of realizations (DOT export, adjacency summaries).

The paper's figures are small directed graphs; these helpers make any
realization inspectable without a plotting stack: Graphviz DOT output
(arc ownership = arrow direction, braces doubled) and fixed-width
adjacency/degree tables for terminal viewing.
"""

from __future__ import annotations

from ..errors import GraphError
from .digraph import OwnedDigraph

__all__ = ["to_dot", "adjacency_table", "degree_summary"]


def to_dot(
    graph: OwnedDigraph,
    *,
    name: str = "realization",
    labels: "dict[int, str] | None" = None,
    highlight: "set[int] | frozenset[int] | None" = None,
) -> str:
    """Graphviz DOT text for a realization.

    Arrows point from owner to target (the paper's arc convention);
    ``highlight`` vertices are drawn filled. Deterministic output (arcs
    in sorted order) so snapshots are diffable.
    """
    if labels is None:
        labels = {}
    hi = highlight or frozenset()
    lines = [f"digraph {name} {{"]
    lines.append("  node [shape=circle];")
    for v in range(graph.n):
        attrs = []
        if v in labels:
            attrs.append(f'label="{labels[v]}"')
        if v in hi:
            attrs.append('style=filled fillcolor="lightblue"')
        suffix = f" [{' '.join(attrs)}]" if attrs else ""
        lines.append(f"  v{v}{suffix};")
    for u, v in graph.arcs():
        lines.append(f"  v{u} -> v{v};")
    lines.append("}")
    return "\n".join(lines)


def adjacency_table(graph: OwnedDigraph, *, max_n: int = 40) -> str:
    """Fixed-width owner -> targets table (small graphs only)."""
    if graph.n > max_n:
        raise GraphError(f"adjacency_table is for graphs up to {max_n} vertices")
    width = len(str(graph.n - 1))
    lines = []
    for u in range(graph.n):
        targets = ", ".join(str(int(v)) for v in graph.out_neighbors(u))
        lines.append(f"{u:>{width}} -> [{targets}]")
    return "\n".join(lines)


def degree_summary(graph: OwnedDigraph) -> str:
    """One-line structural summary: n, arcs, budget and degree ranges."""
    out = graph.out_degrees()
    und = [graph.degree(v) for v in range(graph.n)]
    braces = len(graph.braces())
    return (
        f"n={graph.n} arcs={graph.num_arcs} braces={braces} "
        f"budgets[min,max]=[{int(out.min())},{int(out.max())}] "
        f"degrees[min,max]=[{min(und)},{max(und)}]"
    )
