"""Process-parallel map with deterministic per-task seeding.

Experiment sweeps fan out over (size, seed, version) tuples. The
executor follows the scatter/gather discipline of the MPI guides —
the work list is partitioned across workers, results are gathered in
task order — implemented on :mod:`multiprocessing` (mpi4py is not
available offline; the decomposition and determinism rules are the
same, so swapping the backend would not change results).

Determinism contract: every task receives an explicit integer seed
derived from ``(base_seed, task_index)`` via
:func:`repro.rng.derive_seed`, so results are bit-identical for any
worker count, including serial execution.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..errors import ReproError

__all__ = ["parallel_map", "cpu_workers", "contiguous_shards", "fork_available"]


def fork_available() -> bool:
    """Whether worker processes are forked (inheriting parent memory).

    Forked workers inherit the parent's shared-memory attachments and
    module globals (pool handle registries) for free; spawned workers
    need them re-installed via ``parallel_map``'s ``initializer``.
    """
    return hasattr(os, "fork")


def contiguous_shards(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous ranges.

    Ranges are half-open ``(lo, hi)`` pairs, cover ``[0, total)`` exactly,
    and differ in length by at most one (remainder spread over the first
    shards) — the scatter decomposition of the MPI guides applied to a
    rank space. Empty shards are never emitted, so fewer than ``parts``
    ranges come back when ``total < parts``.
    """
    if total < 0:
        raise ReproError(f"shard total must be nonnegative, got {total}")
    if parts < 1:
        raise ReproError(f"shard count must be positive, got {parts}")
    parts = min(parts, total) if total else 0
    shards = []
    lo = 0
    for i in range(parts):
        size = total // parts + (1 if i < total % parts else 0)
        shards.append((lo, lo + size))
        lo += size
    return shards


def cpu_workers(requested: "int | None" = None) -> int:
    """Sane worker count: ``requested`` clamped to the machine's CPUs."""
    available = os.cpu_count() or 1
    if requested is None:
        return max(1, available - 1)
    if requested < 1:
        raise ReproError(f"worker count must be positive, got {requested}")
    return min(requested, available)


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    processes: "int | None" = 1,
    chunksize: "int | None" = None,
    initializer: "Callable[..., None] | None" = None,
    initargs: "tuple" = (),
) -> list[Any]:
    """Apply ``fn`` to every task, optionally across processes.

    Parameters
    ----------
    fn:
        A picklable (module-level) callable of one argument.
    tasks:
        The work list; results are returned in the same order
        (gather preserves scatter order).
    processes:
        ``1`` (default) runs serially in-process — no pickling, easy
        debugging, identical results. ``None`` uses all-but-one CPU.
    chunksize:
        Tasks per work unit handed to each worker; defaults to an even
        split into ~4 waves per worker.
    initializer / initargs:
        Per-worker setup hook (e.g. installing shared-memory pool
        handles in spawned workers). Run once in-process before the
        serial path too, so serial and parallel execution stay
        indistinguishable.

    Notes
    -----
    Serial and parallel execution produce identical results as long as
    tasks carry their own seeds (see module docstring) — this is
    asserted by the test suite.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    nproc = cpu_workers(processes) if processes != 1 else 1
    if nproc == 1 or len(tasks) == 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(t) for t in tasks]
    if chunksize is None:
        chunksize = max(1, len(tasks) // (nproc * 4))
    ctx = mp.get_context("fork" if fork_available() else "spawn")
    with ctx.Pool(
        processes=nproc, initializer=initializer, initargs=initargs
    ) as pool:
        return pool.map(fn, tasks, chunksize=chunksize)
