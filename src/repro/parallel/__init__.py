"""Process-parallel sweep harness with deterministic seeding."""

from .executor import cpu_workers, parallel_map
from .sweep import (
    SweepSpec,
    SweepTask,
    aggregate_max,
    aggregate_mean,
    clear_distance_caches,
    run_sweep,
    shared_distance_cache,
)

__all__ = [
    "SweepSpec",
    "SweepTask",
    "aggregate_max",
    "aggregate_mean",
    "clear_distance_caches",
    "cpu_workers",
    "parallel_map",
    "run_sweep",
    "shared_distance_cache",
]
