"""Process-parallel sweep harness with deterministic seeding."""

from .executor import contiguous_shards, cpu_workers, fork_available, parallel_map
from .faults import FAULT_KINDS, Fault, FaultPlan
from .runtime import RuntimeReport, ShardContext, ShardOutcome, run_shards
from .sweep import (
    SweepSpec,
    SweepTask,
    aggregate_max,
    aggregate_mean,
    clear_distance_caches,
    install_pool_handles,
    run_sweep,
    shared_distance_cache,
    sweep_pool_key,
    warm_distance_pool,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "RuntimeReport",
    "ShardContext",
    "ShardOutcome",
    "SweepSpec",
    "SweepTask",
    "aggregate_max",
    "aggregate_mean",
    "clear_distance_caches",
    "contiguous_shards",
    "cpu_workers",
    "fork_available",
    "install_pool_handles",
    "parallel_map",
    "run_shards",
    "run_sweep",
    "shared_distance_cache",
    "sweep_pool_key",
    "warm_distance_pool",
]
