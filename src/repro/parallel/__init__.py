"""Process-parallel sweep harness with deterministic seeding."""

from .executor import cpu_workers, parallel_map
from .sweep import SweepSpec, SweepTask, aggregate_max, aggregate_mean, run_sweep

__all__ = [
    "SweepSpec",
    "SweepTask",
    "aggregate_max",
    "aggregate_mean",
    "cpu_workers",
    "parallel_map",
    "run_sweep",
]
