"""Process-parallel sweep harness with deterministic seeding."""

from .executor import cpu_workers, fork_available, parallel_map
from .sweep import (
    SweepSpec,
    SweepTask,
    aggregate_max,
    aggregate_mean,
    clear_distance_caches,
    install_pool_handles,
    run_sweep,
    shared_distance_cache,
    sweep_pool_key,
    warm_distance_pool,
)

__all__ = [
    "SweepSpec",
    "SweepTask",
    "aggregate_max",
    "aggregate_mean",
    "clear_distance_caches",
    "cpu_workers",
    "fork_available",
    "install_pool_handles",
    "parallel_map",
    "run_sweep",
    "shared_distance_cache",
    "sweep_pool_key",
    "warm_distance_pool",
]
