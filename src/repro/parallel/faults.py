"""Deterministic seeded fault injection for the census runtime.

Recovery code that is never exercised is decoration. This module makes
the failure modes of a long sharded scan *injectable on purpose* — from
tests and from the ``resume`` bench lane — so the work-stealing
runtime's checkpoint/retry/quarantine machinery is verified against
real process deaths, not simulations:

* ``kill`` — the worker ``os._exit``\\ s mid-shard when its Gray walk
  reaches the fault rank (no cleanup, no final checkpoint: the honest
  preemption model);
* ``stall`` — the worker stops heartbeating and sleeps at the fault
  rank until the supervisor's heartbeat timeout declares it dead and
  kills it;
* ``drop_checkpoint`` — the shard's k-th checkpoint write is silently
  skipped (a lost write: recovery must fall back to the previous
  record);
* ``corrupt_checkpoint`` — the k-th checkpoint record is appended with
  a flipped payload byte (a torn/corrupt record: replay must reject it
  by checksum and fall back).

Every fault names the ``attempt`` it fires on (default 0, the first
execution), so a retried shard runs clean and the run always converges.
:meth:`FaultPlan.random` derives a whole plan deterministically from an
integer seed — the bench lane and the hypothesis-style sweep tests use
it to place faults at arbitrary points while staying reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["Fault", "FaultPlan", "FAULT_KINDS", "corrupt_frame"]

#: Injectable failure modes, in the order the docstring describes them.
FAULT_KINDS: "tuple[str, ...]" = (
    "kill",
    "stall",
    "drop_checkpoint",
    "corrupt_checkpoint",
)

#: Exit status of a fault-killed worker (distinguishable from crashes).
KILL_EXIT_CODE: int = 117


def corrupt_frame(data: bytes) -> bytes:
    """Flip one payload byte of an encoded record frame.

    Flips a byte past the frame header so the length field stays
    plausible and the CRC check — not a short read — is what rejects
    the record.
    """
    pos = min(len(data) - 2, 13)  # inside the JSON payload
    return data[:pos] + bytes([data[pos] ^ 0xFF]) + data[pos + 1 :]


@dataclass(frozen=True)
class Fault:
    """One injected failure, bound to a shard and an attempt.

    ``rank`` triggers ``kill``/``stall`` when the shard's walk reaches
    it; ``checkpoint_index`` selects the k-th checkpoint write of the
    attempt for ``drop_checkpoint``/``corrupt_checkpoint``.
    """

    kind: str
    shard_id: int
    rank: "int | None" = None
    checkpoint_index: "int | None" = None
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in ("kill", "stall") and self.rank is None:
            raise ReproError(f"{self.kind} fault needs a trigger rank")
        if self.kind.endswith("_checkpoint") and self.checkpoint_index is None:
            raise ReproError(f"{self.kind} fault needs a checkpoint index")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of faults shipped to every worker.

    ``stall_seconds`` bounds how long a stalled worker sleeps if the
    supervisor never kills it (a backstop; in practice the heartbeat
    timeout fires far earlier).
    """

    faults: "tuple[Fault, ...]" = ()
    stall_seconds: float = 30.0

    def shard_faults(self, shard_id: int, attempt: int) -> "tuple[Fault, ...]":
        """The faults armed for this shard execution."""
        return tuple(
            f
            for f in self.faults
            if f.shard_id == shard_id and f.attempt == attempt
        )

    @classmethod
    def random(
        cls,
        seed: int,
        shards: "list[tuple[int, int]] | tuple[tuple[int, int], ...]",
        *,
        kinds: "tuple[str, ...]" = FAULT_KINDS,
        fault_fraction: float = 1.0,
        stall_seconds: float = 30.0,
    ) -> "FaultPlan":
        """Deterministic plan: one fault per selected shard.

        Each selected shard draws a kind from ``kinds`` and a trigger
        point strictly inside its rank range. Checkpoint-write faults
        (drop/corrupt) are paired with a later ``kill`` in the same
        shard — without a subsequent death the damaged journal would
        never be read, so the pairing is what makes those faults
        actually exercise recovery. Identical seeds give identical
        plans on every platform (:class:`random.Random` is stable).
        """
        if not 0.0 <= fault_fraction <= 1.0:
            raise ReproError(
                f"fault_fraction must be in [0, 1], got {fault_fraction}"
            )
        rng = random.Random(seed)
        faults: "list[Fault]" = []
        for shard_id, (lo, hi) in enumerate(shards):
            if hi - lo < 2 or rng.random() >= fault_fraction:
                continue
            kind = kinds[rng.randrange(len(kinds))]
            if kind in ("kill", "stall"):
                faults.append(
                    Fault(kind=kind, shard_id=shard_id, rank=rng.randrange(lo + 1, hi))
                )
            else:
                faults.append(
                    Fault(
                        kind=kind,
                        shard_id=shard_id,
                        checkpoint_index=rng.randrange(2),
                    )
                )
                # The paired kill lands late in the range so at least
                # one checkpoint write usually precedes it.
                faults.append(
                    Fault(
                        kind="kill",
                        shard_id=shard_id,
                        rank=rng.randrange((lo + hi) // 2, hi),
                    )
                )
        return cls(faults=tuple(faults), stall_seconds=stall_seconds)
