"""Fault-tolerant work-stealing runtime for checkpointed shard scans.

:func:`repro.parallel.executor.parallel_map` statically partitions work
and dies with its slowest (or unluckiest) worker. This runtime replaces
that for census scans: shards live in a shared pending queue, idle
workers steal the next runnable shard, and a supervisor keeps the whole
run alive through worker deaths:

* **Checkpointed shards.** Workers periodically append engine-free
  progress records to per-shard journals
  (:mod:`repro.core.checkpoint`); every recovery decision reads *only*
  the journal, so it survives the worker, the supervisor, and the
  process tree.
* **Heartbeat supervision.** Workers emit rate-limited heartbeats from
  inside the shard loop; a shard whose worker stops heartbeating for
  ``heartbeat_timeout`` (hung, stalled, livelocked) is declared dead,
  its process killed, and the shard reclaimed — same path as an
  outright crash.
* **Reclaim + bounded exponential-backoff retry.** A reclaimed shard's
  journal is compacted (torn/corrupt tail dropped atomically), its last
  good record becomes the resume state, and the shard re-enters the
  queue after ``backoff_base * 2**(attempt-1)`` seconds (capped). The
  optional ``resume_payload`` hook lets the caller refresh the payload
  for the restart — the census uses it to republish the resume-rank
  matrix into the shared-memory pool so retries re-attach instead of
  rebuilding.
* **Poison-shard quarantine.** A shard that keeps dying past
  ``max_retries`` is quarantined instead of wedging the run: its last
  checkpoint still contributes partial aggregates, and the
  :class:`RuntimeReport` names exactly which rank ranges are missing so
  the caller can degrade to an explicitly-incomplete result.

Workers are real processes (fork where available, spawn otherwise);
fault injection (:mod:`repro.parallel.faults`) kills them with
``os._exit`` mid-shard, so what the tests exercise is genuine process
death, not a mock. Results are bit-identical for any worker count,
any fault plan, and any kill/resume schedule: shard aggregates are
pure functions of the rank range, and the merge is order-independent.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import Any, Callable, Sequence

from ..core.checkpoint import (
    ShardCheckpoint,
    append_encoded,
    compact_journal,
    encode_record,
    shard_journal_path,
)
from ..errors import CheckpointError, ReproError
from .executor import fork_available
from .faults import KILL_EXIT_CODE, FaultPlan, corrupt_frame

__all__ = ["ShardContext", "ShardOutcome", "RuntimeReport", "run_shards"]


class ShardContext:
    """Worker-side handle a checkpoint-aware shard function drives.

    The shard body calls :meth:`tick` as its walk advances (heartbeats
    + kill/stall fault triggers) and :meth:`checkpoint` at its progress
    boundaries (journal append + drop/corrupt fault triggers).
    ``resume_state`` carries the last good
    :class:`~repro.core.checkpoint.ShardCheckpoint` when this execution
    is a resume, else ``None``; ``interval`` is the requested rank
    spacing between checkpoints.
    """

    __slots__ = (
        "shard_id",
        "attempt",
        "interval",
        "resume_state",
        "_journal_path",
        "_emit",
        "_hb_interval",
        "_last_hb",
        "_kill_rank",
        "_stall_rank",
        "_stall_seconds",
        "_drop_cps",
        "_corrupt_cps",
        "_cp_index",
        "checkpoints_written",
    )

    def __init__(
        self,
        *,
        shard_id: int,
        attempt: int,
        interval: int,
        journal_path: "str | os.PathLike",
        resume_state: "ShardCheckpoint | None" = None,
        fault_plan: "FaultPlan | None" = None,
        emit_heartbeat: "Callable[[int], None] | None" = None,
        heartbeat_interval: float = 0.5,
    ) -> None:
        self.shard_id = int(shard_id)
        self.attempt = int(attempt)
        self.interval = max(1, int(interval))
        self.resume_state = resume_state
        self._journal_path = Path(journal_path)
        self._emit = emit_heartbeat
        self._hb_interval = float(heartbeat_interval)
        self._last_hb = 0.0
        self._kill_rank: "int | None" = None
        self._stall_rank: "int | None" = None
        self._stall_seconds = 30.0
        self._drop_cps: "set[int]" = set()
        self._corrupt_cps: "set[int]" = set()
        self._cp_index = 0
        self.checkpoints_written = 0
        if fault_plan is not None:
            self._stall_seconds = float(fault_plan.stall_seconds)
            for fault in fault_plan.shard_faults(self.shard_id, self.attempt):
                if fault.kind == "kill":
                    self._kill_rank = (
                        fault.rank
                        if self._kill_rank is None
                        else min(self._kill_rank, fault.rank)
                    )
                elif fault.kind == "stall":
                    self._stall_rank = (
                        fault.rank
                        if self._stall_rank is None
                        else min(self._stall_rank, fault.rank)
                    )
                elif fault.kind == "drop_checkpoint":
                    self._drop_cps.add(fault.checkpoint_index)
                else:  # corrupt_checkpoint
                    self._corrupt_cps.add(fault.checkpoint_index)

    # ------------------------------------------------------------------
    def tick(self, rank: int) -> None:
        """Advance to ``rank``: fire due faults, then maybe heartbeat."""
        if self._stall_rank is not None and rank >= self._stall_rank:
            self._stall_rank = None
            # Stop heartbeating and go dark; the supervisor's timeout
            # kills us. The sleep is a backstop for unsupervised runs.
            time.sleep(self._stall_seconds)
        if self._kill_rank is not None and rank >= self._kill_rank:
            os._exit(KILL_EXIT_CODE)  # preemption: no cleanup, no flush
        now = time.monotonic()
        if self._emit is not None and now - self._last_hb >= self._hb_interval:
            self._last_hb = now
            self._emit(rank)

    def checkpoint(
        self,
        *,
        lo: int,
        hi: int,
        next_rank: int,
        counters: "dict[str, int | None]",
        eq_profiles: "tuple | None" = None,
        orbit_vals: "tuple[int, ...] | None" = None,
        orbit_key_format: int = 2,
        done: bool = False,
    ) -> None:
        """Append one progress record (subject to injected write faults)."""
        index = self._cp_index
        self._cp_index += 1
        if index in self._drop_cps:
            return  # injected lost write
        record = ShardCheckpoint(
            shard_id=self.shard_id,
            lo=lo,
            hi=hi,
            next_rank=next_rank,
            attempt=self.attempt,
            done=done,
            counters=counters,
            eq_profiles=eq_profiles,
            orbit_vals=orbit_vals,
            orbit_key_format=orbit_key_format,
        )
        data = encode_record(record)
        if index in self._corrupt_cps:
            data = corrupt_frame(data)
        append_encoded(self._journal_path, data)
        self.checkpoints_written += 1
        if self._emit is not None:
            self._last_hb = time.monotonic()
            self._emit(next_rank)


def _worker_main(
    widx: int,
    fn: "Callable[[Any, ShardContext], dict]",
    task_q,
    event_q,
    checkpoint_dir: str,
    fault_plan: "FaultPlan | None",
    interval: int,
    heartbeat_interval: float,
) -> None:
    """Worker loop: steal a shard, run it under a context, report back."""
    try:
        while True:
            item = task_q.get()
            if item is None:
                return
            shard_id, payload, resume_state, attempt = item

            def emit(rank: int, _sid: int = shard_id) -> None:
                event_q.put(("hb", widx, _sid, rank))

            ctx = ShardContext(
                shard_id=shard_id,
                attempt=attempt,
                interval=interval,
                journal_path=shard_journal_path(checkpoint_dir, shard_id),
                resume_state=resume_state,
                fault_plan=fault_plan,
                emit_heartbeat=emit,
                heartbeat_interval=heartbeat_interval,
            )
            try:
                result = fn(payload, ctx)
            except KeyboardInterrupt:
                raise  # teardown: handled by the outer except
            except BaseException:
                # Not just Exception: a shard fn raising SystemExit (or
                # any other BaseException) must surface as an error
                # event too — otherwise the worker dies silently and the
                # shard waits out a full heartbeat-timeout reclamation.
                event_q.put(("error", widx, shard_id, traceback.format_exc()))
                continue
            event_q.put(("done", widx, shard_id, result))
    except (KeyboardInterrupt, EOFError):  # pragma: no cover - teardown races
        pass


def _drain_pending_events(event_q, handle_event) -> int:
    """Apply every event still queued; returns how many were applied.

    The shutdown half of the scheduler's drain: workers that finished a
    shard during teardown (they beat the sentinel, or raced the
    deadline) have already put their final ``done``/``error`` event on
    the queue, and closing it without this pass silently drops them —
    a completed shard would read as incomplete and a worker error would
    go uncounted. Runs strictly after the workers are joined, so
    everything a worker ever sent is either applied here or was applied
    by the main loop; ``Empty`` means genuinely empty, not in-flight.
    """
    drained = 0
    while True:
        try:
            msg = event_q.get_nowait()
        except Empty:
            return drained
        except (EOFError, OSError):  # pragma: no cover - torn queue write
            return drained
        handle_event(msg)
        drained += 1


# Shard lifecycle states.
_PENDING, _RUNNING, _DONE, _QUARANTINED = "pending", "running", "done", "quarantined"


@dataclass
class _ShardState:
    shard_id: int
    payload: Any
    current_payload: Any
    status: str = _PENDING
    attempts: int = 0
    resumed: bool = False
    resume_record: "ShardCheckpoint | None" = None
    result: "dict | None" = None
    ready_at: float = 0.0
    reasons: "list[str]" = field(default_factory=list)


@dataclass(frozen=True)
class ShardOutcome:
    """Terminal state of one shard after the run."""

    shard_id: int
    result: "dict | None"
    attempts: int
    resumed: bool
    quarantined: bool
    last_record: "ShardCheckpoint | None"
    reasons: "tuple[str, ...]" = ()


@dataclass(frozen=True)
class RuntimeReport:
    """Everything the caller needs to merge (or explain) a run.

    ``outcomes`` are in shard order. ``incomplete()`` lists the rank
    ranges quarantined shards never covered — the raw material of an
    incompleteness manifest.
    """

    outcomes: "tuple[ShardOutcome, ...]"
    stats: "dict[str, int]"

    def results(self) -> "list[dict]":
        """Results of every completed shard, in shard order."""
        return [o.result for o in self.outcomes if o.result is not None]

    def incomplete(self) -> "list[tuple[int, int, int]]":
        """``(shard_id, first_missing_rank, hi)`` per quarantined shard."""
        out = []
        for o in self.outcomes:
            if not o.quarantined:
                continue
            rec = o.last_record
            if rec is not None:
                out.append((o.shard_id, rec.next_rank, rec.hi))
        return out


def run_shards(
    fn: "Callable[[Any, ShardContext], dict]",
    payloads: "Sequence[Any]",
    *,
    checkpoint_dir: "str | os.PathLike",
    workers: int = 2,
    resume: bool = False,
    checkpoint_interval: int = 512,
    heartbeat_timeout: float = 5.0,
    heartbeat_interval: "float | None" = None,
    poll_interval: float = 0.02,
    max_retries: int = 3,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    fault_plan: "FaultPlan | None" = None,
    resume_payload: "Callable[[Any, ShardCheckpoint], Any] | None" = None,
    result_from_record: "Callable[[ShardCheckpoint], dict] | None" = None,
    timeout: "float | None" = None,
) -> RuntimeReport:
    """Run every shard to completion (or quarantine) under supervision.

    ``fn(payload, ctx)`` must be a module-level callable that drives
    ``ctx`` (tick + checkpoint) and returns an order-independently
    mergeable dict. ``resume=True`` replays existing journals first:
    shards whose last record is ``done`` are not re-executed (their
    result is rebuilt by ``result_from_record``), partially-complete
    shards restart from their last good record. A fresh run
    (``resume=False``) deletes stale journals so old records can never
    leak into a new decomposition.

    ``timeout`` bounds the whole run (wall clock); on expiry remaining
    workers are killed and a :class:`~repro.errors.CheckpointError` is
    raised — the journals remain valid for a later ``resume=True``.
    Final events already in flight at shutdown are drained before the
    event queue closes, so a shard whose ``done`` merely raced the
    deadline still counts (the run then returns normally) and worker
    errors emitted during teardown are never silently dropped.
    """
    import multiprocessing as mp

    if workers < 1:
        raise ReproError(f"worker count must be positive, got {workers}")
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    hb_interval = (
        heartbeat_interval
        if heartbeat_interval is not None
        else max(0.01, heartbeat_timeout / 5.0)
    )
    stats = {
        "workers_spawned": 0,
        "crashes": 0,
        "stalls": 0,
        "worker_errors": 0,
        "retries": 0,
        "quarantined": 0,
        "shards_resumed": 0,
        "shards_skipped_done": 0,
    }

    shards: "list[_ShardState]" = [
        _ShardState(shard_id=i, payload=p, current_payload=p)
        for i, p in enumerate(payloads)
    ]
    for s in shards:
        journal = shard_journal_path(directory, s.shard_id)
        if not resume:
            journal.unlink(missing_ok=True)
            continue
        record = compact_journal(journal).last
        if record is None:
            continue
        if record.done:
            if result_from_record is None:
                raise CheckpointError(
                    "resume found a completed shard but no result_from_record "
                    "hook to rebuild its result"
                )
            s.result = result_from_record(record)
            s.resume_record = record
            s.status = _DONE
            stats["shards_skipped_done"] += 1
        else:
            s.resume_record = record
            s.resumed = True
            if resume_payload is not None:
                s.current_payload = resume_payload(s.payload, record)
            stats["shards_resumed"] += 1

    ctx_mp = mp.get_context("fork" if fork_available() else "spawn")
    event_q = ctx_mp.Queue()
    live: "dict[int, dict]" = {}  # widx -> {proc, q, shard, last_hb}
    next_widx = 0
    deadline = None if timeout is None else time.monotonic() + timeout

    def incomplete_count() -> int:
        return sum(1 for s in shards if s.status in (_PENDING, _RUNNING))

    def spawn_worker() -> None:
        nonlocal next_widx
        widx = next_widx
        next_widx += 1
        task_q = ctx_mp.Queue()
        proc = ctx_mp.Process(
            target=_worker_main,
            args=(
                widx,
                fn,
                task_q,
                event_q,
                str(directory),
                fault_plan,
                checkpoint_interval,
                hb_interval,
            ),
            daemon=True,
        )
        proc.start()
        live[widx] = {"proc": proc, "q": task_q, "shard": None, "last_hb": time.monotonic()}
        stats["workers_spawned"] += 1

    def reclaim(s: _ShardState, reason: str) -> None:
        """Dead/stalled/errored execution: journal -> retry or quarantine."""
        s.attempts += 1
        s.reasons.append(reason)
        record = compact_journal(shard_journal_path(directory, s.shard_id)).last
        s.resume_record = record
        if record is not None and record.done:
            # Died after its final checkpoint but before reporting.
            if result_from_record is not None:
                s.result = result_from_record(record)
                s.status = _DONE
                return
        if s.attempts > max_retries:
            s.status = _QUARANTINED
            stats["quarantined"] += 1
            return
        stats["retries"] += 1
        if record is not None:
            s.resumed = True
            s.current_payload = (
                resume_payload(s.payload, record)
                if resume_payload is not None
                else s.payload
            )
        else:
            s.current_payload = s.payload
        s.status = _PENDING
        backoff = min(backoff_cap, backoff_base * (2.0 ** (s.attempts - 1)))
        s.ready_at = time.monotonic() + backoff

    def kill_worker(widx: int) -> None:
        info = live.pop(widx, None)
        if info is None:
            return
        proc = info["proc"]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        info["q"].close()

    def handle_event(msg) -> None:
        kind, widx, shard_id, body = msg
        info = live.get(widx)
        if info is not None:
            info["last_hb"] = time.monotonic()
        if kind == "hb":
            return
        s = shards[shard_id]
        if info is not None and info["shard"] == shard_id:
            info["shard"] = None
        if kind == "done":
            # A stall-kill can race completion; the first result wins
            # (all executions of a shard produce identical results).
            if s.status != _DONE:
                s.result = body
                s.status = _DONE
        elif kind == "error":
            stats["worker_errors"] += 1
            if s.status == _RUNNING:
                reclaim(s, f"worker error: {body.strip().splitlines()[-1]}")

    timed_out = False
    try:
        target_workers = max(1, min(workers, len(shards)))
        while incomplete_count() > 0:
            if deadline is not None and time.monotonic() > deadline:
                # Don't raise yet: the shutdown drain below may apply a
                # final "done" that was already in flight, in which case
                # the run actually completed and the report is valid.
                timed_out = True
                break
            while len(live) < min(target_workers, incomplete_count()):
                spawn_worker()
            # Dispatch: idle workers steal the next runnable shard.
            now = time.monotonic()
            idle = [w for w, info in live.items() if info["shard"] is None]
            runnable = [
                s for s in shards if s.status == _PENDING and s.ready_at <= now
            ]
            for widx, s in zip(idle, runnable):
                info = live[widx]
                info["shard"] = s.shard_id
                info["last_hb"] = now
                s.status = _RUNNING
                info["q"].put(
                    (s.shard_id, s.current_payload, s.resume_record, s.attempts)
                )
            # Drain events.
            try:
                handle_event(event_q.get(timeout=poll_interval))
                while True:
                    handle_event(event_q.get_nowait())
            except Empty:
                pass
            except (EOFError, OSError):  # pragma: no cover - torn queue write
                pass
            # Supervise: crashed or stalled workers lose their shard.
            now = time.monotonic()
            for widx in list(live):
                info = live[widx]
                shard_id = info["shard"]
                if not info["proc"].is_alive():
                    kill_worker(widx)
                    if shard_id is not None and shards[shard_id].status == _RUNNING:
                        stats["crashes"] += 1
                        code = info["proc"].exitcode
                        reclaim(shards[shard_id], f"worker died (exit {code})")
                elif (
                    shard_id is not None
                    and now - info["last_hb"] > heartbeat_timeout
                ):
                    kill_worker(widx)
                    if shards[shard_id].status == _RUNNING:
                        stats["stalls"] += 1
                        reclaim(shards[shard_id], "heartbeat timeout")
    finally:
        for widx, info in list(live.items()):
            try:
                info["q"].put_nowait(None)
            except Exception:  # pragma: no cover - full/closed queue
                pass
        for widx, info in list(live.items()):
            info["proc"].join(timeout=2.0)
            if info["proc"].is_alive():
                info["proc"].kill()
                info["proc"].join(timeout=5.0)
            info["q"].close()
        # Workers are joined (or killed): whatever they managed to send
        # is fully flushed into the queue. Apply it before closing —
        # a "done"/"error" event racing the scheduler's exit used to be
        # silently lost here (undercounted worker_errors; a shard that
        # completed during teardown read as incomplete).
        _drain_pending_events(event_q, handle_event)
        event_q.close()
        event_q.join_thread()
    if timed_out and incomplete_count() > 0:
        raise CheckpointError(
            f"runtime exceeded its {timeout:.1f}s budget with "
            f"{incomplete_count()} shard(s) incomplete; journals are "
            f"intact — rerun with resume=True"
        )

    outcomes = tuple(
        ShardOutcome(
            shard_id=s.shard_id,
            result=s.result,
            attempts=s.attempts,
            resumed=s.resumed,
            quarantined=s.status == _QUARANTINED,
            last_record=s.resume_record,
            reasons=tuple(s.reasons),
        )
        for s in shards
    )
    return RuntimeReport(outcomes=outcomes, stats=stats)
