"""Declarative parameter sweeps over game instances.

A sweep is the cartesian product of named parameter axes plus a
replication axis of seeds; each grid point becomes one task with a
deterministic derived seed. The result is a flat list of records
(dicts) ready for aggregation — the pattern every Table 1 experiment
shares.

Workers that run best-response dynamics should fetch their distance
substrate via :func:`shared_distance_cache` instead of letting each
task build its own. Three reuse layers compose, cheapest first:

* **Live entries** — one :class:`DistanceCache` per graph *instance*
  (keyed by the process-unique
  :attr:`~repro.graphs.digraph.OwnedDigraph.instance_id`, so two
  same-size instances can never alias each other's engines — the
  keyed-by-size aliasing bug this replaces);
* **Shared-memory attach** — when the sweep parent published the
  graph's ``U(G)`` matrix into a
  :class:`~repro.core.matrix_pool.MatrixPool`
  (``run_sweep(warm_graphs=...)``), the worker attaches a zero-copy
  copy-on-write view instead of running the initial all-pairs BFS;
* **Retired buffers** — engines of evicted entries are recycled by
  rebinding, so matrices are reused across tasks of the same size even
  without a pool hit.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..core.distance_cache import DistanceCache
from ..errors import PoolError, ReproError
from ..graphs.digraph import OwnedDigraph
from ..rng import derive_seed
from .executor import parallel_map

__all__ = [
    "SweepSpec",
    "SweepTask",
    "run_sweep",
    "aggregate_max",
    "aggregate_mean",
    "shared_distance_cache",
    "clear_distance_caches",
    "sweep_pool_key",
    "warm_distance_pool",
    "install_pool_handles",
]

#: Process-local pool of live distance caches, keyed by
#: ``graph.instance_id``. Worker processes are forked per sweep, so
#: entries never leak across runs with different configurations; serial
#: runs reuse them across tasks, which is the point. LRU-bounded; the
#: evicted caches' buffers survive in ``_RETIRED`` for recycling.
_PROCESS_CACHES: "OrderedDict[int, tuple[DistanceCache, tuple]]" = OrderedDict()

#: Evicted caches by ``(n, engine-kwargs key)``, ready to rebind to the
#: next same-shaped instance (buffer reuse without aliasing live
#: entries). Trimmed to their base engine on retirement, one per
#: bucket, LRU-bounded.
_RETIRED: "OrderedDict[tuple, DistanceCache]" = OrderedDict()

#: Live cache entries kept per process. Deliberately small: a live
#: entry stays bound to its instance (the no-aliasing contract), so
#: only the instances a worker genuinely interleaves need live slots —
#: everything older retires into ``_RETIRED`` for recycling.
_MAX_LIVE_CACHES: int = 2

#: Retired recycling buckets kept per process.
_MAX_RETIRED: int = 4

#: Shared-memory warm-start handles published by the sweep parent,
#: keyed by :func:`sweep_pool_key`. Forked workers inherit this dict;
#: spawned workers get it re-installed via the pool initializer.
_POOL_HANDLES: "dict[tuple, Any]" = {}


def sweep_pool_key(graph: OwnedDigraph) -> tuple:
    """Content key of a sweep prototype graph: ``(n, profile key)``.

    Content-addressed (not instance-addressed) because sweep workers
    rebuild their task graphs from seeds — two processes must find the
    same segment for independently built but identical realizations.
    """
    return ("sweep", graph.n, graph.profile_key())


def install_pool_handles(handles: "dict[tuple, Any]") -> None:
    """Replace this process's warm-start handle registry.

    Module-level so it can serve as a ``parallel_map`` initializer for
    spawned workers; forked workers inherit the registry for free.
    """
    _POOL_HANDLES.clear()
    _POOL_HANDLES.update(handles)


def warm_distance_pool(
    graphs: "Sequence[OwnedDigraph]",
    *,
    players: "Sequence[int] | str | None" = None,
    store=None,
    **engine_kwargs,
):
    """Publish ``U(G)`` matrices of prototype graphs for worker attach.

    The parent computes each all-pairs matrix once, publishes it into a
    fresh :class:`~repro.core.matrix_pool.MatrixPool`, and installs the
    handles process-locally (forked workers inherit them). Returns the
    pool — the caller owns it and must :meth:`~repro.core.matrix_pool.
    MatrixPool.close` it when the sweep is done.

    ``players`` extends each prototype's bundle with per-player
    ``U(G - u)`` snapshots (``"all"`` for every player, or an iterable
    of vertex ids): the dominant warm-start win for best-response
    workloads, where every evaluated player otherwise pays a fresh
    punctured all-pairs BFS on first touch. Workers adopt them through
    :class:`~repro.core.distance_cache.DistanceCache`'s
    ``player_engines=`` path, copy-on-write like the base matrix.

    ``store`` (a :class:`~repro.core.pool_store.PoolStore`) makes the
    pool two-level: a prototype whose bundle is already on disk —
    published by an earlier sweep, even in a dead process — is promoted
    into shared memory with zero builds, and every bundle built here is
    written through for the next run. The disk key digests the graph
    content plus the warmed player set, so a sweep asking for a
    different ``players`` shape never attaches a partial bundle.
    """
    import numpy as np

    from ..core.matrix_pool import MatrixPool, sweep_orphan_segments
    from ..graphs.engine import DistanceEngine

    sweep_orphan_segments()
    pool = MatrixPool(max_segments=max(1, len(graphs)), store=store)
    handles: "dict[tuple, Any]" = {}
    if players is None:
        players_tag = None
    elif players == "all":
        players_tag = "all"
    else:
        players_tag = tuple(sorted(int(u) for u in players))
    for graph in graphs:
        key = sweep_pool_key(graph)
        digest = None
        if store is not None:
            from ..core.pool_store import store_digest

            digest = store_digest(
                "sweep", graph.n, graph.profile_key(), players_tag
            )
            handle = pool.fetch(key, digest=digest)
            if handle is not None:
                handles[key] = handle
                continue
        engine = DistanceEngine(graph.undirected_csr(), **engine_kwargs)
        arrays: "dict[str, Any]" = {
            "D": engine.matrix,
            "inf": np.asarray([engine.inf], dtype=np.int64),
        }
        if players is not None:
            warm_players = range(graph.n) if players == "all" else players
            for u in warm_players:
                player_engine = DistanceEngine(
                    graph.undirected_csr_without(int(u)), **engine_kwargs
                )
                arrays[f"P{int(u)}"] = player_engine.matrix
        handles[key] = pool.publish(key, arrays, digest=digest)
    install_pool_handles(handles)
    return pool


def _attach_pooled_engines(graph: OwnedDigraph, kwargs: "dict[str, Any]"):
    """Copy-on-write engines from a published bundle.

    Returns ``(base_engine, player_engines)`` — ``(None, None)`` on a
    pool miss. The bundle's ``D`` field becomes the ``U(G)`` engine;
    every ``P<u>`` field becomes a per-player ``U(G - u)`` engine, all
    aliasing the shared segment copy-on-write.
    """
    handle = _POOL_HANDLES.get(sweep_pool_key(graph))
    if handle is None:
        return None, None
    from ..graphs.engine import DistanceEngine

    engine_kwargs = {}
    if kwargs.get("dirty_fraction") is not None:
        engine_kwargs["dirty_fraction"] = kwargs["dirty_fraction"]
    try:
        views = handle.attach()
        inf = int(views["inf"][0])
        base = DistanceEngine.from_snapshot(
            graph.undirected_csr(), views["D"], inf=inf, **engine_kwargs
        )
        players: "dict[int, Any]" = {}
        for field_name, view in views.items():
            if not field_name.startswith("P"):
                continue
            u = int(field_name[1:])
            players[u] = DistanceEngine.from_snapshot(
                graph.undirected_csr_without(u), view, inf=inf, **engine_kwargs
            )
        return base, players or None
    except (PoolError, KeyError, ReproError):
        return None, None  # segment evicted / owner gone: cold-start instead


def shared_distance_cache(graph: OwnedDigraph, **kwargs) -> DistanceCache:
    """Process-local :class:`DistanceCache` for exactly this ``graph``.

    Entries are keyed by ``(instance id, engine kwargs)`` — instance
    ids are process-unique and never reused, so the returned cache is
    bound to this graph object until evicted and can never silently
    alias another same-size instance (revision sync remains the cache's
    own job, which is why the revision is not part of the key). Misses
    try, in order: a shared-memory warm-start segment published by the
    sweep parent (zero-copy attach), a retired same-shape cache
    (buffer-reusing rebind), a fresh build. Least-recently-used entries
    retire beyond ``_MAX_LIVE_CACHES``, trimmed to their base engine so
    parked buffers stay cheap.
    """
    key = tuple(sorted(kwargs.items()))
    iid = graph.instance_id
    entry = _PROCESS_CACHES.get(iid)
    if entry is not None and entry[1] == key:
        cache = entry[0]
    else:
        retired = _RETIRED.pop((graph.n, key), None)
        if retired is not None:
            cache = retired
            cache.rebind(graph)
        else:
            base, players = _attach_pooled_engines(graph, kwargs)
            cache = DistanceCache(
                graph, base_engine=base, player_engines=players, **kwargs
            )
        _PROCESS_CACHES[iid] = (cache, key)
    _PROCESS_CACHES.move_to_end(iid)
    while len(_PROCESS_CACHES) > _MAX_LIVE_CACHES:
        _, (old_cache, old_key) = _PROCESS_CACHES.popitem(last=False)
        old_cache.trim()  # drop player engines: park the base buffer only
        _RETIRED[(old_cache.graph.n, old_key)] = old_cache
        _RETIRED.move_to_end((old_cache.graph.n, old_key))
        while len(_RETIRED) > _MAX_RETIRED:
            _RETIRED.popitem(last=False)
    return cache


def clear_distance_caches() -> None:
    """Drop all process-local distance caches (frees their matrices)."""
    _PROCESS_CACHES.clear()
    _RETIRED.clear()


@dataclass(frozen=True)
class SweepTask:
    """One grid point of a sweep: parameters plus a derived seed."""

    index: int
    params: "dict[str, Any]"
    seed: int


@dataclass(frozen=True)
class SweepSpec:
    """Grid definition: named axes, replication count, base seed.

    Example
    -------
    >>> spec = SweepSpec(axes={"n": [10, 20], "version": ["sum", "max"]},
    ...                  replications=3, base_seed=7)
    >>> len(spec.tasks())
    12
    """

    axes: "Mapping[str, Sequence[Any]]"
    replications: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ReproError(f"replications must be >= 1, got {self.replications}")
        if not self.axes:
            raise ReproError("sweep needs at least one axis")
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ReproError(f"axis {name!r} is empty")

    def tasks(self) -> list[SweepTask]:
        """Materialise the full task list with deterministic seeds."""
        names = list(self.axes.keys())
        out: list[SweepTask] = []
        index = 0
        for combo in itertools.product(*(self.axes[k] for k in names)):
            for rep in range(self.replications):
                params = dict(zip(names, combo))
                params["replication"] = rep
                out.append(
                    SweepTask(
                        index=index,
                        params=params,
                        seed=derive_seed(self.base_seed, index),
                    )
                )
                index += 1
        return out


def run_sweep(
    worker: Callable[[SweepTask], "dict[str, Any]"],
    spec: SweepSpec,
    *,
    processes: "int | None" = 1,
    warm_graphs: "Sequence[OwnedDigraph] | None" = None,
    warm_players: "Sequence[int] | str | None" = None,
    pool_dir: "str | None" = None,
) -> list[dict[str, Any]]:
    """Execute a sweep and return one record per grid point.

    ``worker`` must be a module-level function mapping a
    :class:`SweepTask` to a dict; the task's parameters are merged into
    the record so downstream aggregation has full context.

    ``warm_graphs`` are prototype realizations whose ``U(G)`` matrices
    the parent publishes into a shared-memory pool before fan-out; any
    worker whose task graph matches one (same ``n``, same profile)
    attaches the precomputed matrix through
    :func:`shared_distance_cache` instead of rebuilding it.
    ``warm_players`` (``"all"`` or vertex ids) additionally bundles the
    per-player ``U(G - u)`` matrices, so workers skip the punctured
    first-touch BFS per evaluated player too. Results are bit-identical
    with or without warming — the pool only replaces initial builds,
    never the answers.

    ``pool_dir`` persists the warm bundles to a
    :class:`~repro.core.pool_store.PoolStore` directory and attaches
    matching bundles published by earlier runs, so repeated sweeps over
    the same prototypes skip the parent's all-pairs builds entirely.
    """
    tasks = spec.tasks()
    pool = None
    initializer = None
    initargs: tuple = ()
    if warm_graphs:
        store = None
        if pool_dir is not None:
            from ..core.pool_store import PoolStore

            store = PoolStore(pool_dir)
        pool = warm_distance_pool(warm_graphs, players=warm_players, store=store)
        initializer = install_pool_handles
        initargs = (dict(_POOL_HANDLES),)
    try:
        results = parallel_map(
            worker,
            tasks,
            processes=processes,
            initializer=initializer,
            initargs=initargs,
        )
    finally:
        if pool is not None:
            pool.close()
            install_pool_handles({})
    records = []
    for task, result in zip(tasks, results):
        record = dict(task.params)
        record["seed"] = task.seed
        record.update(result)
        records.append(record)
    return records


def aggregate_max(
    records: "list[dict[str, Any]]", key: str, value: str
) -> dict[Any, Any]:
    """Group records by ``key`` and take the max of ``value`` per group.

    The natural aggregation for price-of-anarchy sweeps (worst
    equilibrium per size).
    """
    out: dict[Any, Any] = {}
    for r in records:
        k = r[key]
        v = r[value]
        if k not in out or v > out[k]:
            out[k] = v
    return out


def aggregate_mean(
    records: "list[dict[str, Any]]", key: str, value: str
) -> dict[Any, float]:
    """Group records by ``key`` and average ``value`` per group."""
    sums: dict[Any, float] = {}
    counts: dict[Any, int] = {}
    for r in records:
        k = r[key]
        sums[k] = sums.get(k, 0.0) + float(r[value])
        counts[k] = counts.get(k, 0) + 1
    return {k: sums[k] / counts[k] for k in sums}
