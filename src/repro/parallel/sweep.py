"""Declarative parameter sweeps over game instances.

A sweep is the cartesian product of named parameter axes plus a
replication axis of seeds; each grid point becomes one task with a
deterministic derived seed. The result is a flat list of records
(dicts) ready for aggregation — the pattern every Table 1 experiment
shares.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..errors import ReproError
from ..rng import derive_seed
from .executor import parallel_map

__all__ = ["SweepSpec", "SweepTask", "run_sweep", "aggregate_max", "aggregate_mean"]


@dataclass(frozen=True)
class SweepTask:
    """One grid point of a sweep: parameters plus a derived seed."""

    index: int
    params: "dict[str, Any]"
    seed: int


@dataclass(frozen=True)
class SweepSpec:
    """Grid definition: named axes, replication count, base seed.

    Example
    -------
    >>> spec = SweepSpec(axes={"n": [10, 20], "version": ["sum", "max"]},
    ...                  replications=3, base_seed=7)
    >>> len(spec.tasks())
    12
    """

    axes: "Mapping[str, Sequence[Any]]"
    replications: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ReproError(f"replications must be >= 1, got {self.replications}")
        if not self.axes:
            raise ReproError("sweep needs at least one axis")
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ReproError(f"axis {name!r} is empty")

    def tasks(self) -> list[SweepTask]:
        """Materialise the full task list with deterministic seeds."""
        names = list(self.axes.keys())
        out: list[SweepTask] = []
        index = 0
        for combo in itertools.product(*(self.axes[k] for k in names)):
            for rep in range(self.replications):
                params = dict(zip(names, combo))
                params["replication"] = rep
                out.append(
                    SweepTask(
                        index=index,
                        params=params,
                        seed=derive_seed(self.base_seed, index),
                    )
                )
                index += 1
        return out


def run_sweep(
    worker: Callable[[SweepTask], "dict[str, Any]"],
    spec: SweepSpec,
    *,
    processes: "int | None" = 1,
) -> list[dict[str, Any]]:
    """Execute a sweep and return one record per grid point.

    ``worker`` must be a module-level function mapping a
    :class:`SweepTask` to a dict; the task's parameters are merged into
    the record so downstream aggregation has full context.
    """
    tasks = spec.tasks()
    results = parallel_map(worker, tasks, processes=processes)
    records = []
    for task, result in zip(tasks, results):
        record = dict(task.params)
        record["seed"] = task.seed
        record.update(result)
        records.append(record)
    return records


def aggregate_max(
    records: "list[dict[str, Any]]", key: str, value: str
) -> dict[Any, Any]:
    """Group records by ``key`` and take the max of ``value`` per group.

    The natural aggregation for price-of-anarchy sweeps (worst
    equilibrium per size).
    """
    out: dict[Any, Any] = {}
    for r in records:
        k = r[key]
        v = r[value]
        if k not in out or v > out[k]:
            out[k] = v
    return out


def aggregate_mean(
    records: "list[dict[str, Any]]", key: str, value: str
) -> dict[Any, float]:
    """Group records by ``key`` and average ``value`` per group."""
    sums: dict[Any, float] = {}
    counts: dict[Any, int] = {}
    for r in records:
        k = r[key]
        sums[k] = sums.get(k, 0.0) + float(r[value])
        counts[k] = counts.get(k, 0) + 1
    return {k: sums[k] / counts[k] for k in sums}
