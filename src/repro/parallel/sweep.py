"""Declarative parameter sweeps over game instances.

A sweep is the cartesian product of named parameter axes plus a
replication axis of seeds; each grid point becomes one task with a
deterministic derived seed. The result is a flat list of records
(dicts) ready for aggregation — the pattern every Table 1 experiment
shares.

Workers that run best-response dynamics should fetch their distance
substrate via :func:`shared_distance_cache` instead of letting each
task build its own: the cache (and its preallocated all-pairs distance
matrices) lives for the whole worker process, so consecutive tasks of
the same instance size reuse buffers, and same-graph queries within a
task are answered by incremental repair rather than fresh BFS.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..core.distance_cache import DistanceCache
from ..errors import ReproError
from ..graphs.digraph import OwnedDigraph
from ..rng import derive_seed
from .executor import parallel_map

__all__ = [
    "SweepSpec",
    "SweepTask",
    "run_sweep",
    "aggregate_max",
    "aggregate_mean",
    "shared_distance_cache",
    "clear_distance_caches",
]

#: Process-local pool of distance caches, keyed by instance size. Worker
#: processes are forked per sweep, so entries never leak across runs with
#: different configurations; serial runs reuse them across tasks, which
#: is the point. The pool itself is LRU-bounded so a long-lived process
#: sweeping many distinct sizes does not retain one multi-hundred-MB
#: cache per size forever.
_PROCESS_CACHES: "OrderedDict[int, tuple[DistanceCache, tuple]]" = OrderedDict()

#: Distinct instance sizes kept alive simultaneously per process.
_MAX_POOLED_SIZES: int = 4


def shared_distance_cache(graph: OwnedDigraph, **kwargs) -> DistanceCache:
    """Process-local :class:`DistanceCache` rebound to ``graph``.

    One cache is kept per instance size ``n`` (least-recently-used
    sizes beyond ``_MAX_POOLED_SIZES`` are dropped). Rebinding to the
    task's graph reuses the previous task's engines and their
    preallocated matrices: the next access diffs CSRs and degrades to a
    buffer-reusing rebuild when the graphs are unrelated, so this is
    never slower than building from scratch. Requesting different
    engine settings (``kwargs``) than the cached entry was built with
    replaces the entry rather than silently ignoring the request.
    """
    key = tuple(sorted(kwargs.items()))
    entry = _PROCESS_CACHES.get(graph.n)
    if entry is not None and entry[1] == key:
        cache = entry[0]
        cache.rebind(graph)
    else:
        cache = DistanceCache(graph, **kwargs)
        _PROCESS_CACHES[graph.n] = (cache, key)
    _PROCESS_CACHES.move_to_end(graph.n)
    while len(_PROCESS_CACHES) > _MAX_POOLED_SIZES:
        _PROCESS_CACHES.popitem(last=False)
    return cache


def clear_distance_caches() -> None:
    """Drop all process-local distance caches (frees their matrices)."""
    _PROCESS_CACHES.clear()


@dataclass(frozen=True)
class SweepTask:
    """One grid point of a sweep: parameters plus a derived seed."""

    index: int
    params: "dict[str, Any]"
    seed: int


@dataclass(frozen=True)
class SweepSpec:
    """Grid definition: named axes, replication count, base seed.

    Example
    -------
    >>> spec = SweepSpec(axes={"n": [10, 20], "version": ["sum", "max"]},
    ...                  replications=3, base_seed=7)
    >>> len(spec.tasks())
    12
    """

    axes: "Mapping[str, Sequence[Any]]"
    replications: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ReproError(f"replications must be >= 1, got {self.replications}")
        if not self.axes:
            raise ReproError("sweep needs at least one axis")
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ReproError(f"axis {name!r} is empty")

    def tasks(self) -> list[SweepTask]:
        """Materialise the full task list with deterministic seeds."""
        names = list(self.axes.keys())
        out: list[SweepTask] = []
        index = 0
        for combo in itertools.product(*(self.axes[k] for k in names)):
            for rep in range(self.replications):
                params = dict(zip(names, combo))
                params["replication"] = rep
                out.append(
                    SweepTask(
                        index=index,
                        params=params,
                        seed=derive_seed(self.base_seed, index),
                    )
                )
                index += 1
        return out


def run_sweep(
    worker: Callable[[SweepTask], "dict[str, Any]"],
    spec: SweepSpec,
    *,
    processes: "int | None" = 1,
) -> list[dict[str, Any]]:
    """Execute a sweep and return one record per grid point.

    ``worker`` must be a module-level function mapping a
    :class:`SweepTask` to a dict; the task's parameters are merged into
    the record so downstream aggregation has full context.
    """
    tasks = spec.tasks()
    results = parallel_map(worker, tasks, processes=processes)
    records = []
    for task, result in zip(tasks, results):
        record = dict(task.params)
        record["seed"] = task.seed
        record.update(result)
        records.append(record)
    return records


def aggregate_max(
    records: "list[dict[str, Any]]", key: str, value: str
) -> dict[Any, Any]:
    """Group records by ``key`` and take the max of ``value`` per group.

    The natural aggregation for price-of-anarchy sweeps (worst
    equilibrium per size).
    """
    out: dict[Any, Any] = {}
    for r in records:
        k = r[key]
        v = r[value]
        if k not in out or v > out[k]:
            out[k] = v
    return out


def aggregate_mean(
    records: "list[dict[str, Any]]", key: str, value: str
) -> dict[Any, float]:
    """Group records by ``key`` and average ``value`` per group."""
    sums: dict[Any, float] = {}
    counts: dict[Any, int] = {}
    for r in records:
        k = r[key]
        sums[k] = sums.get(k, 0.0) + float(r[value])
        counts[k] = counts.get(k, 0) + 1
    return {k: sums[k] / counts[k] for k in sums}
