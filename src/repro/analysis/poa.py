"""Price of anarchy / stability estimation.

Both prices divide an equilibrium diameter by the *optimal* diameter
over all realizations of the budget vector. The optimum is itself a
hard combinatorial quantity, so the module reports honest intervals:

* a counting **lower bound** — a realization has exactly ``sigma`` arcs,
  hence at most ``sigma`` distinct edges: diameter 1 needs
  ``sigma >= C(n, 2)``, connectivity needs ``sigma >= n - 1``;
* a constructive **upper bound** — the Theorem 2.3 equilibrium (diameter
  at most 4 when connectable, and exactly ``Cinf`` otherwise), which is
  simultaneously the paper's price-of-stability witness;
* an **exact** optimum by exhaustive search for tiny instances (tests).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..constructions.existence import construct_equilibrium
from ..errors import GameError
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import cinf, diameter

__all__ = [
    "DiameterBounds",
    "optimal_diameter_bounds",
    "exact_optimal_diameter",
    "poa_interval",
    "pos_interval",
]


@dataclass(frozen=True)
class DiameterBounds:
    """Interval ``[lower, upper]`` on the optimal realization diameter."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise GameError(f"invalid bounds: lower {self.lower} > upper {self.upper}")

    @property
    def is_exact(self) -> bool:
        """Whether the interval pins the optimum to a single value."""
        return self.lower == self.upper


def optimal_diameter_bounds(budgets: "np.ndarray | list[int]") -> DiameterBounds:
    """Counting lower bound and constructive upper bound on OPT diameter.

    * ``sigma < n - 1``: every realization is disconnected — OPT is
      exactly ``Cinf = n^2``.
    * ``sigma >= C(n, 2)``: the complete graph is realizable by a greedy
      degree argument only when budgets allow; we keep the safe lower
      bound 1 and use the construction for the upper bound.
    * otherwise: some pair is non-adjacent, so OPT is at least 2; the
      Theorem 2.3 equilibrium gives the upper bound (at most 4).
    """
    b = np.asarray(budgets, dtype=np.int64)
    n = b.size
    sigma = int(b.sum())
    if n == 1:
        return DiameterBounds(0, 0)
    if sigma < n - 1:
        c = cinf(n)
        return DiameterBounds(c, c)
    lower = 1 if sigma >= math.comb(n, 2) else 2
    upper = diameter(construct_equilibrium(b).graph)
    if upper < lower:  # construction achieved a complete graph
        lower = upper
    return DiameterBounds(lower, upper)


def exact_optimal_diameter(
    budgets: "np.ndarray | list[int]", *, max_profiles: int = 2_000_000
) -> int:
    """Exhaustive minimum diameter over all realizations (tiny ``n`` only).

    Enumerates the full strategy-profile product space; used by the test
    suite to validate :func:`optimal_diameter_bounds` on small instances.
    """
    b = np.asarray(budgets, dtype=np.int64)
    n = b.size
    total = 1
    for u in range(n):
        total *= math.comb(n - 1, int(b[u]))
        if total > max_profiles:
            raise GameError(
                f"profile space exceeds {max_profiles}; exact OPT is only for tiny n"
            )
    per_player = []
    for u in range(n):
        pool = [v for v in range(n) if v != u]
        per_player.append(list(itertools.combinations(pool, int(b[u]))))
    best = cinf(n)
    for profile in itertools.product(*per_player):
        g = OwnedDigraph.from_strategies(profile, n)
        d = diameter(g)
        if d < best:
            best = d
            if best <= 1:
                break
    return best


def poa_interval(
    worst_equilibrium_diameter: int, budgets: "np.ndarray | list[int]"
) -> tuple[Fraction, Fraction]:
    """Price-of-anarchy interval implied by a worst equilibrium diameter.

    Returns ``(lo, hi)`` with
    ``lo = worst / OPT_upper`` and ``hi = worst / OPT_lower``.
    """
    bounds = optimal_diameter_bounds(budgets)
    return (
        Fraction(worst_equilibrium_diameter, bounds.upper),
        Fraction(worst_equilibrium_diameter, bounds.lower),
    )


def pos_interval(
    best_equilibrium_diameter: int, budgets: "np.ndarray | list[int]"
) -> tuple[Fraction, Fraction]:
    """Price-of-stability interval implied by a best equilibrium diameter."""
    bounds = optimal_diameter_bounds(budgets)
    return (
        Fraction(best_equilibrium_diameter, bounds.upper),
        Fraction(best_equilibrium_diameter, bounds.lower),
    )
