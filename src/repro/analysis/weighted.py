"""Section 6 proof machinery: weighted weak equilibria and leaf folding.

The 2^O(√log n) upper bound (Theorem 6.9) runs through *weighted weak
equilibrium graphs*: vertices carry positive integer weights, the SUM
cost of ``u`` is ``sum_v w(v) dist(u, v)``, and a graph is a weak
equilibrium when no single-arc swap pays for any vertex. Three tools
from the proof are implemented and empirically checkable here:

* **poor/rich leaves** — a degree-1 vertex with out-degree 0 is *poor*
  (its supporting arc belongs to its neighbour), with out-degree 1
  *rich*;
* **folding** (Lemma 6.2 setup) — a poor leaf can be folded into its
  neighbour, transferring its weight; folding preserves weak
  equilibrium;
* **Lemma 6.4** — any two rich leaves of a weighted weak equilibrium
  are within distance 2 of each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.best_response import BestResponseEnvironment
from ..errors import GraphError
from ..graphs.digraph import OwnedDigraph

__all__ = [
    "WeightedRealization",
    "weighted_sum_cost",
    "poor_leaves",
    "rich_leaves",
    "fold_poor_leaf",
    "fold_all_poor_leaves",
    "is_weighted_weak_equilibrium",
    "check_lemma_6_4",
    "degree_two_path_edges",
    "lemma_6_5_bound",
    "tree_ball_radius",
    "theorem_6_1_radius",
]


@dataclass
class WeightedRealization:
    """A realization together with positive integer vertex weights.

    Folding reduces the vertex count conceptually; here folded vertices
    simply become isolated weight-0 ghosts (mask ``active``), keeping
    the index space stable.
    """

    graph: OwnedDigraph
    weights: np.ndarray

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.int64)
        if self.weights.shape != (self.graph.n,):
            raise GraphError(
                f"weights shape {self.weights.shape} != (n,) = ({self.graph.n},)"
            )
        if (self.weights < 0).any():
            raise GraphError("weights must be nonnegative")

    @property
    def active(self) -> np.ndarray:
        """Vertices still present (weight > 0)."""
        return np.flatnonzero(self.weights > 0).astype(np.int64)

    @classmethod
    def unit(cls, graph: OwnedDigraph) -> "WeightedRealization":
        """All-ones weights: the unweighted game as a weighted instance."""
        return cls(graph=graph.copy(), weights=np.ones(graph.n, dtype=np.int64))

    def total_weight(self) -> int:
        """``w(G)`` in the paper's notation."""
        return int(self.weights.sum())


def weighted_sum_cost(wr: WeightedRealization, u: int) -> int:
    """``c(u) = sum_v w(v) dist(u, v)`` with the ``Cinf`` convention."""
    from ..graphs.bfs import UNREACHABLE, bfs_distances
    from ..graphs.distances import cinf

    d = bfs_distances(wr.graph.undirected_csr(), u).astype(np.int64)
    d[d == UNREACHABLE] = cinf(wr.graph.n)
    return int((d * wr.weights).sum())


def _undirected_degree(graph: OwnedDigraph, v: int) -> int:
    return int(graph.neighbors(v).size)


def poor_leaves(wr: WeightedRealization) -> list[int]:
    """Active degree-1 vertices that own no arc (supported by others)."""
    out = []
    active = set(wr.active.tolist())
    for v in active:
        if _undirected_degree(wr.graph, v) == 1 and wr.graph.out_degree(v) == 0:
            out.append(v)
    return out


def rich_leaves(wr: WeightedRealization) -> list[int]:
    """Active degree-1 vertices that own their single arc."""
    out = []
    active = set(wr.active.tolist())
    for v in active:
        if _undirected_degree(wr.graph, v) == 1 and wr.graph.out_degree(v) == 1:
            out.append(v)
    return out


def fold_poor_leaf(wr: WeightedRealization, leaf: int) -> WeightedRealization:
    """Fold a poor leaf into its unique neighbour (the paper's G -> G0).

    The supporting arc ``u -> leaf`` is removed and ``w(u) += w(leaf)``;
    the leaf becomes a weight-0 ghost. If ``G`` was a weighted weak
    equilibrium, so is the folded graph (checked empirically in tests).
    """
    if leaf not in poor_leaves(wr):
        raise GraphError(f"vertex {leaf} is not a poor leaf")
    owners = wr.graph.in_neighbors(leaf)
    assert owners.size == 1, "a poor leaf has exactly one (incoming) arc"
    u = int(owners[0])
    g = wr.graph.copy()
    g.remove_arc(u, leaf)
    w = wr.weights.copy()
    w[u] += w[leaf]
    w[leaf] = 0
    return WeightedRealization(graph=g, weights=w)


def fold_all_poor_leaves(wr: WeightedRealization, *, max_rounds: int | None = None) -> WeightedRealization:
    """Fold until no poor leaf remains (Corollary 6.3's normalisation)."""
    current = wr
    rounds = 0
    while True:
        leaves = poor_leaves(current)
        if not leaves:
            return current
        current = fold_poor_leaf(current, leaves[0])
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            return current


def _weighted_swap_improves(wr: WeightedRealization, u: int) -> bool:
    """Whether some single-arc swap strictly lowers ``u``'s weighted cost.

    Reuses the best-response environment's ``G - u`` distance matrix,
    batched like ``BestResponseEnvironment.evaluate_batch``: per-column
    first/second minima over the kept rows (current strategy plus
    in-neighbours) evaluate every "drop one arc" exclusion in O(1) per
    column, every "add one arc" candidate is one row-min against that
    exclusion, and the weighted costs of a whole candidate block reduce
    to a single matrix–vector product — no per-candidate BFS, no
    per-candidate python loop.
    """
    cur = tuple(int(v) for v in wr.graph.out_neighbors(u))
    if not cur:
        return False
    env = BestResponseEnvironment(wr.graph, u, "sum")
    n = wr.graph.n
    w = wr.weights
    cur_cost = int((env.distances_for(cur) * w).sum())
    blocked = set(cur) | {u} | set(np.flatnonzero(wr.weights == 0).tolist())
    pool = np.asarray([v for v in range(n) if v not in blocked], dtype=np.int64)
    if pool.size == 0:
        return False
    rows = env.D[np.asarray(cur, dtype=np.int64)]
    if env.in_nbrs.size:
        rows = np.vstack([rows, env.D[env.in_nbrs]])
    order = np.argsort(rows, axis=0, kind="stable")
    m1 = np.take_along_axis(rows, order[:1], axis=0)[0]
    arg1 = order[0]
    if rows.shape[0] > 1:
        m2 = np.take_along_axis(rows, order[1:2], axis=0)[0]
    else:
        m2 = np.full(n, env.cinf, dtype=np.int64)
    cand_rows = env.D[pool]
    for i in range(len(cur)):
        # Min over the kept rows when owned row i is excluded.
        excl = np.where(arg1 == i, m2, m1)
        mins = np.minimum(excl, cand_rows)
        dist = np.minimum(mins + 1, env.cinf)
        dist[:, u] = 0
        if (dist @ w < cur_cost).any():
            return True
    return False


def is_weighted_weak_equilibrium(wr: WeightedRealization) -> bool:
    """No active vertex can improve its weighted SUM cost by one swap."""
    for u in wr.active.tolist():
        if _weighted_swap_improves(wr, int(u)):
            return False
    return True


@dataclass(frozen=True)
class Lemma64Report:
    """Outcome of checking Lemma 6.4 on one weighted graph."""

    rich: tuple[int, ...]
    max_pairwise_distance: int

    @property
    def holds(self) -> bool:
        """Lemma 6.4: every pair of rich leaves is within distance 2."""
        return self.max_pairwise_distance <= 2


def check_lemma_6_4(wr: WeightedRealization) -> Lemma64Report:
    """Measure the largest distance between rich leaves.

    In any weighted weak equilibrium this is at most 2 (Lemma 6.4); the
    checker lets tests audit that on folded dynamics output.
    """
    from ..graphs.bfs import UNREACHABLE, bfs_distances

    rich = rich_leaves(wr)
    worst = 0
    csr = wr.graph.undirected_csr()
    for i, a in enumerate(rich):
        d = bfs_distances(csr, a)
        for b in rich[i + 1 :]:
            val = int(d[b])
            if val == UNREACHABLE:
                val = wr.graph.n * wr.graph.n
            worst = max(worst, val)
    return Lemma64Report(rich=tuple(rich), max_pairwise_distance=worst)


# ----------------------------------------------------------------------
# Lemma 6.5: degree-2 edges along unique shortest paths
# ----------------------------------------------------------------------
def degree_two_path_edges(wr: WeightedRealization, path: "list[int]") -> int:
    """Count edges of ``path`` whose endpoints both have degree 2.

    Lemma 6.5 bounds this by ``O(log w(P))`` along any path that is the
    unique shortest path between each pair of its vertices (in a tree,
    every path qualifies). Used with :func:`lemma_6_5_bound`.
    """
    count = 0
    for a, b in zip(path, path[1:]):
        if _undirected_degree(wr.graph, a) == 2 and _undirected_degree(wr.graph, b) == 2:
            count += 1
    return count


def lemma_6_5_bound(wr: WeightedRealization, path: "list[int]") -> int:
    """The concrete bound implied by the Lemma 6.5 proof: ``2 t`` where
    ``2^(t-1) - 1 <= w(P)`` — i.e. ``2 (floor(log2(w(P) + 1)) + 1)``.
    """
    import math

    w_path = int(wr.weights[np.asarray(path, dtype=np.int64)].sum())
    return 2 * (int(math.log2(max(w_path, 1) + 1)) + 1)


# ----------------------------------------------------------------------
# Theorem 6.1: tree-like balls have logarithmic radius
# ----------------------------------------------------------------------
def tree_ball_radius(graph: OwnedDigraph, u: int) -> int:
    """Largest ``r`` such that the subgraph induced by ``B_r(u)`` is a
    forest with no brace (i.e. "tree-like" as in Theorem 6.1).

    Capped at the eccentricity of ``u``; returns the eccentricity when
    the whole component is a tree.
    """
    from ..graphs.bfs import UNREACHABLE, bfs_distances
    from ..graphs.csr import build_csr
    from ..graphs.connectivity import connected_components

    csr = graph.undirected_csr()
    dist = bfs_distances(csr, u)
    reach = dist[dist != UNREACHABLE]
    max_r = int(reach.max()) if reach.size else 0
    # Braces inside the ball are 2-cycles: track arc multiplicities.
    arcs = list(graph.arcs())
    best = 0
    for r in range(1, max_r + 1):
        inside = dist <= r
        inside[dist == UNREACHABLE] = False
        ball_arcs = [(a, b) for a, b in arcs if inside[a] and inside[b]]
        num_vertices = int(inside.sum())
        # Forest test on the multigraph: edges (counting braces twice)
        # must equal vertices - components.
        heads = np.asarray([a for a, _ in ball_arcs], dtype=np.int64)
        tails = np.asarray([b for _, b in ball_arcs], dtype=np.int64)
        sub = build_csr(graph.n, heads, tails)
        # Components among the ball's vertices only.
        sub_labels, _ = connected_components(sub)
        labels_inside = sub_labels[inside]
        k = len(set(labels_inside.tolist()))
        if len(ball_arcs) == num_vertices - k:
            best = r
        else:
            break
    return best


def theorem_6_1_radius(graph: OwnedDigraph) -> int:
    """Max tree-ball radius over all vertices (Theorem 6.1's ``r``).

    On SUM equilibria this is ``O(log n)``; the experiment harness
    checks it against ``theorem_3_3_bound`` (the same doubling constant
    governs both proofs).
    """
    return max(tree_ball_radius(graph, u) for u in range(graph.n))
