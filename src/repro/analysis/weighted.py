"""Section 6 proof machinery: weighted weak equilibria and leaf folding.

The 2^O(√log n) upper bound (Theorem 6.9) runs through *weighted weak
equilibrium graphs*: vertices carry positive integer weights, the SUM
cost of ``u`` is ``sum_v w(v) dist(u, v)``, and a graph is a weak
equilibrium when no single-arc swap pays for any vertex. Three tools
from the proof are implemented and empirically checkable here:

* **poor/rich leaves** — a degree-1 vertex with out-degree 0 is *poor*
  (its supporting arc belongs to its neighbour), with out-degree 1
  *rich*;
* **folding** (Lemma 6.2 setup) — a poor leaf can be folded into its
  neighbour, transferring its weight; folding preserves weak
  equilibrium;
* **Lemma 6.4** — any two rich leaves of a weighted weak equilibrium
  are within distance 2 of each other.

Engine-backed path
------------------
Every distance-consuming checker in this module takes an optional
``cache`` — a :class:`~repro.core.distance_cache.WeightedDistanceCache`
bound to ``wr.graph`` — and then routes all distance queries through
the incrementally repaired weighted engines instead of fresh per-call
BFS sweeps: :func:`weighted_sum_cost` becomes one row·weights product,
the swap check evaluates against the cached ``U(G - u)`` matrix via
:class:`WeightedSwapEnvironment`, and :func:`fold_poor_leaf` /
:func:`fold_all_poor_leaves` become a weight transfer plus a single-arc
delta that the engine repairs with its pendant fast path (the folded
leaf is, by definition, a pendant) instead of rebuilding a fresh graph
per fold. Verdicts, fold sequences and reports are bit-identical to
the retained loop path (``cache=None``); the cache only trades time.
Environments snapshot both the engine epoch and the realization's
vertex-``weights_revision``, so reads after a weight transfer raise
:class:`~repro.errors.StaleDistanceError` instead of pricing swaps
with outdated weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.best_response import BestResponseEnvironment
from ..errors import GameError, GraphError, StaleDistanceError
from ..graphs.digraph import OwnedDigraph
from ..graphs.engine import LazyRowGather

__all__ = [
    "WeightedRealization",
    "WeightedSwapEnvironment",
    "weighted_sum_cost",
    "poor_leaves",
    "rich_leaves",
    "fold_poor_leaf",
    "fold_all_poor_leaves",
    "is_weighted_weak_equilibrium",
    "weighted_swap_sweep",
    "weighted_swap_check",
    "check_lemma_6_4",
    "degree_two_path_edges",
    "lemma_6_5_bound",
    "tree_ball_radius",
    "theorem_6_1_radius",
]


@dataclass
class WeightedRealization:
    """A realization together with positive integer vertex weights.

    Folding reduces the vertex count conceptually; here folded vertices
    simply become isolated weight-0 ghosts (mask ``active``), keeping
    the index space stable.

    Weight mutations made through :meth:`transfer_weight` bump
    :attr:`weights_revision`, which cached swap environments snapshot
    to detect stale reads. Poking ``weights`` directly bypasses that
    bookkeeping — use the method on any engine-backed path.
    """

    graph: OwnedDigraph
    weights: np.ndarray

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.int64)
        if self.weights.shape != (self.graph.n,):
            raise GraphError(
                f"weights shape {self.weights.shape} != (n,) = ({self.graph.n},)"
            )
        if (self.weights < 0).any():
            raise GraphError("weights must be nonnegative")
        self._weights_revision = 0

    @property
    def weights_revision(self) -> int:
        """Counter bumped by every :meth:`transfer_weight`."""
        return self._weights_revision

    @property
    def active(self) -> np.ndarray:
        """Vertices still present (weight > 0)."""
        return np.flatnonzero(self.weights > 0).astype(np.int64)

    @classmethod
    def unit(cls, graph: OwnedDigraph) -> "WeightedRealization":
        """All-ones weights: the unweighted game as a weighted instance."""
        return cls(graph=graph.copy(), weights=np.ones(graph.n, dtype=np.int64))

    def total_weight(self) -> int:
        """``w(G)`` in the paper's notation."""
        return int(self.weights.sum())

    def transfer_weight(self, src: int, dst: int) -> None:
        """Move all of ``src``'s weight onto ``dst`` (the fold primitive).

        ``src`` becomes a weight-0 ghost; the revision counter bumps so
        environments snapshotted before the transfer raise
        :class:`~repro.errors.StaleDistanceError` on their next read.
        """
        n = self.graph.n
        if not 0 <= src < n or not 0 <= dst < n:
            raise GraphError(f"transfer endpoints ({src}, {dst}) out of range [0, {n})")
        if src == dst:
            raise GraphError(f"cannot transfer weight from {src} onto itself")
        self.weights[dst] += self.weights[src]
        self.weights[src] = 0
        self._weights_revision += 1


def _check_cache(wr: WeightedRealization, cache) -> None:
    """Refuse caches that would break the bit-identical contract.

    Three ways a cache can silently disagree with the loop reference:
    it tracks a *different graph object*, its edge lengths are not all
    1 (Section 6 measures hop distances), or its engines' unreachable
    sentinel exceeds the paper's ``Cinf = n^2`` (a ``max_weight``
    headroom hint large enough that ``(n-1) * w_max >= n^2`` raises
    the sentinel, changing every cross-component cost term).
    """
    from ..graphs.distances import cinf

    if cache.graph is not wr.graph:
        raise GameError(
            "weighted distance cache is bound to a different graph object; "
            "call cache.rebind(wr.graph) first"
        )
    if cache.edge_weights is not None and not cache.edge_weights.is_unit():
        raise GameError(
            "Section 6 machinery measures hop distances; the cache must use "
            "unit edge lengths (edge_weights=None)"
        )
    n = wr.graph.n
    if (n - 1) * cache.max_weight >= cinf(n):
        raise GameError(
            f"cache max_weight={cache.max_weight} raises the unreachable "
            f"sentinel above Cinf = {cinf(n)}; Section 6 machinery needs a "
            f"cache built without an oversized max_weight hint"
        )


def weighted_sum_cost(
    wr: WeightedRealization, u: int, *, cache=None
) -> int:
    """``c(u) = sum_v w(v) dist(u, v)`` with the ``Cinf`` convention.

    With ``cache`` the cost is one row·weights product over the
    maintained ``U(G)`` matrix (whose sentinel *is* ``Cinf``); without,
    a fresh BFS — identical integers either way.
    """
    if cache is not None:
        _check_cache(wr, cache)
        row = cache.base().row(u).astype(np.int64)
        return int(row @ wr.weights)
    from ..graphs.bfs import UNREACHABLE, bfs_distances
    from ..graphs.distances import cinf

    d = bfs_distances(wr.graph.undirected_csr(), u).astype(np.int64)
    d[d == UNREACHABLE] = cinf(wr.graph.n)
    return int((d * wr.weights).sum())


def _undirected_degree(graph: OwnedDigraph, v: int) -> int:
    return int(graph.neighbors(v).size)


def poor_leaves(wr: WeightedRealization) -> list[int]:
    """Active degree-1 vertices that own no arc (supported by others).

    Ascending vertex order — the fold routines rely on this to make
    the loop path and the engine path pick identical fold sequences.
    """
    out = []
    for v in wr.active.tolist():
        if _undirected_degree(wr.graph, v) == 1 and wr.graph.out_degree(v) == 0:
            out.append(v)
    return out


def rich_leaves(wr: WeightedRealization) -> list[int]:
    """Active degree-1 vertices that own their single arc."""
    out = []
    for v in wr.active.tolist():
        if _undirected_degree(wr.graph, v) == 1 and wr.graph.out_degree(v) == 1:
            out.append(v)
    return out


def _is_poor_leaf(wr: WeightedRealization, v: int) -> bool:
    return (
        wr.weights[v] > 0
        and _undirected_degree(wr.graph, v) == 1
        and wr.graph.out_degree(v) == 0
    )


def _fold_in_place(wr: WeightedRealization, leaf: int) -> int:
    """Apply one fold to ``wr`` itself; returns the absorbing neighbour.

    The supporting arc is removed from the live graph (one revision
    bump — exactly the pendant deletion the weighted engine repairs
    with a column/row write) and the weight moves by
    :meth:`WeightedRealization.transfer_weight`.
    """
    owners = wr.graph.in_neighbors(leaf)
    assert owners.size == 1, "a poor leaf has exactly one (incoming) arc"
    u = int(owners[0])
    wr.graph.remove_arc(u, leaf)
    wr.transfer_weight(leaf, u)
    return u


def fold_poor_leaf(
    wr: WeightedRealization, leaf: int, *, cache=None
) -> WeightedRealization:
    """Fold a poor leaf into its unique neighbour (the paper's G -> G0).

    The supporting arc ``u -> leaf`` is removed and ``w(u) += w(leaf)``;
    the leaf becomes a weight-0 ghost. If ``G`` was a weighted weak
    equilibrium, so is the folded graph (checked empirically in tests).

    ``wr`` itself is never mutated. With ``cache`` (bound to
    ``wr.graph``) the fold is a weight transfer plus an arc delta on a
    fresh working copy that the cache is re-bound to, so the engines
    repair one pendant deletion instead of rebuilding — subsequent
    cached checks on the returned realization ride the same engines.
    """
    if not _is_poor_leaf(wr, leaf):
        raise GraphError(f"vertex {leaf} is not a poor leaf")
    if cache is not None:
        _check_cache(wr, cache)
    out = WeightedRealization(graph=wr.graph.copy(), weights=wr.weights.copy())
    if cache is not None:
        cache.rebind(out.graph)
    _fold_in_place(out, leaf)
    return out


def fold_all_poor_leaves(
    wr: WeightedRealization,
    *,
    max_rounds: "int | None" = None,
    cache=None,
) -> WeightedRealization:
    """Fold until no poor leaf remains (Corollary 6.3's normalisation).

    The retained loop path (``cache=None``) re-copies the graph and
    re-scans for poor leaves every round. With ``cache`` the whole
    cascade runs in place on one working copy: each fold is an arc
    delta plus a weight transfer, and the poor-leaf set is maintained
    incrementally (a fold can only change the status of the absorbing
    neighbour). Both paths fold the same leaves in the same order and
    return identical realizations.
    """
    if cache is None:
        current = wr
        rounds = 0
        while True:
            leaves = poor_leaves(current)
            if not leaves:
                return current
            current = fold_poor_leaf(current, leaves[0])
            rounds += 1
            if max_rounds is not None and rounds >= max_rounds:
                return current

    _check_cache(wr, cache)
    out = WeightedRealization(graph=wr.graph.copy(), weights=wr.weights.copy())
    cache.rebind(out.graph)
    poor = set(poor_leaves(out))
    rounds = 0
    while poor:
        leaf = min(poor)
        u = _fold_in_place(out, leaf)
        poor.discard(leaf)
        # The removed arc is incident only to `leaf` and `u`, so only
        # the absorbing neighbour's leaf status can have changed.
        if _is_poor_leaf(out, u):
            poor.add(u)
        else:
            poor.discard(u)
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            break
    return out


def _swap_block_improves(
    D: np.ndarray,
    cinf_val: int,
    cur: "tuple[int, ...]",
    in_nbrs: np.ndarray,
    pool: np.ndarray,
    w: np.ndarray,
    u: int,
    cur_cost: int,
) -> bool:
    """Shared swap algebra: does any (drop, add) pair beat ``cur_cost``?

    Per-column first/second minima over the kept rows (current strategy
    plus in-neighbours of ``u``) evaluate every "drop one arc"
    exclusion in O(1) per column; each "add one arc" candidate is one
    row-min against that exclusion; a candidate block's weighted costs
    reduce to one matrix–vector product. Both the loop reference path
    (``D`` from a fresh per-call BFS) and the engine path (``D`` from a
    maintained weighted matrix) evaluate through this one helper — the
    paths differ only in where the distances come from.
    """
    n = D.shape[1]
    rows = D[np.asarray(cur, dtype=np.int64)]
    if in_nbrs.size:
        rows = np.vstack([rows, D[in_nbrs]])
    order = np.argsort(rows, axis=0, kind="stable")
    m1 = np.take_along_axis(rows, order[:1], axis=0)[0]
    arg1 = order[0]
    if rows.shape[0] > 1:
        m2 = np.take_along_axis(rows, order[1:2], axis=0)[0]
    else:
        m2 = np.full(n, cinf_val, dtype=np.int64)
    cand_rows = D[pool]
    for i in range(len(cur)):
        # Min over the kept rows when owned row i is excluded.
        excl = np.where(arg1 == i, m2, m1)
        mins = np.minimum(excl, cand_rows)
        dist = np.minimum(mins + 1, cinf_val)
        dist[:, u] = 0
        if (dist @ w < cur_cost).any():
            return True
    return False


class WeightedSwapEnvironment:
    """Evaluation substrate for weighted single-arc swaps of one player.

    The weighted counterpart of
    :class:`~repro.core.best_response.BestResponseEnvironment`,
    restricted to the Section 6 move set (drop one owned arc, add one).
    It reads the ``U(G - u)`` matrix of a shared
    :class:`~repro.core.distance_cache.WeightedDistanceCache` engine
    zero-copy and snapshots *three* freshness tokens: the engine epoch,
    the graph revision, and the realization's vertex-weights revision.
    Any read after the substrate, the in-neighbourhood, or the weights
    move on raises :class:`~repro.errors.StaleDistanceError` — in
    particular a :meth:`WeightedRealization.transfer_weight` (a fold)
    stales every environment built before it.
    """

    def __init__(
        self,
        wr: WeightedRealization,
        u: int,
        *,
        cache=None,
        engine=None,
        in_nbrs: "np.ndarray | None" = None,
    ) -> None:
        graph = wr.graph
        if not 0 <= u < graph.n:
            raise GraphError(f"vertex {u} out of range [0, {graph.n})")
        if cache is not None:
            _check_cache(wr, cache)
            engine = cache.player(u)
        elif engine is None:
            from ..graphs.weighted_engine import (
                WeightedDistanceEngine,
                weighted_csr_from_csr,
            )

            engine = WeightedDistanceEngine(
                weighted_csr_from_csr(graph.undirected_csr_without(u))
            )
        else:
            if engine.n != graph.n:
                raise GameError(
                    f"engine substrate has {engine.n} vertices, graph has {graph.n}"
                )
            if engine.wcsr.degree(u) != 0:
                raise GameError(
                    f"engine substrate must isolate player {u} (U(G - u))"
                )
        self.u = int(u)
        self.n = graph.n
        self.cinf = engine.inf
        self._wr = wr
        self._engine = engine
        self._epoch = engine.epoch
        self._revision = graph.revision
        self._weights_rev = wr.weights_revision
        # Fourth freshness token: the cache's edge-length map. An edit
        # there changes the metric without touching the graph revision,
        # the engine epoch (until someone syncs), or the vertex weights.
        self._edge_map = cache.edge_weights if cache is not None else None
        self._edge_rev = 0 if self._edge_map is None else self._edge_map.revision
        # A lazy engine reads through the row-on-demand facade so that
        # a single check_swap prices against rows of cur ∪ In(u) ∪ {add}
        # only; the full swap_improves sweep still touches ~n rows and
        # simply promotes along the way.
        self.D = LazyRowGather(engine) if engine.lazy else engine.matrix
        self.in_nbrs = graph.in_neighbors(u) if in_nbrs is None else in_nbrs
        if self.in_nbrs.size:
            self._base_min = self.D[self.in_nbrs].min(axis=0)
        else:
            self._base_min = np.full(self.n, self.cinf, dtype=np.int64)

    @property
    def engine(self):
        """The weighted engine whose matrix this environment reads."""
        return self._engine

    def is_fresh(self) -> bool:
        """Whether this environment still prices the current state."""
        try:
            self._check_fresh()
        except StaleDistanceError:
            return False
        return True

    def _check_fresh(self) -> None:
        if self._engine.epoch != self._epoch:
            raise StaleDistanceError(
                f"weighted environment for player {self.u} was built at engine "
                f"epoch {self._epoch}, but the engine is now at epoch "
                f"{self._engine.epoch}; rebuild the environment"
            )
        if self._wr.weights_revision != self._weights_rev:
            raise StaleDistanceError(
                f"vertex weights moved from revision {self._weights_rev} to "
                f"{self._wr.weights_revision} since this environment was "
                f"built; rebuild the environment"
            )
        if self._edge_map is not None and self._edge_map.revision != self._edge_rev:
            raise StaleDistanceError(
                f"edge lengths moved from revision {self._edge_rev} to "
                f"{self._edge_map.revision} since this environment was "
                f"built; rebuild the environment"
            )
        rev = self._wr.graph.revision
        if rev != self._revision:
            # Same structural re-validation as BestResponseEnvironment:
            # the player's own moves leave U(G - u) and In(u) intact.
            cur = self._wr.graph.undirected_csr_without(self.u)
            sub = self._engine.wcsr
            if not (
                cur.indices.size == sub.indices.size
                and np.array_equal(cur.indptr, sub.indptr)
                and np.array_equal(cur.indices, sub.indices)
            ):
                raise StaleDistanceError(
                    f"substrate U(G - {self.u}) changed since this weighted "
                    f"environment was built; rebuild the environment"
                )
            if not np.array_equal(self._wr.graph.in_neighbors(self.u), self.in_nbrs):
                raise StaleDistanceError(
                    f"in-neighbourhood of player {self.u} changed since this "
                    f"weighted environment was built; rebuild the environment"
                )
            self._revision = rev

    def distances_for(self, strategy) -> np.ndarray:
        """Distance vector from ``u`` under a hypothetical strategy."""
        self._check_fresh()
        s = np.asarray(sorted(strategy), dtype=np.int64)
        if s.size:
            mins = np.minimum(self.D[s].min(axis=0), self._base_min)
        else:
            mins = np.asarray(self._base_min).copy()
        dist = np.minimum(mins + 1, self.cinf)
        dist[self.u] = 0
        return dist

    def current_cost(self) -> int:
        """Weighted SUM cost of ``u``'s current strategy."""
        cur = tuple(int(v) for v in self._wr.graph.out_neighbors(self.u))
        return int(self.distances_for(cur) @ self._wr.weights)

    def swap_improves(self) -> bool:
        """Whether some single-arc swap strictly lowers ``u``'s cost.

        Per-column first/second minima over the kept rows evaluate every
        "drop one arc" exclusion in O(1) per column; each "add one arc"
        candidate is a row-min against that exclusion; the whole
        candidate block's weighted costs reduce to one matrix–vector
        product — the same algebra as the reference path, read off the
        maintained matrix. Weight-0 vertices are folded ghosts and are
        never swap targets (see :func:`_weighted_swap_improves`).
        """
        self._check_fresh()
        wr = self._wr
        u = self.u
        cur = tuple(int(v) for v in wr.graph.out_neighbors(u))
        if not cur:
            return False
        n = self.n
        w = wr.weights
        cur_cost = int(self.distances_for(cur) @ w)
        blocked = set(cur) | {u} | set(np.flatnonzero(w == 0).tolist())
        pool = np.asarray([v for v in range(n) if v not in blocked], dtype=np.int64)
        if pool.size == 0:
            return False
        return _swap_block_improves(
            self.D, self.cinf, cur, self.in_nbrs, pool, w, u, cur_cost
        )

    def check_swap(self, drop: int, add: int) -> bool:
        """Whether the single swap ``drop -> add`` strictly lowers cost.

        The point verdict beneath :meth:`swap_improves`: one named
        (drop, add) pair is priced instead of the whole grid, touching
        only the distance rows of ``cur ∪ In(u) ∪ {add}`` — on a lazy
        engine that is a bounded batch of single-source sweeps, never a
        full all-pairs build. ``drop`` must be a currently owned arc and
        ``add`` a legal swap target (not ``u``, not already owned, not a
        weight-0 folded ghost), mirroring :meth:`swap_improves`'s move
        set so the disjunction of legal ``check_swap`` verdicts equals
        its answer.
        """
        self._check_fresh()
        wr = self._wr
        u = self.u
        cur = tuple(int(v) for v in wr.graph.out_neighbors(u))
        drop = int(drop)
        add = int(add)
        if drop not in cur:
            raise GameError(f"player {u} owns no arc to {drop}; cannot drop it")
        if not 0 <= add < self.n:
            raise GraphError(f"vertex {add} out of range [0, {self.n})")
        if add == u:
            raise GameError(f"player {u} cannot link to itself")
        if add in cur:
            raise GameError(f"player {u} already owns an arc to {add}")
        if wr.weights[add] == 0:
            raise GameError(
                f"vertex {add} is a folded weight-0 ghost; not a swap target"
            )
        w = wr.weights
        cur_cost = int(self.distances_for(cur) @ w)
        swapped = tuple(sorted(set(cur) - {drop} | {add}))
        return int(self.distances_for(swapped) @ w) < cur_cost


def _weighted_swap_improves(
    wr: WeightedRealization,
    u: int,
    *,
    cache=None,
    env: "WeightedSwapEnvironment | None" = None,
) -> bool:
    """Whether some single-arc swap strictly lowers ``u``'s weighted cost.

    The retained reference path (no ``cache``/``env``) builds a fresh
    :class:`BestResponseEnvironment` — one all-pairs BFS of ``U(G - u)``
    per call. ``cache`` replaces that with the maintained weighted
    engine (repaired, not rebuilt, across folds and swaps); ``env``
    reuses a prebuilt :class:`WeightedSwapEnvironment` under its
    staleness contract. All three paths return identical verdicts.

    Move-set semantics: weight-0 vertices are *folded ghosts* — in the
    paper's folded graph they no longer exist, so they are excluded
    from the candidate pool (a swap may not target one). Instances
    with weight-0 vertices that are meant to remain live players
    should give them weight 1 instead.
    """
    if env is not None:
        if env.u != u:
            raise GameError(f"environment is for player {env.u}, requested {u}")
        if env._wr is not wr:
            raise GameError(
                "environment was built on a different weighted realization; "
                "build one for this realization"
            )
        return env.swap_improves()
    if cache is not None:
        _check_cache(wr, cache)
        if wr.graph.out_degree(u) == 0:
            # No owned arc means no swap; skip the engine sync entirely
            # (leaf-heavy Section 6 instances hit this constantly).
            return False
        return WeightedSwapEnvironment(wr, u, cache=cache).swap_improves()

    cur = tuple(int(v) for v in wr.graph.out_neighbors(u))
    if not cur:
        return False
    env_br = BestResponseEnvironment(wr.graph, u, "sum")
    n = wr.graph.n
    w = wr.weights
    cur_cost = int((env_br.distances_for(cur) * w).sum())
    blocked = set(cur) | {u} | set(np.flatnonzero(wr.weights == 0).tolist())
    pool = np.asarray([v for v in range(n) if v not in blocked], dtype=np.int64)
    if pool.size == 0:
        return False
    return _swap_block_improves(
        env_br.D, env_br.cinf, cur, env_br.in_nbrs, pool, w, u, cur_cost
    )


def weighted_swap_sweep(
    wr: WeightedRealization, *, cache=None
) -> "list[bool]":
    """Per-player swap verdicts for every active vertex, in index order.

    ``result[i]`` says whether ``wr.active[i]`` can strictly improve by
    a single-arc swap — the full per-player picture behind
    :func:`is_weighted_weak_equilibrium` (which only needs the
    disjunction and early-exits). The loop path pays one all-pairs BFS
    of ``U(G - u)`` per arc-owning player; the engine path reads the
    cached matrices and batches the per-sweep graph scans (one bulk
    in-neighbour pass instead of one owner scan per player). Verdict
    lists are identical either way.
    """
    if cache is None:
        return [_weighted_swap_improves(wr, int(u)) for u in wr.active.tolist()]
    _check_cache(wr, cache)
    in_lists = wr.graph.in_neighbor_lists()
    out = []
    for u in wr.active.tolist():
        u = int(u)
        if wr.graph.out_degree(u) == 0:
            out.append(False)
            continue
        env = WeightedSwapEnvironment(wr, u, cache=cache, in_nbrs=in_lists[u])
        out.append(env.swap_improves())
    return out


def weighted_swap_check(
    wr: WeightedRealization,
    u: int,
    drop: int,
    add: int,
    *,
    cache=None,
    env: "WeightedSwapEnvironment | None" = None,
) -> bool:
    """Whether the single swap ``drop -> add`` strictly lowers ``u``'s cost.

    The cold-instance entry point of the Section 6 query tier: with no
    prebuilt state at all (``cache=None``, ``env=None``) the verdict is
    answered on a throwaway ``rows="lazy"`` engine over ``U(G - u)`` —
    the distance rows of ``cur ∪ In(u) ∪ {add}`` are materialised by
    bounded single-source sweeps and nothing else is, so a one-off swap
    check never pays for a full all-pairs build. ``cache`` reuses the
    shared engines (lazy or full) and ``env`` a prebuilt
    :class:`WeightedSwapEnvironment` under its staleness contract; all
    paths return identical verdicts.
    """
    if env is not None:
        if env.u != u:
            raise GameError(f"environment is for player {env.u}, requested {u}")
        if env._wr is not wr:
            raise GameError(
                "environment was built on a different weighted realization; "
                "build one for this realization"
            )
        return env.check_swap(drop, add)
    if cache is not None:
        _check_cache(wr, cache)
        return WeightedSwapEnvironment(wr, u, cache=cache).check_swap(drop, add)
    graph = wr.graph
    if not 0 <= u < graph.n:
        raise GraphError(f"vertex {u} out of range [0, {graph.n})")
    from ..graphs.weighted_engine import WeightedDistanceEngine, weighted_csr_from_csr

    engine = WeightedDistanceEngine(
        weighted_csr_from_csr(graph.undirected_csr_without(u)), rows="lazy"
    )
    return WeightedSwapEnvironment(wr, u, engine=engine).check_swap(drop, add)


def is_weighted_weak_equilibrium(
    wr: WeightedRealization, *, cache=None
) -> bool:
    """No active vertex can improve its weighted SUM cost by one swap.

    ``cache`` routes every player's check through the shared weighted
    engines (the verdict is identical either way); across a fold
    cascade the engines repair one pendant arc per fold instead of
    rebuilding ``n`` matrices per re-verification. Players at local
    diameter 1 are screened off the maintained ``U(G)`` matrix: the
    all-ones distance vector is the pointwise minimum of any strategy's,
    so it is optimal for *every* weight vector (the weighted survivor
    of Lemma 2.2 — the diameter-2 case does not survive weighting,
    since a swap towards a heavy vertex can pay for one extra hop).
    """
    if cache is not None:
        _check_cache(wr, cache)
        ecc = cache.base().matrix.max(axis=1)
        in_lists = None
        for u in wr.active.tolist():
            u = int(u)
            if ecc[u] <= 1 or wr.graph.out_degree(u) == 0:
                continue
            if in_lists is None:
                # One O(n + m) owner pass for every unscreened player,
                # not one O(n) scan each (the census hot loop).
                in_lists = wr.graph.in_neighbor_lists()
            env = WeightedSwapEnvironment(wr, u, cache=cache, in_nbrs=in_lists[u])
            if env.swap_improves():
                return False
        return True
    for u in wr.active.tolist():
        if _weighted_swap_improves(wr, int(u)):
            return False
    return True


@dataclass(frozen=True)
class Lemma64Report:
    """Outcome of checking Lemma 6.4 on one weighted graph."""

    rich: tuple[int, ...]
    max_pairwise_distance: int

    @property
    def holds(self) -> bool:
        """Lemma 6.4: every pair of rich leaves is within distance 2."""
        return self.max_pairwise_distance <= 2


def check_lemma_6_4(wr: WeightedRealization, *, cache=None) -> Lemma64Report:
    """Measure the largest distance between rich leaves.

    In any weighted weak equilibrium this is at most 2 (Lemma 6.4); the
    checker lets tests audit that on folded dynamics output. ``cache``
    answers each pair through :meth:`WeightedDistanceCache.query` — a
    maintained-matrix read when the row is hot, one bounded
    bidirectional search when it is not (the unreachable sentinel is
    exactly the ``n^2`` the reference path substitutes either way) —
    instead of one full BFS per rich leaf.
    """
    rich = rich_leaves(wr)
    worst = 0
    if cache is not None:
        _check_cache(wr, cache)
        # cache.query reads maintained matrix entries when they are hot
        # and falls back to one bounded bidirectional search per pair —
        # a handful of rich-leaf probes never forces an all-pairs build.
        for i, a in enumerate(rich):
            for b in rich[i + 1 :]:
                worst = max(worst, int(cache.query(a, b)))
        return Lemma64Report(rich=tuple(rich), max_pairwise_distance=worst)

    from ..graphs.bfs import UNREACHABLE, bfs_distances

    csr = wr.graph.undirected_csr()
    for i, a in enumerate(rich):
        d = bfs_distances(csr, a)
        for b in rich[i + 1 :]:
            val = int(d[b])
            if val == UNREACHABLE:
                val = wr.graph.n * wr.graph.n
            worst = max(worst, val)
    return Lemma64Report(rich=tuple(rich), max_pairwise_distance=worst)


# ----------------------------------------------------------------------
# Lemma 6.5: degree-2 edges along unique shortest paths
# ----------------------------------------------------------------------
def degree_two_path_edges(wr: WeightedRealization, path: "list[int]") -> int:
    """Count edges of ``path`` whose endpoints both have degree 2.

    Lemma 6.5 bounds this by ``O(log w(P))`` along any path that is the
    unique shortest path between each pair of its vertices (in a tree,
    every path qualifies). Used with :func:`lemma_6_5_bound`.
    """
    count = 0
    for a, b in zip(path, path[1:]):
        if _undirected_degree(wr.graph, a) == 2 and _undirected_degree(wr.graph, b) == 2:
            count += 1
    return count


def lemma_6_5_bound(wr: WeightedRealization, path: "list[int]") -> int:
    """The concrete bound implied by the Lemma 6.5 proof: ``2 t`` where
    ``2^(t-1) - 1 <= w(P)`` — i.e. ``2 (floor(log2(w(P) + 1)) + 1)``.
    """
    import math

    w_path = int(wr.weights[np.asarray(path, dtype=np.int64)].sum())
    return 2 * (int(math.log2(max(w_path, 1) + 1)) + 1)


# ----------------------------------------------------------------------
# Theorem 6.1: tree-like balls have logarithmic radius
# ----------------------------------------------------------------------
def tree_ball_radius(graph: OwnedDigraph, u: int) -> int:
    """Largest ``r`` such that the subgraph induced by ``B_r(u)`` is a
    forest with no brace (i.e. "tree-like" as in Theorem 6.1).

    Capped at the eccentricity of ``u``; returns the eccentricity when
    the whole component is a tree.
    """
    from ..graphs.bfs import UNREACHABLE, bfs_distances
    from ..graphs.csr import build_csr
    from ..graphs.connectivity import connected_components

    csr = graph.undirected_csr()
    dist = bfs_distances(csr, u)
    reach = dist[dist != UNREACHABLE]
    max_r = int(reach.max()) if reach.size else 0
    # Braces inside the ball are 2-cycles: track arc multiplicities.
    arcs = list(graph.arcs())
    best = 0
    for r in range(1, max_r + 1):
        inside = dist <= r
        inside[dist == UNREACHABLE] = False
        ball_arcs = [(a, b) for a, b in arcs if inside[a] and inside[b]]
        num_vertices = int(inside.sum())
        # Forest test on the multigraph: edges (counting braces twice)
        # must equal vertices - components.
        heads = np.asarray([a for a, _ in ball_arcs], dtype=np.int64)
        tails = np.asarray([b for _, b in ball_arcs], dtype=np.int64)
        sub = build_csr(graph.n, heads, tails)
        # Components among the ball's vertices only.
        sub_labels, _ = connected_components(sub)
        labels_inside = sub_labels[inside]
        k = len(set(labels_inside.tolist()))
        if len(ball_arcs) == num_vertices - k:
            best = r
        else:
            break
    return best


def theorem_6_1_radius(graph: OwnedDigraph) -> int:
    """Max tree-ball radius over all vertices (Theorem 6.1's ``r``).

    On SUM equilibria this is ``O(log n)``; the experiment harness
    checks it against ``theorem_3_3_bound`` (the same doubling constant
    governs both proofs).
    """
    return max(tree_ball_radius(graph, u) for u in range(graph.n))
