"""Longest-path decomposition of equilibrium trees (Thm 3.3, Figure 3).

Given a tree, fix a longest path ``P = v_0 v_1 ... v_d``; every vertex
hangs off a unique ``v_i``, giving the partition ``A_0, ..., A_d`` with
sizes ``a(i)`` drawn in the paper's Figure 3. For a SUM equilibrium the
swap argument along the majority arc direction yields the chain

    ``a(i_j + 1) >= sum_{k > i_j + 1} a(k)``       (paper's inequality 1)

whose telescoping doubles ``a`` down the path and forces
``d = O(log n)``. This module computes the decomposition, checks the
inequality chain on actual equilibria, and exposes the concrete bound
``d <= 2 (floor(log2(n + 1)) + 1)`` implied by the proof.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from ..graphs.bfs import UNREACHABLE, multi_source_bfs
from ..graphs.digraph import OwnedDigraph
from ..graphs.properties import is_tree, tree_longest_path

__all__ = [
    "TreeDecomposition",
    "longest_path_decomposition",
    "forward_arc_indices",
    "verify_sum_equilibrium_inequality",
    "theorem_3_3_bound",
]


@dataclass(frozen=True)
class TreeDecomposition:
    """Longest-path decomposition of a tree (the paper's Figure 3).

    Attributes
    ----------
    path:
        The longest path ``v_0 .. v_d``.
    attachment:
        ``attachment[v]`` is the index ``i`` such that ``v ∈ A_i``.
    sizes:
        ``sizes[i] = a(i) = |A_i|`` (all positive; they sum to ``n``).
    """

    path: tuple[int, ...]
    attachment: np.ndarray
    sizes: np.ndarray

    @property
    def diameter_value(self) -> int:
        """Length ``d`` of the longest path."""
        return len(self.path) - 1

    def set_of(self, i: int) -> np.ndarray:
        """Vertices of ``A_i``."""
        return np.flatnonzero(self.attachment == i).astype(np.int64)


def longest_path_decomposition(graph: OwnedDigraph) -> TreeDecomposition:
    """Compute the Figure 3 decomposition of a tree realization.

    Every vertex is assigned to the path vertex through which it reaches
    the path (one multi-source BFS, then a parent-walk-free argmin: the
    nearest path vertex is unique in a tree).
    """
    if not is_tree(graph):
        raise GraphError("longest_path_decomposition requires a tree")
    path = tree_longest_path(graph)
    csr = graph.undirected_csr()
    n = graph.n
    path_arr = np.asarray(path, dtype=np.int64)
    # BFS from each path vertex would be O(d n); instead one BFS per
    # path vertex is avoided by flood-filling attachment labels outward
    # from the path: in a tree, each vertex's nearest path vertex is the
    # root of its hanging subtree.
    attachment = np.full(n, -1, dtype=np.int64)
    attachment[path_arr] = np.arange(path_arr.size)
    frontier = path_arr
    while frontier.size:
        nxt: list[int] = []
        for v in frontier:
            for w in csr.neighbors(int(v)):
                w = int(w)
                if attachment[w] == -1:
                    attachment[w] = attachment[int(v)]
                    nxt.append(w)
        frontier = np.asarray(nxt, dtype=np.int64)
    if (attachment == -1).any():  # pragma: no cover - tree is connected
        raise GraphError("decomposition failed to reach every vertex")
    sizes = np.bincount(attachment, minlength=path_arr.size).astype(np.int64)
    return TreeDecomposition(path=tuple(path), attachment=attachment, sizes=sizes)


def forward_arc_indices(graph: OwnedDigraph, decomp: TreeDecomposition) -> list[int]:
    """Indices ``i`` where the path edge ``v_i v_{i+1}`` is owned by
    ``v_i`` — the paper's "arcs in the same direction along P"
    (the forward direction is used; the backward case is symmetric)."""
    out = []
    path = decomp.path
    for i in range(len(path) - 1):
        if graph.has_arc(path[i], path[i + 1]):
            out.append(i)
    return out


@dataclass(frozen=True)
class InequalityCheck:
    """Result of checking the paper's inequality (1) along the path."""

    indices: tuple[int, ...]
    holds: bool
    violations: tuple[int, ...]

    @property
    def t(self) -> int:
        """Number of same-direction arcs used in the chain."""
        return len(self.indices)


def verify_sum_equilibrium_inequality(
    graph: OwnedDigraph, decomp: "TreeDecomposition | None" = None
) -> InequalityCheck:
    """Check inequality (1) of Theorem 3.3 on a tree realization.

    For each forward arc ``v_{i_j} -> v_{i_j + 1}`` except the last, the
    owner's swap to ``v_{i_j + 2}`` must not pay:
    ``a(i_j + 1) >= sum_{k >= i_j + 2} a(k)``. Holds in every SUM
    equilibrium tree; returns the violated indices otherwise.

    The check is direction-symmetric: whichever of the forward/backward
    arc families is larger is used, mirroring the proof's "at least half
    the arcs point the same way".
    """
    if decomp is None:
        decomp = longest_path_decomposition(graph)
    d = decomp.diameter_value
    sizes = decomp.sizes
    fwd = forward_arc_indices(graph, decomp)
    fwd_set = set(fwd)
    bwd = [i for i in range(d) if i not in fwd_set]
    # suffix[i] = a(i) + a(i+1) + ... + a(d); prefix[i] = a(0) + ... + a(i-1).
    suffix = np.concatenate([np.cumsum(sizes[::-1])[::-1], [0]])
    prefix = np.concatenate([[0], np.cumsum(sizes)])
    violations: list[int] = []
    # Forward arc v_i -> v_{i+1}: owner v_i may swap to v_{i+2} (needs
    # i + 2 <= d), so  a(i+1) >= a(i+2) + ... + a(d)  must hold.
    for i in fwd:
        if i + 2 <= d and int(sizes[i + 1]) < int(suffix[i + 2]):
            violations.append(i)
    # Backward arc v_{i+1} -> v_i: owner v_{i+1} may swap to v_{i-1}
    # (needs i >= 1), so  a(i) >= a(0) + ... + a(i-1)  must hold.
    for i in bwd:
        if i >= 1 and int(sizes[i]) < int(prefix[i]):
            violations.append(i)
    indices = fwd if len(fwd) >= len(bwd) else bwd
    return InequalityCheck(
        indices=tuple(indices), holds=not violations, violations=tuple(sorted(violations))
    )


def theorem_3_3_bound(n: int) -> int:
    """The concrete diameter bound implied by the Theorem 3.3 proof.

    From ``n >= 2^(t-1) - 1`` and ``d <= 2t``:
    ``d <= 2 (floor(log2(n + 1)) + 1)``.
    """
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    return 2 * (int(math.log2(n + 1)) + 1)
