"""Analysis: PoA bounds, structure audits, scaling fits, the paradox."""

from .braess import BraessComparison, demonstrate_braess
from .connectivity_theorem import ConnectivityReport, check_connectivity_theorem
from .poa import (
    DiameterBounds,
    exact_optimal_diameter,
    optimal_diameter_bounds,
    poa_interval,
    pos_interval,
)
from .scaling import FAMILIES, FitResult, best_family, fit_scaling
from .structure import (
    MAX_DIAMETER_BOUND,
    MAX_MAX_CYCLE,
    MAX_MAX_DIST,
    SUM_DIAMETER_BOUND,
    SUM_MAX_CYCLE,
    SUM_MAX_DIST,
    UnitStructureReport,
    check_unit_structure,
)
from .weighted import (
    WeightedRealization,
    WeightedSwapEnvironment,
    check_lemma_6_4,
    fold_all_poor_leaves,
    fold_poor_leaf,
    is_weighted_weak_equilibrium,
    poor_leaves,
    rich_leaves,
    weighted_sum_cost,
    weighted_swap_check,
    weighted_swap_sweep,
)
from .tree_decomposition import (
    InequalityCheck,
    TreeDecomposition,
    forward_arc_indices,
    longest_path_decomposition,
    theorem_3_3_bound,
    verify_sum_equilibrium_inequality,
)

__all__ = [
    "BraessComparison",
    "ConnectivityReport",
    "DiameterBounds",
    "FAMILIES",
    "FitResult",
    "InequalityCheck",
    "MAX_DIAMETER_BOUND",
    "MAX_MAX_CYCLE",
    "MAX_MAX_DIST",
    "SUM_DIAMETER_BOUND",
    "SUM_MAX_CYCLE",
    "SUM_MAX_DIST",
    "TreeDecomposition",
    "UnitStructureReport",
    "WeightedRealization",
    "WeightedSwapEnvironment",
    "check_lemma_6_4",
    "fold_all_poor_leaves",
    "fold_poor_leaf",
    "is_weighted_weak_equilibrium",
    "poor_leaves",
    "rich_leaves",
    "weighted_sum_cost",
    "weighted_swap_check",
    "weighted_swap_sweep",
    "best_family",
    "check_connectivity_theorem",
    "check_unit_structure",
    "demonstrate_braess",
    "exact_optimal_diameter",
    "fit_scaling",
    "forward_arc_indices",
    "longest_path_decomposition",
    "optimal_diameter_bounds",
    "poa_interval",
    "pos_interval",
    "theorem_3_3_bound",
    "verify_sum_equilibrium_inequality",
]
