"""Structure theorems for all-unit-budget equilibria (Section 4).

* **Theorem 4.1 (SUM)**: every equilibrium of ``(1, ..., 1)``-BG is
  connected, unicyclic with cycle length at most 5, and every vertex is
  on the cycle or adjacent to it — hence diameter < 5.
* **Theorem 4.2 (MAX)**: connected, unicyclic with cycle length at most
  7 (braces allowed as 2-cycles), every vertex within distance 2 of the
  cycle — hence diameter < 8.

:func:`check_unit_structure` measures all of these quantities on an
arbitrary realization so equilibria found by dynamics can be audited
against the theorems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.costs import Version
from ..errors import GraphError
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import diameter
from ..graphs.properties import distance_to_cycle, is_unicyclic, unique_cycle

__all__ = [
    "UnitStructureReport",
    "check_unit_structure",
    "SUM_MAX_CYCLE",
    "MAX_MAX_CYCLE",
    "SUM_MAX_DIST",
    "MAX_MAX_DIST",
    "SUM_DIAMETER_BOUND",
    "MAX_DIAMETER_BOUND",
]

#: Theorem 4.1: SUM unit equilibria have cycle length <= 5 ...
SUM_MAX_CYCLE = 5
#: ... every vertex within distance 1 of the cycle ...
SUM_MAX_DIST = 1
#: ... and therefore diameter < 5.
SUM_DIAMETER_BOUND = 5

#: Theorem 4.2: MAX unit equilibria have cycle length <= 7 ...
MAX_MAX_CYCLE = 7
#: ... every vertex within distance 2 of the cycle ...
MAX_MAX_DIST = 2
#: ... and therefore diameter < 8.
MAX_DIAMETER_BOUND = 8


@dataclass(frozen=True)
class UnitStructureReport:
    """Structural audit of a ``(1, ..., 1)``-BG realization.

    All quantities are measured; the ``satisfies_*`` properties compare
    them against the theorem limits for the respective version.
    """

    n: int
    is_unicyclic: bool
    cycle: tuple[int, ...]
    cycle_length: int
    max_distance_to_cycle: int
    diameter_value: int

    def satisfies(self, version: "Version | str") -> bool:
        """Whether the realization matches the structure theorem for
        ``version`` (necessary condition for being an equilibrium)."""
        version = Version.coerce(version)
        if not self.is_unicyclic:
            return False
        if version is Version.SUM:
            return (
                self.cycle_length <= SUM_MAX_CYCLE
                and self.max_distance_to_cycle <= SUM_MAX_DIST
                and self.diameter_value < SUM_DIAMETER_BOUND
            )
        return (
            self.cycle_length <= MAX_MAX_CYCLE
            and self.max_distance_to_cycle <= MAX_MAX_DIST
            and self.diameter_value < MAX_DIAMETER_BOUND
        )


def check_unit_structure(graph: OwnedDigraph) -> UnitStructureReport:
    """Measure the Section 4 structural quantities of a realization.

    The graph must come from an all-unit-budget game (every out-degree
    exactly 1); it need not be an equilibrium — the report is how the
    tests *decide* whether the theorems hold on dynamics output.
    """
    if (graph.out_degrees() != 1).any():
        raise GraphError("check_unit_structure requires all out-degrees = 1")
    uni = is_unicyclic(graph)
    if not uni:
        return UnitStructureReport(
            n=graph.n,
            is_unicyclic=False,
            cycle=(),
            cycle_length=0,
            max_distance_to_cycle=-1,
            diameter_value=diameter(graph),
        )
    cyc = unique_cycle(graph)
    dist = distance_to_cycle(graph)
    return UnitStructureReport(
        n=graph.n,
        is_unicyclic=True,
        cycle=tuple(cyc),
        cycle_length=len(cyc),
        max_distance_to_cycle=int(dist.max()),
        diameter_value=diameter(graph),
    )
