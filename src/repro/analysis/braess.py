"""The budget paradox of Section 5 (a Braess analogue).

With all-unit budgets, every MAX equilibrium has diameter below 8
(Theorem 4.2). Yet with all-*positive* budgets — strictly more link
capacity for every player — the oriented overlap graph of Lemma 5.2 is a
MAX equilibrium with diameter ``k ≈ √log n``, which exceeds the unit
bound once ``n`` is large enough. Giving players bigger budgets can
therefore *worsen* the worst equilibrium: the paper's analogue of
Braess's paradox.

:func:`demonstrate_braess` builds the pair of instances at comparable
``n`` and reports both diameters side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constructions.debruijn import OverlapGraphInstance, overlap_graph_equilibrium
from ..core.costs import Version
from ..core.dynamics import best_response_dynamics
from ..core.game import BoundedBudgetGame
from ..errors import ConstructionError
from ..graphs.distances import diameter
from ..graphs.generators import unit_budgets

__all__ = ["BraessComparison", "demonstrate_braess"]


@dataclass(frozen=True)
class BraessComparison:
    """Side-by-side diameters: unit budgets vs strictly larger budgets.

    ``paradox`` is true when the richer instance has the *larger*
    equilibrium diameter.
    """

    n: int
    t: int
    k: int
    unit_diameter: int
    unit_converged: bool
    positive_diameter: int
    positive_min_budget: int
    positive_total_budget: int

    @property
    def paradox(self) -> bool:
        """Whether more budget produced a worse (larger) diameter."""
        return self.positive_diameter > self.unit_diameter

    def summary(self) -> str:
        """One-line human-readable comparison."""
        flag = "PARADOX" if self.paradox else "no paradox at this size"
        return (
            f"n={self.n}: unit-budget diam={self.unit_diameter} vs "
            f"all-positive (min budget {self.positive_min_budget}, total "
            f"{self.positive_total_budget}) diam={self.positive_diameter} -> {flag}"
        )


def demonstrate_braess(
    t: int,
    k: int,
    *,
    seed: int = 0,
    max_rounds: int = 100,
    unit_method: str = "exact",
) -> BraessComparison:
    """Build the Section 5 comparison at the overlap graph's size.

    1. Construct the oriented overlap graph ``U(t, k)`` — a certified
       MAX equilibrium with all budgets positive and diameter ``k``.
    2. Run MAX best-response dynamics on the *same number* of players
       with unit budgets and measure the resulting diameter (< 8 by
       Theorem 4.2).
    """
    inst: OverlapGraphInstance = overlap_graph_equilibrium(t, k)
    n = inst.n
    game = BoundedBudgetGame(unit_budgets(n))
    start = game.random_realization(seed=seed, connected=True)
    result = best_response_dynamics(
        game,
        start,
        Version.MAX,
        method=unit_method,  # type: ignore[arg-type]
        max_rounds=max_rounds,
        seed=seed,
    )
    return BraessComparison(
        n=n,
        t=t,
        k=k,
        unit_diameter=diameter(result.graph),
        unit_converged=result.converged,
        positive_diameter=diameter(inst.graph),
        positive_min_budget=int(inst.budgets.min()),
        positive_total_budget=int(inst.budgets.sum()),
    )
