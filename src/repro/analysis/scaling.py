"""Scaling-law fits for the asymptotic claims of Table 1.

The paper's bounds are asymptotic (Θ(n), Θ(log n), Ω(√log n),
2^O(√log n)); at finite sizes we fit the corresponding two-parameter
families by least squares and report goodness-of-fit, so EXPERIMENTS.md
can state "diameter grows like a·n + b with R² = ..." next to each
paper bound.

Families (all linear in their parameters after transforming ``n``):

==============  =====================================
``linear``      ``d = a n + b``            (Θ(n))
``log``         ``d = a log2 n + b``       (Θ(log n))
``sqrtlog``     ``d = a sqrt(log2 n) + b`` (Ω(√log n))
``expsqrtlog``  ``log2 d = a sqrt(log2 n) + b``  (2^O(√log n))
``constant``    ``d = b``                  (Θ(1))
==============  =====================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ReproError

__all__ = ["FitResult", "FAMILIES", "fit_scaling", "best_family"]


def _design_linear(n: np.ndarray) -> np.ndarray:
    return n.astype(np.float64)


def _design_log(n: np.ndarray) -> np.ndarray:
    return np.log2(n.astype(np.float64))


def _design_sqrtlog(n: np.ndarray) -> np.ndarray:
    return np.sqrt(np.log2(n.astype(np.float64)))


#: family name -> (x-transform, y-transform, y-inverse)
FAMILIES: dict[str, tuple[Callable, Callable, Callable]] = {
    "linear": (_design_linear, lambda d: d, lambda y: y),
    "log": (_design_log, lambda d: d, lambda y: y),
    "sqrtlog": (_design_sqrtlog, lambda d: d, lambda y: y),
    "expsqrtlog": (_design_sqrtlog, np.log2, lambda y: np.exp2(y)),
    "constant": (lambda n: np.zeros_like(n, dtype=np.float64), lambda d: d, lambda y: y),
}


@dataclass(frozen=True)
class FitResult:
    """A fitted scaling law ``y(x(n)) = slope * x(n) + intercept``.

    ``r_squared`` is computed in the (possibly transformed) y-space;
    ``rmse`` in the original diameter space.
    """

    family: str
    slope: float
    intercept: float
    r_squared: float
    rmse: float

    def predict(self, n: "np.ndarray | list[int] | int") -> np.ndarray:
        """Predicted diameter(s) for size(s) ``n``."""
        xt, _, y_inv = FAMILIES[self.family]
        arr = np.atleast_1d(np.asarray(n, dtype=np.float64))
        y = self.slope * xt(arr) + self.intercept
        return np.asarray(y_inv(y), dtype=np.float64)

    def describe(self) -> str:
        """Human-readable formula with fitted coefficients."""
        formulas = {
            "linear": f"d ≈ {self.slope:.4g}·n + {self.intercept:.4g}",
            "log": f"d ≈ {self.slope:.4g}·log2(n) + {self.intercept:.4g}",
            "sqrtlog": f"d ≈ {self.slope:.4g}·sqrt(log2 n) + {self.intercept:.4g}",
            "expsqrtlog": f"d ≈ 2^({self.slope:.4g}·sqrt(log2 n) + {self.intercept:.4g})",
            "constant": f"d ≈ {self.intercept:.4g}",
        }
        return f"{formulas[self.family]}  (R²={self.r_squared:.3f})"


def fit_scaling(
    ns: "np.ndarray | list[int]", ds: "np.ndarray | list[int]", family: str
) -> FitResult:
    """Least-squares fit of one scaling family to (size, diameter) data."""
    if family not in FAMILIES:
        raise ReproError(f"unknown family {family!r}; choose from {sorted(FAMILIES)}")
    n = np.asarray(ns, dtype=np.float64)
    d = np.asarray(ds, dtype=np.float64)
    if n.shape != d.shape or n.ndim != 1 or n.size < 2:
        raise ReproError("need equal-length 1-D arrays with at least 2 points")
    if (n < 2).any():
        raise ReproError("sizes must be >= 2 for the log transforms")
    if (d <= 0).any() and family == "expsqrtlog":
        raise ReproError("expsqrtlog requires positive diameters")
    xt, yt, y_inv = FAMILIES[family]
    x = xt(n)
    y = yt(d)
    if family == "constant":
        slope = 0.0
        intercept = float(y.mean())
    else:
        A = np.vstack([x, np.ones_like(x)]).T
        coeffs, *_ = np.linalg.lstsq(A, y, rcond=None)
        slope, intercept = float(coeffs[0]), float(coeffs[1])
    y_hat = slope * x + intercept
    ss_res = float(((y - y_hat) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    d_hat = np.asarray(y_inv(y_hat), dtype=np.float64)
    rmse = float(np.sqrt(((d - d_hat) ** 2).mean()))
    return FitResult(family=family, slope=slope, intercept=intercept, r_squared=r2, rmse=rmse)


def best_family(
    ns: "np.ndarray | list[int]",
    ds: "np.ndarray | list[int]",
    *,
    candidates: "tuple[str, ...]" = ("linear", "log", "sqrtlog", "constant"),
) -> FitResult:
    """The candidate family with the smallest RMSE in diameter space.

    RMSE (not R²) is used so the transformed-y family competes fairly.
    """
    fits = [fit_scaling(ns, ds, fam) for fam in candidates]
    return min(fits, key=lambda f: f.rmse)
