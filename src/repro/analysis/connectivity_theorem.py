"""Theorem 7.2: minimum budget forces connectivity (SUM version).

If every player has budget at least ``k`` and the SUM equilibrium has
diameter greater than 3, then the graph is ``k``-connected. The checker
measures both sides of the dichotomy so equilibria found by dynamics can
be audited, and extracts Menger path witnesses on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from ..graphs.connectivity import is_k_connected, vertex_connectivity
from ..graphs.digraph import OwnedDigraph
from ..graphs.distances import diameter

__all__ = ["ConnectivityReport", "check_connectivity_theorem"]


@dataclass(frozen=True)
class ConnectivityReport:
    """Audit of Theorem 7.2 on one realization.

    The theorem asserts ``diameter <= 3 or connectivity >= k`` for SUM
    equilibria with all budgets ``>= k``.
    """

    n: int
    k: int
    diameter_value: int
    connectivity: int

    @property
    def holds(self) -> bool:
        """Whether the theorem's dichotomy is satisfied."""
        return self.diameter_value <= 3 or self.connectivity >= self.k

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "HOLDS" if self.holds else "VIOLATED"
        return (
            f"Thm 7.2 {verdict}: n={self.n} k={self.k} "
            f"diam={self.diameter_value} kappa={self.connectivity}"
        )


def check_connectivity_theorem(graph: OwnedDigraph, k: "int | None" = None) -> ConnectivityReport:
    """Measure the Theorem 7.2 quantities on a realization.

    ``k`` defaults to the minimum out-degree (the largest ``k`` for which
    the theorem's hypothesis "all budgets >= k" holds).
    """
    out = graph.out_degrees()
    if k is None:
        k = int(out.min())
    if k < 1:
        raise GraphError("theorem 7.2 needs a positive minimum budget k")
    if int(out.min()) < k:
        raise GraphError(
            f"hypothesis violated: some budget is {int(out.min())} < k = {k}"
        )
    return ConnectivityReport(
        n=graph.n,
        k=k,
        diameter_value=diameter(graph),
        connectivity=vertex_connectivity(graph),
    )
