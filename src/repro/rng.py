"""Deterministic random-number-generation utilities.

Every stochastic component of the library accepts either an integer seed
or a ready-made :class:`numpy.random.Generator`. Routines here normalise
those inputs and derive *independent* child generators for parallel tasks
so that a sweep executed with ``multiprocessing`` produces bit-identical
results regardless of worker count or scheduling order (the same
discipline the MPI guides prescribe for rank-local RNG streams).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "seed_sequence_for_task",
]

#: Fixed root entropy for the library; combined with user seeds so that
#: the derived streams are stable across library versions.
_LIBRARY_ENTROPY = 0x5BBC_2011  # "SPAA 2011 bounded budget creation"


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator; an ``int`` yields a
    deterministic one; a generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence([_LIBRARY_ENTROPY, int(seed)]))


def seed_sequence_for_task(base_seed: int, task_index: int) -> np.random.SeedSequence:
    """Seed sequence for the ``task_index``-th task of a sweep.

    Tasks seeded this way are statistically independent and reproducible
    independently of execution order.
    """
    return np.random.SeedSequence([_LIBRARY_ENTROPY, int(base_seed), int(task_index)])


def derive_seed(base_seed: int, *components: int) -> int:
    """Derive a stable 63-bit integer seed from ``base_seed`` and labels.

    Useful when a task needs to pass a plain integer seed across a process
    boundary (pickling a full generator is wasteful).
    """
    ss = np.random.SeedSequence([_LIBRARY_ENTROPY, int(base_seed), *map(int, components)])
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)


def spawn_generators(
    seed: int | np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]  # type: ignore[union-attr]
    if seed is None:
        root = np.random.SeedSequence()
    else:
        root = np.random.SeedSequence([_LIBRARY_ENTROPY, int(seed)])
    return [np.random.default_rng(s) for s in root.spawn(count)]


def random_subset(
    rng: np.random.Generator, universe: Sequence[int] | np.ndarray, size: int
) -> np.ndarray:
    """Uniformly random ``size``-subset of ``universe`` (sorted, no repeats)."""
    arr = np.asarray(universe, dtype=np.int64)
    if size > arr.size:
        raise ValueError(f"cannot draw {size} elements from universe of {arr.size}")
    picked = rng.choice(arr, size=size, replace=False)
    picked.sort()
    return picked


def random_partition(rng: np.random.Generator, total: int, parts: int) -> np.ndarray:
    """Split ``total`` into ``parts`` nonnegative integers, uniformly.

    Uses the stars-and-bars bijection: choose ``parts - 1`` cut points in
    ``[0, total + parts - 1)``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be nonnegative, got {total}")
    if parts == 1:
        return np.array([total], dtype=np.int64)
    cuts = rng.choice(total + parts - 1, size=parts - 1, replace=False)
    cuts.sort()
    bounds = np.concatenate(([-1], cuts, [total + parts - 1]))
    return np.diff(bounds) - 1
