"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "StaleDistanceError",
    "VertexError",
    "ArcError",
    "GameError",
    "BudgetError",
    "StrategyError",
    "ConstructionError",
    "DynamicsError",
    "OptimizationError",
    "ExperimentError",
    "PoolError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for invalid graph operations or malformed graph inputs."""


class StaleDistanceError(GraphError):
    """Raised when a distance view is read after its engine moved on.

    A :class:`~repro.graphs.engine.DistanceEngine` bumps its epoch on
    every repair or rebuild; consumers that captured an earlier epoch
    get this error instead of silently reading distances of a substrate
    that no longer exists.
    """


class VertexError(GraphError):
    """Raised when a vertex index is out of range or otherwise invalid."""

    def __init__(self, vertex: int, n: int, message: str | None = None) -> None:
        self.vertex = vertex
        self.n = n
        if message is None:
            message = f"vertex {vertex!r} is not in range [0, {n})"
        super().__init__(message)


class ArcError(GraphError):
    """Raised for invalid arc operations (missing arc, self-loop, duplicate)."""


class GameError(ReproError):
    """Raised for invalid game specifications or operations."""


class BudgetError(GameError):
    """Raised when a budget vector violates the model constraints.

    The paper requires ``0 <= b_i < n`` for every player ``i``.
    """


class StrategyError(GameError):
    """Raised when a strategy violates the rules of the game.

    A valid strategy for player ``i`` is a subset of the other players of
    size exactly ``b_i``.
    """


class ConstructionError(ReproError):
    """Raised when an equilibrium construction receives unusable parameters."""


class DynamicsError(ReproError):
    """Raised for invalid best-response dynamics configurations."""


class OptimizationError(ReproError):
    """Raised for invalid k-center / k-median solver inputs."""


class ExperimentError(ReproError):
    """Raised when an experiment is misconfigured or its id is unknown."""


class PoolError(ReproError):
    """Raised for invalid shared-memory matrix-pool operations."""


class CheckpointError(ReproError):
    """Raised for invalid checkpoint journals, manifests or resume requests.

    Torn or corrupt journal *tails* are not errors — replay degrades to
    the last good record by design. This error covers misuse: resuming
    against a missing/mismatched manifest, or malformed journal paths.
    """
