"""Shared-instance registry with ``--pool-dir`` cold starts.

Each served instance owns one realization graph plus the caches every
query rides on: a unit :class:`~repro.core.DistanceCache` (built
eagerly) and a weighted realization / cache pair (built on first
weighted query).  When a pool-store directory is supplied, the unit
cache cold-starts by attaching the persisted distance matrix under
the graph's census digest — zero parent rebuilds — exactly like a
census ``--pool-dir`` resume; otherwise it starts in lazy-rows mode
and settles rows on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.distance_cache import DistanceCache, WeightedDistanceCache
from ..core.pool_store import PoolStore, census_graph_digest
from ..errors import ExperimentError
from ..graphs.digraph import OwnedDigraph
from ..graphs.engine import DistanceEngine

__all__ = ["InstanceRegistry", "ServedInstance"]


@dataclass
class ServedInstance:
    """One graph plus the caches its queries share."""

    name: str
    graph: OwnedDigraph
    cache: DistanceCache
    source: str  # "disk" (pool-store attach) | "lazy" (cold, rows on demand)
    _weighted: "tuple | None" = field(default=None, repr=False)

    def weighted(self):
        """The unit-weight realization and its cache, built on first use.

        ``WeightedRealization.unit`` copies the graph, so the weighted
        cache is keyed to the realization's own copy — weighted answers
        are still bit-identical to unit ones on unit weights.
        """
        if self._weighted is None:
            from ..analysis.weighted import WeightedRealization

            wr = WeightedRealization.unit(self.graph)
            self._weighted = (wr, WeightedDistanceCache(wr.graph, rows="lazy"))
        return self._weighted

    def info(self) -> dict:
        engine = self.cache.base()
        return {
            "name": self.name,
            "n": self.graph.n,
            "source": self.source,
            "engine_mode": "lazy" if engine.lazy else "full",
            "rebuilds": int(engine.stats["rebuilds"]),
        }


def _build_instance(name: str, graph: OwnedDigraph, store: "PoolStore | None") -> ServedInstance:
    cache = None
    source = "lazy"
    if store is not None:
        handle = store.lookup(census_graph_digest(graph))
        if handle is not None:
            views = handle.attach()
            engine = DistanceEngine.from_snapshot(
                graph.undirected_csr(),
                views["D"],
                inf=int(views["inf"][0]),
                dirty_fraction="adaptive",
            )
            cache = DistanceCache(graph, base_engine=engine)
            source = "disk"
    if cache is None:
        cache = DistanceCache(graph, rows="lazy")
    return ServedInstance(name=name, graph=graph, cache=cache, source=source)


class InstanceRegistry:
    """Named instances the server answers over; first one is the default."""

    def __init__(self, instances: "dict[str, ServedInstance]") -> None:
        if not instances:
            raise ExperimentError("serve needs at least one instance")
        self._instances = dict(instances)
        self._default = next(iter(self._instances))

    @classmethod
    def from_specs(
        cls, specs: "list[str]", *, pool_dir: "str | None" = None
    ) -> "InstanceRegistry":
        """Build from CLI ``--instance NAME=SPEC`` strings.

        A bare ``SPEC`` (no ``=``) names itself.  Specs are the same
        construction strings as ``export`` (``fig1``, ``spider:<k>``,
        ...).  With ``pool_dir``, each instance tries a pool-store
        matrix attach before falling back to a lazy cold start.
        """
        from ..cli import build_construction

        store = PoolStore(pool_dir) if pool_dir is not None else None
        instances: "dict[str, ServedInstance]" = {}
        for raw in specs:
            name, eq, spec = raw.partition("=")
            if not eq:
                name, spec = raw, raw
            if not name or not spec:
                raise ExperimentError(f"bad --instance {raw!r}; use NAME=SPEC")
            if name in instances:
                raise ExperimentError(f"duplicate instance name {name!r}")
            instances[name] = _build_instance(name, build_construction(spec), store)
        return cls(instances)

    @classmethod
    def from_graphs(
        cls, graphs: "dict[str, OwnedDigraph]", *, pool_dir: "str | None" = None
    ) -> "InstanceRegistry":
        """Build directly from graphs (library / test entry point)."""
        store = PoolStore(pool_dir) if pool_dir is not None else None
        return cls(
            {name: _build_instance(name, g, store) for name, g in graphs.items()}
        )

    @property
    def default(self) -> str:
        return self._default

    def names(self) -> "list[str]":
        return list(self._instances)

    def get(self, name: "str | None") -> ServedInstance:
        """Resolve a request's instance field; ``None`` means the default."""
        return self._instances[self._default if name is None else name]

    def info(self) -> "list[dict]":
        return [inst.info() for inst in self._instances.values()]
