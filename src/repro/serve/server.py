"""Asyncio server loop: TCP and stdio transports, control ops, CLI glue.

Each connection reads NDJSON lines and spawns one task per request, so
a single client that writes several lines before reading responses
still gets its same-instance queries coalesced by the dispatcher.
Responses are written under a per-connection lock and matched by
``id`` (they may arrive out of order).
"""

from __future__ import annotations

import asyncio
import contextlib
import sys

from ..core.enumeration import last_census_pool_stats, last_census_runtime_stats
from ..errors import ExperimentError, PoolError
from .dispatcher import MicroBatchDispatcher
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    QUERY_OPS,
    Request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from .registry import InstanceRegistry

__all__ = ["QueryServer", "run_cli"]


class QueryServer:
    """One registry + one dispatcher behind a TCP or stdio transport."""

    def __init__(
        self,
        registry: InstanceRegistry,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        default_version: str = "sum",
    ) -> None:
        self.registry = registry
        self.dispatcher = MicroBatchDispatcher(
            registry,
            window=window,
            max_batch=max_batch,
            default_version=default_version,
        )
        self._shutdown = asyncio.Event()
        self._server: "asyncio.base_events.Server | None" = None
        self._conn_tasks: "set[asyncio.Task]" = set()

    # -- request handling ---------------------------------------------

    async def handle_line(self, line: "str | bytes") -> dict:
        """Parse and answer one raw request line (never raises)."""
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            return error_response(None, exc.code, str(exc))
        return await self.handle_request(request)

    async def handle_request(self, request: Request) -> dict:
        if request.op == "ping":
            return ok_response(
                request.id, {"pong": True, "protocol": PROTOCOL_VERSION}
            )
        if request.op == "instances":
            return ok_response(
                request.id,
                {"default": self.registry.default, "instances": self.registry.info()},
            )
        if request.op == "stats":
            return ok_response(
                request.id,
                {
                    "dispatcher": self.dispatcher.snapshot(),
                    "census": {
                        "pool": last_census_pool_stats(),
                        "runtime": last_census_runtime_stats(),
                    },
                },
            )
        if request.op == "shutdown":
            self._shutdown.set()
            return ok_response(request.id, {"stopping": True})
        assert request.op in QUERY_OPS
        try:
            instance = self.registry.get(request.instance)
        except KeyError:
            return error_response(
                request.id,
                "unknown-instance",
                f"unknown instance {request.instance!r}; "
                f"serving: {', '.join(self.registry.names())}",
            )
        return await self.dispatcher.submit(instance, request)

    # -- TCP transport ------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "tuple[str, int]":
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle connections block in readline() forever; cancel them so a
        # shutdown request actually terminates the serve loop.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        await self.dispatcher.close()

    async def _handle_connection(self, reader, writer) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
        write_lock = asyncio.Lock()
        tasks: "set[asyncio.Task]" = set()

        async def respond(line: bytes) -> None:
            response = await self.handle_line(line)
            async with write_lock:
                writer.write(encode_response(response))
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(me)
            # In-flight responses still finish on a normal EOF; after a
            # cancellation the first await below re-raises, which we
            # swallow so the task ends cleanly instead of as "cancelled".
            if tasks:
                try:
                    await asyncio.gather(*tasks, return_exceptions=True)
                except asyncio.CancelledError:
                    pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def run_tcp(self, host: str, port: int, *, announce: bool = True) -> None:
        host, port = await self.start(host, port)
        if announce:
            print(
                f"serving {len(self.registry.names())} instance(s) "
                f"on {host}:{port}",
                flush=True,
            )
        await self.serve_until_shutdown()

    # -- stdio transport ----------------------------------------------

    async def run_stdio(self) -> None:
        """NDJSON over stdin/stdout (``repro-bbncg serve --stdio``)."""
        loop = asyncio.get_running_loop()
        write_lock = asyncio.Lock()
        tasks: "set[asyncio.Task]" = set()

        async def respond(line: str) -> None:
            response = await self.handle_line(line)
            async with write_lock:
                sys.stdout.write(encode_response(response).decode("utf-8"))
                sys.stdout.flush()

        stop_wait = asyncio.ensure_future(self._shutdown.wait())
        try:
            while not self._shutdown.is_set():
                read = loop.run_in_executor(None, sys.stdin.readline)
                done, _ = await asyncio.wait(
                    {read, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if read not in done:
                    break  # shutdown requested; the blocked reader thread
                    # dies with the process.
                line = read.result()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            stop_wait.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            await self.dispatcher.close()


def run_cli(args) -> int:
    """Back the ``repro-bbncg serve`` subcommand; returns an exit code."""
    specs = args.instances or ["fig1"]
    try:
        registry = InstanceRegistry.from_specs(specs, pool_dir=args.pool_dir)
    except (ExperimentError, PoolError, OSError) as exc:
        print(f"!! serve failed to build instances: {exc}", file=sys.stderr)
        return 1
    server = QueryServer(
        registry,
        window=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        default_version=args.version,
    )
    try:
        if args.stdio:
            asyncio.run(server.run_stdio())
        else:
            asyncio.run(server.run_tcp(args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    return 0
