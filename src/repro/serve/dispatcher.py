"""Micro-batching dispatcher with per-instance worker affinity.

Every instance gets one asyncio collector plus one single-thread
executor (its *affinity thread*): all compute for an instance happens
on that thread, under the cache lock, so concurrent clients can never
interleave cache mutations.  The collector opens a short window on
the first queued request and drains everything that arrives inside it
into one batch; distance questions in a batch of two or more are
answered by ONE batched multi-source sweep
(:meth:`~repro.core.DistanceCache.batch_query`), everything else by
the exact direct library call — which is what makes served answers
bit-identical to local ones by construction.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.costs import Version, social_cost
from ..errors import ReproError
from .protocol import ProtocolError, Request, error_response, fraction_str, ok_response
from .registry import InstanceRegistry, ServedInstance

__all__ = ["MicroBatchDispatcher"]

_STAT_KEYS = ("requests", "batches", "batched_requests", "max_batch", "sweeps", "errors")


@dataclass
class _Pending:
    request: Request
    future: asyncio.Future
    enqueued: float


@dataclass
class _Lane:
    """Per-instance collector state: queue, collector task, affinity thread."""

    instance: ServedInstance
    queue: "asyncio.Queue[_Pending]"
    executor: ThreadPoolExecutor
    task: "asyncio.Task | None" = None
    stats: dict = field(
        default_factory=lambda: {k: 0 for k in _STAT_KEYS}
    )


def _int_param(params: dict, key: str, *, required: bool = True, default=None) -> "int | None":
    if key not in params:
        if required:
            raise ProtocolError("bad-request", f"missing required field {key!r}")
        return default
    value = params[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError("bad-request", f"field {key!r} must be an integer")
    return value


class MicroBatchDispatcher:
    """Coalesce concurrent same-instance queries into batched sweeps."""

    def __init__(
        self,
        registry: InstanceRegistry,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        default_version: str = "sum",
    ) -> None:
        self.registry = registry
        self.window = float(window)
        self.max_batch = max(1, int(max_batch))
        self.default_version = default_version
        self.stats = {k: 0 for k in _STAT_KEYS}
        self._lanes: "dict[str, _Lane]" = {}

    # -- lifecycle ----------------------------------------------------

    def _lane(self, inst: ServedInstance) -> _Lane:
        lane = self._lanes.get(inst.name)
        if lane is None:
            lane = _Lane(
                instance=inst,
                queue=asyncio.Queue(),
                executor=ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"serve-{inst.name}"
                ),
            )
            lane.task = asyncio.get_running_loop().create_task(self._collect(lane))
            self._lanes[inst.name] = lane
        return lane

    async def close(self) -> None:
        """Cancel collectors and release affinity threads."""
        for lane in self._lanes.values():
            if lane.task is not None:
                lane.task.cancel()
        for lane in self._lanes.values():
            if lane.task is not None:
                try:
                    await lane.task
                except asyncio.CancelledError:
                    pass
            lane.executor.shutdown(wait=False, cancel_futures=True)
        self._lanes.clear()

    def snapshot(self) -> dict:
        """Aggregate + per-instance counters (for the ``stats`` op)."""
        return {
            **{k: int(v) for k, v in self.stats.items()},
            "instances": {
                name: {k: int(v) for k, v in lane.stats.items()}
                for name, lane in self._lanes.items()
            },
        }

    # -- submission ---------------------------------------------------

    async def submit(self, inst: ServedInstance, request: Request) -> dict:
        """Queue one query request; resolves to its response envelope."""
        lane = self._lane(inst)
        pending = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued=time.perf_counter(),
        )
        await lane.queue.put(pending)
        return await pending.future

    async def _collect(self, lane: _Lane) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await lane.queue.get()
            batch = [first]
            deadline = loop.time() + self.window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(lane.queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            started = time.perf_counter()
            try:
                responses = await loop.run_in_executor(
                    lane.executor, self._execute_batch, lane, batch, started
                )
            except Exception as exc:  # pragma: no cover - defensive
                responses = [
                    error_response(p.request.id, "internal-error", repr(exc))
                    for p in batch
                ]
            for pending, response in zip(batch, responses):
                if not pending.future.done():
                    pending.future.set_result(response)

    # -- execution (affinity thread) ----------------------------------

    def _execute_batch(self, lane: _Lane, batch: "list[_Pending]", started: float) -> "list[dict]":
        inst = lane.instance
        size = len(batch)
        lane.stats["requests"] += size
        lane.stats["batches"] += 1
        lane.stats["max_batch"] = max(lane.stats["max_batch"], size)
        self.stats["requests"] += size
        self.stats["batches"] += 1
        self.stats["max_batch"] = max(self.stats["max_batch"], size)
        if size >= 2:
            lane.stats["batched_requests"] += size
            self.stats["batched_requests"] += size
        results: "list[tuple[bool, dict] | None]" = [None] * size
        with inst.cache.lock:
            self._sweep_distances(lane, batch, results, weighted=False)
            self._sweep_distances(lane, batch, results, weighted=True)
            for i, pending in enumerate(batch):
                if results[i] is None:
                    results[i] = self._execute_one(lane, inst, pending.request)
            meta_base = self._meta(inst, size)
        responses = []
        for pending, (ok, payload) in zip(batch, results):
            meta = dict(
                meta_base,
                queue_wait_ms=round((started - pending.enqueued) * 1000.0, 3),
            )
            if ok:
                responses.append(ok_response(pending.request.id, payload, meta))
            else:
                resp = error_response(pending.request.id, **payload)
                resp["meta"] = meta
                responses.append(resp)
        return responses

    def _sweep_distances(
        self,
        lane: _Lane,
        batch: "list[_Pending]",
        results: "list[tuple[bool, dict] | None]",
        *,
        weighted: bool,
    ) -> None:
        """Answer >=2 same-flavor distance requests with one batched sweep."""
        inst = lane.instance
        n = inst.graph.n
        sweep: "list[tuple[int, int, int]]" = []
        for i, pending in enumerate(batch):
            req = pending.request
            if req.op != "distance" or bool(req.params.get("weighted")) != weighted:
                continue
            try:
                u = _int_param(req.params, "u")
                v = _int_param(req.params, "v")
                if not (0 <= u < n and 0 <= v < n):
                    raise ProtocolError(
                        "bad-request", f"vertex out of range for n={n}: ({u}, {v})"
                    )
            except ProtocolError as exc:
                results[i] = (False, {"code": exc.code, "message": str(exc)})
                continue
            sweep.append((i, u, v))
        if len(sweep) < 2:
            return
        cache = inst.weighted()[1] if weighted else inst.cache
        values = cache.batch_query([(u, v) for _, u, v in sweep])
        lane.stats["sweeps"] += 1
        self.stats["sweeps"] += 1
        for (i, _, _), value in zip(sweep, values):
            results[i] = (True, {"distance": int(value)})

    def _execute_one(self, lane: _Lane, inst: ServedInstance, req: Request) -> "tuple[bool, dict]":
        try:
            return (True, self._dispatch_op(inst, req))
        except ProtocolError as exc:
            lane.stats["errors"] += 1
            self.stats["errors"] += 1
            return (False, {"code": exc.code, "message": str(exc)})
        except ReproError as exc:
            lane.stats["errors"] += 1
            self.stats["errors"] += 1
            return (False, {"code": "query-error", "message": str(exc)})
        except Exception as exc:  # unexpected: keep serving, surface the repr
            lane.stats["errors"] += 1
            self.stats["errors"] += 1
            return (False, {"code": "internal-error", "message": repr(exc)})

    def _version(self, req: Request) -> Version:
        return Version.coerce(req.version or self.default_version)

    def _dispatch_op(self, inst: ServedInstance, req: Request) -> dict:
        graph = inst.graph
        params = req.params
        if req.op == "distance":
            u = _int_param(params, "u")
            v = _int_param(params, "v")
            if not (0 <= u < graph.n and 0 <= v < graph.n):
                raise ProtocolError(
                    "bad-request", f"vertex out of range for n={graph.n}: ({u}, {v})"
                )
            cache = inst.weighted()[1] if params.get("weighted") else inst.cache
            return {"distance": int(cache.query(u, v))}
        if req.op == "social_cost":
            return {"social_cost": int(social_cost(graph, engine=inst.cache.base()))}
        if req.op == "deviation":
            from ..core.deviations import deviation_improves

            u = _int_param(params, "u")
            strategy = params.get("strategy")
            if not isinstance(strategy, list) or not all(
                isinstance(x, int) and not isinstance(x, bool) for x in strategy
            ):
                raise ProtocolError(
                    "bad-request", "'strategy' must be a list of integers"
                )
            improves = deviation_improves(
                graph, u, strategy, self._version(req), cache=inst.cache
            )
            return {"improves": bool(improves)}
        if req.op == "best_response":
            from ..core.best_response import exact_best_response

            u = _int_param(params, "u")
            version = self._version(req)
            result = exact_best_response(
                graph, u, version, env=inst.cache.environment(u, version)
            )
            return {
                "player": int(result.player),
                "cost": int(result.cost),
                "strategy": [int(x) for x in result.strategy],
                "current_cost": int(result.current_cost),
                "evaluated": int(result.evaluated),
                "exact": bool(result.exact),
            }
        if req.op == "weighted_swap":
            from ..analysis.weighted import weighted_swap_check

            u = _int_param(params, "u")
            drop = _int_param(params, "drop")
            add = _int_param(params, "add")
            wr, wcache = inst.weighted()
            return {"improves": bool(weighted_swap_check(wr, u, drop, add, cache=wcache))}
        if req.op == "poa":
            from ..analysis.poa import optimal_diameter_bounds, poa_interval

            worst = _int_param(params, "worst_diameter")
            budgets = params.get("budgets")
            if budgets is None:
                budgets = [int(d) for d in graph.out_degrees()]
            elif not isinstance(budgets, list) or not all(
                isinstance(x, int) and not isinstance(x, bool) for x in budgets
            ):
                raise ProtocolError("bad-request", "'budgets' must be a list of integers")
            bounds = optimal_diameter_bounds(budgets)
            lo, hi = poa_interval(worst, budgets)
            return {
                "interval": [fraction_str(lo), fraction_str(hi)],
                "diameter_bounds": {
                    "lower": int(bounds.lower),
                    "upper": int(bounds.upper),
                },
            }
        raise ProtocolError("unknown-op", f"op {req.op!r} is not a query op")

    def _meta(self, inst: ServedInstance, batch_size: int) -> dict:
        engine = inst.cache.base()
        n = max(1, inst.graph.n)
        if engine.lazy:
            mode = "lazy"
            settled = len(engine.hot_rows()) / n
        else:
            mode = "full"
            settled = 1.0
        return {
            "batch_size": batch_size,
            "engine_mode": mode,
            "settled_fraction": round(settled, 4),
        }
