"""NDJSON wire protocol: request parsing and response encoding.

One JSON object per line in both directions (see the package
docstring for the full contract).  Parsing is strict — unknown
operations, non-object payloads, and malformed JSON all map to typed
:class:`ProtocolError` codes so clients can distinguish their own
mistakes from server-side query failures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction

from ..errors import ReproError

__all__ = [
    "CONTROL_OPS",
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "ProtocolError",
    "Request",
    "encode_response",
    "error_response",
    "fraction_str",
    "ok_response",
    "parse_request",
]

PROTOCOL_VERSION = 1

CONTROL_OPS = frozenset({"ping", "instances", "stats", "shutdown"})
QUERY_OPS = frozenset(
    {
        "distance",
        "social_cost",
        "deviation",
        "best_response",
        "weighted_swap",
        "poa",
    }
)
_RESERVED_KEYS = frozenset({"id", "op", "instance", "version"})


class ProtocolError(ReproError):
    """A request the server could parse enough to reject, with a stable code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    id: object
    op: str
    instance: "str | None"
    version: "str | None"
    params: dict = field(default_factory=dict)


def parse_request(line: "str | bytes") -> Request:
    """Parse one NDJSON request line; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad-request", f"request must be a JSON object, got {type(obj).__name__}"
        )
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "request is missing a string 'op' field")
    if op not in CONTROL_OPS and op not in QUERY_OPS:
        known = ", ".join(sorted(CONTROL_OPS | QUERY_OPS))
        raise ProtocolError("unknown-op", f"unknown op {op!r}; known ops: {known}")
    instance = obj.get("instance")
    if instance is not None and not isinstance(instance, str):
        raise ProtocolError("bad-request", "'instance' must be a string when present")
    version = obj.get("version")
    if version is not None and not isinstance(version, str):
        raise ProtocolError("bad-request", "'version' must be a string when present")
    params = {k: v for k, v in obj.items() if k not in _RESERVED_KEYS}
    return Request(
        id=obj.get("id"), op=op, instance=instance, version=version, params=params
    )


def ok_response(request_id: object, result: dict, meta: "dict | None" = None) -> dict:
    """A success envelope; ``meta`` carries per-request observability."""
    resp: dict = {"id": request_id, "ok": True, "result": result}
    if meta is not None:
        resp["meta"] = meta
    return resp


def error_response(request_id: object, code: str, message: str) -> dict:
    """A failure envelope with a stable machine-readable ``code``."""
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def fraction_str(value: Fraction) -> str:
    """Encode an exact fraction as ``"p/q"`` (never a lossy float)."""
    return f"{value.numerator}/{value.denominator}"


def _json_default(obj):
    # numpy scalars leak out of engine answers; fractions out of PoA math.
    if isinstance(obj, Fraction):
        return fraction_str(obj)
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def encode_response(response: dict) -> bytes:
    """Serialize one response envelope to a single NDJSON line."""
    return (json.dumps(response, default=_json_default) + "\n").encode("utf-8")
