"""Equilibrium-as-a-service: an async batched query server.

Long-lived query service over one or more shared game instances,
exposing the library's equilibrium primitives — pairwise distances,
social cost, deviation verdicts, exact best responses, weighted swap
checks, and PoA intervals — without paying a fresh
``DistanceCache`` build per question.

Wire protocol
-------------
Newline-delimited JSON over TCP (``repro-bbncg serve --port N``) or
stdio (``--stdio``).  One request object per line::

    {"id": 7, "op": "distance", "instance": "fig1", "u": 0, "v": 9}

``op`` is one of the control operations ``ping`` / ``instances`` /
``stats`` / ``shutdown`` or the query operations ``distance`` /
``social_cost`` / ``deviation`` / ``best_response`` /
``weighted_swap`` / ``poa``.  Every response echoes the request ``id``
(responses may arrive out of order; match by ``id``)::

    {"id": 7, "ok": true, "result": {"distance": 3},
     "meta": {"queue_wait_ms": 0.4, "batch_size": 3,
              "settled_fraction": 0.18, "engine_mode": "lazy"}}

Failures carry ``"ok": false`` and an ``error`` object with a stable
``code`` (``bad-json`` / ``bad-request`` / ``unknown-op`` /
``unknown-instance`` / ``query-error`` / ``internal-error``).
Exact fractions (PoA bounds) are encoded as ``"p/q"`` strings.

Micro-batching window
---------------------
Concurrent same-instance requests are coalesced by a per-instance
collector: the first arrival opens a window (default 2 ms,
``--batch-window-ms``), and everything that lands inside it — up to
``--max-batch`` — executes as one batch on that instance's single
affinity thread.  Distance questions in a batch of two or more are
answered by ONE batched multi-source sweep
(:meth:`repro.core.DistanceCache.batch_query`, backed by
:func:`repro.graphs.query.batched_pair_distances`); a singleton batch
falls through to the bidirectional point kernel.  ``meta`` reports the
per-request queue wait, the batch size it rode in, the settled
fraction of the instance's distance engine, and the engine mode.

Bit-identity contract
---------------------
Every served answer is bit-identical to the corresponding direct
library call on the same instance — including disconnected-pair
``Cinf`` sentinels, exact ``Fraction`` PoA endpoints, and best-response
strategy sets.  Batching, the affinity executor, and ``--pool-dir``
cold starts (attaching a persisted matrix with zero parent rebuilds)
are pure execution-plan choices; they never change a payload byte.
"""

from .dispatcher import MicroBatchDispatcher
from .protocol import (
    CONTROL_OPS,
    PROTOCOL_VERSION,
    QUERY_OPS,
    ProtocolError,
    Request,
    encode_response,
    error_response,
    fraction_str,
    ok_response,
    parse_request,
)
from .registry import InstanceRegistry, ServedInstance
from .server import QueryServer, run_cli

__all__ = [
    "CONTROL_OPS",
    "InstanceRegistry",
    "MicroBatchDispatcher",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUERY_OPS",
    "QueryServer",
    "Request",
    "ServedInstance",
    "encode_response",
    "error_response",
    "fraction_str",
    "ok_response",
    "parse_request",
    "run_cli",
]
