"""Exhaustive theorem verification over complete profile spaces.

The strongest machine check the paper admits: at tiny n, EVERY
realization is examined, so the theorems are verified with no sampling
gap at those sizes.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_connectivity_theorem
from repro.core import (
    BoundedBudgetGame,
    enumerate_equilibria,
    enumerate_realizations,
    is_equilibrium,
)
from repro.graphs import cinf, diameter, is_connected, is_tree


class TestLemma31Exhaustive:
    """sigma >= n - 1 => every equilibrium is connected — all of them."""

    @pytest.mark.parametrize("budgets", [(1, 1, 1), (1, 1, 1, 1), (2, 1, 0, 0), (2, 1, 1, 0)])
    def test_all_equilibria_connected(self, budgets):
        game = BoundedBudgetGame(list(budgets))
        assert game.total_budget >= game.n - 1
        for version in ("sum", "max"):
            eqs = enumerate_equilibria(game, version)
            assert eqs
            for g in eqs:
                assert is_connected(g), (budgets, version, g.profile_key())


class TestTreeEquilibriaExhaustive:
    """Tree-BG: every connected equilibrium is a tree; diameters tiny."""

    @pytest.mark.parametrize("budgets", [(1, 1, 1, 0), (2, 1, 0, 0), (1, 1, 1, 1, 0)])
    def test_equilibria_are_trees(self, budgets):
        game = BoundedBudgetGame(list(budgets))
        assert game.is_tree_game
        for version in ("sum", "max"):
            for g in enumerate_equilibria(game, version):
                assert is_tree(g)


class TestTheorem72Exhaustive:
    """All budgets >= k: every SUM equilibrium is k-connected or diam <= 3."""

    def test_budget_2_n5_every_equilibrium(self):
        game = BoundedBudgetGame([2] * 5)
        eqs = enumerate_equilibria(game, "sum", max_profiles=10_000)
        assert eqs
        for g in eqs:
            report = check_connectivity_theorem(g, 2)
            assert report.holds, g.profile_key()

    def test_budget_2_n5_max_version_observed(self):
        # The paper proves Thm 7.2 only for SUM; record what MAX does at
        # this size (every equilibrium happens to satisfy the dichotomy
        # too — documented as an observation, not a theorem).
        game = BoundedBudgetGame([2] * 5)
        eqs = enumerate_equilibria(game, "max", max_profiles=10_000)
        assert eqs
        for g in eqs:
            report = check_connectivity_theorem(g, 2)
            assert report.holds or report.diameter_value > 3


class TestDisconnectedRegimeExhaustive:
    """sigma < n - 1: every realization has diameter exactly Cinf."""

    @pytest.mark.parametrize("budgets", [(0, 0, 1), (1, 0, 0, 0), (0, 1, 1, 0, 0)])
    def test_every_realization_disconnected(self, budgets):
        game = BoundedBudgetGame(list(budgets))
        assert game.total_budget < game.n - 1
        for g in enumerate_realizations(game):
            assert diameter(g) == cinf(game.n)


class TestLemma22Exhaustive:
    """Lemma 2.2 players are best-responders in EVERY tiny realization."""

    def test_lemma_2_2_never_lies(self):
        from repro.core import satisfies_lemma_2_2
        from repro.core.deviations import find_improving_deviation

        game = BoundedBudgetGame([1, 1, 1, 1])
        for g in enumerate_realizations(game):
            for u in range(4):
                if satisfies_lemma_2_2(g, u):
                    for version in ("sum", "max"):
                        assert (
                            find_improving_deviation(g, u, version, use_lemma=False)
                            is None
                        ), (g.profile_key(), u, version)
