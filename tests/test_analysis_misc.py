"""Tests for the connectivity-theorem checker, Braess demo, scaling fits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    FAMILIES,
    best_family,
    check_connectivity_theorem,
    demonstrate_braess,
    fit_scaling,
)
from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.errors import GraphError, ReproError
from repro.graphs import cycle_realization, uniform_budgets


# ----------------------------------------------------------------------
# Theorem 7.2 checker
# ----------------------------------------------------------------------
def test_connectivity_report_cycle():
    g = cycle_realization(8)
    rep = check_connectivity_theorem(g, 1)
    assert rep.connectivity == 2
    assert rep.diameter_value == 4
    assert rep.holds  # kappa = 2 >= k = 1
    assert "HOLDS" in rep.summary()


def test_connectivity_report_default_k():
    g = cycle_realization(6)
    rep = check_connectivity_theorem(g)
    assert rep.k == 1  # min out-degree


def test_connectivity_hypothesis_validation():
    g = cycle_realization(5)
    with pytest.raises(GraphError):
        check_connectivity_theorem(g, 2)  # budgets are only 1
    with pytest.raises(GraphError):
        check_connectivity_theorem(g, 0)


def test_theorem_7_2_on_dynamics_equilibria():
    # All budgets >= 2: SUM equilibria must be 2-connected or diam <= 3.
    for seed in range(4):
        game = BoundedBudgetGame(uniform_budgets(9, 2))
        res = best_response_dynamics(
            game,
            game.random_realization(seed=seed, connected=True),
            "sum",
            max_rounds=150,
        )
        assert res.converged
        rep = check_connectivity_theorem(res.graph, 2)
        assert rep.holds, (seed, rep.summary())


def test_violating_graph_detected():
    # A path-like budget-1 graph with diameter > 3 and connectivity 1
    # would violate the k=1 statement trivially satisfied... build an
    # artificial k=2 violation: two cycles joined by one vertex.
    from repro.graphs import OwnedDigraph

    g = OwnedDigraph(9)
    for i in range(4):
        g.add_arc(i, (i + 1) % 4)
    for i in range(4, 8):
        g.add_arc(i, 4 + (i - 3) % 4)
    # join: 0 and 4 via vertex 8; give everyone out-degree >= 2 crudely.
    arcs = [(8, 0), (8, 4)]
    for u, v in arcs:
        g.add_arc(u, v)
    for u in range(8):
        for w in range(9):
            if g.out_degree(u) >= 2:
                break
            if w != u and not g.has_arc(u, w) and w in (8,):
                g.add_arc(u, w)
    rep = check_connectivity_theorem(g, 2)
    # vertex 8 is a cut vertex => kappa = 1 < 2; holds only if diam <= 3.
    assert rep.connectivity == 1
    assert rep.holds == (rep.diameter_value <= 3)


# ----------------------------------------------------------------------
# Braess demonstration
# ----------------------------------------------------------------------
def test_braess_small_instance():
    comp = demonstrate_braess(4, 2, seed=0)
    assert comp.n == 16
    assert comp.positive_diameter == 2
    assert comp.unit_converged
    assert comp.unit_diameter < 8  # Theorem 4.2
    assert comp.positive_min_budget >= 1
    assert isinstance(comp.summary(), str)


# ----------------------------------------------------------------------
# Scaling fits
# ----------------------------------------------------------------------
def test_fit_linear_exact():
    ns = [10, 20, 30, 40]
    ds = [2 * n + 3 for n in ns]
    f = fit_scaling(ns, ds, "linear")
    assert abs(f.slope - 2) < 1e-9
    assert abs(f.intercept - 3) < 1e-9
    assert f.r_squared > 0.999
    assert np.allclose(f.predict(ns), ds)


def test_fit_log_and_sqrtlog():
    ns = [2**i for i in range(3, 10)]
    ds_log = [5 * np.log2(n) for n in ns]
    f = fit_scaling(ns, ds_log, "log")
    assert abs(f.slope - 5) < 1e-9
    ds_sq = [4 * np.sqrt(np.log2(n)) + 1 for n in ns]
    f2 = fit_scaling(ns, ds_sq, "sqrtlog")
    assert abs(f2.slope - 4) < 1e-6


def test_fit_expsqrtlog():
    ns = [2**i for i in range(2, 9)]
    ds = [2 ** (1.5 * np.sqrt(np.log2(n))) for n in ns]
    f = fit_scaling(ns, ds, "expsqrtlog")
    assert abs(f.slope - 1.5) < 1e-6
    assert np.allclose(f.predict(ns), ds)


def test_fit_constant():
    f = fit_scaling([4, 8, 16], [3, 3, 3], "constant")
    assert f.slope == 0
    assert f.intercept == 3
    assert f.rmse == 0


def test_best_family_selects_correctly():
    ns = [2**i for i in range(3, 11)]
    assert best_family(ns, [3 * n for n in ns]).family == "linear"
    assert best_family(ns, [7.0] * len(ns)).family == "constant"
    assert best_family(ns, [4 * np.log2(n) for n in ns]).family == "log"


def test_fit_validation():
    with pytest.raises(ReproError):
        fit_scaling([10], [1], "linear")
    with pytest.raises(ReproError):
        fit_scaling([10, 20], [1, 2], "cubic")
    with pytest.raises(ReproError):
        fit_scaling([1, 10], [1, 2], "log")  # n must be >= 2
    with pytest.raises(ReproError):
        fit_scaling([4, 8], [0, 2], "expsqrtlog")  # d must be positive


def test_describe_mentions_family():
    f = fit_scaling([10, 20, 40], [1, 2, 3], "log")
    assert "log2" in f.describe()
    assert "R²" in f.describe()
