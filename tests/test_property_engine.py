"""Property-based tests for distance-cache coherence.

The metamorphic property throughout: any interleaving of strategy swaps
and distance queries through the shared cache must be indistinguishable
from recomputing every matrix from scratch — "repair equals recompute".
Plus the staleness contract: environments captured before a substrate
change must raise instead of answering from old distances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BestResponseEnvironment,
    BoundedBudgetGame,
    DistanceCache,
    best_response_dynamics,
)
from repro.errors import StaleDistanceError
from repro.graphs import (
    DistanceEngine,
    OwnedDigraph,
    all_pairs_distances,
    csr_without_vertex,
    unit_budgets,
)


def _random_graph(rng: np.random.Generator, n: int, p: float = 0.3) -> OwnedDigraph:
    g = OwnedDigraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_arc(u, v)
    return g


def _random_strategy(rng: np.random.Generator, n: int, u: int, size: int) -> list[int]:
    others = [v for v in range(n) if v != u]
    size = min(size, len(others))
    picked = rng.choice(others, size=size, replace=False) if size else []
    return [int(v) for v in np.atleast_1d(picked)]


@given(
    n=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
    dirty_fraction=st.sampled_from([0.0, 0.25, 1.0]),
)
@settings(max_examples=30, deadline=None)
def test_repair_equals_recompute_under_swap_sequences(n, seed, dirty_fraction):
    """Random swap/query interleavings: cached engines always agree with
    a from-scratch BFS of the same substrate."""
    rng = np.random.default_rng(seed)
    g = _random_graph(rng, n)
    cache = DistanceCache(g, dirty_fraction=dirty_fraction)
    for _ in range(6):
        u = int(rng.integers(n))
        g.set_strategy(u, _random_strategy(rng, n, u, int(rng.integers(0, n))))
        if rng.random() < 0.7:  # interleave queries with mutations
            probe = int(rng.integers(n))
            got = cache.player(probe).distances()
            ref = all_pairs_distances(csr_without_vertex(g.undirected_csr(), probe))
            assert np.array_equal(got, ref)
            base = cache.base().distances()
            assert np.array_equal(base, all_pairs_distances(g.undirected_csr()))
    # Final coherence across every substrate touched so far.
    for probe in range(n):
        got = cache.player(probe).distances()
        ref = all_pairs_distances(csr_without_vertex(g.undirected_csr(), probe))
        assert np.array_equal(got, ref)


@given(
    n=st.integers(min_value=3, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31),
    version=st.sampled_from(["sum", "max"]),
    method=st.sampled_from(["swap", "greedy", "exact"]),
)
@settings(max_examples=20, deadline=None)
def test_engine_dynamics_trajectory_is_bit_identical(n, seed, version, method):
    """use_engine=True/False must produce the same moves, costs, and
    final profile on every sampled game."""
    game = BoundedBudgetGame(unit_budgets(n))
    g0 = game.random_realization(seed=seed)
    a = best_response_dynamics(
        game, g0, version, method=method, max_rounds=40, seed=seed, use_engine=True
    )
    b = best_response_dynamics(
        game, g0, version, method=method, max_rounds=40, seed=seed, use_engine=False
    )
    assert a.graph == b.graph
    assert (a.converged, a.cycled, a.rounds) == (b.converged, b.cycled, b.rounds)
    assert a.social_costs == b.social_costs
    assert [
        (m.player, m.old_strategy, m.new_strategy, m.old_cost, m.new_cost)
        for m in a.moves
    ] == [
        (m.player, m.old_strategy, m.new_strategy, m.old_cost, m.new_cost)
        for m in b.moves
    ]


# ----------------------------------------------------------------------
# Staleness / rollback
# ----------------------------------------------------------------------
def test_own_move_does_not_invalidate_own_environment():
    """U(G - u) is independent of u's strategy, so u's environment (and
    its best_swap) stays valid across u's own moves."""
    rng = np.random.default_rng(4)
    g = _random_graph(rng, 8, p=0.4)
    cache = DistanceCache(g)
    env = cache.environment(2, "sum")
    before = env.best_swap(tuple(int(v) for v in g.out_neighbors(2)))
    g.set_strategy(2, _random_strategy(rng, 8, 2, 2))
    # Re-syncing finds an identical substrate: same epoch, env still live.
    assert cache.player(2).epoch == env.engine.epoch
    after = env.best_swap(before[1])
    assert env.evaluate(before[1]) == before[0]
    assert after[0] <= before[0]


def test_other_player_move_invalidates_environment_even_after_rollback():
    """A change by another player bumps the epoch; rolling the change
    back (after the cache synced the intermediate state) does not
    un-bump it, so the stale environment keeps raising and best_swap
    must be re-run on a fresh environment."""
    # Path 0-1-2-3-4-5 with forward ownership; u evaluates, v deviates.
    g = OwnedDigraph(6)
    for i in range(5):
        g.add_arc(i, i + 1)
    u, v = 1, 4
    cache = DistanceCache(g)
    cur = tuple(int(w) for w in g.out_neighbors(u))
    env = cache.environment(u, "max")
    cost_before, strat_before, _ = env.best_swap(cur)

    # v rewires 4->5 to 4->0: the substrate U(G - u) changes.
    g.set_strategy(v, [0])
    cache.player(u)  # sync the intermediate state
    assert not env.is_fresh()
    with pytest.raises(StaleDistanceError):
        env.best_swap(cur)
    with pytest.raises(StaleDistanceError):
        env.evaluate(cur)

    # Rollback: graph content identical to the original...
    g.set_strategy(v, [5])
    refreshed = cache.environment(u, "max")
    assert refreshed is not env
    # ...the old environment stays stale (its epoch was superseded
    # twice), but a fresh one reproduces the original best_swap.
    with pytest.raises(StaleDistanceError):
        env.evaluate(cur)
    assert refreshed.best_swap(cur)[:2] == (cost_before, strat_before)


def test_rollback_without_intermediate_sync_is_noop():
    """If nobody queried between a change and its rollback, the CSR diff
    sees no change: same epoch, the old environment is still valid."""
    rng = np.random.default_rng(6)
    g = _random_graph(rng, 7, p=0.4)
    cache = DistanceCache(g)
    u, v = 0, 3
    cur = tuple(int(w) for w in g.out_neighbors(u))
    env = cache.environment(u, "sum")
    baseline = env.evaluate(cur)
    old_v = [int(w) for w in g.out_neighbors(v)]
    g.set_strategy(v, _random_strategy(rng, 7, v, 3))
    g.set_strategy(v, old_v)  # rolled back before any cache access
    assert cache.player(u).epoch == env.engine.epoch
    assert env.evaluate(cur) == baseline


def test_standalone_environment_raises_on_any_relevant_mutation():
    # Path 0-1-2-3-4 with forward ownership; u = 0 has no in-arcs.
    g = OwnedDigraph(5)
    for i in range(4):
        g.add_arc(i, i + 1)
    env = BestResponseEnvironment(g, 0, "sum")
    cur = tuple(int(w) for w in g.out_neighbors(0))
    first = env.evaluate(cur)
    # u's own moves touch neither U(G - 0) nor In(0): still fresh.
    g.set_strategy(0, [2])
    assert env.is_fresh()
    assert env.evaluate(cur) == first
    # A substrate mutation (edge {3,4} removed) is detected even though
    # the private engine was never told about it.
    g.set_strategy(3, [2])
    assert not env.is_fresh()
    with pytest.raises(StaleDistanceError):
        env.evaluate(cur)
    # A fresh environment answers for the current graph.
    env2 = BestResponseEnvironment(g, 0, "sum")
    # An in-arc change alone (substrate untouched) is also detected.
    g.add_arc(3, 0)
    with pytest.raises(StaleDistanceError):
        env2.evaluate(cur)


def test_cache_rebind_keeps_buffers_but_resyncs():
    rng = np.random.default_rng(8)
    g1 = _random_graph(rng, 9, p=0.3)
    g2 = _random_graph(rng, 9, p=0.3)
    cache = DistanceCache(g1)
    e1 = cache.player(4)
    m1 = e1.distances()
    cache.rebind(g2)
    e2 = cache.player(4)
    assert e2 is e1  # engine object (and its matrix buffer) reused
    ref = all_pairs_distances(csr_without_vertex(g2.undirected_csr(), 4))
    assert np.array_equal(e2.distances(), ref)
    assert np.array_equal(
        cache.base().distances(), all_pairs_distances(g2.undirected_csr())
    )
    assert not np.array_equal(m1, e2.distances()) or g1 == g2


def test_lru_eviction_bounds_cached_engines():
    rng = np.random.default_rng(9)
    g = _random_graph(rng, 10, p=0.3)
    cache = DistanceCache(g, max_player_engines=3)
    for u in range(10):
        cache.player(u)
    stats = cache.stats()
    assert stats["player_engines"] == 3
    assert stats["evictions"] == 7
    # Evicted engines are rebuilt on demand and still correct.
    got = cache.player(0).distances()
    ref = all_pairs_distances(csr_without_vertex(g.undirected_csr(), 0))
    assert np.array_equal(got, ref)


# ----------------------------------------------------------------------
# Cache point queries: cold, synced, and lazy paths agree (PR-6)
# ----------------------------------------------------------------------
@given(
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
    steps=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_cache_query_matches_matrices_across_modes(n, seed, steps):
    """DistanceCache.query / query_punctured must be bit-identical to
    the corresponding maintained-matrix entries in every rows mode,
    interleaved with strategy swaps — and a cold full-mode cache must
    answer without building its engines."""
    rng = np.random.default_rng(seed)
    g = _random_graph(rng, n)
    cold = DistanceCache(g)
    full = DistanceCache(g)
    lazy = DistanceCache(g, rows="lazy")
    for _ in range(steps + 1):
        ref = all_pairs_distances(g.undirected_csr())
        ref[ref == -1] = n * n
        u, v = int(rng.integers(n)), int(rng.integers(n))
        base_stats = cold.stats()["rebuilds"]
        for c in (cold, full, lazy):
            assert c.query(u, v) == int(ref[u, v])
        # The cold cache answered by bounded search, not an engine build.
        assert cold.stats()["rebuilds"] == base_stats
        player = int(rng.integers(n))
        pref = all_pairs_distances(csr_without_vertex(g.undirected_csr(), player))
        pref[pref == -1] = n * n
        for c in (cold, full, lazy):
            assert c.query_punctured(player, u, v) == int(pref[u, v])
        full.base()  # keep one cache fully synced for the next round
        u2 = int(rng.integers(n))
        others = [x for x in range(n) if x != u2]
        k = min(g.out_degree(u2), len(others))
        picked = rng.choice(others, size=k, replace=False) if k else []
        g.set_strategy(u2, [int(x) for x in np.atleast_1d(picked)])
