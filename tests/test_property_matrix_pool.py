"""Property suite for the shared-memory matrix pool.

Three families of properties:

* **Registry semantics** — random publish/lookup/evict/attach
  interleavings on a small LRU pool behave exactly like an in-memory
  model dict: hits return the published bytes, misses are misses,
  eviction follows LRU order, and every view handed out is read-only.
* **Epoch guard** — an engine adopting a published matrix repairs
  copy-on-write: arbitrary mutation sequences keep the engine exact
  (repair equals recompute) while the published segment's bytes never
  change, so a concurrent reader can never observe a mid-repair state.
* **Bit-identity** — pooled (warm-started) and unpooled sweeps and
  censuses return identical results for randomly drawn games, worker
  counts and knob combinations.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BoundedBudgetGame,
    MatrixPool,
    census_scan,
    pool_key,
    weighted_census_scan,
)
from repro.graphs import DistanceEngine, OwnedDigraph, all_pairs_distances
from repro.parallel import (
    SweepSpec,
    clear_distance_caches,
    install_pool_handles,
    run_sweep,
    shared_distance_cache,
    warm_distance_pool,
)

from conftest import random_owned_digraph, random_strategy_swap


# ----------------------------------------------------------------------
# Registry semantics under random interleavings
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["publish", "lookup", "attach", "evict"]),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=40,
    ),
    max_segments=st.integers(min_value=1, max_value=4),
)
def test_pool_interleavings_match_lru_model(ops, max_segments):
    payloads = {i: np.arange(16, dtype=np.int64) * (i + 1) for i in range(6)}
    model: "OrderedDict[tuple, int]" = OrderedDict()
    with MatrixPool(max_segments=max_segments) as pool:
        for op, i in ops:
            key = ("k", i)
            if op == "publish":
                handle = pool.publish(key, {"a": payloads[i]})
                assert handle.key == key
                if key in model:
                    model.move_to_end(key)
                else:
                    model[key] = i
                    while len(model) > max_segments:
                        model.popitem(last=False)
            elif op in ("lookup", "attach"):
                handle = pool.lookup(key)
                if key in model:
                    assert handle is not None
                    model.move_to_end(key)
                    if op == "attach":
                        views = handle.attach()
                        assert np.array_equal(views["a"], payloads[i])
                        assert not views["a"].flags.writeable
                        with pytest.raises(ValueError):
                            views["a"][0] = 99
                else:
                    assert handle is None
            else:  # evict
                assert pool.evict(key) == (key in model)
                model.pop(key, None)
            assert pool.keys() == list(model)


def test_publish_is_write_once_idempotent():
    with MatrixPool() as pool:
        first = pool.publish(("k",), {"a": np.arange(4)})
        second = pool.publish(("k",), {"a": np.zeros(4, dtype=np.int64)})
        # Same key: the existing segment is returned, never overwritten.
        assert second is first
        assert np.array_equal(pool.attach(("k",))["a"], np.arange(4))


def test_pool_key_embeds_instance_and_revision():
    g1 = OwnedDigraph(4)
    g2 = OwnedDigraph(4)
    assert pool_key(g1) != pool_key(g2)  # distinct same-size instances
    k0 = pool_key(g1)
    g1.add_arc(0, 1)
    assert pool_key(g1) != k0  # a mutation is a different state
    assert pool_key(g1, weights_revision=1) != pool_key(g1)


# ----------------------------------------------------------------------
# Epoch guard: repairs never touch the published segment
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
    steps=st.integers(min_value=1, max_value=8),
)
def test_adopted_engine_repairs_equal_recompute_without_writing_segment(
    n, seed, steps
):
    rng = np.random.default_rng(seed)
    g = random_owned_digraph(rng, n, p=0.3)
    source = DistanceEngine.from_graph(g)
    with MatrixPool() as pool:
        handle = pool.publish(
            pool_key(g),
            {
                "D": source.matrix,
                "inf": np.asarray([source.inf], dtype=np.int64),
            },
        )
        views = handle.attach()
        published = views["D"].copy()
        adopted = DistanceEngine.from_snapshot(
            g.undirected_csr(), views["D"], inf=int(views["inf"][0])
        )
        assert adopted.copy_on_write
        for _ in range(steps):
            random_strategy_swap(rng, g)
            adopted.update(g.undirected_csr())
            # Repair equals recompute...
            assert np.array_equal(
                adopted.distances(), all_pairs_distances(g.undirected_csr())
            )
            # ...and the shared segment still shows the original epoch's
            # matrix: no reader can ever see a mid-repair state.
            assert np.array_equal(views["D"], published)


# ----------------------------------------------------------------------
# Pooled == unpooled, bit for bit
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    budgets=st.sampled_from(
        [(1, 1, 1), (2, 1, 0), (1, 1, 1, 1), (2, 1, 1, 0), (0, 0, 1, 0)]
    ),
    version=st.sampled_from(["sum", "max"]),
    workers=st.integers(min_value=1, max_value=4),
    symmetry=st.booleans(),
)
def test_pooled_census_bit_identical(budgets, version, workers, symmetry):
    game = BoundedBudgetGame(list(budgets))
    cold = census_scan(
        game,
        version,
        workers=workers,
        symmetry=symmetry,
        pool=False,
        collect_equilibria=True,
    )
    warm = census_scan(
        game,
        version,
        workers=workers,
        symmetry=symmetry,
        pool=True,
        collect_equilibria=True,
    )
    assert warm.report == cold.report
    assert warm.equilibria == cold.equilibria


@settings(max_examples=8, deadline=None)
@given(
    weights=st.sampled_from([(1, 1, 1, 1), (3, 1, 1, 1), (2, 1, 1, 0)]),
    workers=st.integers(min_value=1, max_value=3),
)
def test_pooled_weighted_census_bit_identical(weights, workers):
    game = BoundedBudgetGame([1, 1, 1, 0])
    cold = weighted_census_scan(
        game, weights, workers=workers, pool=False, collect_equilibria=True
    )
    warm = weighted_census_scan(
        game, weights, workers=workers, pool=True, collect_equilibria=True
    )
    assert warm == cold


def _sweep_worker(task):
    """Build the task's graph and read distances through the shared cache."""
    game = BoundedBudgetGame([1] * task.params["n"])
    graph = game.random_realization(seed=task.params["proto"])
    cache = shared_distance_cache(graph)
    engine = cache.base()
    return {
        "checksum": int(np.asarray(engine.matrix, dtype=np.int64).sum()),
        "initial_rebuilds": int(engine.stats["rebuilds"]),
    }


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=8),
    protos=st.lists(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=3, unique=True
    ),
)
def test_pooled_sweep_bit_identical_and_attaches(n, protos):
    spec = SweepSpec(axes={"n": [n], "proto": protos}, replications=1, base_seed=1)
    game = BoundedBudgetGame([1] * n)
    prototypes = [game.random_realization(seed=p) for p in protos]
    try:
        clear_distance_caches()
        warm = run_sweep(_sweep_worker, spec, warm_graphs=prototypes)
        clear_distance_caches()
        cold = run_sweep(_sweep_worker, spec)
    finally:
        clear_distance_caches()
        install_pool_handles({})
    assert [r["checksum"] for r in warm] == [r["checksum"] for r in cold]
    # Warmed workers attached instead of rebuilding; cold ones rebuilt.
    assert all(r["initial_rebuilds"] == 0 for r in warm)
    assert all(r["initial_rebuilds"] == 1 for r in cold)


def _player_sweep_worker(task):
    """Read per-player punctured distances through the shared cache."""
    game = BoundedBudgetGame([1] * task.params["n"])
    graph = game.random_realization(seed=task.params["proto"])
    cache = shared_distance_cache(graph)
    checksum = 0
    player_rebuilds = 0
    for u in range(graph.n):
        engine = cache.player(u)
        checksum += int(np.asarray(engine.matrix, dtype=np.int64).sum())
        player_rebuilds += int(engine.stats["rebuilds"])
    return {"checksum": checksum, "player_rebuilds": player_rebuilds}


@settings(max_examples=6, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=7),
    protos=st.lists(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=2, unique=True
    ),
)
def test_player_bundle_sweep_bit_identical_and_attaches(n, protos):
    """warm_players publishes per-player U(G - u) snapshots end to end:
    the worker-side attach adopts every player engine (0 initial BFS)
    and every distance is bit-identical to the cold path."""
    spec = SweepSpec(axes={"n": [n], "proto": protos}, replications=1, base_seed=2)
    game = BoundedBudgetGame([1] * n)
    prototypes = [game.random_realization(seed=p) for p in protos]
    try:
        clear_distance_caches()
        warm = run_sweep(
            _player_sweep_worker, spec, warm_graphs=prototypes, warm_players="all"
        )
        clear_distance_caches()
        cold = run_sweep(_player_sweep_worker, spec)
    finally:
        clear_distance_caches()
        install_pool_handles({})
    assert [r["checksum"] for r in warm] == [r["checksum"] for r in cold]
    assert all(r["player_rebuilds"] == 0 for r in warm)
    assert all(r["player_rebuilds"] == n for r in cold)


# ----------------------------------------------------------------------
# Cleanup hardening: failing close must warn and still unlink (PR-6)
# ----------------------------------------------------------------------
def test_release_with_failing_close_still_unlinks_and_warns(monkeypatch):
    import warnings

    from multiprocessing import shared_memory

    pool = MatrixPool()
    pool.publish(("doomed",), {"a": np.arange(8)})
    handle, shm = pool._segments[("doomed",)]

    unlinked = []
    real_unlink = shared_memory.SharedMemory.unlink

    def failing_close(self):
        raise OSError("simulated close failure")

    def tracked_unlink(self):
        unlinked.append(self.name)
        return real_unlink(self)

    monkeypatch.setattr(shared_memory.SharedMemory, "close", failing_close)
    monkeypatch.setattr(shared_memory.SharedMemory, "unlink", tracked_unlink)
    with warnings.catch_warnings(record=True) as rec:
        warnings.simplefilter("always")
        pool.evict(("doomed",))
    monkeypatch.undo()
    # The unlink still ran despite the close failure...
    assert unlinked == [handle.name]
    # ...and the failure surfaced as a RuntimeWarning, not silence.
    messages = [str(w.message) for w in rec if w.category is RuntimeWarning]
    assert any("simulated close failure" in m for m in messages)
    assert pool.lookup(("doomed",)) is None
    pool.close()
    shm.close()


def test_release_close_errors_do_not_propagate(monkeypatch):
    """pool.close() across a failing segment close must not raise — the
    atexit path would otherwise lose every later segment's unlink."""
    from multiprocessing import shared_memory

    pool = MatrixPool()
    pool.publish(("a",), {"x": np.arange(3)})
    pool.publish(("b",), {"x": np.arange(5)})
    raw = [entry[1] for entry in pool._segments.values()]

    def failing_close(self):
        raise OSError("simulated close failure")

    monkeypatch.setattr(shared_memory.SharedMemory, "close", failing_close)
    with pytest.warns(RuntimeWarning):
        pool.close()  # must complete despite both closes failing
    monkeypatch.undo()
    for shm in raw:
        shm.close()
