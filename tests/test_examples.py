"""Smoke tests: every example script runs end-to-end."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


def _example_env() -> dict[str, str]:
    """Subprocess environment with the package importable.

    pytest's ``pythonpath`` ini option only patches the test process's
    own ``sys.path``; the example subprocesses need ``src`` on
    ``PYTHONPATH`` explicitly.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "braess_paradox.py",
        "p2p_overlay.py",
        "dynamics_convergence.py",
        "exact_census.py",
    ],
)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
