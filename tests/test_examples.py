"""Smoke tests: every example script runs end-to-end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "braess_paradox.py",
        "p2p_overlay.py",
        "dynamics_convergence.py",
        "exact_census.py",
    ],
)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
