"""Tests for the Figure 3 decomposition and Theorem 3.3 verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    forward_arc_indices,
    longest_path_decomposition,
    theorem_3_3_bound,
    verify_sum_equilibrium_inequality,
)
from repro.constructions import binary_tree_equilibrium, spider_equilibrium
from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.errors import GraphError
from repro.graphs import cycle_realization, path_realization, random_tree_realization, star_realization


def test_path_decomposition():
    g = path_realization(6)
    dec = longest_path_decomposition(g)
    assert dec.diameter_value == 5
    assert dec.sizes.tolist() == [1] * 6
    assert sorted(dec.path) == list(range(6))


def test_star_decomposition():
    g = star_realization(7)
    dec = longest_path_decomposition(g)
    assert dec.diameter_value == 2
    # 5 leaves hang off the center (index 1 of the 3-vertex path).
    assert sorted(dec.sizes.tolist()) == [1, 1, 5]
    assert int(dec.sizes.sum()) == 7


def test_decomposition_partitions_vertices(rng):
    for _ in range(10):
        n = int(rng.integers(2, 30))
        g, _ = random_tree_realization(n, rng)
        dec = longest_path_decomposition(g)
        assert int(dec.sizes.sum()) == n
        assert (dec.sizes > 0).all()
        # Path vertices are their own attachment.
        for i, v in enumerate(dec.path):
            assert dec.attachment[v] == i
        # set_of is consistent.
        for i in range(len(dec.path)):
            assert (dec.attachment[dec.set_of(i)] == i).all()


def test_requires_tree():
    with pytest.raises(GraphError):
        longest_path_decomposition(cycle_realization(5))


def test_forward_arcs_path():
    g = path_realization(5)
    dec = longest_path_decomposition(g)
    fwd = forward_arc_indices(g, dec)
    # All arcs point the same way along the path (either all forward or
    # all backward depending on the BFS orientation of the path).
    assert len(fwd) in (0, 4)


def test_binary_tree_inequality_holds():
    for depth in (2, 3, 4, 5):
        inst = binary_tree_equilibrium(depth)
        check = verify_sum_equilibrium_inequality(inst.graph)
        assert check.holds, (depth, check)


def test_sum_dynamics_trees_satisfy_inequality():
    # Every exact SUM equilibrium tree must satisfy inequality (1).
    from repro.graphs import is_tree

    for seed in range(5):
        g, budgets = random_tree_realization(14, seed=seed)
        game = BoundedBudgetGame(budgets)
        res = best_response_dynamics(game, g, "sum", max_rounds=200)
        if not res.converged or not is_tree(res.graph):
            continue
        check = verify_sum_equilibrium_inequality(res.graph)
        assert check.holds, (seed, check)


def test_spider_violates_inequality_for_large_k():
    # The spider is not a SUM equilibrium for big k; inequality fails.
    inst = spider_equilibrium(8)
    check = verify_sum_equilibrium_inequality(inst.graph)
    assert not check.holds


def test_theorem_bound_monotone():
    values = [theorem_3_3_bound(n) for n in (1, 3, 7, 15, 63, 255)]
    assert values == sorted(values)
    assert theorem_3_3_bound(7) == 8
    with pytest.raises(GraphError):
        theorem_3_3_bound(0)


def test_equilibrium_diameters_below_bound():
    from repro.graphs import diameter, is_tree

    for seed in range(4):
        g, budgets = random_tree_realization(20, seed=100 + seed)
        game = BoundedBudgetGame(budgets)
        res = best_response_dynamics(game, g, "sum", max_rounds=200)
        if res.converged:
            assert diameter(res.graph) <= theorem_3_3_bound(20)
