"""Property-based tests for the k-center / k-median solvers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import OwnedDigraph, distance_matrix
from repro.optimization import (
    exact_k_center,
    exact_k_median,
    greedy_k_center,
    k_center_value,
    k_median_value,
    local_search_k_median,
)


@st.composite
def connected_metric(draw, max_n: int = 9):
    """Distance matrix of a random connected graph (path + extra arcs)."""
    n = draw(st.integers(min_value=3, max_value=max_n))
    g = OwnedDigraph(n)
    for i in range(n - 1):
        g.add_arc(i, i + 1)  # connected spine
    extra_pairs = [(u, v) for u in range(n) for v in range(n) if v > u + 1]
    extras = draw(
        st.lists(st.sampled_from(extra_pairs), unique=True, max_size=6)
        if extra_pairs
        else st.just([])
    )
    for u, v in extras:
        g.add_arc(u, v)
    k = draw(st.integers(min_value=1, max_value=n - 1))
    return distance_matrix(g, apply_cinf=False), k


@given(connected_metric())
@settings(max_examples=40, deadline=None)
def test_exact_k_center_is_minimum(args):
    D, k = args
    n = D.shape[0]
    sol = exact_k_center(D, k)
    # Every random subset is at least as costly.
    rng = np.random.default_rng(0)
    for _ in range(10):
        subset = rng.choice(n, size=k, replace=False)
        assert k_center_value(D, tuple(subset)) >= sol.objective
    # The reported objective matches its own centers.
    assert k_center_value(D, sol.centers) == sol.objective


@given(connected_metric())
@settings(max_examples=40, deadline=None)
def test_exact_k_median_is_minimum(args):
    D, k = args
    n = D.shape[0]
    sol = exact_k_median(D, k)
    rng = np.random.default_rng(1)
    for _ in range(10):
        subset = rng.choice(n, size=k, replace=False)
        assert k_median_value(D, tuple(subset)) >= sol.objective
    assert k_median_value(D, sol.medians) == sol.objective


@given(connected_metric())
@settings(max_examples=40, deadline=None)
def test_heuristics_bracket_optimum(args):
    D, k = args
    opt_c = exact_k_center(D, k).objective
    apx_c = greedy_k_center(D, k).objective
    assert opt_c <= apx_c <= 2 * max(opt_c, 0) + (0 if opt_c else apx_c)
    opt_m = exact_k_median(D, k).objective
    apx_m = local_search_k_median(D, k).objective
    assert opt_m <= apx_m <= 5 * opt_m + (0 if opt_m else apx_m)


@given(connected_metric())
@settings(max_examples=30, deadline=None)
def test_objectives_monotone_in_k(args):
    D, _ = args
    n = D.shape[0]
    centers = [exact_k_center(D, k).objective for k in range(1, n + 1)]
    medians = [exact_k_median(D, k).objective for k in range(1, n + 1)]
    assert centers == sorted(centers, reverse=True)
    assert medians == sorted(medians, reverse=True)
    assert centers[-1] == 0 and medians[-1] == 0  # all vertices are centers
